//! Quickstart: from a Caffe-style descriptive script to a generated
//! accelerator in one call — the paper's "one-click" flow.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use deepburning::core::{generate, Budget};
use deepburning::model::parse_network;
use deepburning::sim::{simulate_timing, TimingParams};

const SCRIPT: &str = r#"
name: "quickstart"
layers { name: "data" type: INPUT top: "data"
         input_param { channels: 1 height: 28 width: 28 } }
layers {
  name: "conv1"
  type: CONVOLUTION
  bottom: "data"
  top: "conv1"
  param { num_output: 20 kernel_size: 5 stride: 1 }
}
layers {
  name: "pool1"
  type: POOLING
  bottom: "conv1"
  top: "pool1"
  pooling_param { pool: MAX kernel_size: 2 stride: 2 }
}
layers { name: "ip1" type: INNER_PRODUCT bottom: "pool1" top: "ip1"
         param { num_output: 100 } }
layers { name: "sig1" type: SIGMOID bottom: "ip1" top: "ip1" }
layers { name: "ip2" type: INNER_PRODUCT bottom: "ip1" top: "ip2"
         param { num_output: 10 } }
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Parse the descriptive script (paper Fig. 4 dialect).
    let net = parse_network(SCRIPT)?;
    println!("{net}");

    // 2. One-click generation against the medium Z-7045 budget.
    let design = generate(&net, &Budget::Medium)?;
    println!(
        "generated `{}` for {} ({}):",
        design.network,
        design.budget.device().name,
        design.budget.tag()
    );
    println!(
        "  lanes: {}   phases: {}   LUT tables: {}",
        design.config.lanes,
        design.compiled.folding.phases.len(),
        design.compiled.luts.len()
    );
    println!(
        "  resources: {} DSP, {} LUT, {} FF, {} Kib BRAM (fits budget: {})",
        design.resources.total.dsp,
        design.resources.total.lut,
        design.resources.total.ff,
        design.resources.total.bram_bits / 1024,
        design.fits.0
    );

    // 3. The RTL is real Verilog — show the top module's header.
    let header: Vec<&str> = design
        .verilog
        .lines()
        .skip_while(|l| !l.contains("module quickstart_accelerator"))
        .take(12)
        .collect();
    println!(
        "\ngenerated RTL (top module header):\n{}",
        header.join("\n")
    );

    // 4. Simulate one forward propagation at 100 MHz.
    let timing = simulate_timing(&design.compiled, &TimingParams::default());
    println!(
        "\nforward propagation: {} cycles = {:.3} ms at 100 MHz",
        timing.total_cycles,
        timing.seconds(design.clock_hz()) * 1e3
    );
    Ok(())
}
