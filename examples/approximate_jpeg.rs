//! Approximate computing with a generated accelerator (the AxBench
//! scenario of the paper's ANN benchmarks): train a small MLP to mimic the
//! jpeg DCT kernel, burn it into an accelerator, and compare the
//! fixed-point accelerator output against the golden software kernel with
//! the paper's Eq. (1) metric.
//!
//! ```sh
//! cargo run --release --example approximate_jpeg
//! ```

use deepburning::baselines::{train_ann, zoo};
use deepburning::core::{generate, Budget};
use deepburning::sim::{functional_forward, simulate_timing, TimingParams};
use deepburning::tensor::{forward, jpeg_reference, relative_accuracy};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(42);

    // 1. Train ANN-1 (MLP 8-16-16-8) against the orthodox 8-point DCT.
    println!("training ANN-1 against the jpeg DCT kernel...");
    let model = train_ann(zoo::ann1(), 300, &mut rng);

    // 2. Generate its accelerator.
    let design = generate(&model.bench.network, &Budget::Medium)?;
    let timing = simulate_timing(&design.compiled, &TimingParams::default());
    println!(
        "accelerator: {} lanes, {} DSP, one invocation = {:.2} us",
        design.config.lanes,
        design.resources.total.dsp,
        timing.seconds(design.clock_hz()) * 1e6
    );

    // 3. Accuracy against the golden kernel, Eq. (1).
    let mut acc_sw = 0.0;
    let mut acc_hw = 0.0;
    for (x, _) in &model.regression_test {
        let golden = jpeg_reference(x.as_slice());
        let y_sw = forward(&model.bench.network, &model.weights, x)?;
        let y_hw = functional_forward(
            &model.bench.network,
            &model.weights,
            x,
            &design.compiled.luts,
            design.config.format,
        )?;
        acc_sw += relative_accuracy(y_sw.as_slice(), &golden);
        acc_hw += relative_accuracy(y_hw.as_slice(), &golden);
    }
    let n = model.regression_test.len() as f64;
    println!("Eq.(1) accuracy vs golden DCT:");
    println!("  software NN (f32):          {:.2}%", acc_sw / n);
    println!("  accelerator (Q7.8 + LUT):   {:.2}%", acc_hw / n);
    println!(
        "  fixed-point degradation:    {:.2}%",
        (acc_sw - acc_hw).abs() / n
    );
    Ok(())
}
