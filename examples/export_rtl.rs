//! The "burning" step: export everything a board flow needs — the Verilog
//! netlist, the Approx LUT images, the DRAM data layout the ARM core must
//! prepare, and the coordinator's event schedule.
//!
//! ```sh
//! cargo run --release --example export_rtl
//! # artifacts land in target/export/
//! ```

use deepburning::baselines::zoo;
use deepburning::core::{generate, Budget};
use std::fs;
use std::io::Write as _;
use std::path::Path;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bench = zoo::mnist();
    let design = generate(&bench.network, &Budget::Medium)?;

    let dir = Path::new("target/export");
    fs::create_dir_all(dir)?;

    // 1. The RTL.
    let rtl_path = dir.join(format!("{}.v", design.network));
    fs::write(&rtl_path, &design.verilog)?;
    println!(
        "wrote {} ({} lines)",
        rtl_path.display(),
        design.verilog.lines().count()
    );

    // 1b. A self-checking testbench for stock simulators.
    let tb = deepburning::verilog::emit_testbench(
        &design.design,
        &deepburning::verilog::TestbenchOptions::default(),
    );
    let tb_path = dir.join(format!("tb_{}.v", design.network));
    fs::write(&tb_path, tb)?;
    println!("wrote {}", tb_path.display());

    // 2. Approx LUT images (hex, one word per line, value then slope rows).
    for (tag, image) in &design.compiled.luts {
        let path = dir.join(format!("lut_{}.hex", tag.replace(':', "_")));
        let mut f = fs::File::create(&path)?;
        for (k, v) in image.keys().iter().zip(image.values()) {
            writeln!(f, "{:04x} {:04x}", k.raw() as u16, v.raw() as u16)?;
        }
        println!("wrote {} ({} entries)", path.display(), image.entries());
    }

    // 3. The DRAM layout the host prepares ("The ARM core reorganizes the
    //    input data and weight data ... into an optimized layout").
    let map_path = dir.join("memory_map.txt");
    let mut f = fs::File::create(&map_path)?;
    writeln!(f, "# segment  offset(words)  length(words)")?;
    for seg in &design.compiled.memory_map.segments {
        writeln!(
            f,
            "{:<12} {:>10} {:>10}  {:?}",
            seg.name, seg.offset, seg.len_words, seg.kind
        )?;
    }
    println!("wrote {}", map_path.display());

    // 4. The event schedule (context-buffer contents).
    let sched_path = dir.join("schedule.txt");
    let mut f = fs::File::create(&sched_path)?;
    writeln!(f, "# phase  event  reconnections")?;
    for step in &design.compiled.schedule.steps {
        let edges: Vec<String> = step
            .reconnections
            .iter()
            .map(|r| format!("{}->{}", r.from, r.to))
            .collect();
        writeln!(
            f,
            "{:>5}  {:<16} {}",
            step.phase,
            step.event,
            edges.join(", ")
        )?;
    }
    println!("wrote {}", sched_path.display());

    println!(
        "\nready to burn: {} phases, {} DSP / {} LUT / {} FF, lint clean: {}",
        design.compiled.folding.phases.len(),
        design.resources.total.dsp,
        design.resources.total.lut,
        design.resources.total.ff,
        design.lint.is_clean()
    );
    Ok(())
}
