//! Design-space exploration: the paper's motivating workflow — "FPGAs are
//! fast and power-efficient enough to accelerate the time-consuming NN
//! training, at the same time [they] possess the reconfigurability to
//! enable the designers to explore the space of NN models and topologies".
//!
//! This example sweeps (a) candidate network topologies for a digit task
//! and (b) resource budgets, reporting latency / energy / resources for
//! each point so a developer can pick the knee.
//!
//! ```sh
//! cargo run --release --example design_space_exploration
//! ```

use deepburning::baselines::mlp4;
use deepburning::compiler::CompilerConfig;
use deepburning::core::{generate, generate_with_config, Budget};
use deepburning::model::{
    Activation, ConvParam, FullParam, Layer, LayerKind, Network, PoolMethod, PoolParam,
};
use deepburning::sim::{inference_energy, simulate_timing, EnergyParams, TimingParams};

fn candidate(conv_maps: usize, hidden: usize) -> Network {
    Network::from_layers(
        format!("cand_c{conv_maps}_h{hidden}"),
        vec![
            Layer::input("data", "data", 1, 28, 28),
            Layer::new(
                "conv1",
                LayerKind::Convolution(ConvParam::new(conv_maps, 5, 1)),
                "data",
                "conv1",
            ),
            Layer::new(
                "pool1",
                LayerKind::Pooling(PoolParam {
                    method: PoolMethod::Max,
                    kernel_size: 2,
                    stride: 2,
                }),
                "conv1",
                "pool1",
            ),
            Layer::new(
                "ip1",
                LayerKind::FullConnection(FullParam::dense(hidden)),
                "pool1",
                "ip1",
            ),
            Layer::new(
                "sig",
                LayerKind::Activation(Activation::Sigmoid),
                "ip1",
                "ip1",
            ),
            Layer::new(
                "ip2",
                LayerKind::FullConnection(FullParam::dense(10)),
                "ip1",
                "ip2",
            ),
        ],
    )
    .expect("candidate topology is well-formed")
}

fn report(net: &Network) -> Result<(), Box<dyn std::error::Error>> {
    let design = generate(net, &Budget::Medium)?;
    let timing = simulate_timing(&design.compiled, &TimingParams::default());
    let energy = inference_energy(&design, &timing, &EnergyParams::default());
    println!(
        "  {:<16} {:>6} lanes  {:>8.3} ms  {:>9.1} uJ  {:>5} DSP  {:>7} LUT",
        net.name(),
        design.config.lanes,
        timing.seconds(design.clock_hz()) * 1e3,
        energy.total_j * 1e6,
        design.resources.total.dsp,
        design.resources.total.lut,
    );
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== topology sweep (medium budget) ==");
    for conv_maps in [8usize, 20, 32] {
        for hidden in [50usize, 100, 200] {
            report(&candidate(conv_maps, hidden))?;
        }
    }
    // A pure-MLP candidate for comparison.
    report(&mlp4("cand_mlp", 784, 128, 64, 10, Activation::Sigmoid))?;

    println!("\n== budget sweep for the 20/100 candidate ==");
    let net = candidate(20, 100);
    for budget in [Budget::Small, Budget::Medium, Budget::Large] {
        let design = generate(&net, &budget)?;
        let timing = simulate_timing(&design.compiled, &TimingParams::default());
        println!(
            "  {:<5} on {:<10} {:>6} lanes  {:>8.3} ms  fits: {}",
            budget.tag(),
            budget.device().name,
            design.config.lanes,
            timing.seconds(design.clock_hz()) * 1e3,
            design.fits.0,
        );
    }

    println!("\n== lane sweep under an explicit constraint (generate_with_config) ==");
    for lanes in [8u32, 32, 128] {
        let cfg = CompilerConfig {
            lanes,
            ..CompilerConfig::default()
        };
        let design = generate_with_config(&net, &Budget::Medium, &cfg)?;
        let timing = simulate_timing(&design.compiled, &TimingParams::default());
        println!(
            "  {lanes:>4} lanes: {:>5} phases, {:>8.3} ms",
            design.compiled.folding.phases.len(),
            timing.seconds(design.clock_hz()) * 1e3,
        );
    }
    Ok(())
}
