//! The DeepBurning command-line tool: the paper's "one-click" flow from a
//! descriptive script to a burnable accelerator.
//!
//! ```text
//! deepburning report   <script.prototxt>
//! deepburning generate <script.prototxt> [--budget small|medium|large] [--out DIR]
//! deepburning simulate <script.prototxt> [--budget small|medium|large]
//! ```

use deepburning::core::{generate, verify_design_control_path, Budget};
use deepburning::model::{decompose, network_stats, parse_network, Network};
use deepburning::sim::{inference_energy, simulate_timing, EnergyParams, TimingParams};
use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

struct Args {
    command: String,
    script: PathBuf,
    budget: Budget,
    out: PathBuf,
    json: bool,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: deepburning <report|generate|simulate|verify> <script.prototxt> \
         [--budget small|medium|large] [--out DIR] [--json]"
    );
    ExitCode::FAILURE
}

fn parse_args() -> Result<Args, ExitCode> {
    let mut argv = std::env::args().skip(1);
    let command = argv.next().ok_or_else(usage)?;
    let script = PathBuf::from(argv.next().ok_or_else(usage)?);
    let mut budget = Budget::Medium;
    let mut out = PathBuf::from("deepburning-out");
    let mut json = false;
    while let Some(flag) = argv.next() {
        match flag.as_str() {
            "--json" => json = true,
            "--budget" => {
                budget = match argv.next().as_deref() {
                    Some("small") => Budget::Small,
                    Some("medium") => Budget::Medium,
                    Some("large") => Budget::Large,
                    other => {
                        eprintln!("unknown budget {other:?}");
                        return Err(ExitCode::FAILURE);
                    }
                };
            }
            "--out" => {
                out = PathBuf::from(argv.next().ok_or_else(usage)?);
            }
            other => {
                eprintln!("unknown flag `{other}`");
                return Err(usage());
            }
        }
    }
    Ok(Args {
        command,
        script,
        budget,
        out,
        json,
    })
}

fn load(script: &Path) -> Result<Network, ExitCode> {
    let src = fs::read_to_string(script).map_err(|e| {
        eprintln!("cannot read {}: {e}", script.display());
        ExitCode::FAILURE
    })?;
    parse_network(&src).map_err(|e| {
        eprintln!("{}: {e}", script.display());
        ExitCode::FAILURE
    })
}

fn cmd_report(net: &Network) -> ExitCode {
    println!("{net}");
    let stats = network_stats(net).expect("validated network");
    println!(
        "totals: {} MACs, {} aux ops, {} LUT ops, {} weights",
        stats.total.macs, stats.total.aux_ops, stats.total.lut_ops, stats.total.weights
    );
    let d = decompose(net);
    let flags: Vec<String> = deepburning::model::Decomposition::CATEGORIES
        .iter()
        .zip(d.as_flags())
        .filter(|(_, f)| *f)
        .map(|(n, _)| n.to_string())
        .collect();
    println!("uses: {}", flags.join(", "));
    if d.recurrent {
        println!("contains recurrent paths");
    }
    ExitCode::SUCCESS
}

fn cmd_generate(net: &Network, budget: &Budget, out: &Path) -> ExitCode {
    let design = match generate(net, budget) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("generation failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = fs::create_dir_all(out) {
        eprintln!("cannot create {}: {e}", out.display());
        return ExitCode::FAILURE;
    }
    let rtl = out.join(format!("{}.v", design.network));
    if fs::write(&rtl, &design.verilog).is_err() {
        eprintln!("cannot write {}", rtl.display());
        return ExitCode::FAILURE;
    }
    for (tag, image) in &design.compiled.luts {
        let path = out.join(format!("lut_{}.hex", tag.replace(':', "_")));
        let mut body = String::new();
        for (k, v) in image.keys().iter().zip(image.values()) {
            body.push_str(&format!("{:04x} {:04x}\n", k.raw() as u16, v.raw() as u16));
        }
        let _ = fs::write(path, body);
    }
    let mut report = String::new();
    let _ = writeln!(report, "network: {}", design.network);
    let _ = writeln!(
        report,
        "budget: {} on {}",
        design.budget.tag(),
        design.budget.device().name
    );
    let _ = writeln!(report, "lanes: {}", design.config.lanes);
    let _ = writeln!(report, "phases: {}", design.compiled.folding.phases.len());
    let _ = writeln!(
        report,
        "resources: dsp={} lut={} ff={} bram_bits={}",
        design.resources.total.dsp,
        design.resources.total.lut,
        design.resources.total.ff,
        design.resources.total.bram_bits
    );
    let _ = writeln!(
        report,
        "fits: {} (utilisation {:.2})",
        design.fits.0, design.fits.1
    );
    for (name, cost) in &design.resources.items {
        let _ = writeln!(
            report,
            "  {name}: dsp={} lut={} ff={}",
            cost.dsp, cost.lut, cost.ff
        );
    }
    let _ = fs::write(out.join("report.txt"), report);
    println!(
        "wrote {} (+ LUT images, report.txt) — lint clean: {}",
        rtl.display(),
        design.lint.is_clean()
    );
    ExitCode::SUCCESS
}

fn cmd_simulate(net: &Network, budget: &Budget, json: bool) -> ExitCode {
    let design = match generate(net, budget) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("generation failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let timing = simulate_timing(&design.compiled, &TimingParams::default());
    let energy = inference_energy(&design, &timing, &EnergyParams::default());
    if json {
        // Hand-rolled JSON keeps the dependency set minimal.
        println!("{{");
        println!("  \"network\": \"{}\",", design.network);
        println!("  \"budget\": \"{}\",", design.budget.tag());
        println!("  \"device\": \"{}\",", design.budget.device().name);
        println!("  \"lanes\": {},", design.config.lanes);
        println!("  \"phases\": {},", design.compiled.folding.phases.len());
        println!("  \"cycles\": {},", timing.total_cycles);
        println!("  \"seconds\": {:.9},", timing.seconds(design.clock_hz()));
        println!("  \"energy_j\": {:.9},", energy.total_j);
        println!("  \"average_power_w\": {:.4},", energy.average_power_w);
        println!(
            "  \"resources\": {{ \"dsp\": {}, \"lut\": {}, \"ff\": {}, \"bram_bits\": {} }},",
            design.resources.total.dsp,
            design.resources.total.lut,
            design.resources.total.ff,
            design.resources.total.bram_bits
        );
        println!("  \"fits\": {}", design.fits.0);
        println!("}}");
        return ExitCode::SUCCESS;
    }
    println!(
        "{} on {} ({}): {} lanes, {} phases",
        design.network,
        design.budget.device().name,
        design.budget.tag(),
        design.config.lanes,
        design.compiled.folding.phases.len()
    );
    println!(
        "forward propagation: {} cycles = {:.6} s at {} MHz",
        timing.total_cycles,
        timing.seconds(design.clock_hz()),
        design.clock_hz() / 1_000_000
    );
    println!(
        "energy: {:.3} mJ total ({:.3} compute / {:.3} buffer / {:.3} dram / {:.3} static)",
        energy.total_j * 1e3,
        energy.compute_j * 1e3,
        energy.buffer_j * 1e3,
        energy.dram_j * 1e3,
        energy.static_j * 1e3
    );
    println!("average power: {:.2} W", energy.average_power_w);
    ExitCode::SUCCESS
}

fn cmd_verify(net: &Network, budget: &Budget) -> ExitCode {
    let design = match generate(net, budget) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("generation failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("lint: clean");
    match verify_design_control_path(&design) {
        Ok(()) => {
            println!(
                "RTL verification: AGUs and coordinator match the compiler models \
                 ({} phases, {} lanes)",
                design.compiled.folding.phases.len(),
                design.config.lanes
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("RTL verification FAILED: {e}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(code) => return code,
    };
    let net = match load(&args.script) {
        Ok(n) => n,
        Err(code) => return code,
    };
    match args.command.as_str() {
        "report" => cmd_report(&net),
        "generate" => cmd_generate(&net, &args.budget, &args.out),
        "simulate" => cmd_simulate(&net, &args.budget, args.json),
        "verify" => cmd_verify(&net, &args.budget),
        other => {
            eprintln!("unknown command `{other}`");
            usage()
        }
    }
}
