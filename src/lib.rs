//! # DeepBurning
//!
//! Facade crate re-exporting the full DeepBurning workspace: automatic
//! generation of FPGA-based learning accelerators for the neural network
//! family (reproduction of Wang et al., DAC 2016).
//!
//! See the individual crates for details:
//! - [`model`] — network IR and prototxt parser
//! - [`fixed`] — fixed-point arithmetic and Approx LUT math
//! - [`tensor`] — f32 reference engine, training, synthetic datasets
//! - [`verilog`] — Verilog AST/emitter/lint
//! - [`components`] — the building-block library
//! - [`compiler`] — folding, tiling, AGU and control-flow synthesis
//! - [`core`] — NN-Gen, the accelerator generator
//! - [`lint`] — static netlist analyzer (pass pipeline, range proofs)
//! - [`sim`] — timing/energy and functional simulators
//! - [`baselines`] — benchmark zoo, Custom designs, CPU model

pub use deepburning_baselines as baselines;
pub use deepburning_compiler as compiler;
pub use deepburning_components as components;
pub use deepburning_core as core;
pub use deepburning_fixed as fixed;
pub use deepburning_lint as lint;
pub use deepburning_model as model;
pub use deepburning_sim as sim;
pub use deepburning_tensor as tensor;
pub use deepburning_verilog as verilog;
