//! Verilog AST, emitter and structural lint for the DeepBurning RTL
//! generator.
//!
//! NN-Gen assembles accelerators as structural netlists of parameterised
//! building blocks plus behavioural FSMs. This crate provides the
//! representation ([`VModule`], [`Design`]), a Verilog-2001 pretty-printer
//! ([`emit_design`]) and a structural checker ([`lint_design`]) standing in
//! for the paper's Vivado RTL verification step.
//!
//! # Examples
//!
//! ```
//! use deepburning_verilog::{Design, Expr, Item, Port, VModule, emit_design, lint_design};
//!
//! let mut m = VModule::new("invert");
//! m.port(Port::input("a", 1)).port(Port::output("y", 1));
//! m.item(Item::Assign {
//!     lhs: Expr::id("y"),
//!     rhs: Expr::Unary(deepburning_verilog::UnaryOp::Not, Box::new(Expr::id("a"))),
//! });
//! let design = Design::new(m);
//! assert!(lint_design(&design).is_clean());
//! assert!(emit_design(&design).contains("module invert"));
//! ```

mod ast;
mod compile;
mod emit;
mod flight;
mod interp;
mod lint;
mod partition;
mod testbench;
mod vcd;

pub use ast::{
    BinaryOp, Design, Expr, Item, NetDecl, NetKind, Port, PortDir, Sensitivity, Stmt, UnaryOp,
    VModule,
};
pub use compile::interfere::{
    interference_check, InterferenceReport, InterferenceRule, InterferenceViolation,
};
pub use compile::{find_comb_cycle, CompiledSim, ParallelSim, SimEngine};
pub use emit::{emit_design, emit_expr, emit_module};
pub use flight::{FlightRecorder, FlightWindow};
pub use interp::{InterpStats, Interpreter, SimulateError, Simulator};
pub use lint::{lint_design, LintIssue, LintReport, Severity};
pub use partition::{ParStats, PartitionPlan, Region, RegionStats, SimThreads};
pub use testbench::{emit_testbench, TestbenchOptions};
pub use vcd::VcdRecorder;

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// A random chain of pass-through modules must emit and lint clean.
    fn chain_design(stages: usize, width: u32) -> Design {
        let mut leaf = VModule::new("stage");
        leaf.port(Port::input("d", width))
            .port(Port::output("q", width));
        leaf.item(Item::Assign {
            lhs: Expr::id("q"),
            rhs: Expr::id("d"),
        });

        let mut top = VModule::new("chain");
        top.port(Port::input("din", width))
            .port(Port::output("dout", width));
        let mut prev = "din".to_string();
        for i in 0..stages {
            let net = format!("n{i}");
            top.item(Item::Net(NetDecl::wire(&net, width)));
            top.item(Item::Instance {
                module: "stage".into(),
                name: format!("u{i}"),
                params: vec![],
                connections: vec![
                    ("d".into(), Expr::id(prev.clone())),
                    ("q".into(), Expr::id(net.clone())),
                ],
            });
            prev = net;
        }
        top.item(Item::Assign {
            lhs: Expr::id("dout"),
            rhs: Expr::id(prev),
        });
        let mut d = Design::new(top);
        d.add_module(leaf);
        d
    }

    proptest! {
        #[test]
        fn generated_chains_lint_clean(stages in 1usize..12, width in 1u32..64) {
            let d = chain_design(stages, width);
            let report = lint_design(&d);
            prop_assert!(report.is_clean(), "{report}");
        }

        #[test]
        fn emitted_text_is_balanced(stages in 1usize..8, width in 1u32..32) {
            let d = chain_design(stages, width);
            let text = emit_design(&d);
            prop_assert_eq!(text.matches("module ").count(), 2);
            prop_assert_eq!(text.matches("endmodule").count(), 2);
            // Balanced parens overall.
            let opens = text.matches('(').count();
            let closes = text.matches(')').count();
            prop_assert_eq!(opens, closes);
        }

        #[test]
        fn literal_emission_roundtrips(width in 1u32..32, value in 0u64..1000) {
            let text = emit_expr(&Expr::lit(width, value));
            prop_assert_eq!(text, format!("{width}'d{value}"));
        }
    }
}
