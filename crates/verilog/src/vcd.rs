//! VCD (Value Change Dump) waveform recording for the interpreter.
//!
//! The paper verifies generated accelerators by inspecting Vivado
//! simulation waveforms; this module is the reproduction's equivalent —
//! attach a recorder to an [`Interpreter`](crate::Interpreter) with
//! [`Interpreter::vcd_begin`](crate::Interpreter::vcd_begin) and every
//! subsequent clock edge is captured as one VCD timestep. The dump is
//! loadable in GTKWave / Surfer and in Perfetto's VCD importer.
//!
//! Scalar signals (wires and registers up to 64 bits) are dumped;
//! memories are skipped — their word traffic shows up on the address/data
//! buses anyway. Hierarchical names (`u0.count`) become nested `$scope`
//! blocks, mirroring the pre-flattening module tree.
//!
//! The recorder writes *through a sink* rather than accumulating the
//! whole document: the header is emitted at construction (it depends only
//! on the signal list) and each sample appends its delta immediately.
//! With the default in-memory sink this renders the same bytes as the old
//! accumulate-then-render design; with a streaming sink
//! ([`VcdRecorder::streaming`]) a GoogleNet-scale run (~1.4e8 cycles) can
//! dump its waveform to disk at constant resident memory.

use std::fmt::Write as _;
use std::io;

/// One dumped variable.
#[derive(Debug, Clone)]
struct VcdVar {
    /// Flattened hierarchical name (dot-separated).
    name: String,
    width: u32,
    /// Short printable id code.
    code: String,
}

/// Where sampled deltas go: the convenience in-memory buffer (collected
/// by [`VcdRecorder::finish`]) or any [`io::Write`] for bounded-memory
/// streaming.
enum VcdSink {
    Buffer(String),
    Stream(Box<dyn io::Write + Send>),
}

/// Captures signal values cycle by cycle and writes a VCD document
/// through its sink.
pub struct VcdRecorder {
    timescale_ns: u64,
    vars: Vec<VcdVar>,
    last: Vec<Option<u64>>,
    sink: VcdSink,
    /// Reused per-sample change buffer so steady-state sampling does not
    /// allocate.
    scratch: String,
    timesteps: u64,
    bytes_written: u64,
    write_error: bool,
}

impl std::fmt::Debug for VcdRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VcdRecorder")
            .field("vars", &self.vars.len())
            .field("timesteps", &self.timesteps)
            .field("bytes_written", &self.bytes_written)
            .field(
                "sink",
                &match self.sink {
                    VcdSink::Buffer(_) => "buffer",
                    VcdSink::Stream(_) => "stream",
                },
            )
            .finish()
    }
}

/// Encodes an index as a printable VCD id code (base-94 over `!`..`~`).
fn id_code(mut index: usize) -> String {
    let mut code = String::new();
    loop {
        code.push((33 + (index % 94) as u8) as char);
        index /= 94;
        if index == 0 {
            break;
        }
    }
    code
}

fn value_change(var: &VcdVar, value: u64, out: &mut String) {
    if var.width == 1 {
        let _ = writeln!(out, "{}{}", value & 1, var.code);
    } else {
        let _ = write!(out, "b");
        for bit in (0..var.width).rev() {
            let _ = write!(out, "{}", (value >> bit) & 1);
        }
        let _ = writeln!(out, " {}", var.code);
    }
}

/// Renders the VCD header: date/version/timescale and the `$scope` tree
/// derived from the dotted signal names. Depends only on the signal list,
/// which is why the recorder can emit it up front and stream the body.
fn render_header(top: &str, vars: &[VcdVar]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "$date deepburning run $end");
    let _ = writeln!(out, "$version deepburning-verilog interpreter $end");
    let _ = writeln!(out, "$timescale 1 ns $end");
    // Build the scope tree from dotted names, emitting variables at
    // their owning scope. Walk in sorted-by-prefix order so each scope
    // opens once.
    let mut order: Vec<usize> = (0..vars.len()).collect();
    order.sort_by(|&a, &b| {
        let pa: Vec<&str> = vars[a].name.split('.').collect();
        let pb: Vec<&str> = vars[b].name.split('.').collect();
        (pa[..pa.len() - 1].to_vec(), pa.len(), vars[a].name.as_str()).cmp(&(
            pb[..pb.len() - 1].to_vec(),
            pb.len(),
            vars[b].name.as_str(),
        ))
    });
    let _ = writeln!(out, "$scope module {top} $end");
    let mut open: Vec<String> = Vec::new();
    for &i in &order {
        let var = &vars[i];
        let parts: Vec<&str> = var.name.split('.').collect();
        let scopes = &parts[..parts.len() - 1];
        let leaf = parts[parts.len() - 1];
        // Close scopes no longer on the path.
        let common = open
            .iter()
            .zip(scopes)
            .take_while(|(a, b)| a.as_str() == **b)
            .count();
        for _ in common..open.len() {
            let _ = writeln!(out, "$upscope $end");
            open.pop();
        }
        for scope in &scopes[common..] {
            let _ = writeln!(out, "$scope module {scope} $end");
            open.push((*scope).to_string());
        }
        let _ = writeln!(out, "$var wire {} {} {} $end", var.width, var.code, leaf);
    }
    for _ in 0..open.len() {
        let _ = writeln!(out, "$upscope $end");
    }
    let _ = writeln!(out, "$upscope $end");
    let _ = writeln!(out, "$enddefinitions $end");
    out
}

impl VcdRecorder {
    fn build(
        top: &str,
        signals: &[(String, u32)],
        timescale_ns: u64,
        sink: VcdSink,
    ) -> VcdRecorder {
        let vars: Vec<VcdVar> = signals
            .iter()
            .enumerate()
            .map(|(i, (name, width))| VcdVar {
                name: name.clone(),
                width: *width,
                code: id_code(i),
            })
            .collect();
        let mut rec = VcdRecorder {
            timescale_ns: timescale_ns.max(1),
            last: vec![None; vars.len()],
            vars,
            sink,
            scratch: String::new(),
            timesteps: 0,
            bytes_written: 0,
            write_error: false,
        };
        let header = render_header(top, &rec.vars);
        rec.emit(&header);
        rec
    }

    /// Creates a recorder dumping into an in-memory buffer (collected by
    /// [`VcdRecorder::finish`]). `timescale_ns` is the duration of one
    /// interpreter cycle (10 ns at the paper's 100 MHz).
    pub(crate) fn new(top: &str, signals: &[(String, u32)], timescale_ns: u64) -> VcdRecorder {
        VcdRecorder::build(top, signals, timescale_ns, VcdSink::Buffer(String::new()))
    }

    /// Creates a recorder streaming into `sink`. Writes happen
    /// incrementally — one header at construction, then one small chunk
    /// per sampled timestep — so resident memory is independent of run
    /// length. Write failures are best-effort: the first error stops
    /// further output and is reported by [`VcdRecorder::write_error`].
    pub(crate) fn streaming(
        top: &str,
        signals: &[(String, u32)],
        timescale_ns: u64,
        sink: Box<dyn io::Write + Send>,
    ) -> VcdRecorder {
        VcdRecorder::build(top, signals, timescale_ns, VcdSink::Stream(sink))
    }

    fn emit(&mut self, text: &str) {
        if self.write_error {
            return;
        }
        match &mut self.sink {
            VcdSink::Buffer(buf) => buf.push_str(text),
            VcdSink::Stream(w) => {
                if w.write_all(text.as_bytes()).is_err() {
                    self.write_error = true;
                    return;
                }
            }
        }
        self.bytes_written += text.len() as u64;
    }

    /// Records one timestep. `values` must parallel the signal list the
    /// recorder was created with; only changed values are dumped.
    pub(crate) fn sample(&mut self, values: &[u64]) {
        let mut changes = std::mem::take(&mut self.scratch);
        changes.clear();
        for ((var, last), value) in self.vars.iter().zip(&mut self.last).zip(values) {
            if *last != Some(*value) {
                value_change(var, *value, &mut changes);
                *last = Some(*value);
            }
        }
        if self.timesteps == 0 {
            // First sample is the $dumpvars block at #0.
            self.emit("#0\n$dumpvars\n");
            self.emit(&changes);
            self.emit("$end\n");
        } else if !changes.is_empty() {
            let step = format!("#{}\n", self.timesteps * self.timescale_ns);
            self.emit(&step);
            self.emit(&changes);
        }
        self.scratch = changes;
        self.timesteps += 1;
    }

    /// Number of timesteps recorded so far (including the initial dump).
    pub fn timesteps(&self) -> u64 {
        self.timesteps
    }

    /// Total bytes pushed through the sink (header plus all deltas).
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// True once a streaming sink has failed a write; output stops at the
    /// first error, the run itself continues.
    pub fn write_error(&self) -> bool {
        self.write_error
    }

    /// Finalises the recording. Buffered recorders return the complete
    /// VCD document; streaming recorders flush their sink and return
    /// `None` — the document already lives wherever the sink wrote it.
    pub fn finish(self) -> Option<String> {
        match self.sink {
            VcdSink::Buffer(buf) => Some(buf),
            VcdSink::Stream(mut w) => {
                let _ = w.flush();
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_codes_unique_and_printable() {
        let mut seen = std::collections::BTreeSet::new();
        for i in 0..500 {
            let code = id_code(i);
            assert!(code.bytes().all(|b| (33..=126).contains(&b)), "{code:?}");
            assert!(seen.insert(code));
        }
    }

    fn signals() -> Vec<(String, u32)> {
        vec![
            ("clk".into(), 1),
            ("u0.count".into(), 4),
            ("u0.q".into(), 4),
        ]
    }

    #[test]
    fn header_and_changes() {
        let mut r = VcdRecorder::new("top", &signals(), 10);
        r.sample(&[0, 0, 0]);
        r.sample(&[1, 3, 3]);
        r.sample(&[1, 3, 3]); // no change: no timestep body emitted
        assert_eq!(r.timesteps(), 3);
        let text = r.finish().expect("buffered recorder returns text");
        assert!(text.contains("$timescale 1 ns $end"), "{text}");
        assert!(text.contains("$scope module top $end"), "{text}");
        assert!(text.contains("$scope module u0 $end"), "{text}");
        assert!(text.contains("$enddefinitions $end"), "{text}");
        assert!(text.contains("$dumpvars"), "{text}");
        assert!(text.contains("#10"), "{text}");
        assert!(!text.contains("#20"), "unchanged step dumped: {text}");
        assert!(text.contains("b0011 "), "{text}");
    }

    /// The streaming sink receives byte-for-byte what the buffered sink
    /// accumulates: same header, same deltas, same order.
    #[test]
    fn streamed_bytes_match_buffered_text() {
        use std::sync::{Arc, Mutex};

        #[derive(Clone)]
        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl io::Write for Shared {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }

        let samples: [[u64; 3]; 4] = [[0, 0, 0], [1, 5, 2], [0, 5, 2], [1, 6, 2]];
        let mut buffered = VcdRecorder::new("top", &signals(), 10);
        let captured = Shared(Arc::new(Mutex::new(Vec::new())));
        let mut streamed =
            VcdRecorder::streaming("top", &signals(), 10, Box::new(captured.clone()));
        for s in &samples {
            buffered.sample(s);
            streamed.sample(s);
        }
        let text = buffered.finish().expect("buffered text");
        assert_eq!(streamed.bytes_written(), text.len() as u64);
        assert!(!streamed.write_error());
        assert!(streamed.finish().is_none(), "streaming returns no text");
        let bytes = captured.0.lock().unwrap().clone();
        assert_eq!(String::from_utf8(bytes).expect("utf8"), text);
    }

    /// A failing sink stops output without panicking and flags the error.
    #[test]
    fn sink_errors_are_best_effort() {
        struct Broken;
        impl io::Write for Broken {
            fn write(&mut self, _buf: &[u8]) -> io::Result<usize> {
                Err(io::Error::other("disk full"))
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut r = VcdRecorder::streaming("top", &signals(), 10, Box::new(Broken));
        assert!(r.write_error(), "header write fails immediately");
        let before = r.bytes_written();
        r.sample(&[1, 2, 3]);
        r.sample(&[0, 2, 3]);
        assert_eq!(r.timesteps(), 2, "sampling continues despite the sink");
        assert_eq!(r.bytes_written(), before);
        assert!(r.finish().is_none());
    }
}
