//! VCD (Value Change Dump) waveform recording for the interpreter.
//!
//! The paper verifies generated accelerators by inspecting Vivado
//! simulation waveforms; this module is the reproduction's equivalent —
//! attach a recorder to an [`Interpreter`](crate::Interpreter) with
//! [`Interpreter::vcd_begin`](crate::Interpreter::vcd_begin) and every
//! subsequent clock edge is captured as one VCD timestep. The dump is
//! loadable in GTKWave / Surfer and in Perfetto's VCD importer.
//!
//! Scalar signals (wires and registers up to 64 bits) are dumped;
//! memories are skipped — their word traffic shows up on the address/data
//! buses anyway. Hierarchical names (`u0.count`) become nested `$scope`
//! blocks, mirroring the pre-flattening module tree.

use std::fmt::Write as _;

/// One dumped variable.
#[derive(Debug, Clone)]
struct VcdVar {
    /// Flattened hierarchical name (dot-separated).
    name: String,
    width: u32,
    /// Short printable id code.
    code: String,
}

/// Captures signal values cycle by cycle and renders a VCD document.
#[derive(Debug, Clone)]
pub struct VcdRecorder {
    top: String,
    timescale_ns: u64,
    vars: Vec<VcdVar>,
    last: Vec<Option<u64>>,
    body: String,
    timesteps: u64,
}

/// Encodes an index as a printable VCD id code (base-94 over `!`..`~`).
fn id_code(mut index: usize) -> String {
    let mut code = String::new();
    loop {
        code.push((33 + (index % 94) as u8) as char);
        index /= 94;
        if index == 0 {
            break;
        }
    }
    code
}

fn value_change(var: &VcdVar, value: u64, out: &mut String) {
    if var.width == 1 {
        let _ = writeln!(out, "{}{}", value & 1, var.code);
    } else {
        let _ = write!(out, "b");
        for bit in (0..var.width).rev() {
            let _ = write!(out, "{}", (value >> bit) & 1);
        }
        let _ = writeln!(out, " {}", var.code);
    }
}

impl VcdRecorder {
    /// Creates a recorder for the named signal list. `timescale_ns` is the
    /// duration of one interpreter cycle (10 ns at the paper's 100 MHz).
    pub(crate) fn new(top: &str, signals: &[(String, u32)], timescale_ns: u64) -> VcdRecorder {
        let vars: Vec<VcdVar> = signals
            .iter()
            .enumerate()
            .map(|(i, (name, width))| VcdVar {
                name: name.clone(),
                width: *width,
                code: id_code(i),
            })
            .collect();
        VcdRecorder {
            top: top.to_string(),
            timescale_ns: timescale_ns.max(1),
            last: vec![None; vars.len()],
            vars,
            body: String::new(),
            timesteps: 0,
        }
    }

    /// Records one timestep. `values` must parallel the signal list the
    /// recorder was created with; only changed values are dumped.
    pub(crate) fn sample(&mut self, values: &[u64]) {
        let mut changes = String::new();
        for ((var, last), value) in self.vars.iter().zip(&mut self.last).zip(values) {
            if *last != Some(*value) {
                value_change(var, *value, &mut changes);
                *last = Some(*value);
            }
        }
        if self.timesteps == 0 {
            // First sample is the $dumpvars block at #0.
            let _ = writeln!(self.body, "#0");
            let _ = writeln!(self.body, "$dumpvars");
            self.body.push_str(&changes);
            let _ = writeln!(self.body, "$end");
        } else if !changes.is_empty() {
            let _ = writeln!(self.body, "#{}", self.timesteps * self.timescale_ns);
            self.body.push_str(&changes);
        }
        self.timesteps += 1;
    }

    /// Number of timesteps recorded so far (including the initial dump).
    pub fn timesteps(&self) -> u64 {
        self.timesteps
    }

    /// Renders the complete VCD document.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "$date deepburning run $end");
        let _ = writeln!(out, "$version deepburning-verilog interpreter $end");
        let _ = writeln!(out, "$timescale 1 ns $end");
        // Build the scope tree from dotted names, emitting variables at
        // their owning scope. Walk in sorted-by-prefix order so each scope
        // opens once.
        let mut order: Vec<usize> = (0..self.vars.len()).collect();
        order.sort_by(|&a, &b| {
            let pa: Vec<&str> = self.vars[a].name.split('.').collect();
            let pb: Vec<&str> = self.vars[b].name.split('.').collect();
            (
                pa[..pa.len() - 1].to_vec(),
                pa.len(),
                self.vars[a].name.as_str(),
            )
                .cmp(&(
                    pb[..pb.len() - 1].to_vec(),
                    pb.len(),
                    self.vars[b].name.as_str(),
                ))
        });
        let _ = writeln!(out, "$scope module {} $end", self.top);
        let mut open: Vec<String> = Vec::new();
        for &i in &order {
            let var = &self.vars[i];
            let parts: Vec<&str> = var.name.split('.').collect();
            let scopes = &parts[..parts.len() - 1];
            let leaf = parts[parts.len() - 1];
            // Close scopes no longer on the path.
            let common = open
                .iter()
                .zip(scopes)
                .take_while(|(a, b)| a.as_str() == **b)
                .count();
            for _ in common..open.len() {
                let _ = writeln!(out, "$upscope $end");
                open.pop();
            }
            for scope in &scopes[common..] {
                let _ = writeln!(out, "$scope module {scope} $end");
                open.push((*scope).to_string());
            }
            let _ = writeln!(out, "$var wire {} {} {} $end", var.width, var.code, leaf);
        }
        for _ in 0..open.len() {
            let _ = writeln!(out, "$upscope $end");
        }
        let _ = writeln!(out, "$upscope $end");
        let _ = writeln!(out, "$enddefinitions $end");
        out.push_str(&self.body);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_codes_unique_and_printable() {
        let mut seen = std::collections::BTreeSet::new();
        for i in 0..500 {
            let code = id_code(i);
            assert!(code.bytes().all(|b| (33..=126).contains(&b)), "{code:?}");
            assert!(seen.insert(code));
        }
    }

    #[test]
    fn header_and_changes() {
        let mut r = VcdRecorder::new(
            "top",
            &[
                ("clk".into(), 1),
                ("u0.count".into(), 4),
                ("u0.q".into(), 4),
            ],
            10,
        );
        r.sample(&[0, 0, 0]);
        r.sample(&[1, 3, 3]);
        r.sample(&[1, 3, 3]); // no change: no timestep body emitted
        let text = r.render();
        assert!(text.contains("$timescale 1 ns $end"), "{text}");
        assert!(text.contains("$scope module top $end"), "{text}");
        assert!(text.contains("$scope module u0 $end"), "{text}");
        assert!(text.contains("$enddefinitions $end"), "{text}");
        assert!(text.contains("$dumpvars"), "{text}");
        assert!(text.contains("#10"), "{text}");
        assert!(!text.contains("#20"), "unchanged step dumped: {text}");
        assert!(text.contains("b0011 "), "{text}");
        assert_eq!(r.timesteps(), 3);
    }
}
