//! A compact Verilog-2001 AST sufficient for the netlists NN-Gen emits:
//! structural instances, continuous assigns, clocked always blocks, memories
//! and parameterised modules.

use std::fmt;

/// Direction of a module port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PortDir {
    /// Driven from outside.
    Input,
    /// Driven by the module.
    Output,
}

/// A module port declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Port {
    /// Port name.
    pub name: String,
    /// Direction.
    pub dir: PortDir,
    /// Bit width (1 for scalars).
    pub width: u32,
    /// Declared `signed`.
    pub signed: bool,
}

impl Port {
    /// An unsigned input port.
    pub fn input(name: impl Into<String>, width: u32) -> Self {
        Port {
            name: name.into(),
            dir: PortDir::Input,
            width,
            signed: false,
        }
    }

    /// An unsigned output port.
    pub fn output(name: impl Into<String>, width: u32) -> Self {
        Port {
            name: name.into(),
            dir: PortDir::Output,
            width,
            signed: false,
        }
    }

    /// Returns a signed copy of this port.
    pub fn as_signed(mut self) -> Self {
        self.signed = true;
        self
    }
}

/// Net class of an internal declaration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NetKind {
    /// Continuous-assignment net.
    Wire,
    /// Procedural register.
    Reg,
}

/// An internal net/register declaration, optionally a memory array.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetDecl {
    /// Net name.
    pub name: String,
    /// `wire` or `reg`.
    pub kind: NetKind,
    /// Bit width.
    pub width: u32,
    /// Declared `signed`.
    pub signed: bool,
    /// `Some(depth)` declares a memory `[0:depth-1]`.
    pub depth: Option<usize>,
}

impl NetDecl {
    /// A scalar or vector wire.
    pub fn wire(name: impl Into<String>, width: u32) -> Self {
        NetDecl {
            name: name.into(),
            kind: NetKind::Wire,
            width,
            signed: false,
            depth: None,
        }
    }

    /// A scalar or vector reg.
    pub fn reg(name: impl Into<String>, width: u32) -> Self {
        NetDecl {
            name: name.into(),
            kind: NetKind::Reg,
            width,
            signed: false,
            depth: None,
        }
    }

    /// A reg memory of `depth` words.
    pub fn memory(name: impl Into<String>, width: u32, depth: usize) -> Self {
        NetDecl {
            name: name.into(),
            kind: NetKind::Reg,
            width,
            signed: false,
            depth: Some(depth),
        }
    }

    /// Returns a signed copy.
    pub fn as_signed(mut self) -> Self {
        self.signed = true;
        self
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnaryOp {
    /// Logical not `!`.
    Not,
    /// Bitwise not `~`.
    BitNot,
    /// Arithmetic negate `-`.
    Neg,
    /// Reduction or `|`.
    RedOr,
    /// Reduction and `&`.
    RedAnd,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinaryOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/` on `$signed` operands (truncating toward zero).
    Div,
    /// `&`
    And,
    /// `|`
    Or,
    /// `^`
    Xor,
    /// `<<`
    Shl,
    /// `>>>` (arithmetic right shift)
    Shr,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<` (unsigned compare on the raw bits)
    Lt,
    /// `<` on `$signed` operands (two's-complement compare)
    Slt,
    /// `>=`
    Ge,
    /// `&&`
    LogAnd,
    /// `||`
    LogOr,
}

impl BinaryOp {
    /// Whether the result is a single-bit flag.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinaryOp::Eq
                | BinaryOp::Ne
                | BinaryOp::Lt
                | BinaryOp::Slt
                | BinaryOp::Ge
                | BinaryOp::LogAnd
                | BinaryOp::LogOr
        )
    }
}

/// A Verilog expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// Identifier reference.
    Id(String),
    /// Sized literal `width'dvalue`.
    Lit {
        /// Bit width of the literal.
        width: u32,
        /// Value (unsigned image of the bits).
        value: u64,
    },
    /// Unary operation.
    Unary(UnaryOp, Box<Expr>),
    /// Binary operation.
    Binary(BinaryOp, Box<Expr>, Box<Expr>),
    /// Ternary `cond ? a : b`.
    Ternary(Box<Expr>, Box<Expr>, Box<Expr>),
    /// Bit/word select `base[index]`.
    Index(Box<Expr>, Box<Expr>),
    /// Part select `base[hi:lo]`.
    Slice(Box<Expr>, u32, u32),
    /// Concatenation `{a, b, ...}`.
    Concat(Vec<Expr>),
}

impl Expr {
    /// Identifier shorthand.
    pub fn id(name: impl Into<String>) -> Expr {
        Expr::Id(name.into())
    }

    /// Sized literal shorthand.
    pub fn lit(width: u32, value: u64) -> Expr {
        Expr::Lit { width, value }
    }

    /// Binary op shorthand.
    pub fn bin(op: BinaryOp, l: Expr, r: Expr) -> Expr {
        Expr::Binary(op, Box::new(l), Box::new(r))
    }

    /// All identifiers referenced by this expression.
    pub fn idents(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_idents(&mut out);
        out
    }

    fn collect_idents<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Expr::Id(n) => out.push(n),
            Expr::Lit { .. } => {}
            Expr::Unary(_, e) => e.collect_idents(out),
            Expr::Binary(_, l, r) => {
                l.collect_idents(out);
                r.collect_idents(out);
            }
            Expr::Ternary(c, a, b) => {
                c.collect_idents(out);
                a.collect_idents(out);
                b.collect_idents(out);
            }
            Expr::Index(b, i) => {
                b.collect_idents(out);
                i.collect_idents(out);
            }
            Expr::Slice(b, _, _) => b.collect_idents(out),
            Expr::Concat(es) => {
                for e in es {
                    e.collect_idents(out);
                }
            }
        }
    }

    /// The identifier at the root of an lvalue (through index/slice).
    pub fn lvalue_root(&self) -> Option<&str> {
        match self {
            Expr::Id(n) => Some(n),
            Expr::Index(b, _) | Expr::Slice(b, _, _) => b.lvalue_root(),
            _ => None,
        }
    }
}

/// A procedural statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    /// Non-blocking assignment `lhs <= rhs;`.
    NonBlocking(Expr, Expr),
    /// Blocking assignment `lhs = rhs;`.
    Blocking(Expr, Expr),
    /// `if (cond) ... else ...`.
    If {
        /// Condition expression.
        cond: Expr,
        /// Then branch.
        then_body: Vec<Stmt>,
        /// Optional else branch.
        else_body: Vec<Stmt>,
    },
    /// `case (subject) arm: ...; default: ...;`.
    Case {
        /// Switch subject.
        subject: Expr,
        /// `(match value, body)` arms.
        arms: Vec<(Expr, Vec<Stmt>)>,
        /// Default body.
        default: Vec<Stmt>,
    },
    /// Free-form comment line.
    Comment(String),
}

impl Stmt {
    /// Identifiers assigned (lvalue roots) anywhere under this statement.
    pub fn assigned_idents(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_assigned(&mut out);
        out
    }

    fn collect_assigned<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Stmt::NonBlocking(lhs, _) | Stmt::Blocking(lhs, _) => {
                if let Some(root) = lhs.lvalue_root() {
                    out.push(root);
                }
            }
            Stmt::If {
                then_body,
                else_body,
                ..
            } => {
                for s in then_body.iter().chain(else_body) {
                    s.collect_assigned(out);
                }
            }
            Stmt::Case { arms, default, .. } => {
                for (_, body) in arms {
                    for s in body {
                        s.collect_assigned(out);
                    }
                }
                for s in default {
                    s.collect_assigned(out);
                }
            }
            Stmt::Comment(_) => {}
        }
    }

    /// Identifiers read anywhere under this statement (rvalues, conditions
    /// and lvalue indices).
    pub fn read_idents(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_read(&mut out);
        out
    }

    fn collect_read<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Stmt::NonBlocking(lhs, rhs) | Stmt::Blocking(lhs, rhs) => {
                // Index expressions on the lvalue are reads.
                if let Expr::Index(_, i) = lhs {
                    i.collect_idents(out);
                }
                rhs.collect_idents(out);
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                cond.collect_idents(out);
                for s in then_body.iter().chain(else_body) {
                    s.collect_read(out);
                }
            }
            Stmt::Case {
                subject,
                arms,
                default,
            } => {
                subject.collect_idents(out);
                for (m, body) in arms {
                    m.collect_idents(out);
                    for s in body {
                        s.collect_read(out);
                    }
                }
                for s in default {
                    s.collect_read(out);
                }
            }
            Stmt::Comment(_) => {}
        }
    }
}

/// Sensitivity of an always block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Sensitivity {
    /// `always @(posedge clk)`.
    PosEdge(String),
    /// `always @(*)`.
    Combinational,
}

/// A module-level item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Item {
    /// Internal net declaration.
    Net(NetDecl),
    /// Continuous assignment.
    Assign {
        /// Target wire (possibly sliced).
        lhs: Expr,
        /// Driving expression.
        rhs: Expr,
    },
    /// Procedural block.
    Always {
        /// Trigger.
        sensitivity: Sensitivity,
        /// Body statements.
        body: Vec<Stmt>,
    },
    /// Module instantiation.
    Instance {
        /// Instantiated module name.
        module: String,
        /// Instance name.
        name: String,
        /// Parameter overrides.
        params: Vec<(String, i64)>,
        /// Named port connections.
        connections: Vec<(String, Expr)>,
    },
    /// Free-form comment.
    Comment(String),
}

/// A Verilog module.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VModule {
    /// Module name.
    pub name: String,
    /// Parameters with defaults.
    pub params: Vec<(String, i64)>,
    /// Ports in declaration order.
    pub ports: Vec<Port>,
    /// Body items.
    pub items: Vec<Item>,
}

impl VModule {
    /// An empty module.
    pub fn new(name: impl Into<String>) -> Self {
        VModule {
            name: name.into(),
            params: Vec::new(),
            ports: Vec::new(),
            items: Vec::new(),
        }
    }

    /// Adds a port.
    pub fn port(&mut self, port: Port) -> &mut Self {
        self.ports.push(port);
        self
    }

    /// Adds an item.
    pub fn item(&mut self, item: Item) -> &mut Self {
        self.items.push(item);
        self
    }

    /// Looks up a port by name.
    pub fn find_port(&self, name: &str) -> Option<&Port> {
        self.ports.iter().find(|p| p.name == name)
    }

    /// All internal net declarations.
    pub fn nets(&self) -> impl Iterator<Item = &NetDecl> {
        self.items.iter().filter_map(|i| match i {
            Item::Net(n) => Some(n),
            _ => None,
        })
    }
}

/// A design: a set of modules with a designated top.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Design {
    /// Name of the top module.
    pub top: String,
    /// All modules, top included.
    pub modules: Vec<VModule>,
}

impl Design {
    /// A design containing a single top module.
    pub fn new(top: VModule) -> Self {
        Design {
            top: top.name.clone(),
            modules: vec![top],
        }
    }

    /// Adds a module to the design.
    pub fn add_module(&mut self, module: VModule) -> &mut Self {
        self.modules.push(module);
        self
    }

    /// Looks up a module by name.
    pub fn module(&self, name: &str) -> Option<&VModule> {
        self.modules.iter().find(|m| m.name == name)
    }

    /// The top module.
    ///
    /// # Panics
    ///
    /// Panics if the design is inconsistent (no module named `top`).
    pub fn top_module(&self) -> &VModule {
        self.module(&self.top)
            .expect("design contains its top module")
    }
}

impl fmt::Display for PortDir {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            PortDir::Input => "input",
            PortDir::Output => "output",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expr_idents_collects_all() {
        let e = Expr::bin(
            BinaryOp::Add,
            Expr::id("a"),
            Expr::Ternary(
                Box::new(Expr::id("sel")),
                Box::new(Expr::Index(
                    Box::new(Expr::id("mem")),
                    Box::new(Expr::id("addr")),
                )),
                Box::new(Expr::lit(8, 0)),
            ),
        );
        let mut ids = e.idents();
        ids.sort_unstable();
        assert_eq!(ids, vec!["a", "addr", "mem", "sel"]);
    }

    #[test]
    fn lvalue_root_through_slices() {
        let e = Expr::Slice(
            Box::new(Expr::Index(
                Box::new(Expr::id("buf")),
                Box::new(Expr::id("i")),
            )),
            7,
            0,
        );
        assert_eq!(e.lvalue_root(), Some("buf"));
        assert_eq!(Expr::lit(1, 0).lvalue_root(), None);
    }

    #[test]
    fn stmt_assigned_and_read() {
        let s = Stmt::If {
            cond: Expr::id("en"),
            then_body: vec![Stmt::NonBlocking(
                Expr::Index(Box::new(Expr::id("mem")), Box::new(Expr::id("wa"))),
                Expr::id("din"),
            )],
            else_body: vec![Stmt::NonBlocking(Expr::id("q"), Expr::id("d"))],
        };
        let mut assigned = s.assigned_idents();
        assigned.sort_unstable();
        assert_eq!(assigned, vec!["mem", "q"]);
        let mut read = s.read_idents();
        read.sort_unstable();
        assert_eq!(read, vec!["d", "din", "en", "wa"]);
    }

    #[test]
    fn module_and_design_lookup() {
        let mut m = VModule::new("adder");
        m.port(Port::input("a", 8))
            .port(Port::input("b", 8))
            .port(Port::output("y", 8));
        let mut d = Design::new(m);
        d.add_module(VModule::new("helper"));
        assert_eq!(d.top_module().name, "adder");
        assert!(d.module("helper").is_some());
        assert!(d.module("ghost").is_none());
        assert_eq!(
            d.top_module().find_port("y").map(|p| p.dir),
            Some(PortDir::Output)
        );
    }

    #[test]
    fn comparison_ops_flagged() {
        assert!(BinaryOp::Eq.is_comparison());
        assert!(!BinaryOp::Add.is_comparison());
    }
}
