//! Flight recorder: a bounded pre-trigger waveform window.
//!
//! Hardware bring-up rarely needs the whole waveform — it needs the
//! cycles *leading up to* the first bad transaction. The
//! [`FlightRecorder`] keeps a ring buffer of the last N sampled cycles of
//! a watched signal set; when the harness detects a divergence it calls
//! [`FlightRecorder::trigger`], the recorder captures a short
//! post-trigger tail and freezes. [`FlightRecorder::render_vcd`] then
//! renders just that window as a standalone VCD document, so divergence
//! bundles carry the interesting cycles without a second full run and
//! without holding an unbounded dump in memory.
//!
//! Sampling is the caller's job (one [`FlightRecorder::sample`] per
//! clock edge, values read off a [`Simulator`](crate::Simulator)); the
//! recorder itself is engine-agnostic and deterministic, so two engines
//! fed identical samples freeze identical windows.

use std::collections::VecDeque;

use crate::vcd::VcdRecorder;

/// Ring buffer of the last N cycles of a watched signal set, with
/// pre-trigger capture semantics (see the module docs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightRecorder {
    top: String,
    signals: Vec<(String, u32)>,
    depth: usize,
    /// Sampled rows: `(cycle, values)` with `values` parallel to
    /// `signals`. Bounded at `depth` rows.
    ring: VecDeque<(u64, Vec<u64>)>,
    /// Cycle index of the next sample.
    cycle: u64,
    /// Cycle at which [`FlightRecorder::trigger`] fired, if it has.
    trigger_cycle: Option<u64>,
    /// Post-trigger samples still to accept before freezing.
    tail_remaining: u64,
}

/// A frozen flight-recorder capture: the window around the trigger,
/// rendered as VCD, plus its cycle bounds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightWindow {
    /// First cycle present in the window.
    pub first_cycle: u64,
    /// Cycle the trigger fired at (the first mismatching transaction).
    pub trigger_cycle: u64,
    /// Last cycle present in the window.
    pub last_cycle: u64,
    /// The window as a standalone VCD document.
    pub vcd: String,
}

impl FlightRecorder {
    /// Creates a recorder watching `signals` (name, width) under scope
    /// `top`, keeping the most recent `depth` cycles. A quarter of the
    /// depth is reserved for post-trigger tail capture so the window
    /// shows both the lead-up and the immediate aftermath.
    pub fn new(top: &str, signals: Vec<(String, u32)>, depth: usize) -> FlightRecorder {
        FlightRecorder {
            top: top.to_string(),
            signals,
            depth: depth.max(4),
            ring: VecDeque::new(),
            cycle: 0,
            trigger_cycle: None,
            tail_remaining: 0,
        }
    }

    /// Signal names the recorder expects, in sample order.
    pub fn watched(&self) -> impl Iterator<Item = &str> {
        self.signals.iter().map(|(n, _)| n.as_str())
    }

    /// Records one cycle. `values` must parallel the watched signal
    /// list. Before the trigger the ring keeps the newest `depth` rows;
    /// after the trigger it accepts the post-trigger tail then freezes.
    pub fn sample(&mut self, values: Vec<u64>) {
        debug_assert_eq!(values.len(), self.signals.len());
        if self.trigger_cycle.is_some() {
            if self.tail_remaining == 0 {
                self.cycle += 1;
                return; // frozen
            }
            self.tail_remaining -= 1;
        }
        if self.ring.len() == self.depth {
            self.ring.pop_front();
        }
        self.ring.push_back((self.cycle, values));
        self.cycle += 1;
    }

    /// Marks the current cycle as the trigger (first bad transaction).
    /// The recorder accepts `depth / 4` further samples as the
    /// post-trigger tail, then freezes. Only the first trigger counts.
    pub fn trigger(&mut self) {
        if self.trigger_cycle.is_none() {
            self.trigger_cycle = Some(self.cycle.saturating_sub(1));
            self.tail_remaining = (self.depth / 4) as u64;
        }
    }

    /// True once [`FlightRecorder::trigger`] has fired.
    pub fn triggered(&self) -> bool {
        self.trigger_cycle.is_some()
    }

    /// Renders the captured window. Returns `None` until the trigger has
    /// fired or if nothing was sampled.
    pub fn render_vcd(&self) -> Option<FlightWindow> {
        let trigger_cycle = self.trigger_cycle?;
        let (first_cycle, last_cycle) = match (self.ring.front(), self.ring.back()) {
            (Some(f), Some(b)) => (f.0, b.0),
            _ => return None,
        };
        let mut rec = VcdRecorder::new(&self.top, &self.signals, 10);
        for (_, values) in &self.ring {
            rec.sample(values);
        }
        Some(FlightWindow {
            first_cycle,
            trigger_cycle,
            last_cycle,
            vcd: rec.finish().expect("buffered recorder returns text"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn watch() -> Vec<(String, u32)> {
        vec![("phase".into(), 3), ("req".into(), 1)]
    }

    #[test]
    fn ring_keeps_only_the_newest_depth_rows() {
        let mut fr = FlightRecorder::new("ctl", watch(), 8);
        for c in 0..100u64 {
            fr.sample(vec![c & 7, c & 1]);
        }
        assert!(!fr.triggered());
        assert!(fr.render_vcd().is_none(), "no window before the trigger");
        fr.trigger();
        // Freeze immediately (no tail samples offered).
        let w = fr.render_vcd().expect("window after trigger");
        assert_eq!(w.first_cycle, 92);
        assert_eq!(w.last_cycle, 99);
        assert_eq!(w.trigger_cycle, 99);
        assert!(w.vcd.contains("$enddefinitions $end"), "{}", w.vcd);
        assert!(w.vcd.contains("$dumpvars"), "{}", w.vcd);
    }

    #[test]
    fn post_trigger_tail_then_freeze() {
        let depth = 16;
        let mut fr = FlightRecorder::new("ctl", watch(), depth);
        for c in 0..40u64 {
            fr.sample(vec![c & 7, 0]);
        }
        fr.trigger();
        for c in 40..80u64 {
            fr.sample(vec![c & 7, 1]);
        }
        let w = fr.render_vcd().expect("window");
        assert_eq!(w.trigger_cycle, 39);
        // depth/4 = 4 tail samples accepted after the trigger.
        assert_eq!(w.last_cycle, 43);
        assert_eq!(w.first_cycle, 43 + 1 - depth as u64);
        // A second trigger is ignored.
        fr.trigger();
        assert_eq!(fr.render_vcd().expect("window").trigger_cycle, 39);
    }

    #[test]
    fn identical_sample_streams_freeze_identical_windows() {
        let run = || {
            let mut fr = FlightRecorder::new("ctl", watch(), 8);
            for c in 0..30u64 {
                fr.sample(vec![c % 5, (c / 3) & 1]);
                if c == 20 {
                    fr.trigger();
                }
            }
            fr.render_vcd().expect("window")
        };
        assert_eq!(run(), run());
    }
}
