//! Tape interference analyzer: a machine-checked proof that the
//! parallel settle's per-level buckets are safe to evaluate
//! concurrently (DESIGN.md §17).
//!
//! The partitioned drain (DESIGN.md §16) evaluates every instruction of
//! one level against the frozen pre-level state and applies results in
//! tape order at the level barrier. That is bit-identical to the serial
//! drain only if the levelization upholds three obligations, which this
//! module re-derives from the compiled artifacts themselves — the
//! postfix bytecode and the destination encodings, *not* the levelizer's
//! own read lists — so a drift between lowering and levelization is a
//! reported violation rather than a silent data race:
//!
//! 1. **Write/write disjointness** ([`InterferenceRule::WriteOverlap`]):
//!    two instructions on the same level never write overlapping bits of
//!    one scalar or the same word of one memory, so the tape-order apply
//!    loop is order-insensitive across lanes.
//! 2. **No same-level read-after-write**
//!    ([`InterferenceRule::SameLevelRaw`]): no instruction reads a
//!    scalar or memory written by any instruction of its own level —
//!    the only sanctioned same-level interaction is the frozen
//!    pre-level read discipline.
//! 3. **Strict level increase** ([`InterferenceRule::LevelInversion`],
//!    [`InterferenceRule::TapeOrder`]): every dependence edge (writer of
//!    a signal → reader of that signal) strictly increases level and
//!    points strictly forward in tape order, so the level walk and the
//!    serial word scan both reach the fixed point in one pass.
//!
//! A fourth check ([`InterferenceRule::FanoutDrift`]) cross-validates
//! the engine's fanout CSR — the structure that actually drives dirty
//! propagation — against the read sets extracted here, closing the gap
//! between the proof's model and the scheduler's wiring.
//!
//! The proof is surfaced three ways: a hard assertion when
//! [`CompiledSim::enable_parallel`] builds the partition plan (always on
//! in debug builds, opt-in via `DEEPBURNING_VERIFY_PLAN=1` in release),
//! the `interfere` pass of `deepburning-lint` (through `dblint --deny`),
//! and the dynamic race checker inside the pool path
//! ([`CompiledSim::enable_race_check`]) that records the signals each
//! batch *actually* touches and cross-checks them against the
//! [`AccessSet`]s computed here.

use super::pool::EvalOut;
use super::{err, exec, mask, CompiledSim, Dst, ExecCtx, Instr, Op, SimulateError};
use crate::ast::{BinaryOp, Design, UnaryOp};
use std::collections::BTreeMap;
use std::fmt;

/// The statically written bits of a scalar destination.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum BitMask {
    /// Exactly these bits (whole writes, static slices, constant bit
    /// indices).
    Exact(u64),
    /// One bit at a data-dependent index: conservatively overlaps any
    /// other write to the slot.
    AnyBit,
}

impl BitMask {
    fn overlaps(self, other: BitMask) -> bool {
        match (self, other) {
            (BitMask::Exact(a), BitMask::Exact(b)) => a & b != 0,
            // A dynamic bit index can land anywhere in the slot.
            _ => true,
        }
    }
}

/// The write target of one instruction, at the granularity the apply
/// loop commits it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub(crate) enum WriteSet {
    /// `Dst::SliceNoop` and `Dst::Fail` commit nothing.
    #[default]
    None,
    Slot {
        slot: u32,
        bits: BitMask,
    },
    /// `word` is `Some` when the index program is closed (no signal
    /// reads) and therefore constant-foldable.
    Mem {
        mem: u32,
        word: Option<u64>,
    },
}

/// Exact per-instruction access sets, extracted from the postfix
/// bytecode independently of the levelizer's own read collection.
#[derive(Debug, Clone, Default)]
pub(crate) struct AccessSet {
    /// Slots the rhs or a destination index program reads (sorted,
    /// deduplicated). Reads inside untaken ternary arms are included —
    /// the same conservative closure the fanout CSR uses.
    pub(crate) reads_slots: Vec<u32>,
    /// Memories read, same closure (sorted, deduplicated).
    pub(crate) reads_mems: Vec<u32>,
    pub(crate) write: WriteSet,
}

/// Evaluates a closed program (one with no signal or memory reads) to a
/// constant, or `None` when the program reads state or fails.
fn const_eval(prog: &[Op]) -> Option<u64> {
    if prog
        .iter()
        .any(|op| matches!(op, Op::Sig(_) | Op::BitIdx(_) | Op::WordIdx(_)))
    {
        return None;
    }
    let ctx = ExecCtx {
        values: &[],
        mems: &[],
        slots: &[],
        mem_slot: &[],
    };
    let mut stack = Vec::new();
    exec(&ctx, prog, &mut stack).ok().map(|(v, _)| v)
}

fn scan_reads(ops: &[Op], slots: &mut Vec<u32>, mems: &mut Vec<u32>) {
    for op in ops {
        match op {
            Op::Sig(s) | Op::BitIdx(s) => slots.push(*s as u32),
            Op::WordIdx(m) => mems.push(*m as u32),
            _ => {}
        }
    }
}

/// Extracts the [`AccessSet`] of one tape instruction from its bytecode.
/// `slot_width` supplies the full-mask width for whole writes.
pub(super) fn access_set(instr: &Instr, slot_width: impl Fn(usize) -> u32) -> AccessSet {
    let mut reads_slots = Vec::new();
    let mut reads_mems = Vec::new();
    scan_reads(&instr.rhs, &mut reads_slots, &mut reads_mems);
    let write = match &instr.dst {
        Dst::Whole(s) => WriteSet::Slot {
            slot: *s as u32,
            bits: BitMask::Exact(mask(slot_width(*s))),
        },
        Dst::Slice(s, hi, lo) => WriteSet::Slot {
            slot: *s as u32,
            bits: BitMask::Exact(mask(hi - lo + 1) << lo),
        },
        Dst::Bit(s, idx) => {
            scan_reads(idx, &mut reads_slots, &mut reads_mems);
            WriteSet::Slot {
                slot: *s as u32,
                bits: match const_eval(idx) {
                    Some(i) => BitMask::Exact(1u64 << (i & 63)),
                    None => BitMask::AnyBit,
                },
            }
        }
        Dst::Word(m, idx) => {
            scan_reads(idx, &mut reads_slots, &mut reads_mems);
            WriteSet::Mem {
                mem: *m as u32,
                word: const_eval(idx),
            }
        }
        Dst::SliceNoop | Dst::Fail(_) => WriteSet::None,
    };
    reads_slots.sort_unstable();
    reads_slots.dedup();
    reads_mems.sort_unstable();
    reads_mems.dedup();
    AccessSet {
        reads_slots,
        reads_mems,
        write,
    }
}

/// Which proof obligation a violation breaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InterferenceRule {
    /// Two same-level writes overlap (obligation a).
    WriteOverlap,
    /// A same-level instruction reads a signal its level writes
    /// (obligation b).
    SameLevelRaw,
    /// A dependence edge decreases level (obligation c).
    LevelInversion,
    /// A dependence edge points backwards (or to itself) in tape order,
    /// breaking the serial single-pass scan (obligation c).
    TapeOrder,
    /// The engine's fanout CSR disagrees with the read sets extracted
    /// from the bytecode.
    FanoutDrift,
}

impl InterferenceRule {
    /// Stable rule tag (the `interfere/<tag>` lint rule id).
    pub fn tag(self) -> &'static str {
        match self {
            InterferenceRule::WriteOverlap => "write-overlap",
            InterferenceRule::SameLevelRaw => "same-level-raw",
            InterferenceRule::LevelInversion => "level-inversion",
            InterferenceRule::TapeOrder => "tape-order",
            InterferenceRule::FanoutDrift => "fanout-drift",
        }
    }
}

impl fmt::Display for InterferenceRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.tag())
    }
}

/// One broken proof obligation, with enough location to act on.
#[derive(Debug, Clone, PartialEq)]
pub struct InterferenceViolation {
    pub rule: InterferenceRule,
    /// Level of the earlier instruction in the conflict.
    pub level: u32,
    /// Tape index of the writer (or the first of two writers).
    pub a: u32,
    /// Tape index of the reader / second writer (equal to `a` for
    /// self-conflicts and CSR drift).
    pub b: u32,
    /// Hierarchical name of the contested signal or memory.
    pub subject: String,
    pub message: String,
}

impl fmt::Display for InterferenceViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] `{}`: {}", self.rule, self.subject, self.message)
    }
}

/// The proof outcome over one compiled tape. `is_proven` means every
/// obligation held on every level — the partition plan's buckets are
/// safe to evaluate concurrently.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct InterferenceReport {
    /// Tape instructions analyzed.
    pub instrs: u64,
    /// Distinct levels (0 for an empty tape).
    pub levels: u64,
    /// Dependence edges checked for strict level increase.
    pub edges_checked: u64,
    /// Same-level write pairs checked for disjointness.
    pub write_pairs_checked: u64,
    pub violations: Vec<InterferenceViolation>,
}

impl InterferenceReport {
    /// True when all three obligations (plus the CSR cross-check) held.
    pub fn is_proven(&self) -> bool {
        self.violations.is_empty()
    }

    /// One-line proof summary for logs and reports.
    pub fn summary(&self) -> String {
        format!(
            "{} instrs / {} levels / {} edges / {} write pairs: {}",
            self.instrs,
            self.levels,
            self.edges_checked,
            self.write_pairs_checked,
            if self.is_proven() {
                "proven independent".to_string()
            } else {
                format!("{} violations", self.violations.len())
            }
        )
    }
}

impl fmt::Display for InterferenceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.summary())?;
        for v in &self.violations {
            writeln!(f, "  {v}")?;
        }
        Ok(())
    }
}

impl CompiledSim {
    /// Hierarchical name of a slot, for diagnostics (reverse lookup;
    /// only runs on violations and drift reports).
    fn slot_name(&self, slot: usize) -> String {
        self.names
            .iter()
            .find(|(_, &s)| s == slot)
            .map(|(n, _)| n.clone())
            .unwrap_or_else(|| format!("<slot {slot}>"))
    }

    fn mem_name(&self, mem: usize) -> String {
        self.slot_name(self.mem_slot[mem])
    }

    /// The static access sets of every tape instruction, in tape order.
    pub(crate) fn access_sets(&self) -> Vec<AccessSet> {
        self.tape
            .iter()
            .map(|instr| access_set(instr, |s| self.slots[s].width))
            .collect()
    }

    /// Runs the full interference proof over the compiled tape: the
    /// three per-level obligations plus the fanout-CSR cross-check (see
    /// the module docs). Cost is linear in tape + dependence edges —
    /// the same order as levelization itself.
    pub fn interference_report(&self) -> InterferenceReport {
        let sets = self.access_sets();
        let mut report = InterferenceReport {
            instrs: self.tape.len() as u64,
            levels: self
                .instr_levels
                .iter()
                .copied()
                .max()
                .map_or(0, |m| m as u64 + 1),
            ..InterferenceReport::default()
        };

        // Writer and reader lists per slot/memory, in tape order.
        let mut slot_writers: Vec<Vec<u32>> = vec![Vec::new(); self.slots.len()];
        let mut mem_writers: Vec<Vec<u32>> = vec![Vec::new(); self.mems.len()];
        let mut slot_readers: Vec<Vec<u32>> = vec![Vec::new(); self.slots.len()];
        let mut mem_readers: Vec<Vec<u32>> = vec![Vec::new(); self.mems.len()];
        for (t, set) in sets.iter().enumerate() {
            match set.write {
                WriteSet::Slot { slot, .. } => slot_writers[slot as usize].push(t as u32),
                WriteSet::Mem { mem, .. } => mem_writers[mem as usize].push(t as u32),
                WriteSet::None => {}
            }
            for &s in &set.reads_slots {
                slot_readers[s as usize].push(t as u32);
            }
            for &m in &set.reads_mems {
                mem_readers[m as usize].push(t as u32);
            }
        }

        // Obligation (a): same-level writes must be disjoint. Scalar
        // writes compare bit masks (the generated RTL legitimately
        // drives disjoint static slices of one bus from several
        // instructions); memory writes compare constant word indices
        // and conservatively conflict when either index is dynamic.
        for (s, writers) in slot_writers.iter().enumerate() {
            for (i, &a) in writers.iter().enumerate() {
                for &b in &writers[i + 1..] {
                    let (la, lb) = (self.instr_levels[a as usize], self.instr_levels[b as usize]);
                    if la != lb {
                        continue;
                    }
                    report.write_pairs_checked += 1;
                    let bits = |t: u32| match sets[t as usize].write {
                        WriteSet::Slot { bits, .. } => bits,
                        _ => unreachable!("writer lists are built from WriteSet::Slot"),
                    };
                    if bits(a).overlaps(bits(b)) {
                        report.violations.push(InterferenceViolation {
                            rule: InterferenceRule::WriteOverlap,
                            level: la,
                            a,
                            b,
                            subject: self.slot_name(s),
                            message: format!(
                                "tape[{a}] and tape[{b}] both write overlapping bits on level \
                                 {la}; the concurrent bucket's apply order decides the result"
                            ),
                        });
                    }
                }
            }
        }
        for (m, writers) in mem_writers.iter().enumerate() {
            for (i, &a) in writers.iter().enumerate() {
                for &b in &writers[i + 1..] {
                    let (la, lb) = (self.instr_levels[a as usize], self.instr_levels[b as usize]);
                    if la != lb {
                        continue;
                    }
                    report.write_pairs_checked += 1;
                    let word = |t: u32| match sets[t as usize].write {
                        WriteSet::Mem { word, .. } => word,
                        _ => unreachable!("writer lists are built from WriteSet::Mem"),
                    };
                    let disjoint = matches!((word(a), word(b)), (Some(x), Some(y)) if x != y);
                    if !disjoint {
                        report.violations.push(InterferenceViolation {
                            rule: InterferenceRule::WriteOverlap,
                            level: la,
                            a,
                            b,
                            subject: self.mem_name(m),
                            message: format!(
                                "tape[{a}] and tape[{b}] write the same memory on level {la} \
                                 without provably distinct word indices"
                            ),
                        });
                    }
                }
            }
        }

        // Obligations (b) and (c): every writer→reader dependence edge
        // must strictly increase level and point strictly forward in
        // tape order. Granularity matches the levelizer (a read of any
        // part of a signal depends on every writer of that signal), so
        // a valid levelization produces zero violations here.
        let mut edge = |w: u32, r: u32, subject: &dyn Fn() -> String| {
            report.edges_checked += 1;
            let (lw, lr) = (self.instr_levels[w as usize], self.instr_levels[r as usize]);
            if lr == lw {
                report.violations.push(InterferenceViolation {
                    rule: InterferenceRule::SameLevelRaw,
                    level: lw,
                    a: w,
                    b: r,
                    subject: subject(),
                    message: if w == r {
                        format!("tape[{r}] reads its own destination on level {lw}")
                    } else {
                        format!(
                            "tape[{r}] reads what tape[{w}] writes on the same level {lw}; a \
                             pooled batch would read the frozen pre-level value where the \
                             serial drain reads the fresh one"
                        )
                    },
                });
            } else if lr < lw {
                report.violations.push(InterferenceViolation {
                    rule: InterferenceRule::LevelInversion,
                    level: lw,
                    a: w,
                    b: r,
                    subject: subject(),
                    message: format!(
                        "dependence edge tape[{w}] (level {lw}) -> tape[{r}] (level {lr}) \
                         decreases level; the level walk settles the reader first"
                    ),
                });
            } else if w >= r {
                report.violations.push(InterferenceViolation {
                    rule: InterferenceRule::TapeOrder,
                    level: lw,
                    a: w,
                    b: r,
                    subject: subject(),
                    message: format!(
                        "dependence edge tape[{w}] -> tape[{r}] points backwards in tape \
                         order; the serial single-pass scan would miss the wakeup"
                    ),
                });
            }
        };
        for (r, set) in sets.iter().enumerate() {
            for &s in &set.reads_slots {
                for &w in &slot_writers[s as usize] {
                    edge(w, r as u32, &|| self.slot_name(s as usize));
                }
            }
            for &m in &set.reads_mems {
                for &w in &mem_writers[m as usize] {
                    edge(w, r as u32, &|| self.mem_name(m as usize));
                }
            }
        }

        // Fanout-CSR cross-check: the reader lists the scheduler
        // actually dirties through must equal the read sets extracted
        // from the bytecode. Both sides are built in ascending tape
        // order, so slice equality is set equality.
        for (s, readers) in slot_readers.iter().enumerate() {
            let lo = self.fanout_off[s] as usize;
            let hi = self.fanout_off[s + 1] as usize;
            if self.fanout_idx[lo..hi] != readers[..] {
                report.violations.push(InterferenceViolation {
                    rule: InterferenceRule::FanoutDrift,
                    level: 0,
                    a: 0,
                    b: 0,
                    subject: self.slot_name(s),
                    message: format!(
                        "fanout CSR lists readers {:?} but the bytecode reads at {readers:?}",
                        &self.fanout_idx[lo..hi]
                    ),
                });
            }
        }
        for (m, readers) in mem_readers.iter().enumerate() {
            let lo = self.mem_fanout_off[m] as usize;
            let hi = self.mem_fanout_off[m + 1] as usize;
            if self.mem_fanout_idx[lo..hi] != readers[..] {
                report.violations.push(InterferenceViolation {
                    rule: InterferenceRule::FanoutDrift,
                    level: 0,
                    a: 0,
                    b: 0,
                    subject: self.mem_name(m),
                    message: format!(
                        "memory fanout CSR lists readers {:?} but the bytecode reads at \
                         {readers:?}",
                        &self.mem_fanout_idx[lo..hi]
                    ),
                });
            }
        }
        report
    }
}

/// Compiles `top` and runs the interference proof — the entry point the
/// `deepburning-lint` `interfere` pass uses.
///
/// # Errors
///
/// Propagates elaboration errors ([`SimulateError`]); designs that do
/// not compile are covered by the structural and comb-loop passes.
pub fn interference_check(design: &Design, top: &str) -> Result<InterferenceReport, SimulateError> {
    CompiledSim::compile(design, top).map(|sim| sim.interference_report())
}

// ---------------------------------------------------------------------------
// Dynamic race checker (the third surface of the proof).
// ---------------------------------------------------------------------------

/// One arena read an [`exec_race`] evaluation actually performed —
/// taken branches only, unlike the conservative static closure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum RaceTouch {
    Slot(u32),
    Mem(u32),
}

/// State of the armed dynamic race checker: the static access sets the
/// settling batches are cross-checked against, captured when
/// [`CompiledSim::enable_race_check`] ran.
pub(crate) struct RaceState {
    pub(crate) sets: Vec<AccessSet>,
}

/// Race-recording twin of [`exec`]: identical semantics plus a log of
/// every arena signal the evaluation actually reads. Kept as a third
/// deliberate duplicate (the same reasoning as `exec_prof`) so the
/// unchecked hot path carries zero extra state; the race-checked
/// engine-equivalence tests pin it to identical behaviour.
pub(super) fn exec_race(
    ctx: &ExecCtx,
    ops: &[Op],
    stack: &mut Vec<(u64, u32)>,
    touched: &mut Vec<RaceTouch>,
) -> Result<(u64, u32), SimulateError> {
    stack.clear();
    let mut pc = 0usize;
    while let Some(op) = ops.get(pc) {
        match op {
            Op::Sig(s) => {
                touched.push(RaceTouch::Slot(*s as u32));
                let w = ctx.slots[*s].width;
                stack.push((ctx.values[*s] & mask(w), w));
            }
            Op::Lit { width, value } => stack.push((*value, *width)),
            Op::Un(op) => {
                let (v, w) = stack.pop().expect("unary operand");
                stack.push(match op {
                    UnaryOp::Not => (u64::from(v == 0), 1),
                    UnaryOp::BitNot => (!v & mask(w), w),
                    UnaryOp::Neg => (v.wrapping_neg() & mask(w), w),
                    UnaryOp::RedOr => (u64::from(v != 0), 1),
                    UnaryOp::RedAnd => (u64::from(v == mask(w)), 1),
                });
            }
            Op::Bin(op) => {
                let (rv, rw) = stack.pop().expect("binary rhs");
                let (lv, lw) = stack.pop().expect("binary lhs");
                let w = lw.max(rw);
                let m = mask(w);
                let signed = |v: u64, w: u32| -> i64 {
                    let m = mask(w);
                    let v = v & m;
                    if w < 64 && v >> (w - 1) != 0 {
                        (v | !m) as i64
                    } else {
                        v as i64
                    }
                };
                stack.push(match op {
                    BinaryOp::Add => (lv.wrapping_add(rv) & m, w),
                    BinaryOp::Sub => (lv.wrapping_sub(rv) & m, w),
                    BinaryOp::Mul => (lv.wrapping_mul(rv) & m, w),
                    BinaryOp::Div => {
                        let d = signed(rv, rw);
                        let q = if d == 0 {
                            0
                        } else {
                            signed(lv, lw).wrapping_div(d)
                        };
                        ((q as u64) & m, w)
                    }
                    BinaryOp::And => (lv & rv, w),
                    BinaryOp::Or => (lv | rv, w),
                    BinaryOp::Xor => (lv ^ rv, w),
                    BinaryOp::Shl => ((lv << (rv & 63)) & mask(lw), lw),
                    BinaryOp::Shr => {
                        let sv = signed(lv, lw) >> (rv & 63);
                        ((sv as u64) & mask(lw), lw)
                    }
                    BinaryOp::Eq => (u64::from((lv & m) == (rv & m)), 1),
                    BinaryOp::Ne => (u64::from((lv & m) != (rv & m)), 1),
                    BinaryOp::Lt => (u64::from(lv < rv), 1),
                    BinaryOp::Slt => (u64::from(signed(lv, lw) < signed(rv, rw)), 1),
                    BinaryOp::Ge => (u64::from(lv >= rv), 1),
                    BinaryOp::LogAnd => (u64::from(lv != 0 && rv != 0), 1),
                    BinaryOp::LogOr => (u64::from(lv != 0 || rv != 0), 1),
                });
            }
            Op::BitIdx(s) => {
                touched.push(RaceTouch::Slot(*s as u32));
                let (i, _) = stack.pop().expect("bit index");
                stack.push(((ctx.values[*s] >> (i & 63)) & 1, 1));
            }
            Op::WordIdx(m) => {
                touched.push(RaceTouch::Mem(*m as u32));
                let (i, _) = stack.pop().expect("word index");
                let w = ctx.slots[ctx.mem_slot[*m]].width;
                let v = ctx.mems[*m].get(i as usize).copied().unwrap_or(0);
                stack.push((v & mask(w), w));
            }
            Op::Slice { hi, lo } => {
                let (v, _) = stack.pop().expect("slice base");
                let w = hi - lo + 1;
                stack.push(((v >> lo) & mask(w), w));
            }
            Op::Cat(n) => {
                let base = stack.len() - *n as usize;
                let mut acc = 0u64;
                let mut total = 0u32;
                for &(v, w) in &stack[base..] {
                    acc = (acc << w) | (v & mask(w));
                    total += w;
                }
                stack.truncate(base);
                stack.push((acc & mask(total), total));
            }
            Op::JumpIfZero(t) => {
                let (c, _) = stack.pop().expect("ternary condition");
                if c == 0 {
                    pc = *t as usize;
                    continue;
                }
            }
            Op::Jump(t) => {
                pc = *t as usize;
                continue;
            }
            Op::Fail(message) => return Err(err(message.to_string())),
        }
        pc += 1;
    }
    Ok(stack.pop().expect("program leaves a result"))
}

impl CompiledSim {
    /// Vets one level batch before its results apply (the dynamic half
    /// of the proof): batch-local write/write and read-after-write
    /// conflicts are races — the instructions are about to be (or were)
    /// evaluated concurrently against the frozen pre-level state — and
    /// on pooled batches (`outs` present) each evaluation's actual
    /// touches must fall inside its static read set, or the bytecode
    /// and the analyzer's model have drifted apart.
    pub(super) fn race_check_batch(
        &self,
        sets: &[AccessSet],
        bucket: &[u32],
        outs: Option<&[EvalOut]>,
    ) -> Result<(), SimulateError> {
        let mut slot_writes: BTreeMap<u32, Vec<(u32, BitMask)>> = BTreeMap::new();
        let mut mem_writes: BTreeMap<u32, Vec<(u32, Option<u64>)>> = BTreeMap::new();
        for &t in bucket {
            match sets[t as usize].write {
                WriteSet::Slot { slot, bits } => {
                    let writers = slot_writes.entry(slot).or_default();
                    if let Some(&(prev, _)) =
                        writers.iter().find(|&&(_, pbits)| pbits.overlaps(bits))
                    {
                        return Err(err(format!(
                            "dynamic race check: tape[{prev}] and tape[{t}] write overlapping \
                             bits of `{}` in one level batch",
                            self.slot_name(slot as usize)
                        )));
                    }
                    writers.push((t, bits));
                }
                WriteSet::Mem { mem, word } => {
                    let writers = mem_writes.entry(mem).or_default();
                    if let Some(&(prev, _)) = writers
                        .iter()
                        .find(|&&(_, pword)| !matches!((pword, word), (Some(x), Some(y)) if x != y))
                    {
                        return Err(err(format!(
                            "dynamic race check: tape[{prev}] and tape[{t}] write memory `{}` \
                             in one level batch without provably distinct word indices",
                            self.mem_name(mem as usize)
                        )));
                    }
                    writers.push((t, word));
                }
                WriteSet::None => {}
            }
        }
        let raw_slot = |t: u32, s: u32| -> Result<(), SimulateError> {
            if let Some(w) = slot_writes
                .get(&s)
                .and_then(|ws| ws.iter().map(|&(w, _)| w).find(|&w| w != t))
            {
                return Err(err(format!(
                    "dynamic race check: tape[{t}] reads `{}` which tape[{w}] writes in the \
                     same level batch",
                    self.slot_name(s as usize)
                )));
            }
            Ok(())
        };
        let raw_mem = |t: u32, m: u32| -> Result<(), SimulateError> {
            if let Some(w) = mem_writes
                .get(&m)
                .and_then(|ws| ws.iter().map(|&(w, _)| w).find(|&w| w != t))
            {
                return Err(err(format!(
                    "dynamic race check: tape[{t}] reads memory `{}` which tape[{w}] writes \
                     in the same level batch",
                    self.mem_name(m as usize)
                )));
            }
            Ok(())
        };
        for (k, &t) in bucket.iter().enumerate() {
            let set = &sets[t as usize];
            match outs {
                Some(outs) => {
                    for touch in &outs[k].touched {
                        match *touch {
                            RaceTouch::Slot(s) => {
                                if set.reads_slots.binary_search(&s).is_err() {
                                    return Err(err(format!(
                                        "dynamic race check: tape[{t}] touched `{}` outside \
                                         its static read set (bytecode/decoder drift)",
                                        self.slot_name(s as usize)
                                    )));
                                }
                                raw_slot(t, s)?;
                            }
                            RaceTouch::Mem(m) => {
                                if set.reads_mems.binary_search(&m).is_err() {
                                    return Err(err(format!(
                                        "dynamic race check: tape[{t}] touched memory `{}` \
                                         outside its static read set (bytecode/decoder drift)",
                                        self.mem_name(m as usize)
                                    )));
                                }
                                raw_mem(t, m)?;
                            }
                        }
                    }
                }
                None => {
                    for &s in &set.reads_slots {
                        raw_slot(t, s)?;
                    }
                    for &m in &set.reads_mems {
                        raw_mem(t, m)?;
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::super::tests::{build_design, plan_strategy};
    use super::super::SimThreads;
    use super::*;
    use crate::ast::*;
    use proptest::prelude::*;

    /// A small design with two independent same-level assigns plus a
    /// two-level chain — enough structure to corrupt meaningfully.
    fn two_lane_design() -> Design {
        let mut m = VModule::new("pair");
        m.port(Port::input("a", 8))
            .port(Port::input("b", 8))
            .port(Port::output("x", 8))
            .port(Port::output("y", 8))
            .port(Port::output("z", 8));
        m.item(Item::Assign {
            lhs: Expr::id("x"),
            rhs: Expr::bin(BinaryOp::Add, Expr::id("a"), Expr::lit(8, 1)),
        });
        m.item(Item::Assign {
            lhs: Expr::id("y"),
            rhs: Expr::bin(BinaryOp::Xor, Expr::id("b"), Expr::lit(8, 0x5A)),
        });
        m.item(Item::Assign {
            lhs: Expr::id("z"),
            rhs: Expr::bin(BinaryOp::And, Expr::id("x"), Expr::id("y")),
        });
        Design::new(m)
    }

    #[test]
    fn clean_design_is_proven() {
        let sim = CompiledSim::compile(&two_lane_design(), "pair").expect("compile");
        let report = sim.interference_report();
        assert!(report.is_proven(), "{report}");
        assert_eq!(report.instrs, 3);
        assert!(report.levels >= 2, "z sits above x and y");
        assert!(report.edges_checked >= 2, "z reads x and y");
    }

    #[test]
    fn disjoint_static_slices_are_not_overlap() {
        // The generated memory banks drive disjoint slices of one dout
        // bus from separate same-level assigns; the proof must accept
        // exactly that shape.
        let mut m = VModule::new("bus");
        m.port(Port::input("a", 4))
            .port(Port::input("b", 4))
            .port(Port::output("dout", 8));
        m.item(Item::Assign {
            lhs: Expr::Slice(Box::new(Expr::id("dout")), 3, 0),
            rhs: Expr::id("a"),
        });
        m.item(Item::Assign {
            lhs: Expr::Slice(Box::new(Expr::id("dout")), 7, 4),
            rhs: Expr::id("b"),
        });
        let sim = CompiledSim::compile(&Design::new(m), "bus").expect("compile");
        let report = sim.interference_report();
        assert!(report.is_proven(), "{report}");
        assert!(
            report.write_pairs_checked >= 1,
            "the two dout writers share a level and must be pair-checked"
        );
    }

    /// Injected defect 1: corrupting a level assignment puts a reader
    /// on its writer's level — the static pass must reject it with an
    /// actionable diagnostic naming the contested signal.
    #[test]
    fn corrupted_level_is_rejected() {
        let mut sim = CompiledSim::compile(&two_lane_design(), "pair").expect("compile");
        assert!(sim.interference_report().is_proven());
        // Drag the `z` reader down onto level 0 with its writers.
        let z = sim
            .interference_report()
            .instrs
            .checked_sub(1)
            .expect("nonempty tape") as usize;
        sim.test_corrupt_level(z, 0);
        let report = sim.interference_report();
        assert!(!report.is_proven(), "corrupt level must be caught");
        let v = report
            .violations
            .iter()
            .find(|v| v.rule == InterferenceRule::SameLevelRaw)
            .expect("same-level RAW violation");
        assert_eq!(v.subject, "x", "names the contested signal: {report}");
        assert!(v.message.contains("same level"), "{}", v.message);
    }

    /// Injected defect 2: aliasing two same-level writes onto one
    /// destination — the static pass must reject the write overlap.
    #[test]
    fn aliased_same_level_writes_are_rejected() {
        let mut sim = CompiledSim::compile(&two_lane_design(), "pair").expect("compile");
        // tape[0] and tape[1] are the same-level x/y writers; alias
        // tape[1]'s destination onto tape[0]'s.
        sim.test_alias_write(1, 0);
        let report = sim.interference_report();
        assert!(!report.is_proven(), "aliased writes must be caught");
        let v = report
            .violations
            .iter()
            .find(|v| v.rule == InterferenceRule::WriteOverlap)
            .expect("write-overlap violation");
        assert_eq!(v.subject, "x", "names the contested signal: {report}");
        assert!(v.message.contains("overlapping bits"), "{}", v.message);
    }

    /// The `enable_parallel` hard assertion fires on a corrupted tape
    /// (debug builds always verify; release opts in via
    /// `DEEPBURNING_VERIFY_PLAN`).
    #[test]
    #[cfg(debug_assertions)]
    fn enable_parallel_asserts_on_corrupt_tape() {
        let result = std::panic::catch_unwind(|| {
            let mut sim = CompiledSim::compile(&two_lane_design(), "pair").expect("compile");
            sim.test_alias_write(1, 0);
            sim.enable_parallel(SimThreads(2));
        });
        let msg = *result
            .expect_err("corrupt tape must fail the plan assertion")
            .downcast::<String>()
            .expect("assertion panics with a formatted message");
        assert!(msg.contains("independence proof"), "{msg}");
        assert!(msg.contains("write-overlap"), "{msg}");
    }

    /// Injected defect 2, dynamic half: with the static pass bypassed
    /// (tape corrupted *after* `enable_parallel` verified it), the race
    /// checker inside the pool path catches the aliased write at
    /// settle time.
    #[test]
    fn race_checker_catches_aliased_write_when_static_pass_bypassed() {
        let mut sim = CompiledSim::compile(&two_lane_design(), "pair").expect("compile");
        sim.enable_parallel(SimThreads(2)); // verifies the still-clean tape
        sim.test_alias_write(1, 0); // bypasses the static pass
        sim.enable_race_check();
        sim.par_set_min_batch(1);
        // Dirty the whole tape so both aliased writers land in one
        // level-0 batch of a single settle.
        sim.dirty_all();
        let err = sim
            .settle_dispatch()
            .expect_err("the race checker must reject the aliased batch");
        assert!(err.message.contains("race"), "{}", err.message);
        assert!(err.message.contains('x'), "{}", err.message);
    }

    /// Same dynamic catch for a level corrupted after verification: the
    /// reader lands in its writer's batch and the checker flags the
    /// same-batch read of a written slot.
    #[test]
    fn race_checker_catches_corrupted_level_when_static_pass_bypassed() {
        let mut sim = CompiledSim::compile(&two_lane_design(), "pair").expect("compile");
        sim.enable_parallel(SimThreads(2));
        let z = sim.instr_count() - 1;
        sim.test_corrupt_level(z, 0);
        sim.enable_race_check();
        sim.par_set_min_batch(1);
        // The corrupted `z` reader now gathers into level 0 alongside
        // the x/y writers it depends on.
        sim.dirty_all();
        let err = sim
            .settle_dispatch()
            .expect_err("the race checker must reject the co-batched read");
        assert!(err.message.contains("race"), "{}", err.message);
    }

    proptest! {
        /// Zero false positives: the analyzer accepts every tape
        /// `compile()` produces over random netlists.
        #[test]
        fn analyzer_accepts_every_compiled_tape((plans, _) in plan_strategy()) {
            let (design, _) = build_design(&plans);
            let sim = CompiledSim::compile(&design, "rand").expect("compile");
            let report = sim.interference_report();
            prop_assert!(report.is_proven(), "false positive on a valid tape:\n{report}");
            prop_assert_eq!(report.instrs as usize, sim.instr_count());
        }
    }
}
