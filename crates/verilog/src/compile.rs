//! Levelized, event-driven compilation of the emitted Verilog subset.
//!
//! The tree-walking [`Interpreter`] re-walks every continuous assign to a
//! fixed point after each poke and clock edge, resolving signals through
//! hierarchical-name maps — faithful, but it dominates the differential
//! harness's wall time (the neuron array alone is ~99% of evaluations).
//! [`CompiledSim`] is the Verilator-style answer: elaboration flattens
//! the design once into a dense signal arena, compiles every continuous
//! assign into one instruction over arena indices, topologically
//! levelizes the instructions (statically rejecting combinational
//! loops), and schedules evaluation with per-instruction dirty bits — a
//! clock edge or poke re-evaluates only the fanout cone of the signals
//! that actually changed, in one forward pass over the levelized tape.
//!
//! Semantics are bit-identical to the interpreter by construction: the
//! expression evaluator is a port of [`Interpreter`]'s over slot ids
//! instead of names (same two-state logic, same signed compare/divide
//! and shift rules, same out-of-range and division-by-zero behaviour),
//! non-blocking commits evaluate lvalue indices at commit time against
//! the partially-committed state, and `load_memory` defers propagation
//! to the next settle exactly like the interpreter's lazy re-walk. The
//! equivalence is enforced by the proptests below and by the
//! two-engine differential run in `deepburning-sim`.
//!
//! Work is attributed per flattened instance path
//! ([`CompiledSim::evals_by_module`]), so the `rtl.evals.*` trace
//! counters keep reporting where the simulation spends its time.

use crate::ast::*;
use crate::interp::{flatten_design, InterpStats, Interpreter, SimulateError, Simulator};
use crate::partition::{ParStats, PartitionPlan, RegionStats, SimThreads};
use crate::vcd::VcdRecorder;
#[cfg(feature = "prof")]
use deepburning_trace::prof::{CutProf, EngineProfile, OpcodeProf, SegmentProf, SweepProf};
#[cfg(feature = "prof")]
use deepburning_trace::Histogram;
use std::collections::BTreeMap;
use std::fmt;
use std::str::FromStr;

/// Static interference analysis over the compiled tape (DESIGN.md §17).
/// A child module so the proof reads the private tape representation
/// directly instead of a widened public surface.
#[path = "interfere.rs"]
pub mod interfere;

fn err(message: impl Into<String>) -> SimulateError {
    SimulateError {
        message: message.into(),
    }
}

fn mask(width: u32) -> u64 {
    if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

/// Which simulation engine executes elaborated designs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SimEngine {
    /// The tree-walking [`Interpreter`] — the semantic reference.
    Tree,
    /// The levelized, event-driven [`CompiledSim`] (default).
    #[default]
    Compiled,
    /// The compiled engine with the partitioned parallel settle
    /// ([`ParallelSim`], DESIGN.md §16); the payload is the lane count
    /// ([`SimThreads::AUTO`] resolves the machine's parallelism,
    /// `SimThreads(1)` runs exactly the serial compiled path).
    Parallel(SimThreads),
}

impl SimEngine {
    /// Elaborates `top` on this engine.
    ///
    /// # Errors
    ///
    /// Propagates elaboration errors ([`SimulateError`]).
    pub fn elaborate(
        self,
        design: &Design,
        top: &str,
    ) -> Result<Box<dyn Simulator>, SimulateError> {
        Ok(match self {
            SimEngine::Tree => Box::new(Interpreter::elaborate(design, top)?),
            SimEngine::Compiled => Box::new(CompiledSim::compile(design, top)?),
            SimEngine::Parallel(threads) => Box::new(ParallelSim::compile(design, top, threads)?),
        })
    }

    /// Stable CLI tag.
    pub fn tag(self) -> &'static str {
        match self {
            SimEngine::Tree => "tree",
            SimEngine::Compiled => "compiled",
            SimEngine::Parallel(_) => "parallel",
        }
    }

    /// Applies a `--threads` override: any non-serial lane count
    /// upgrades the compiled engine to the parallel variant, `1` pins
    /// the serial compiled path, and the tree engine (which has no
    /// settle loop to partition) is unaffected.
    pub fn with_threads(self, threads: SimThreads) -> SimEngine {
        match (self, threads) {
            (SimEngine::Tree, _) => SimEngine::Tree,
            (_, SimThreads::ONE) => SimEngine::Compiled,
            (SimEngine::Compiled | SimEngine::Parallel(_), t) => SimEngine::Parallel(t),
        }
    }

    /// The engine's resolved lane count (1 for the serial engines) —
    /// the `threads` half of the ledger's engine×threads key.
    pub fn threads(self) -> u64 {
        match self {
            SimEngine::Parallel(t) => t.resolve() as u64,
            SimEngine::Tree | SimEngine::Compiled => 1,
        }
    }
}

impl fmt::Display for SimEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.tag())
    }
}

impl FromStr for SimEngine {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        let lower = s.trim().to_ascii_lowercase();
        if let Some(threads) = lower.strip_prefix("parallel:") {
            return threads.parse::<SimThreads>().map(SimEngine::Parallel);
        }
        match lower.as_str() {
            "tree" | "interp" | "interpreter" => Ok(SimEngine::Tree),
            "compiled" | "levelized" => Ok(SimEngine::Compiled),
            "parallel" => Ok(SimEngine::Parallel(SimThreads::AUTO)),
            other => Err(format!(
                "unknown engine `{other}` (tree|compiled|parallel[:N])"
            )),
        }
    }
}

type SlotId = usize;
type MemId = usize;

/// One arena signal: scalars live in `CompiledSim::values`, memories in
/// `CompiledSim::mems`.
#[derive(Debug, Clone, Copy)]
struct Slot {
    width: u32,
    mem: Option<MemId>,
    /// Index into the module-path table (instance attribution).
    module: u32,
}

/// One opcode of a compiled expression. Expressions lower to flat
/// postfix programs ([`Prog`]) executed over an explicit operand stack
/// of `(value, width)` pairs — no recursion, no pointer chasing, and
/// the operand stack is a reused scratch buffer. Names that fail to
/// resolve at compile time become [`Op::Fail`] so the error still
/// surfaces lazily at evaluation (a branch never taken never errors,
/// exactly like the interpreter); ternaries lower to conditional jumps
/// so the untaken arm is never executed.
#[derive(Debug, Clone)]
enum Op {
    /// Push a signal's current value.
    Sig(SlotId),
    /// Push a literal (pre-masked at lowering).
    Lit {
        width: u32,
        value: u64,
    },
    Un(UnaryOp),
    Bin(BinaryOp),
    /// Pop an index, push one bit of a scalar signal.
    BitIdx(SlotId),
    /// Pop an index, push one word of a memory.
    WordIdx(MemId),
    Slice {
        hi: u32,
        lo: u32,
    },
    /// Pop `n` parts (first part deepest), push their concatenation.
    Cat(u32),
    /// Pop the condition; jump to the absolute op index if it is zero.
    JumpIfZero(u32),
    Jump(u32),
    Fail(Box<str>),
}

/// Opcode-category names for per-opcode profiling, indexed by
/// [`opcode_index`]. Kept in variant order of [`Op`].
#[cfg(feature = "prof")]
const OPCODE_NAMES: [&str; 11] = [
    "Sig",
    "Lit",
    "Un",
    "Bin",
    "BitIdx",
    "WordIdx",
    "Slice",
    "Cat",
    "JumpIfZero",
    "Jump",
    "Fail",
];

/// Index into [`OPCODE_NAMES`] for one opcode.
#[cfg(feature = "prof")]
fn opcode_index(op: &Op) -> usize {
    match op {
        Op::Sig(_) => 0,
        Op::Lit { .. } => 1,
        Op::Un(_) => 2,
        Op::Bin(_) => 3,
        Op::BitIdx(_) => 4,
        Op::WordIdx(_) => 5,
        Op::Slice { .. } => 6,
        Op::Cat(_) => 7,
        Op::JumpIfZero(_) => 8,
        Op::Jump(_) => 9,
        Op::Fail(_) => 10,
    }
}

/// A lowered expression: a postfix op sequence leaving one
/// `(value, width)` result on the stack.
type Prog = Box<[Op]>;

/// A compiled write destination (continuous-assign lhs or NBA lvalue).
#[derive(Debug, Clone)]
enum Dst {
    Whole(SlotId),
    /// Dynamic bit write into a scalar; the index is evaluated when the
    /// write is applied (commit time for NBAs).
    Bit(SlotId, Prog),
    Slice(SlotId, u32, u32),
    /// Slice write onto a memory: the interpreter silently ignores it.
    SliceNoop,
    Word(MemId, Prog),
    Fail(Box<str>),
}

impl Dst {
    fn slot(&self) -> Option<SlotId> {
        match self {
            Dst::Whole(s) | Dst::Bit(s, _) | Dst::Slice(s, _, _) => Some(*s),
            _ => None,
        }
    }
}

/// One tape entry: a levelized continuous assign.
#[derive(Debug, Clone)]
struct Instr {
    dst: Dst,
    rhs: Prog,
    /// Module-path id for eval attribution.
    module: u32,
}

/// A compiled procedural statement (posedge body).
#[derive(Debug, Clone)]
enum CStmt {
    /// Blocking and non-blocking both commit after the block runs (the
    /// generated code never relies on intra-block ordering).
    Assign(Dst, Prog),
    If {
        cond: Prog,
        then_body: Vec<CStmt>,
        else_body: Vec<CStmt>,
    },
    Case {
        subject: Prog,
        arms: Vec<(Prog, Vec<CStmt>)>,
        default: Vec<CStmt>,
    },
}

#[derive(Debug, Clone)]
struct ClockedBlock {
    clk: String,
    body: Vec<CStmt>,
}

/// What an applied write changed, for fanout dirtying.
enum Change {
    Slot(SlotId),
    Mem(MemId),
}

/// A [`Design`] compiled to a levelized instruction tape over a dense
/// signal arena, evaluated event-driven: only the fanout cones of
/// changed signals re-evaluate.
///
/// # Examples
///
/// ```
/// use deepburning_verilog::*;
///
/// let mut m = VModule::new("inc");
/// m.port(Port::input("clk", 1)).port(Port::output("q", 8));
/// m.item(Item::Net(NetDecl::reg("count", 8)));
/// m.item(Item::Always {
///     sensitivity: Sensitivity::PosEdge("clk".into()),
///     body: vec![Stmt::NonBlocking(
///         Expr::id("count"),
///         Expr::bin(BinaryOp::Add, Expr::id("count"), Expr::lit(8, 1)),
///     )],
/// });
/// m.item(Item::Assign { lhs: Expr::id("q"), rhs: Expr::id("count") });
///
/// let mut sim = CompiledSim::compile(&Design::new(m), "inc")?;
/// sim.clock()?;
/// sim.clock()?;
/// assert_eq!(sim.read("q")?, 2);
/// # Ok::<(), deepburning_verilog::SimulateError>(())
/// ```
#[derive(Debug)]
pub struct CompiledSim {
    names: BTreeMap<String, SlotId>,
    slots: Vec<Slot>,
    /// Scalar values (masked); memory slots keep 0 here.
    values: Vec<u64>,
    mems: Vec<Vec<u64>>,
    /// Owning slot of each memory (for widths).
    mem_slot: Vec<SlotId>,
    /// Levelized combinational instructions.
    tape: Vec<Instr>,
    /// Per-slot tape indices reading the slot (CSR: `fanout_off[s]..
    /// fanout_off[s + 1]` indexes `fanout_idx`) — flat so dirtying a
    /// fanout cone allocates nothing.
    fanout_off: Box<[u32]>,
    fanout_idx: Box<[u32]>,
    /// Per-memory tape indices reading the memory (CSR, as above).
    mem_fanout_off: Box<[u32]>,
    mem_fanout_idx: Box<[u32]>,
    /// Per-instruction dirty bits (one `u64` covers 64 tape slots) plus
    /// the live range bounds — settle scans words, not instructions, so
    /// a sparse dirty set over a long tape stays cheap.
    dirty: Vec<u64>,
    dirty_lo: usize,
    dirty_hi: usize,
    clocked: Vec<ClockedBlock>,
    inputs: Vec<String>,
    cycles: u64,
    stats: InterpStats,
    /// Instance-path table and per-path eval counts.
    module_paths: Vec<String>,
    module_evals: Vec<u64>,
    /// Per-tape-slot topological level (longest dependency path from
    /// any clocked/input root). Cheap to carry unconditionally; read by
    /// the profiler and by future partitioning work.
    instr_levels: Vec<u32>,
    /// Profiler state; `None` until [`CompiledSim::prof_enable`] — the
    /// settle dispatcher takes the plain (uncounted) path while unset.
    #[cfg(feature = "prof")]
    prof: Option<Box<ProfState>>,
    /// Parallel-settle state; `None` until [`CompiledSim::
    /// enable_parallel`] — the settle dispatcher takes the serial path
    /// while unset, so the plain engine carries one null check.
    par: Option<Box<ParState>>,
    vcd: Option<Box<VcdRecorder>>,
    vcd_slots: Vec<SlotId>,
    /// Reused operand stack for program execution.
    scratch: Vec<(u64, u32)>,
}

/// Counter-based profiler state for the compiled engine: everything is
/// a plain accumulator bumped inline on the profiled settle path — no
/// sampling thread, no clock reads inside the eval loop.
#[cfg(feature = "prof")]
#[derive(Debug, Default)]
struct ProfState {
    /// Per-tape-slot eval counts (indexed like `tape`).
    instr_evals: Vec<u64>,
    /// Per-tape-slot executed-opcode counts (indexed like `tape`).
    instr_ops: Vec<u64>,
    /// Executed-opcode counts by opcode category ([`OPCODE_NAMES`]).
    opcode_counts: [u64; OPCODE_NAMES.len()],
    /// Settle sweeps observed while profiling.
    sweeps: u64,
    /// Evals whose destination value did not change (wasted wakeups).
    wasted: u64,
    /// Dirty-set occupancy (instructions woken) per settle sweep.
    occupancy: Histogram,
}

/// The immutable state a program executes against — split out from
/// [`CompiledSim`] so execution can borrow it while the operand stack
/// is borrowed mutably.
struct ExecCtx<'a> {
    values: &'a [u64],
    mems: &'a [Vec<u64>],
    slots: &'a [Slot],
    mem_slot: &'a [SlotId],
}

/// Executes a lowered program against `ctx` using `stack` as the
/// operand scratch (cleared on entry). This is a port of the
/// interpreter's expression evaluator — same two-state logic, same
/// masking, same signed compare/divide/shift rules, same out-of-range
/// and division-by-zero behaviour — with jumps realising lazy
/// ternaries so the untaken arm is never executed.
fn exec(
    ctx: &ExecCtx,
    ops: &[Op],
    stack: &mut Vec<(u64, u32)>,
) -> Result<(u64, u32), SimulateError> {
    stack.clear();
    let mut pc = 0usize;
    while let Some(op) = ops.get(pc) {
        match op {
            Op::Sig(s) => {
                let w = ctx.slots[*s].width;
                stack.push((ctx.values[*s] & mask(w), w));
            }
            Op::Lit { width, value } => stack.push((*value, *width)),
            Op::Un(op) => {
                let (v, w) = stack.pop().expect("unary operand");
                stack.push(match op {
                    UnaryOp::Not => (u64::from(v == 0), 1),
                    UnaryOp::BitNot => (!v & mask(w), w),
                    UnaryOp::Neg => (v.wrapping_neg() & mask(w), w),
                    UnaryOp::RedOr => (u64::from(v != 0), 1),
                    UnaryOp::RedAnd => (u64::from(v == mask(w)), 1),
                });
            }
            Op::Bin(op) => {
                let (rv, rw) = stack.pop().expect("binary rhs");
                let (lv, lw) = stack.pop().expect("binary lhs");
                let w = lw.max(rw);
                let m = mask(w);
                let signed = |v: u64, w: u32| -> i64 {
                    let m = mask(w);
                    let v = v & m;
                    if w < 64 && v >> (w - 1) != 0 {
                        (v | !m) as i64
                    } else {
                        v as i64
                    }
                };
                stack.push(match op {
                    BinaryOp::Add => (lv.wrapping_add(rv) & m, w),
                    BinaryOp::Sub => (lv.wrapping_sub(rv) & m, w),
                    BinaryOp::Mul => (lv.wrapping_mul(rv) & m, w),
                    BinaryOp::Div => {
                        // `$signed` division truncating toward zero; /0
                        // yields 0 — the two-state stand-in for `x`.
                        let d = signed(rv, rw);
                        let q = if d == 0 {
                            0
                        } else {
                            signed(lv, lw).wrapping_div(d)
                        };
                        ((q as u64) & m, w)
                    }
                    BinaryOp::And => (lv & rv, w),
                    BinaryOp::Or => (lv | rv, w),
                    BinaryOp::Xor => (lv ^ rv, w),
                    BinaryOp::Shl => ((lv << (rv & 63)) & mask(lw), lw),
                    BinaryOp::Shr => {
                        // Arithmetic shift on the left operand's width.
                        let sv = signed(lv, lw) >> (rv & 63);
                        ((sv as u64) & mask(lw), lw)
                    }
                    BinaryOp::Eq => (u64::from((lv & m) == (rv & m)), 1),
                    BinaryOp::Ne => (u64::from((lv & m) != (rv & m)), 1),
                    BinaryOp::Lt => (u64::from(lv < rv), 1),
                    BinaryOp::Slt => (u64::from(signed(lv, lw) < signed(rv, rw)), 1),
                    BinaryOp::Ge => (u64::from(lv >= rv), 1),
                    BinaryOp::LogAnd => (u64::from(lv != 0 && rv != 0), 1),
                    BinaryOp::LogOr => (u64::from(lv != 0 || rv != 0), 1),
                });
            }
            Op::BitIdx(s) => {
                let (i, _) = stack.pop().expect("bit index");
                stack.push(((ctx.values[*s] >> (i & 63)) & 1, 1));
            }
            Op::WordIdx(m) => {
                let (i, _) = stack.pop().expect("word index");
                let w = ctx.slots[ctx.mem_slot[*m]].width;
                let v = ctx.mems[*m].get(i as usize).copied().unwrap_or(0);
                stack.push((v & mask(w), w));
            }
            Op::Slice { hi, lo } => {
                let (v, _) = stack.pop().expect("slice base");
                let w = hi - lo + 1;
                stack.push(((v >> lo) & mask(w), w));
            }
            Op::Cat(n) => {
                let base = stack.len() - *n as usize;
                let mut acc = 0u64;
                let mut total = 0u32;
                for &(v, w) in &stack[base..] {
                    acc = (acc << w) | (v & mask(w));
                    total += w;
                }
                stack.truncate(base);
                stack.push((acc & mask(total), total));
            }
            Op::JumpIfZero(t) => {
                let (c, _) = stack.pop().expect("ternary condition");
                if c == 0 {
                    pc = *t as usize;
                    continue;
                }
            }
            Op::Jump(t) => {
                pc = *t as usize;
                continue;
            }
            Op::Fail(message) => return Err(err(message.to_string())),
        }
        pc += 1;
    }
    Ok(stack.pop().expect("program leaves a result"))
}

/// Profiled twin of [`exec`]: identical semantics plus per-opcode and
/// total executed-op counting. Kept as a deliberate duplicate (rather
/// than a const-generic flag threaded through the hot loop) so the
/// unprofiled path carries zero extra state; the
/// `profiled_matches_unprofiled` test pins the two to identical
/// behaviour.
#[cfg(feature = "prof")]
fn exec_prof(
    ctx: &ExecCtx,
    ops: &[Op],
    stack: &mut Vec<(u64, u32)>,
    opcode_counts: &mut [u64; OPCODE_NAMES.len()],
    ops_executed: &mut u64,
) -> Result<(u64, u32), SimulateError> {
    stack.clear();
    let mut pc = 0usize;
    while let Some(op) = ops.get(pc) {
        opcode_counts[opcode_index(op)] += 1;
        *ops_executed += 1;
        match op {
            Op::Sig(s) => {
                let w = ctx.slots[*s].width;
                stack.push((ctx.values[*s] & mask(w), w));
            }
            Op::Lit { width, value } => stack.push((*value, *width)),
            Op::Un(op) => {
                let (v, w) = stack.pop().expect("unary operand");
                stack.push(match op {
                    UnaryOp::Not => (u64::from(v == 0), 1),
                    UnaryOp::BitNot => (!v & mask(w), w),
                    UnaryOp::Neg => (v.wrapping_neg() & mask(w), w),
                    UnaryOp::RedOr => (u64::from(v != 0), 1),
                    UnaryOp::RedAnd => (u64::from(v == mask(w)), 1),
                });
            }
            Op::Bin(op) => {
                let (rv, rw) = stack.pop().expect("binary rhs");
                let (lv, lw) = stack.pop().expect("binary lhs");
                let w = lw.max(rw);
                let m = mask(w);
                let signed = |v: u64, w: u32| -> i64 {
                    let m = mask(w);
                    let v = v & m;
                    if w < 64 && v >> (w - 1) != 0 {
                        (v | !m) as i64
                    } else {
                        v as i64
                    }
                };
                stack.push(match op {
                    BinaryOp::Add => (lv.wrapping_add(rv) & m, w),
                    BinaryOp::Sub => (lv.wrapping_sub(rv) & m, w),
                    BinaryOp::Mul => (lv.wrapping_mul(rv) & m, w),
                    BinaryOp::Div => {
                        let d = signed(rv, rw);
                        let q = if d == 0 {
                            0
                        } else {
                            signed(lv, lw).wrapping_div(d)
                        };
                        ((q as u64) & m, w)
                    }
                    BinaryOp::And => (lv & rv, w),
                    BinaryOp::Or => (lv | rv, w),
                    BinaryOp::Xor => (lv ^ rv, w),
                    BinaryOp::Shl => ((lv << (rv & 63)) & mask(lw), lw),
                    BinaryOp::Shr => {
                        let sv = signed(lv, lw) >> (rv & 63);
                        ((sv as u64) & mask(lw), lw)
                    }
                    BinaryOp::Eq => (u64::from((lv & m) == (rv & m)), 1),
                    BinaryOp::Ne => (u64::from((lv & m) != (rv & m)), 1),
                    BinaryOp::Lt => (u64::from(lv < rv), 1),
                    BinaryOp::Slt => (u64::from(signed(lv, lw) < signed(rv, rw)), 1),
                    BinaryOp::Ge => (u64::from(lv >= rv), 1),
                    BinaryOp::LogAnd => (u64::from(lv != 0 && rv != 0), 1),
                    BinaryOp::LogOr => (u64::from(lv != 0 || rv != 0), 1),
                });
            }
            Op::BitIdx(s) => {
                let (i, _) = stack.pop().expect("bit index");
                stack.push(((ctx.values[*s] >> (i & 63)) & 1, 1));
            }
            Op::WordIdx(m) => {
                let (i, _) = stack.pop().expect("word index");
                let w = ctx.slots[ctx.mem_slot[*m]].width;
                let v = ctx.mems[*m].get(i as usize).copied().unwrap_or(0);
                stack.push((v & mask(w), w));
            }
            Op::Slice { hi, lo } => {
                let (v, _) = stack.pop().expect("slice base");
                let w = hi - lo + 1;
                stack.push(((v >> lo) & mask(w), w));
            }
            Op::Cat(n) => {
                let base = stack.len() - *n as usize;
                let mut acc = 0u64;
                let mut total = 0u32;
                for &(v, w) in &stack[base..] {
                    acc = (acc << w) | (v & mask(w));
                    total += w;
                }
                stack.truncate(base);
                stack.push((acc & mask(total), total));
            }
            Op::JumpIfZero(t) => {
                let (c, _) = stack.pop().expect("ternary condition");
                if c == 0 {
                    pc = *t as usize;
                    continue;
                }
            }
            Op::Jump(t) => {
                pc = *t as usize;
                continue;
            }
            Op::Fail(message) => return Err(err(message.to_string())),
        }
        pc += 1;
    }
    Ok(stack.pop().expect("program leaves a result"))
}

struct ExprCompiler<'a> {
    names: &'a BTreeMap<String, SlotId>,
    slots: &'a [Slot],
}

impl ExprCompiler<'_> {
    fn cexpr(&self, e: &Expr) -> Prog {
        let mut ops = Vec::new();
        self.emit(e, &mut ops);
        ops.into_boxed_slice()
    }

    /// Appends the postfix lowering of `e` to `ops`. Operand order
    /// mirrors the interpreter's evaluation order (left before right,
    /// index before element read) so error precedence is preserved; a
    /// ternary lowers to `cond JumpIfZero(else) then Jump(end) else`.
    fn emit(&self, e: &Expr, ops: &mut Vec<Op>) {
        match e {
            Expr::Id(n) => match self.names.get(n) {
                Some(&s) if self.slots[s].mem.is_some() => {
                    ops.push(Op::Fail(format!("memory `{n}` read without index").into()));
                }
                Some(&s) => ops.push(Op::Sig(s)),
                None => ops.push(Op::Fail(format!("unknown signal `{n}`").into())),
            },
            Expr::Lit { width, value } => ops.push(Op::Lit {
                width: *width,
                value: *value & mask(*width),
            }),
            Expr::Unary(op, a) => {
                self.emit(a, ops);
                ops.push(Op::Un(*op));
            }
            Expr::Binary(op, l, r) => {
                self.emit(l, ops);
                self.emit(r, ops);
                ops.push(Op::Bin(*op));
            }
            Expr::Ternary(c, a, b) => {
                self.emit(c, ops);
                let jz = ops.len();
                ops.push(Op::JumpIfZero(0));
                self.emit(a, ops);
                let jmp = ops.len();
                ops.push(Op::Jump(0));
                ops[jz] = Op::JumpIfZero(ops.len() as u32);
                self.emit(b, ops);
                ops[jmp] = Op::Jump(ops.len() as u32);
            }
            Expr::Index(base, idx) => match base.lvalue_root() {
                None => ops.push(Op::Fail("index on a non-identifier".into())),
                Some(root) => match self.names.get(root) {
                    None => ops.push(Op::Fail(format!("unknown signal `{root}`").into())),
                    Some(&s) => {
                        self.emit(idx, ops);
                        match self.slots[s].mem {
                            Some(m) => ops.push(Op::WordIdx(m)),
                            None => ops.push(Op::BitIdx(s)),
                        }
                    }
                },
            },
            Expr::Slice(base, hi, lo) => {
                self.emit(base, ops);
                ops.push(Op::Slice { hi: *hi, lo: *lo });
            }
            Expr::Concat(es) => {
                for part in es {
                    self.emit(part, ops);
                }
                ops.push(Op::Cat(es.len() as u32));
            }
        }
    }

    fn cdst(&self, lhs: &Expr) -> Dst {
        match lhs {
            Expr::Id(n) => match self.names.get(n) {
                Some(&s) if self.slots[s].mem.is_some() => {
                    Dst::Fail(format!("memory `{n}` written without index").into())
                }
                Some(&s) => Dst::Whole(s),
                None => Dst::Fail(format!("unknown signal `{n}`").into()),
            },
            Expr::Index(base, idx) => match base.lvalue_root() {
                None => Dst::Fail("index write on a non-identifier".into()),
                Some(root) => match self.names.get(root) {
                    None => Dst::Fail(format!("unknown signal `{root}`").into()),
                    Some(&s) => match self.slots[s].mem {
                        Some(m) => Dst::Word(m, self.cexpr(idx)),
                        None => Dst::Bit(s, self.cexpr(idx)),
                    },
                },
            },
            Expr::Slice(base, hi, lo) => match base.lvalue_root() {
                None => Dst::Fail("slice write on a non-identifier".into()),
                Some(root) => match self.names.get(root) {
                    None => Dst::Fail(format!("unknown signal `{root}`").into()),
                    Some(&s) => match self.slots[s].mem {
                        Some(_) => Dst::SliceNoop,
                        None => Dst::Slice(s, *hi, *lo),
                    },
                },
            },
            _ => Dst::Fail("assignment to a non-lvalue".into()),
        }
    }

    fn cstmts(&self, stmts: &[Stmt]) -> Vec<CStmt> {
        stmts
            .iter()
            .filter_map(|s| match s {
                Stmt::NonBlocking(lhs, rhs) | Stmt::Blocking(lhs, rhs) => {
                    Some(CStmt::Assign(self.cdst(lhs), self.cexpr(rhs)))
                }
                Stmt::If {
                    cond,
                    then_body,
                    else_body,
                } => Some(CStmt::If {
                    cond: self.cexpr(cond),
                    then_body: self.cstmts(then_body),
                    else_body: self.cstmts(else_body),
                }),
                Stmt::Case {
                    subject,
                    arms,
                    default,
                } => Some(CStmt::Case {
                    subject: self.cexpr(subject),
                    arms: arms
                        .iter()
                        .map(|(m, body)| (self.cexpr(m), self.cstmts(body)))
                        .collect(),
                    default: self.cstmts(default),
                }),
                Stmt::Comment(_) => None,
            })
            .collect()
    }
}

/// Collects arena reads (slots and memories) of a lowered program —
/// the dependency edges for levelization and fanout. Ops inside untaken
/// ternary arms count too (conservative dirtying is sound: evaluation
/// is pure).
fn collect_reads(ops: &[Op], slots: &mut Vec<SlotId>, mems: &mut Vec<MemId>) {
    for op in ops {
        match op {
            Op::Sig(s) | Op::BitIdx(s) => slots.push(*s),
            Op::WordIdx(m) => mems.push(*m),
            _ => {}
        }
    }
}

/// Reads of one instruction: the rhs plus any dynamic index on the dst.
fn instr_reads(instr: &Instr) -> (Vec<SlotId>, Vec<MemId>) {
    let mut slots = Vec::new();
    let mut mems = Vec::new();
    collect_reads(&instr.rhs, &mut slots, &mut mems);
    match &instr.dst {
        Dst::Bit(_, idx) | Dst::Word(_, idx) => collect_reads(idx, &mut slots, &mut mems),
        _ => {}
    }
    slots.sort_unstable();
    slots.dedup();
    mems.sort_unstable();
    mems.dedup();
    (slots, mems)
}

impl CompiledSim {
    /// Flattens and compiles `top` into a levelized tape, then runs the
    /// initial full evaluation (every signal starts at zero).
    ///
    /// # Errors
    ///
    /// Returns [`SimulateError`] on unknown modules, signals wider than
    /// 64 bits, combinational loops among the continuous assigns, or
    /// evaluation errors during the initial pass.
    pub fn compile(design: &Design, top: &str) -> Result<Self, SimulateError> {
        let flat = flatten_design(design, top)?;

        // Arena construction, declaration order.
        let mut names: BTreeMap<String, SlotId> = BTreeMap::new();
        let mut slots: Vec<Slot> = Vec::with_capacity(flat.signals.len());
        let mut mems: Vec<Vec<u64>> = Vec::new();
        let mut mem_slot: Vec<SlotId> = Vec::new();
        let mut module_paths: Vec<String> = vec![String::new()];
        let mut path_ids: BTreeMap<String, u32> = BTreeMap::new();
        path_ids.insert(String::new(), 0);
        for sig in &flat.signals {
            let path = sig.name.rsplit_once('.').map_or("", |(p, _)| p);
            let module = *path_ids.entry(path.to_string()).or_insert_with(|| {
                module_paths.push(path.to_string());
                (module_paths.len() - 1) as u32
            });
            let mem = sig.depth.map(|d| {
                mems.push(vec![0; d]);
                mem_slot.push(0); // patched below once the slot id is known
                mems.len() - 1
            });
            let slot = Slot {
                width: sig.width,
                mem,
                module,
            };
            match names.get(&sig.name) {
                // A redeclaration replaces the earlier signal, mirroring
                // the interpreter's map insert.
                Some(&existing) => {
                    slots[existing] = slot;
                    if let Some(m) = mem {
                        mem_slot[m] = existing;
                    }
                }
                None => {
                    slots.push(slot);
                    names.insert(sig.name.clone(), slots.len() - 1);
                    if let Some(m) = mem {
                        mem_slot[m] = slots.len() - 1;
                    }
                }
            }
        }

        // Compile continuous assigns.
        let comp = ExprCompiler {
            names: &names,
            slots: &slots,
        };
        let instrs: Vec<Instr> = flat
            .assigns
            .iter()
            .map(|(lhs, rhs)| {
                let dst = comp.cdst(lhs);
                let module = dst.slot().map_or(0, |s| slots[s].module);
                Instr {
                    dst,
                    rhs: comp.cexpr(rhs),
                    module,
                }
            })
            .collect();

        // Levelize: producers per slot/memory, then a stable Kahn sort
        // (declaration order within a level).
        let mut slot_writers: Vec<Vec<usize>> = vec![Vec::new(); slots.len()];
        let mut mem_writers: Vec<Vec<usize>> = vec![Vec::new(); mems.len()];
        for (i, instr) in instrs.iter().enumerate() {
            match &instr.dst {
                Dst::Whole(s) | Dst::Bit(s, _) | Dst::Slice(s, _, _) => slot_writers[*s].push(i),
                Dst::Word(m, _) => mem_writers[*m].push(i),
                Dst::SliceNoop | Dst::Fail(_) => {}
            }
        }
        let reads: Vec<(Vec<SlotId>, Vec<MemId>)> = instrs.iter().map(instr_reads).collect();
        let mut indegree = vec![0usize; instrs.len()];
        let mut successors: Vec<Vec<usize>> = vec![Vec::new(); instrs.len()];
        for (r, (rslots, rmems)) in reads.iter().enumerate() {
            for &s in rslots {
                for &w in &slot_writers[s] {
                    successors[w].push(r);
                    indegree[r] += 1;
                }
            }
            for &m in rmems {
                for &w in &mem_writers[m] {
                    successors[w].push(r);
                    indegree[r] += 1;
                }
            }
        }
        let mut ready = std::collections::BinaryHeap::new();
        for (i, &d) in indegree.iter().enumerate() {
            if d == 0 {
                ready.push(std::cmp::Reverse(i));
            }
        }
        let mut order = Vec::with_capacity(instrs.len());
        // Longest-path level per instruction: every edge `i -> r` is
        // relaxed before `r` pops, so `level[r]` is final at pop time.
        let mut level = vec![0u32; instrs.len()];
        while let Some(std::cmp::Reverse(i)) = ready.pop() {
            order.push(i);
            for &r in &successors[i] {
                indegree[r] -= 1;
                level[r] = level[r].max(level[i] + 1);
                if indegree[r] == 0 {
                    ready.push(std::cmp::Reverse(r));
                }
            }
        }
        if order.len() != instrs.len() {
            // Name the module instance and local signal stuck on the
            // cycle, so the failure is actionable without rerunning the
            // full cycle diagnosis (`find_comb_cycle`).
            let stuck = indegree
                .iter()
                .position(|&d| d > 0)
                .and_then(|i| instrs[i].dst.slot())
                .and_then(|s| names.iter().find(|(_, &id)| id == s))
                .map_or_else(String::new, |(n, _)| {
                    let (path, sig) = n.rsplit_once('.').unwrap_or(("", n));
                    if path.is_empty() {
                        format!(" involving signal `{sig}` in top module `{top}`")
                    } else {
                        format!(" involving signal `{sig}` in instance `{path}`")
                    }
                });
            return Err(err(format!(
                "combinational loop: continuous assigns do not levelize{stuck}"
            )));
        }
        let mut instr_storage: Vec<Option<Instr>> = instrs.into_iter().map(Some).collect();
        let tape: Vec<Instr> = order
            .iter()
            .map(|&i| instr_storage[i].take().expect("each instr placed once"))
            .collect();
        let instr_levels: Vec<u32> = order.iter().map(|&i| level[i]).collect();

        // Fanout lists over the final tape order, flattened to CSR.
        let mut fanout: Vec<Vec<u32>> = vec![Vec::new(); slots.len()];
        let mut mem_fanout: Vec<Vec<u32>> = vec![Vec::new(); mems.len()];
        for (t, &orig) in order.iter().enumerate() {
            let (rslots, rmems) = &reads[orig];
            for &s in rslots {
                fanout[s].push(t as u32);
            }
            for &m in rmems {
                mem_fanout[m].push(t as u32);
            }
        }
        let to_csr = |lists: Vec<Vec<u32>>| -> (Box<[u32]>, Box<[u32]>) {
            let mut off = Vec::with_capacity(lists.len() + 1);
            let mut idx = Vec::new();
            off.push(0);
            for list in &lists {
                idx.extend_from_slice(list);
                off.push(idx.len() as u32);
            }
            (off.into_boxed_slice(), idx.into_boxed_slice())
        };
        let (fanout_off, fanout_idx) = to_csr(fanout);
        let (mem_fanout_off, mem_fanout_idx) = to_csr(mem_fanout);

        // Compile clocked blocks.
        let clocked: Vec<ClockedBlock> = flat
            .clocked
            .iter()
            .map(|(clk, body)| ClockedBlock {
                clk: clk.clone(),
                body: comp.cstmts(body),
            })
            .collect();

        let tape_len = tape.len();
        let mut dirty = vec![u64::MAX; tape_len.div_ceil(64)];
        if let Some(last) = dirty.last_mut() {
            let used = tape_len % 64;
            if used != 0 {
                *last = u64::MAX >> (64 - used);
            }
        }
        let module_evals = vec![0; module_paths.len()];
        let mut sim = CompiledSim {
            names,
            values: vec![0; slots.len()],
            slots,
            mems,
            mem_slot,
            tape,
            fanout_off,
            fanout_idx,
            mem_fanout_off,
            mem_fanout_idx,
            dirty,
            dirty_lo: 0,
            dirty_hi: tape_len.saturating_sub(1),
            clocked,
            inputs: flat.inputs,
            cycles: 0,
            stats: InterpStats::default(),
            module_paths,
            module_evals,
            instr_levels,
            #[cfg(feature = "prof")]
            prof: None,
            par: None,
            vcd: None,
            vcd_slots: Vec::new(),
            scratch: Vec::with_capacity(64),
        };
        if tape_len == 0 {
            sim.dirty_lo = usize::MAX;
            sim.dirty_hi = 0;
        }
        // Initial full evaluation (the interpreter settles at elaborate).
        sim.settle()?;
        Ok(sim)
    }

    fn width(&self, slot: SlotId) -> u32 {
        self.slots[slot].width
    }

    fn ctx(&self) -> ExecCtx<'_> {
        ExecCtx {
            values: &self.values,
            mems: &self.mems,
            slots: &self.slots,
            mem_slot: &self.mem_slot,
        }
    }

    /// Applies a write, reporting what changed (for fanout dirtying).
    /// Dynamic indices evaluate against the current state, matching the
    /// interpreter's commit-time lvalue evaluation.
    fn apply(
        &mut self,
        dst: &Dst,
        value: u64,
        stack: &mut Vec<(u64, u32)>,
    ) -> Result<Option<Change>, SimulateError> {
        Ok(match dst {
            Dst::Whole(s) => {
                let new = value & mask(self.width(*s));
                if self.values[*s] != new {
                    self.values[*s] = new;
                    Some(Change::Slot(*s))
                } else {
                    None
                }
            }
            Dst::Bit(s, idx) => {
                let (i, _) = exec(&self.ctx(), idx, stack)?;
                let bit = i & 63;
                let old = self.values[*s];
                let new = (old & !(1 << bit)) | ((value & 1) << bit);
                if old != new {
                    self.values[*s] = new;
                    Some(Change::Slot(*s))
                } else {
                    None
                }
            }
            Dst::Slice(s, hi, lo) => {
                let field = mask(hi - lo + 1);
                let old = self.values[*s];
                let new = (old & !(field << lo)) | ((value & field) << lo);
                if old != new {
                    self.values[*s] = new;
                    Some(Change::Slot(*s))
                } else {
                    None
                }
            }
            Dst::SliceNoop => None,
            Dst::Word(m, idx) => {
                let (i, _) = exec(&self.ctx(), idx, stack)?;
                let new = value & mask(self.width(self.mem_slot[*m]));
                match self.mems[*m].get(i as usize) {
                    Some(&old) if old != new => {
                        self.mems[*m][i as usize] = new;
                        Some(Change::Mem(*m))
                    }
                    _ => None,
                }
            }
            Dst::Fail(message) => return Err(err(message.to_string())),
        })
    }

    fn mark_instr(&mut self, t: usize) {
        self.dirty[t >> 6] |= 1u64 << (t & 63);
        if self.dirty_lo == usize::MAX {
            self.dirty_lo = t;
            self.dirty_hi = t;
        } else {
            self.dirty_lo = self.dirty_lo.min(t);
            self.dirty_hi = self.dirty_hi.max(t);
        }
    }

    fn mark_change(&mut self, change: Change) {
        let (lo, hi, mem) = match change {
            Change::Slot(s) => (self.fanout_off[s], self.fanout_off[s + 1], false),
            Change::Mem(m) => (self.mem_fanout_off[m], self.mem_fanout_off[m + 1], true),
        };
        for k in lo as usize..hi as usize {
            let t = if mem {
                self.mem_fanout_idx[k]
            } else {
                self.fanout_idx[k]
            } as usize;
            self.mark_instr(t);
        }
    }

    /// Drains the dirty instructions in one forward pass over the
    /// levelized tape (fanout always points forward, so a single scan
    /// reaches the fixed point the interpreter iterates toward). The
    /// scan walks dirty *words* via `trailing_zeros`, so a handful of
    /// dirty instructions on a multi-thousand-entry tape cost a few
    /// word reads, not a per-instruction sweep.
    ///
    /// Dispatches to the plain or profiled drain; without the `prof`
    /// feature this compiles down to a direct call to
    /// [`CompiledSim::settle_plain`].
    fn settle(&mut self) -> Result<(), SimulateError> {
        if self.par.is_some() {
            return self.settle_par();
        }
        #[cfg(feature = "prof")]
        if self.prof.is_some() {
            return self.settle_prof();
        }
        self.settle_plain()
    }

    fn settle_plain(&mut self) -> Result<(), SimulateError> {
        self.stats.settle_passes += 1;
        if self.dirty_lo == usize::MAX {
            return Ok(());
        }
        let mut stack = std::mem::take(&mut self.scratch);
        let mut result = Ok(());
        let mut w = self.dirty_lo >> 6;
        // `dirty_hi` can grow while we drain (fanout is strictly
        // forward), so the bound is re-read each iteration.
        'words: while w <= self.dirty_hi >> 6 && w < self.dirty.len() {
            // Re-read the word after every instruction: an eval may have
            // dirtied a later bit of this same word.
            while self.dirty[w] != 0 {
                let bit = self.dirty[w].trailing_zeros() as usize;
                self.dirty[w] &= !(1u64 << bit);
                let i = (w << 6) | bit;
                self.stats.assign_evals += 1;
                // The tape is immutable during execution; take the instr
                // out to appease the borrow checker without cloning the
                // program.
                let instr = std::mem::replace(
                    &mut self.tape[i],
                    Instr {
                        dst: Dst::SliceNoop,
                        rhs: Prog::default(),
                        module: 0,
                    },
                );
                let outcome = exec(&self.ctx(), &instr.rhs, &mut stack)
                    .and_then(|(v, _)| self.apply(&instr.dst, v, &mut stack));
                self.module_evals[instr.module as usize] += 1;
                self.tape[i] = instr;
                match outcome {
                    Ok(Some(change)) => self.mark_change(change),
                    Ok(None) => {}
                    Err(e) => {
                        result = Err(e);
                        break 'words;
                    }
                }
            }
            w += 1;
        }
        self.scratch = stack;
        // On the error path some dirty bits may remain set; clear them so
        // the scheduler invariant (all-clear between settles) holds.
        if result.is_err() {
            self.dirty.iter_mut().for_each(|w| *w = 0);
        }
        self.dirty_lo = usize::MAX;
        self.dirty_hi = 0;
        result
    }

    /// Profiled twin of [`CompiledSim::settle_plain`]: the identical
    /// drain plus per-instruction eval/op attribution, wasted-wakeup
    /// counting and dirty-set occupancy recording. The [`ProfState`] is
    /// moved out for the duration so `apply` can still borrow `self`.
    #[cfg(feature = "prof")]
    fn settle_prof(&mut self) -> Result<(), SimulateError> {
        let mut prof = self.prof.take().expect("settle_prof requires prof state");
        self.stats.settle_passes += 1;
        prof.sweeps += 1;
        if self.dirty_lo == usize::MAX {
            prof.occupancy.record(0);
            self.prof = Some(prof);
            return Ok(());
        }
        let mut stack = std::mem::take(&mut self.scratch);
        let mut result = Ok(());
        let mut woken = 0u64;
        let mut w = self.dirty_lo >> 6;
        'words: while w <= self.dirty_hi >> 6 && w < self.dirty.len() {
            while self.dirty[w] != 0 {
                let bit = self.dirty[w].trailing_zeros() as usize;
                self.dirty[w] &= !(1u64 << bit);
                let i = (w << 6) | bit;
                self.stats.assign_evals += 1;
                woken += 1;
                prof.instr_evals[i] += 1;
                let instr = std::mem::replace(
                    &mut self.tape[i],
                    Instr {
                        dst: Dst::SliceNoop,
                        rhs: Prog::default(),
                        module: 0,
                    },
                );
                // Destination index programs inside `apply` run through
                // the plain `exec` and are not op-counted; attribution
                // covers the rhs tape, which dominates.
                let mut ops_here = 0u64;
                let outcome = exec_prof(
                    &self.ctx(),
                    &instr.rhs,
                    &mut stack,
                    &mut prof.opcode_counts,
                    &mut ops_here,
                )
                .and_then(|(v, _)| self.apply(&instr.dst, v, &mut stack));
                prof.instr_ops[i] += ops_here;
                self.module_evals[instr.module as usize] += 1;
                self.tape[i] = instr;
                match outcome {
                    Ok(Some(change)) => self.mark_change(change),
                    Ok(None) => prof.wasted += 1,
                    Err(e) => {
                        result = Err(e);
                        break 'words;
                    }
                }
            }
            w += 1;
        }
        prof.occupancy.record(woken);
        self.scratch = stack;
        if result.is_err() {
            self.dirty.iter_mut().for_each(|w| *w = 0);
        }
        self.dirty_lo = usize::MAX;
        self.dirty_hi = 0;
        self.prof = Some(prof);
        result
    }

    /// Starts profiling: every subsequent settle takes the counted
    /// path. Counters accumulate across calls to `clock`; idempotent
    /// (re-enabling keeps existing counts).
    #[cfg(feature = "prof")]
    pub fn prof_enable(&mut self) {
        if self.prof.is_none() {
            self.prof = Some(Box::new(ProfState {
                instr_evals: vec![0; self.tape.len()],
                instr_ops: vec![0; self.tape.len()],
                ..ProfState::default()
            }));
        }
    }

    /// Snapshots the accumulated profile, or `None` if
    /// [`CompiledSim::prof_enable`] was never called.
    #[cfg(feature = "prof")]
    pub fn prof_profile(&self) -> Option<EngineProfile> {
        let prof = self.prof.as_ref()?;
        let total_evals: u64 = prof.instr_evals.iter().sum();
        let total_ops: u64 = prof.instr_ops.iter().sum();

        // Tape segments keyed (module, level).
        let mut seg: BTreeMap<(u32, u32), (u64, u64, u64)> = BTreeMap::new();
        for (i, instr) in self.tape.iter().enumerate() {
            let e = seg.entry((instr.module, self.instr_levels[i])).or_default();
            e.0 += 1;
            e.1 += prof.instr_evals[i];
            e.2 += prof.instr_ops[i];
        }
        let segments = seg
            .into_iter()
            .map(|((module, level), (instrs, evals, ops))| SegmentProf {
                module: self.module_paths[module as usize].clone(),
                level,
                instrs,
                evals,
                ops,
            })
            .collect();

        let opcodes = OPCODE_NAMES
            .iter()
            .zip(prof.opcode_counts.iter())
            .map(|(&opcode, &count)| OpcodeProf { opcode, count })
            .collect();

        // Cross-level traffic per register-boundary cut: an eval of
        // instruction `i` feeding a strictly later level `lt` crosses
        // every cut in `(level[i], lt]`; accumulated with a difference
        // array and prefix-summed.
        let max_level = self.instr_levels.iter().copied().max().unwrap_or(0);
        let mut diff = vec![0i64; max_level as usize + 2];
        for (i, instr) in self.tape.iter().enumerate() {
            let e = prof.instr_evals[i];
            if e == 0 {
                continue;
            }
            let li = self.instr_levels[i];
            let (lo, hi, mem) = match &instr.dst {
                Dst::Whole(s) | Dst::Bit(s, _) | Dst::Slice(s, _, _) => {
                    (self.fanout_off[*s], self.fanout_off[*s + 1], false)
                }
                Dst::Word(m, _) => (self.mem_fanout_off[*m], self.mem_fanout_off[*m + 1], true),
                Dst::SliceNoop | Dst::Fail(_) => continue,
            };
            for k in lo as usize..hi as usize {
                let t = if mem {
                    self.mem_fanout_idx[k]
                } else {
                    self.fanout_idx[k]
                } as usize;
                let lt = self.instr_levels[t];
                if lt > li {
                    diff[li as usize + 1] += e as i64;
                    diff[lt as usize + 1] -= e as i64;
                }
            }
        }
        let mut cuts = Vec::new();
        let mut acc = 0i64;
        for (cut, &d) in diff.iter().enumerate().take(max_level as usize + 1).skip(1) {
            acc += d;
            cuts.push(CutProf {
                level: cut as u32,
                cross_evals: acc.max(0) as u64,
            });
        }

        Some(EngineProfile {
            engine: "compiled".to_string(),
            total_evals,
            total_ops,
            segments,
            opcodes,
            sweeps: SweepProf {
                sweeps: prof.sweeps,
                evals: total_evals,
                wasted_wakeups: prof.wasted,
                dirty_occupancy: prof.occupancy.clone(),
            },
            cuts,
        })
    }

    /// Topological level of each tape instruction, in tape order — the
    /// longest dependency path from any clocked/input root. The
    /// profiler aggregates over this; partitioning experiments can read
    /// it directly.
    pub fn instr_levels(&self) -> &[u32] {
        &self.instr_levels
    }

    /// Marks the entire tape dirty — benchmark hook for measuring a
    /// full-tape settle sweep.
    #[doc(hidden)]
    pub fn dirty_all(&mut self) {
        for t in 0..self.tape.len() {
            self.mark_instr(t);
        }
    }

    /// Benchmark hook: settles via the uncounted drain directly.
    #[doc(hidden)]
    pub fn settle_direct(&mut self) -> Result<(), SimulateError> {
        self.settle_plain()
    }

    /// Benchmark hook: settles via the profiler dispatcher, as the
    /// production paths do.
    #[doc(hidden)]
    pub fn settle_dispatch(&mut self) -> Result<(), SimulateError> {
        self.settle()
    }

    fn run_cstmts<'b>(
        &self,
        stmts: &'b [CStmt],
        nba: &mut Vec<(&'b Dst, u64)>,
        stack: &mut Vec<(u64, u32)>,
    ) -> Result<(), SimulateError> {
        let ctx = self.ctx();
        for s in stmts {
            match s {
                CStmt::Assign(dst, rhs) => {
                    let (v, _) = exec(&ctx, rhs, stack)?;
                    nba.push((dst, v));
                }
                CStmt::If {
                    cond,
                    then_body,
                    else_body,
                } => {
                    let (c, _) = exec(&ctx, cond, stack)?;
                    if c != 0 {
                        self.run_cstmts(then_body, nba, stack)?;
                    } else {
                        self.run_cstmts(else_body, nba, stack)?;
                    }
                }
                CStmt::Case {
                    subject,
                    arms,
                    default,
                } => {
                    let (sv, sw) = exec(&ctx, subject, stack)?;
                    let mut hit = false;
                    for (m, body) in arms {
                        let (mv, _) = exec(&ctx, m, stack)?;
                        if (mv & mask(sw)) == sv {
                            self.run_cstmts(body, nba, stack)?;
                            hit = true;
                            break;
                        }
                    }
                    if !hit {
                        self.run_cstmts(default, nba, stack)?;
                    }
                }
            }
        }
        Ok(())
    }

    /// See [`Simulator::poke`].
    ///
    /// # Errors
    ///
    /// Returns an error for unknown or non-input signals.
    pub fn poke(&mut self, name: &str, value: u64) -> Result<(), SimulateError> {
        if !self.inputs.iter().any(|i| i == name) {
            return Err(err(format!("`{name}` is not a top-level input")));
        }
        let slot = *self.names.get(name).expect("inputs are declared");
        let mut stack = std::mem::take(&mut self.scratch);
        let applied = self.apply(&Dst::Whole(slot), value, &mut stack);
        self.scratch = stack;
        if let Some(change) = applied? {
            self.mark_change(change);
        }
        self.settle()
    }

    /// See [`Simulator::read`].
    ///
    /// # Errors
    ///
    /// Returns an error for unknown signals or whole-memory reads.
    pub fn read(&self, name: &str) -> Result<u64, SimulateError> {
        match self.names.get(name) {
            Some(&s) if self.slots[s].mem.is_some() => {
                Err(err(format!("memory `{name}` read without index")))
            }
            Some(&s) => Ok(self.values[s] & mask(self.width(s))),
            None => Err(err(format!("unknown signal `{name}`"))),
        }
    }

    /// See [`Simulator::load_memory`]. Propagation into dependent
    /// combinational reads happens at the next settle (poke or clock),
    /// matching the interpreter's lazy re-walk.
    ///
    /// # Errors
    ///
    /// Returns an error if the signal is not a memory.
    pub fn load_memory(&mut self, name: &str, words: &[u64]) -> Result<(), SimulateError> {
        let slot = match self.names.get(name) {
            Some(&s) => s,
            None => return Err(err(format!("unknown signal `{name}`"))),
        };
        let m = match self.slots[slot].mem {
            Some(m) => m,
            None => return Err(err(format!("`{name}` is not a memory"))),
        };
        let w = self.width(slot);
        let len = self.mems[m].len().min(words.len());
        for (dst, src) in self.mems[m][..len].iter_mut().zip(words) {
            *dst = src & mask(w);
        }
        self.mark_change(Change::Mem(m));
        Ok(())
    }

    /// See [`Simulator::clock`].
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors.
    pub fn clock(&mut self) -> Result<(), SimulateError> {
        self.clock_named("clk")
    }

    /// See [`Simulator::clock_named`].
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors.
    pub fn clock_named(&mut self, clk: &str) -> Result<(), SimulateError> {
        let blocks = std::mem::take(&mut self.clocked);
        let mut stack = std::mem::take(&mut self.scratch);
        let mut nba: Vec<(&Dst, u64)> = Vec::new();
        let mut result = Ok(());
        for block in blocks.iter().filter(|b| b.clk == clk) {
            if let Err(e) = self.run_cstmts(&block.body, &mut nba, &mut stack) {
                result = Err(e);
                break;
            }
        }
        if result.is_ok() {
            self.stats.nba_writes += nba.len() as u64;
            for (dst, v) in &nba {
                match self.apply(dst, *v, &mut stack) {
                    Ok(Some(change)) => {
                        if let Some(s) = dst.slot() {
                            self.module_evals[self.slots[s].module as usize] += 1;
                        }
                        self.mark_change(change);
                    }
                    Ok(None) => {
                        if let Some(s) = dst.slot() {
                            self.module_evals[self.slots[s].module as usize] += 1;
                        }
                    }
                    Err(e) => {
                        result = Err(e);
                        break;
                    }
                }
            }
        }
        drop(nba);
        self.clocked = blocks;
        self.scratch = stack;
        result?;
        self.cycles += 1;
        self.stats.clock_edges += 1;
        self.settle()?;
        self.vcd_capture();
        Ok(())
    }

    /// Cycles executed so far.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Execution counters accumulated so far. `clock_edges` and
    /// `nba_writes` match the interpreter bit-for-bit; `settle_passes`
    /// counts scheduler drains and `assign_evals` counts instructions
    /// actually evaluated (the event-driven engine touches only dirty
    /// fanout cones, so these are far below the tree engine's).
    pub fn stats(&self) -> InterpStats {
        self.stats
    }

    /// Number of flattened signals (diagnostics).
    pub fn signal_count(&self) -> usize {
        self.names.len()
    }

    /// Tape length (diagnostics): one instruction per flattened
    /// continuous assign.
    pub fn instr_count(&self) -> usize {
        self.tape.len()
    }

    /// Evaluations attributed per flattened instance path (`""` is the
    /// top module), descending by count — the compiled engine's answer
    /// to "which generated block is hot". Instructions map back to the
    /// module that declared their destination signal.
    pub fn evals_by_module(&self) -> Vec<(String, u64)> {
        let mut out: Vec<(String, u64)> = self
            .module_paths
            .iter()
            .zip(&self.module_evals)
            .filter(|(_, &n)| n > 0)
            .map(|(p, &n)| (p.clone(), n))
            .collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        out
    }

    // -- waveform recording -------------------------------------------------

    /// Starts VCD recording; signal set and order match the interpreter
    /// (sorted hierarchical names, scalars only), so the two engines
    /// produce byte-identical dumps for identical executions.
    pub fn vcd_begin(&mut self, top: &str) {
        let signals = self.vcd_signal_list();
        self.vcd = Some(Box::new(VcdRecorder::new(top, &signals, 10)));
        self.vcd_capture();
    }

    /// Starts VCD recording that streams into `sink` instead of
    /// buffering: constant resident memory regardless of run length.
    /// [`CompiledSim::vcd_end`] then flushes the sink and returns `None`.
    pub fn vcd_begin_streaming(&mut self, top: &str, sink: Box<dyn std::io::Write + Send>) {
        let signals = self.vcd_signal_list();
        self.vcd = Some(Box::new(VcdRecorder::streaming(top, &signals, 10, sink)));
        self.vcd_capture();
    }

    fn vcd_signal_list(&mut self) -> Vec<(String, u32)> {
        let signals: Vec<(String, u32)> = self
            .names
            .iter()
            .filter(|(_, &s)| self.slots[s].mem.is_none())
            .map(|(name, &s)| (name.clone(), self.width(s)))
            .collect();
        self.vcd_slots = self
            .names
            .iter()
            .filter(|(_, &s)| self.slots[s].mem.is_none())
            .map(|(_, &s)| s)
            .collect();
        signals
    }

    /// Forces a sample outside a clock edge.
    pub fn vcd_sample_now(&mut self) {
        self.vcd_capture();
    }

    /// Stops recording. Buffered recordings return the VCD document;
    /// streamed recordings flush their sink and return `None`.
    pub fn vcd_end(&mut self) -> Option<String> {
        self.vcd_slots.clear();
        self.vcd.take().and_then(|rec| rec.finish())
    }

    /// Timesteps recorded so far, or 0 when not recording.
    pub fn vcd_timesteps(&self) -> u64 {
        self.vcd.as_ref().map(|r| r.timesteps()).unwrap_or(0)
    }

    /// Bytes the active recording has pushed through its sink.
    pub fn vcd_bytes_written(&self) -> u64 {
        self.vcd.as_ref().map(|r| r.bytes_written()).unwrap_or(0)
    }

    /// Width of a scalar signal, or `None` for unknowns and memories.
    pub fn signal_width(&self, name: &str) -> Option<u32> {
        self.names
            .get(name)
            .filter(|&&s| self.slots[s].mem.is_none())
            .map(|&s| self.width(s))
    }

    fn vcd_capture(&mut self) {
        if let Some(mut rec) = self.vcd.take() {
            let values: Vec<u64> = self
                .vcd_slots
                .iter()
                .map(|&s| self.values[s] & mask(self.width(s)))
                .collect();
            rec.sample(&values);
            self.vcd = Some(rec);
        }
    }
}

impl Simulator for CompiledSim {
    fn poke(&mut self, name: &str, value: u64) -> Result<(), SimulateError> {
        CompiledSim::poke(self, name, value)
    }

    fn read(&self, name: &str) -> Result<u64, SimulateError> {
        CompiledSim::read(self, name)
    }

    fn load_memory(&mut self, name: &str, words: &[u64]) -> Result<(), SimulateError> {
        CompiledSim::load_memory(self, name, words)
    }

    fn clock_named(&mut self, clk: &str) -> Result<(), SimulateError> {
        CompiledSim::clock_named(self, clk)
    }

    fn cycles(&self) -> u64 {
        CompiledSim::cycles(self)
    }

    fn stats(&self) -> InterpStats {
        CompiledSim::stats(self)
    }

    fn signal_count(&self) -> usize {
        CompiledSim::signal_count(self)
    }

    fn evals_by_module(&self) -> Vec<(String, u64)> {
        CompiledSim::evals_by_module(self)
    }

    fn vcd_begin(&mut self, top: &str) {
        CompiledSim::vcd_begin(self, top);
    }

    fn vcd_begin_streaming(&mut self, top: &str, sink: Box<dyn std::io::Write + Send>) {
        CompiledSim::vcd_begin_streaming(self, top, sink);
    }

    fn vcd_sample_now(&mut self) {
        CompiledSim::vcd_sample_now(self);
    }

    fn vcd_end(&mut self) -> Option<String> {
        CompiledSim::vcd_end(self)
    }

    fn vcd_timesteps(&self) -> u64 {
        CompiledSim::vcd_timesteps(self)
    }

    fn vcd_bytes_written(&self) -> u64 {
        CompiledSim::vcd_bytes_written(self)
    }

    fn signal_width(&self, name: &str) -> Option<u32> {
        CompiledSim::signal_width(self, name)
    }

    #[cfg(feature = "prof")]
    fn prof_enable(&mut self) {
        CompiledSim::prof_enable(self);
    }

    #[cfg(feature = "prof")]
    fn prof_profile(&self) -> Option<EngineProfile> {
        CompiledSim::prof_profile(self)
    }

    fn par_stats(&self) -> Option<ParStats> {
        CompiledSim::par_stats(self)
    }
}

// ---------------------------------------------------------------------------
// Partitioned parallel settle (DESIGN.md §16).
// ---------------------------------------------------------------------------

/// Level batches narrower than this settle inline on the calling
/// thread: the fan-out/fan-in cost of a pool batch only pays for itself
/// on wide levels (the neuron-array MAC level is thousands of
/// instructions per settle; FSM glue levels are single digits).
const PAR_MIN_BATCH: usize = 192;

/// Inline-settle threshold, overridable via `DEEPBURNING_PAR_MIN_BATCH`.
/// The thread-matrix CI lane sets it to 1 so every woken level — however
/// narrow — crosses the worker pool, maximising scheduling interleavings
/// while the determinism contract holds the outputs bit-identical; perf
/// runs leave it at the default so narrow FSM levels stay inline.
fn par_min_batch() -> usize {
    std::env::var("DEEPBURNING_PAR_MIN_BATCH")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .map_or(PAR_MIN_BATCH, |v| v.max(1))
}

/// Parallel-settle state: the partition plan, the (lazily spawned)
/// worker pool, reusable per-level pending buckets and the attribution
/// counters. Boxed behind `CompiledSim::par`; absent entirely on the
/// serial path.
struct ParState {
    /// Resolved lane count (>= 2; lanes = pool workers + the calling
    /// thread).
    threads: usize,
    /// Inline-settle threshold (tests lower it to force tiny designs
    /// through the pool path).
    min_batch: usize,
    plan: PartitionPlan,
    /// Spawned on the first batch wide enough to split, so the many
    /// small per-block elaborations in the diff harness never pay for
    /// threads they won't use.
    pool: Option<pool::WorkerPool>,
    /// Pending tape indices per level, reused across settles. A dirty
    /// bit is set exactly while its instruction sits in a bucket.
    buckets: Vec<Vec<u32>>,
    /// Result buffer for pool batches, reused across settles.
    results: Vec<pool::EvalOut>,
    /// Dynamic race checker (DESIGN.md §17), `None` unless
    /// [`CompiledSim::enable_race_check`] armed it: holds the static
    /// access sets every settling batch is cross-checked against.
    race: Option<Box<interfere::RaceState>>,
    stats: ParStats,
}

impl fmt::Debug for ParState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ParState")
            .field("threads", &self.threads)
            .field("regions", &self.plan.regions.len())
            .field("pool_spawned", &self.pool.is_some())
            .finish_non_exhaustive()
    }
}

/// The worker-pool plumbing — the only unsafe surface in the crate.
///
/// Persistent workers receive a raw pointer to a stack-allocated
/// [`pool::BatchCtx`] describing one level batch: the frozen simulation
/// state (values, memories, slots, tape), the sorted dirty-index list,
/// and the output buffer. The safety contract is a strict barrier
/// protocol owned by `CompiledSim::settle_par`:
///
/// 1. the batch context and every buffer it points into outlive the
///    batch — they are owned by the settle frame and by `ParState`;
/// 2. nothing mutates the pointed-to state between job dispatch and the
///    last completion message (evaluation is pure: writes happen at the
///    barrier, on the calling thread, in tape order);
/// 3. workers write disjoint `out[lo..hi)` chunks and drop every
///    derived reference before sending their completion message;
/// 4. the dispatcher receives exactly one completion per job before the
///    context goes out of scope or any `&mut self` method runs.
#[allow(unsafe_code)]
mod pool {
    use super::interfere::{exec_race, RaceTouch};
    use super::{exec, ExecCtx, Instr, SimulateError, Slot, SlotId};
    use std::sync::mpsc;

    #[cfg(feature = "prof")]
    use super::{exec_prof, OPCODE_NAMES};

    /// Per-worker opcode tallies for the profiler; zero-sized when the
    /// profiler is compiled out.
    #[cfg(feature = "prof")]
    pub(super) type OpcodeArr = [u64; OPCODE_NAMES.len()];
    #[cfg(not(feature = "prof"))]
    pub(super) type OpcodeArr = [u64; 0];

    /// Evaluation result of one tape instruction, produced off-thread
    /// and applied in tape order at the level barrier.
    pub(super) struct EvalOut {
        pub(super) res: Result<(u64, u32), SimulateError>,
        /// Executed-op count for the profiler (0 when not profiling).
        #[cfg_attr(not(feature = "prof"), allow(dead_code))]
        pub(super) ops: u64,
        /// Arena signals this evaluation actually read (empty unless the
        /// dynamic race checker is armed) — cross-checked against the
        /// static access sets at the level barrier.
        pub(super) touched: Vec<RaceTouch>,
    }

    impl EvalOut {
        pub(super) fn empty() -> EvalOut {
            EvalOut {
                res: Ok((0, 0)),
                ops: 0,
                touched: Vec::new(),
            }
        }
    }

    /// Raw-pointer view of everything one batch needs. Built on the
    /// settle frame; valid until the batch barrier (contract above).
    pub(super) struct BatchCtx {
        pub(super) values: *const u64,
        pub(super) values_len: usize,
        pub(super) mems: *const Vec<u64>,
        pub(super) mems_len: usize,
        pub(super) slots: *const Slot,
        pub(super) slots_len: usize,
        pub(super) mem_slot: *const SlotId,
        pub(super) mem_slot_len: usize,
        pub(super) tape: *const Instr,
        pub(super) tape_len: usize,
        pub(super) idx: *const u32,
        pub(super) idx_len: usize,
        pub(super) out: *mut EvalOut,
        pub(super) prof: bool,
        /// Record actual signal touches via [`exec_race`] for the
        /// dynamic race checker (takes precedence over `prof`: a
        /// race-checked pooled batch loses per-opcode rhs attribution).
        pub(super) race: bool,
    }

    /// The pointer that crosses the job channel.
    ///
    /// Safety: `BatchCtx` only carries pointers to `Send` data
    /// (`u64`/`Vec<u64>`/`Slot`/`Instr` buffers owned by the
    /// dispatching `CompiledSim`), and the barrier protocol guarantees
    /// the pointee outlives every access.
    #[derive(Clone, Copy)]
    pub(super) struct BatchPtr(pub(super) *const BatchCtx);
    unsafe impl Send for BatchPtr {}

    pub(super) struct Job {
        pub(super) ctx: BatchPtr,
        pub(super) lo: usize,
        pub(super) hi: usize,
    }

    pub(super) struct Done {
        #[cfg(feature = "prof")]
        pub(super) opcodes: OpcodeArr,
    }

    /// Evaluates `idx[lo..hi)` right-hand sides against the frozen
    /// state, writing results into `out[lo..hi)`. Runs on pool workers
    /// and on the calling thread (which takes the first chunk).
    ///
    /// # Safety
    ///
    /// Caller upholds the batch contract: pointers live and unmutated
    /// for the duration, and no other thread touches `out[lo..hi)`.
    pub(super) unsafe fn run_chunk(
        ctx: &BatchCtx,
        lo: usize,
        hi: usize,
        stack: &mut Vec<(u64, u32)>,
        opcodes: &mut OpcodeArr,
    ) {
        let exec_ctx = ExecCtx {
            values: std::slice::from_raw_parts(ctx.values, ctx.values_len),
            mems: std::slice::from_raw_parts(ctx.mems, ctx.mems_len),
            slots: std::slice::from_raw_parts(ctx.slots, ctx.slots_len),
            mem_slot: std::slice::from_raw_parts(ctx.mem_slot, ctx.mem_slot_len),
        };
        let tape = std::slice::from_raw_parts(ctx.tape, ctx.tape_len);
        let idx = std::slice::from_raw_parts(ctx.idx, ctx.idx_len);
        for k in lo..hi {
            let instr = &tape[idx[k] as usize];
            let mut ops = 0u64;
            let mut touched = Vec::new();
            #[cfg(feature = "prof")]
            let res = if ctx.race {
                exec_race(&exec_ctx, &instr.rhs, stack, &mut touched)
            } else if ctx.prof {
                exec_prof(&exec_ctx, &instr.rhs, stack, opcodes, &mut ops)
            } else {
                exec(&exec_ctx, &instr.rhs, stack)
            };
            #[cfg(not(feature = "prof"))]
            let res = if ctx.race {
                exec_race(&exec_ctx, &instr.rhs, stack, &mut touched)
            } else {
                exec(&exec_ctx, &instr.rhs, stack)
            };
            #[cfg(not(feature = "prof"))]
            {
                let _ = (&opcodes, ctx.prof, &mut ops);
            }
            *ctx.out.add(k) = EvalOut { res, ops, touched };
        }
    }

    /// Persistent settle workers: one job channel per worker (so chunks
    /// pin to lanes deterministically) and a shared completion channel.
    /// Dropping the pool closes the job channels; workers drain and
    /// exit, and the drop joins them.
    pub(super) struct WorkerPool {
        pub(super) txs: Vec<mpsc::Sender<Job>>,
        pub(super) done_rx: mpsc::Receiver<Done>,
        handles: Vec<std::thread::JoinHandle<()>>,
    }

    impl WorkerPool {
        /// Spawns `workers` settle workers (the calling thread is the
        /// extra lane, so `SimThreads(n)` spawns `n - 1`).
        pub(super) fn spawn(workers: usize) -> WorkerPool {
            let (done_tx, done_rx) = mpsc::channel();
            let mut txs = Vec::with_capacity(workers);
            let mut handles = Vec::with_capacity(workers);
            for w in 0..workers {
                let (tx, rx) = mpsc::channel::<Job>();
                let done = done_tx.clone();
                let handle = std::thread::Builder::new()
                    .name(format!("db-settle-{w}"))
                    .spawn(move || {
                        let mut stack: Vec<(u64, u32)> = Vec::with_capacity(64);
                        while let Ok(job) = rx.recv() {
                            let mut opcodes = OpcodeArr::default();
                            // Safety: the dispatcher keeps the batch
                            // context alive and the state frozen until
                            // it has received our completion message.
                            unsafe {
                                run_chunk(&*job.ctx.0, job.lo, job.hi, &mut stack, &mut opcodes);
                            }
                            #[cfg(feature = "prof")]
                            let msg = Done { opcodes };
                            #[cfg(not(feature = "prof"))]
                            let msg = {
                                let _ = opcodes;
                                Done {}
                            };
                            if done.send(msg).is_err() {
                                break;
                            }
                        }
                    })
                    .expect("spawn settle worker");
                txs.push(tx);
                handles.push(handle);
            }
            WorkerPool {
                txs,
                done_rx,
                handles,
            }
        }
    }

    impl Drop for WorkerPool {
        fn drop(&mut self) {
            self.txs.clear();
            for handle in self.handles.drain(..) {
                let _ = handle.join();
            }
        }
    }
}

impl CompiledSim {
    /// Switches subsequent settles to the partitioned parallel drain
    /// with `threads` lanes. `SimThreads(1)` — or `auto` resolving to 1
    /// — keeps exactly the serial path: no plan, no pool, no extra
    /// bookkeeping. The worker pool itself spawns lazily on the first
    /// batch wide enough to split.
    pub fn enable_parallel(&mut self, threads: SimThreads) {
        let n = threads.resolve();
        if n <= 1 {
            self.par = None;
            return;
        }
        // The machine-checked independence proof (DESIGN.md §17): the
        // tape this plan will schedule concurrently must uphold
        // write/write disjointness, no same-level read-after-write and
        // strict level increase on every dependence edge. Always on in
        // debug builds; opt-in via `DEEPBURNING_VERIFY_PLAN=1` in
        // release. `PartitionPlan::build` re-asserts the edge half on
        // the edges it is fed; this full report adds the write and
        // fanout-CSR obligations with named-signal diagnostics.
        if crate::partition::verify_plan_enabled() {
            let report = self.interference_report();
            assert!(
                report.is_proven(),
                "parallel-settle independence proof failed; refusing to build a partition \
                 plan over an unsafe tape:\n{report}"
            );
        }
        // Static dependency edges (producer level -> consumer level)
        // from the fanout CSR — the difference array the cut search is
        // seeded with, built the same way the profiler builds its
        // measured CutProf table.
        let mut edges: Vec<(u32, u32)> = Vec::new();
        for (i, instr) in self.tape.iter().enumerate() {
            let li = self.instr_levels[i];
            let (lo, hi, mem) = match &instr.dst {
                Dst::Whole(s) | Dst::Bit(s, _) | Dst::Slice(s, _, _) => {
                    (self.fanout_off[*s], self.fanout_off[*s + 1], false)
                }
                Dst::Word(m, _) => (self.mem_fanout_off[*m], self.mem_fanout_off[*m + 1], true),
                Dst::SliceNoop | Dst::Fail(_) => continue,
            };
            for k in lo as usize..hi as usize {
                let t = if mem {
                    self.mem_fanout_idx[k]
                } else {
                    self.fanout_idx[k]
                } as usize;
                edges.push((li, self.instr_levels[t]));
            }
        }
        let plan = PartitionPlan::build(&self.instr_levels, edges.into_iter(), n);
        let regions = plan
            .regions
            .iter()
            .map(|r| RegionStats {
                level_lo: r.level_lo,
                level_hi: r.level_hi,
                instrs: r.instrs,
                evals: 0,
            })
            .collect();
        let buckets = vec![Vec::new(); plan.level_instrs.len()];
        self.par = Some(Box::new(ParState {
            threads: n,
            min_batch: par_min_batch(),
            plan,
            pool: None,
            buckets,
            results: Vec::new(),
            race: None,
            stats: ParStats {
                threads: n as u64,
                regions,
                ..ParStats::default()
            },
        }));
        if std::env::var("DEEPBURNING_RACE_CHECK").is_ok_and(|v| v != "0") {
            self.enable_race_check();
        }
    }

    /// Arms the dynamic race checker on the parallel drain (no-op on
    /// the serial path; also armed by `DEEPBURNING_RACE_CHECK=1` at
    /// [`CompiledSim::enable_parallel`] time). Every subsequent level
    /// batch is cross-checked before its results apply: batch-local
    /// write/write and read-after-write conflicts are rejected, and on
    /// pooled batches the signals evaluation *actually* touched are
    /// verified against the static access sets — so bytecode/decoder
    /// drift, or a tape corrupted after `enable_parallel`'s static
    /// proof ran, surfaces as a [`SimulateError`] instead of a silent
    /// data race. The static sets are captured from the tape as it is
    /// *now*; with the profiler active, race-checked pooled batches
    /// lose per-opcode rhs attribution.
    pub fn enable_race_check(&mut self) {
        let sets = self.access_sets();
        if let Some(p) = self.par.as_mut() {
            p.race = Some(Box::new(interfere::RaceState { sets }));
        }
    }

    /// Defect-injection hook: overwrites one tape instruction's level,
    /// breaking the levelization invariant on purpose so tests can
    /// prove the static analyzer and the dynamic race checker reject
    /// it. Leaves the fanout CSR untouched.
    #[doc(hidden)]
    pub fn test_corrupt_level(&mut self, t: usize, level: u32) {
        self.instr_levels[t] = level;
    }

    /// Defect-injection hook: aliases `tape[t]`'s destination onto
    /// `tape[onto]`'s, manufacturing a same-level write/write overlap
    /// for analyzer and race-checker rejection tests.
    #[doc(hidden)]
    pub fn test_alias_write(&mut self, t: usize, onto: usize) {
        self.tape[t].dst = self.tape[onto].dst.clone();
    }

    /// Parallel-settle attribution counters, or `None` on the serial
    /// path.
    pub fn par_stats(&self) -> Option<ParStats> {
        self.par.as_ref().map(|p| p.stats.clone())
    }

    /// The partition plan driving the parallel settle, or `None` on the
    /// serial path.
    pub fn partition_plan(&self) -> Option<&PartitionPlan> {
        self.par.as_ref().map(|p| &p.plan)
    }

    /// Test hook: forces batches of `min` instructions and up through
    /// the worker pool, so small designs exercise the parallel path.
    #[doc(hidden)]
    pub fn par_set_min_batch(&mut self, min: usize) {
        if let Some(p) = self.par.as_mut() {
            p.min_batch = min.max(1);
        }
    }

    /// Marks the fanout of `change` during a parallel drain: sets dirty
    /// bits (the dedup — a bit is set exactly while its instruction is
    /// pending in a bucket), appends newly dirty instructions to their
    /// level buckets, counts partition-edge crossings, and returns the
    /// highest level marked so the drain extends its sweep. Fanout
    /// always lands strictly above the producing level, so a mark never
    /// touches the batch being applied.
    fn par_mark(
        &mut self,
        change: Change,
        from_region: u32,
        region_of_level: &[u32],
        buckets: &mut [Vec<u32>],
        crossings: &mut u64,
    ) -> usize {
        let (lo, hi, mem) = match change {
            Change::Slot(s) => (self.fanout_off[s], self.fanout_off[s + 1], false),
            Change::Mem(m) => (self.mem_fanout_off[m], self.mem_fanout_off[m + 1], true),
        };
        let mut max_level = 0usize;
        for k in lo as usize..hi as usize {
            let t = if mem {
                self.mem_fanout_idx[k]
            } else {
                self.fanout_idx[k]
            } as usize;
            let word = t >> 6;
            let bit = 1u64 << (t & 63);
            if self.dirty[word] & bit == 0 {
                self.dirty[word] |= bit;
                let lt = self.instr_levels[t] as usize;
                buckets[lt].push(t as u32);
                max_level = max_level.max(lt);
                if region_of_level[lt] != from_region {
                    *crossings += 1;
                }
            }
        }
        max_level
    }

    /// Partitioned parallel drain: gathers the dirty set into per-level
    /// buckets, then walks levels ascending. Instructions within one
    /// level are mutually independent (every dependency edge strictly
    /// increases level — the levelizer adds an edge from every writer
    /// of every signal an instruction reads, including destination
    /// index programs), so a wide level evaluates across the worker
    /// pool against the frozen pre-level state and the results apply in
    /// tape order at the level barrier; narrow levels settle inline.
    ///
    /// Values, counters, per-module attribution, profiles and VCDs come
    /// out bit-identical to [`CompiledSim::settle_plain`] at any lane
    /// count: the evaluated instruction set, every value a program
    /// reads, and the same-destination apply order are all equal to the
    /// serial drain's (determinism argument in DESIGN.md §16). The
    /// error path is part of the contract for same-level failures:
    /// buckets are sorted to tape order and both the barrier apply loop
    /// and the inline drain stop at the first `Err`, so when several
    /// instructions of one level fail in a single settle the failure
    /// with the lowest tape index surfaces, bit-identical to serial
    /// (pinned by `same_level_failures_surface_lowest_tape_index`).
    /// The one documented divergence is *cross-level* failures: the
    /// serial scan walks tape order, which is not level-sorted, so when
    /// failures race across different levels which one surfaces may
    /// differ.
    fn settle_par(&mut self) -> Result<(), SimulateError> {
        let mut par = self.par.take().expect("settle_par requires par state");
        #[cfg(feature = "prof")]
        let mut prof = self.prof.take();
        self.stats.settle_passes += 1;
        par.stats.settles += 1;
        #[cfg(feature = "prof")]
        if let Some(p) = prof.as_mut() {
            p.sweeps += 1;
        }
        if self.dirty_lo == usize::MAX {
            #[cfg(feature = "prof")]
            if let Some(p) = prof.as_mut() {
                p.occupancy.record(0);
                self.prof = prof;
            }
            self.par = Some(par);
            return Ok(());
        }

        // Gather the externally marked dirty set into the level
        // buckets. Bits stay set while an instruction is pending and
        // clear at evaluation.
        let mut lvl_lo = usize::MAX;
        let mut lvl_hi = 0usize;
        let hi_word = (self.dirty_hi >> 6).min(self.dirty.len().saturating_sub(1));
        for w in (self.dirty_lo >> 6)..=hi_word {
            let mut word = self.dirty[w];
            while word != 0 {
                let bit = word.trailing_zeros() as usize;
                word &= word - 1;
                let t = (w << 6) | bit;
                let l = self.instr_levels[t] as usize;
                par.buckets[l].push(t as u32);
                lvl_lo = lvl_lo.min(l);
                lvl_hi = lvl_hi.max(l);
            }
        }
        self.dirty_lo = usize::MAX;
        self.dirty_hi = 0;

        let mut stack = std::mem::take(&mut self.scratch);
        let mut results = std::mem::take(&mut par.results);
        let mut result = Ok(());
        let mut woken = 0u64;
        let mut l = lvl_lo;
        'levels: while l <= lvl_hi && l < par.buckets.len() {
            if par.buckets[l].is_empty() {
                l += 1;
                continue;
            }
            let mut bucket = std::mem::take(&mut par.buckets[l]);
            // Marks append across producers out of order; the apply
            // order must be tape order, exactly as the serial word scan
            // visits. The dirty bits already dedup, so a plain sort
            // suffices.
            bucket.sort_unstable();
            let len = bucket.len();
            woken += len as u64;
            let region = par.plan.region_of_level[l];
            par.stats.regions[region as usize].evals += len as u64;
            // Widest woken level either way: when the pool never
            // engages, this says how far under `min_batch` the design's
            // dirty waves actually run.
            par.stats.max_batch = par.stats.max_batch.max(len as u64);
            if len >= par.min_batch {
                // Pool batch: evaluate the whole level off the frozen
                // state, then apply at the barrier below.
                par.stats.parallel_batches += 1;
                par.stats.parallel_evals += len as u64;
                if par.pool.is_none() {
                    par.pool = Some(pool::WorkerPool::spawn(par.threads - 1));
                }
                if results.len() < len {
                    results.resize_with(len, pool::EvalOut::empty);
                }
                #[cfg(feature = "prof")]
                let profiling = prof.is_some();
                #[cfg(not(feature = "prof"))]
                let profiling = false;
                let ctx = pool::BatchCtx {
                    values: self.values.as_ptr(),
                    values_len: self.values.len(),
                    mems: self.mems.as_ptr(),
                    mems_len: self.mems.len(),
                    slots: self.slots.as_ptr(),
                    slots_len: self.slots.len(),
                    mem_slot: self.mem_slot.as_ptr(),
                    mem_slot_len: self.mem_slot.len(),
                    tape: self.tape.as_ptr(),
                    tape_len: self.tape.len(),
                    idx: bucket.as_ptr(),
                    idx_len: len,
                    out: results.as_mut_ptr(),
                    prof: profiling,
                    race: par.race.is_some(),
                };
                let chunk = len.div_ceil(par.threads);
                let mut jobs = 0usize;
                {
                    let worker_pool = par.pool.as_ref().expect("pool just ensured");
                    let ptr = pool::BatchPtr(&ctx);
                    for (w, tx) in worker_pool.txs.iter().enumerate() {
                        let lo = ((w + 1) * chunk).min(len);
                        let hi = ((w + 2) * chunk).min(len);
                        if lo >= hi {
                            break;
                        }
                        tx.send(pool::Job { ctx: ptr, lo, hi })
                            .expect("settle worker alive");
                        jobs += 1;
                    }
                    let mut opcodes = pool::OpcodeArr::default();
                    // Safety (batch contract): `ctx` points at live
                    // buffers, nothing mutates them until the barrier,
                    // and chunk 0 is ours alone.
                    #[allow(unsafe_code)]
                    unsafe {
                        pool::run_chunk(&ctx, 0, chunk.min(len), &mut stack, &mut opcodes);
                    }
                    // Barrier: one completion per job. After the loop no
                    // worker holds a reference into the batch.
                    for _ in 0..jobs {
                        let done = worker_pool
                            .done_rx
                            .recv()
                            .expect("settle worker completes batch");
                        #[cfg(feature = "prof")]
                        if let Some(p) = prof.as_mut() {
                            for (dst, src) in p.opcode_counts.iter_mut().zip(done.opcodes.iter()) {
                                *dst += src;
                            }
                            for (dst, src) in p.opcode_counts.iter_mut().zip(opcodes.iter()) {
                                *dst += src;
                            }
                        }
                        #[cfg(not(feature = "prof"))]
                        let _ = done;
                    }
                    #[cfg(feature = "prof")]
                    if jobs == 0 {
                        if let Some(p) = prof.as_mut() {
                            for (dst, src) in p.opcode_counts.iter_mut().zip(opcodes.iter()) {
                                *dst += src;
                            }
                        }
                    }
                    #[cfg(not(feature = "prof"))]
                    let _ = opcodes;
                }
                // Dynamic race check (DESIGN.md §17): validate the
                // batch's actual touches against the static access sets
                // before any result commits, so a corrupted tape cannot
                // apply a racy write.
                if let Some(rs) = par.race.as_ref() {
                    if let Err(e) = self.race_check_batch(&rs.sets, &bucket, Some(&results[..len]))
                    {
                        result = Err(e);
                        bucket.clear();
                        par.buckets[l] = bucket;
                        break 'levels;
                    }
                }
                // Apply phase: tape order, on this thread, identical to
                // the serial drain's write sequence.
                for k in 0..len {
                    let i = bucket[k] as usize;
                    self.dirty[i >> 6] &= !(1u64 << (i & 63));
                    self.stats.assign_evals += 1;
                    let out = std::mem::replace(&mut results[k], pool::EvalOut::empty());
                    let instr = std::mem::replace(
                        &mut self.tape[i],
                        Instr {
                            dst: Dst::SliceNoop,
                            rhs: Prog::default(),
                            module: 0,
                        },
                    );
                    #[cfg(feature = "prof")]
                    if let Some(p) = prof.as_mut() {
                        p.instr_evals[i] += 1;
                        p.instr_ops[i] += out.ops;
                    }
                    let outcome = out
                        .res
                        .and_then(|(v, _)| self.apply(&instr.dst, v, &mut stack));
                    self.module_evals[instr.module as usize] += 1;
                    self.tape[i] = instr;
                    match outcome {
                        Ok(Some(change)) => {
                            let marked = self.par_mark(
                                change,
                                region,
                                &par.plan.region_of_level,
                                &mut par.buckets,
                                &mut par.stats.edge_crossings,
                            );
                            lvl_hi = lvl_hi.max(marked);
                        }
                        Ok(None) =>
                        {
                            #[cfg(feature = "prof")]
                            if let Some(p) = prof.as_mut() {
                                p.wasted += 1;
                            }
                        }
                        Err(e) => {
                            result = Err(e);
                            bucket.clear();
                            par.buckets[l] = bucket;
                            break 'levels;
                        }
                    }
                }
            } else {
                // Inline drain, identical to the serial settle body.
                // The race checker still vets the batch (static sets
                // only — inline evaluation interleaves with applies, so
                // there are no frozen-state touches to record).
                if let Some(rs) = par.race.as_ref() {
                    if let Err(e) = self.race_check_batch(&rs.sets, &bucket, None) {
                        result = Err(e);
                        bucket.clear();
                        par.buckets[l] = bucket;
                        break 'levels;
                    }
                }
                par.stats.serial_batches += 1;
                par.stats.serial_evals += len as u64;
                for &t in &bucket {
                    let i = t as usize;
                    self.dirty[i >> 6] &= !(1u64 << (i & 63));
                    self.stats.assign_evals += 1;
                    let instr = std::mem::replace(
                        &mut self.tape[i],
                        Instr {
                            dst: Dst::SliceNoop,
                            rhs: Prog::default(),
                            module: 0,
                        },
                    );
                    let mut ops_here = 0u64;
                    #[cfg(feature = "prof")]
                    let evaled = if let Some(p) = prof.as_mut() {
                        exec_prof(
                            &self.ctx(),
                            &instr.rhs,
                            &mut stack,
                            &mut p.opcode_counts,
                            &mut ops_here,
                        )
                    } else {
                        exec(&self.ctx(), &instr.rhs, &mut stack)
                    };
                    #[cfg(not(feature = "prof"))]
                    let evaled = exec(&self.ctx(), &instr.rhs, &mut stack);
                    #[cfg(not(feature = "prof"))]
                    {
                        let _ = &mut ops_here;
                    }
                    let outcome = evaled.and_then(|(v, _)| self.apply(&instr.dst, v, &mut stack));
                    #[cfg(feature = "prof")]
                    if let Some(p) = prof.as_mut() {
                        p.instr_evals[i] += 1;
                        p.instr_ops[i] += ops_here;
                    }
                    self.module_evals[instr.module as usize] += 1;
                    self.tape[i] = instr;
                    match outcome {
                        Ok(Some(change)) => {
                            let marked = self.par_mark(
                                change,
                                region,
                                &par.plan.region_of_level,
                                &mut par.buckets,
                                &mut par.stats.edge_crossings,
                            );
                            lvl_hi = lvl_hi.max(marked);
                        }
                        Ok(None) =>
                        {
                            #[cfg(feature = "prof")]
                            if let Some(p) = prof.as_mut() {
                                p.wasted += 1;
                            }
                        }
                        Err(e) => {
                            result = Err(e);
                            bucket.clear();
                            par.buckets[l] = bucket;
                            break 'levels;
                        }
                    }
                }
            }
            bucket.clear();
            par.buckets[l] = bucket;
            l += 1;
        }
        if result.is_err() {
            // Scheduler invariant (all-clear between settles), as on the
            // serial error path; the buckets mirror the bits.
            self.dirty.iter_mut().for_each(|w| *w = 0);
            for b in &mut par.buckets {
                b.clear();
            }
        }
        #[cfg(feature = "prof")]
        if let Some(p) = prof.as_mut() {
            p.occupancy.record(woken);
        }
        #[cfg(not(feature = "prof"))]
        let _ = woken;
        self.scratch = stack;
        par.results = results;
        #[cfg(feature = "prof")]
        {
            self.prof = prof;
        }
        self.par = Some(par);
        result
    }
}

/// The partitioned parallel engine: a [`CompiledSim`] whose settles
/// drain through the worker pool (DESIGN.md §16). A distinct type so
/// `SimEngine::Parallel` is its own variant behind the [`Simulator`]
/// trait; all simulation semantics are the compiled engine's, and with
/// `SimThreads(1)` the inner engine runs exactly the serial path.
#[derive(Debug)]
pub struct ParallelSim {
    inner: CompiledSim,
}

impl ParallelSim {
    /// Compiles `top` and enables the parallel drain with `threads`
    /// lanes.
    ///
    /// # Errors
    ///
    /// Propagates elaboration errors ([`SimulateError`]).
    pub fn compile(design: &Design, top: &str, threads: SimThreads) -> Result<Self, SimulateError> {
        let mut inner = CompiledSim::compile(design, top)?;
        inner.enable_parallel(threads);
        Ok(ParallelSim { inner })
    }

    /// Parallel attribution counters (`None` when running serially).
    pub fn par_stats(&self) -> Option<ParStats> {
        self.inner.par_stats()
    }

    /// The partition plan (`None` when running serially).
    pub fn partition_plan(&self) -> Option<&PartitionPlan> {
        self.inner.partition_plan()
    }

    /// Shared access to the underlying compiled engine.
    pub fn as_compiled(&self) -> &CompiledSim {
        &self.inner
    }

    /// Test hook: see [`CompiledSim::par_set_min_batch`].
    #[doc(hidden)]
    pub fn par_set_min_batch(&mut self, min: usize) {
        self.inner.par_set_min_batch(min);
    }

    /// Arms the dynamic race checker; see
    /// [`CompiledSim::enable_race_check`].
    pub fn enable_race_check(&mut self) {
        self.inner.enable_race_check();
    }

    /// The interference proof over the compiled tape; see
    /// [`CompiledSim::interference_report`].
    pub fn interference_report(&self) -> interfere::InterferenceReport {
        self.inner.interference_report()
    }
}

impl Simulator for ParallelSim {
    fn poke(&mut self, name: &str, value: u64) -> Result<(), SimulateError> {
        self.inner.poke(name, value)
    }

    fn read(&self, name: &str) -> Result<u64, SimulateError> {
        self.inner.read(name)
    }

    fn load_memory(&mut self, name: &str, words: &[u64]) -> Result<(), SimulateError> {
        self.inner.load_memory(name, words)
    }

    fn clock_named(&mut self, clk: &str) -> Result<(), SimulateError> {
        self.inner.clock_named(clk)
    }

    fn cycles(&self) -> u64 {
        self.inner.cycles()
    }

    fn stats(&self) -> InterpStats {
        self.inner.stats()
    }

    fn signal_count(&self) -> usize {
        self.inner.signal_count()
    }

    fn evals_by_module(&self) -> Vec<(String, u64)> {
        self.inner.evals_by_module()
    }

    fn vcd_begin(&mut self, top: &str) {
        self.inner.vcd_begin(top);
    }

    fn vcd_begin_streaming(&mut self, top: &str, sink: Box<dyn std::io::Write + Send>) {
        self.inner.vcd_begin_streaming(top, sink);
    }

    fn vcd_sample_now(&mut self) {
        self.inner.vcd_sample_now();
    }

    fn vcd_end(&mut self) -> Option<String> {
        self.inner.vcd_end()
    }

    fn vcd_timesteps(&self) -> u64 {
        self.inner.vcd_timesteps()
    }

    fn vcd_bytes_written(&self) -> u64 {
        self.inner.vcd_bytes_written()
    }

    fn signal_width(&self, name: &str) -> Option<u32> {
        self.inner.signal_width(name)
    }

    #[cfg(feature = "prof")]
    fn prof_enable(&mut self) {
        self.inner.prof_enable();
    }

    #[cfg(feature = "prof")]
    fn prof_profile(&self) -> Option<EngineProfile> {
        self.inner.prof_profile()
    }

    fn par_stats(&self) -> Option<ParStats> {
        ParallelSim::par_stats(self)
    }
}

/// Finds a combinational cycle among the flattened continuous assigns of
/// `top`, returning the hierarchical signal names along the cycle (the
/// first name is repeated at the end to close the loop), or `None` when
/// the assigns levelize.
///
/// Granularity matches the levelizer in [`CompiledSim::compile`]: a read
/// of any part of a signal depends on every driver of that signal, so a
/// cycle reported here is exactly a cycle the compiled engine rejects.
///
/// # Errors
///
/// Returns [`SimulateError`] when the design cannot be flattened (unknown
/// modules or over-wide signals).
pub fn find_comb_cycle(design: &Design, top: &str) -> Result<Option<Vec<String>>, SimulateError> {
    let flat = flatten_design(design, top)?;
    // Name-level dependency graph: one node per driven signal, an edge
    // dst -> src for every signal an assign driving `dst` reads.
    let mut node_of: BTreeMap<&str, usize> = BTreeMap::new();
    let mut node_names: Vec<&str> = Vec::new();
    for (lhs, _) in &flat.assigns {
        if let Some(root) = lhs.lvalue_root() {
            node_of.entry(root).or_insert_with(|| {
                node_names.push(root);
                node_names.len() - 1
            });
        }
    }
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); node_names.len()];
    for (lhs, rhs) in &flat.assigns {
        let Some(root) = lhs.lvalue_root() else {
            continue;
        };
        let dst = node_of[root];
        // Reads of this assign: the whole rhs plus any dynamic index on
        // the lhs (everything but the root itself).
        for id in rhs
            .idents()
            .into_iter()
            .chain(lhs.idents().into_iter().filter(|id| *id != root))
        {
            if let Some(&src) = node_of.get(id) {
                if !succs[dst].contains(&src) {
                    succs[dst].push(src);
                }
            }
        }
    }
    // Iterative 3-colour DFS; a back edge closes the cycle.
    const WHITE: u8 = 0;
    const GREY: u8 = 1;
    const BLACK: u8 = 2;
    let mut colour = vec![WHITE; node_names.len()];
    for start in 0..node_names.len() {
        if colour[start] != WHITE {
            continue;
        }
        // Stack of (node, next-successor index); doubles as the path.
        let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
        colour[start] = GREY;
        while let Some(&mut (node, ref mut next)) = stack.last_mut() {
            if let Some(&succ) = succs[node].get(*next) {
                *next += 1;
                match colour[succ] {
                    WHITE => {
                        colour[succ] = GREY;
                        stack.push((succ, 0));
                    }
                    GREY => {
                        // Found: the cycle is the path suffix from
                        // `succ` plus the closing edge.
                        let from = stack
                            .iter()
                            .position(|&(n, _)| n == succ)
                            .expect("grey nodes are on the stack");
                        let mut cycle: Vec<String> = stack[from..]
                            .iter()
                            .map(|&(n, _)| node_names[n].to_string())
                            .collect();
                        cycle.push(node_names[succ].to_string());
                        return Ok(Some(cycle));
                    }
                    _ => {}
                }
            } else {
                colour[node] = BLACK;
                stack.pop();
            }
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn counter_ram() -> Design {
        // A counter feeding a small RAM plus combinational decode —
        // exercises clocked blocks, memories, dynamic indices, slices
        // and concats in one design.
        let mut m = VModule::new("dut");
        m.port(Port::input("clk", 1))
            .port(Port::input("rst", 1))
            .port(Port::input("wen", 1))
            .port(Port::output("q", 8))
            .port(Port::output("dout", 8));
        m.item(Item::Net(NetDecl::reg("count", 8)));
        m.item(Item::Net(NetDecl::memory("ram", 8, 8)));
        m.item(Item::Net(NetDecl::wire("addr", 3)));
        m.item(Item::Always {
            sensitivity: Sensitivity::PosEdge("clk".into()),
            body: vec![
                Stmt::If {
                    cond: Expr::id("rst"),
                    then_body: vec![Stmt::NonBlocking(Expr::id("count"), Expr::lit(8, 0))],
                    else_body: vec![Stmt::NonBlocking(
                        Expr::id("count"),
                        Expr::bin(BinaryOp::Add, Expr::id("count"), Expr::lit(8, 1)),
                    )],
                },
                Stmt::If {
                    cond: Expr::id("wen"),
                    then_body: vec![Stmt::NonBlocking(
                        Expr::Index(Box::new(Expr::id("ram")), Box::new(Expr::id("addr"))),
                        Expr::bin(BinaryOp::Xor, Expr::id("count"), Expr::lit(8, 0xA5)),
                    )],
                    else_body: vec![],
                },
            ],
        });
        m.item(Item::Assign {
            lhs: Expr::id("addr"),
            rhs: Expr::Slice(Box::new(Expr::id("count")), 2, 0),
        });
        m.item(Item::Assign {
            lhs: Expr::id("q"),
            rhs: Expr::id("count"),
        });
        m.item(Item::Assign {
            lhs: Expr::id("dout"),
            rhs: Expr::Index(Box::new(Expr::id("ram")), Box::new(Expr::id("addr"))),
        });
        Design::new(m)
    }

    fn read_all(tree: &Interpreter, compiled: &CompiledSim, names: &[&str]) {
        for n in names {
            assert_eq!(
                tree.read(n).expect("tree read"),
                compiled.read(n).expect("compiled read"),
                "signal `{n}` diverged"
            );
        }
    }

    #[test]
    fn clocked_design_matches_interpreter_including_vcd() {
        let design = counter_ram();
        let mut tree = Interpreter::elaborate(&design, "dut").expect("tree elab");
        let mut compiled = CompiledSim::compile(&design, "dut").expect("compile");
        tree.vcd_begin("dut");
        compiled.vcd_begin("dut");
        let names = ["q", "dout", "count", "addr"];
        for step in 0u64..40 {
            let rst = u64::from(step % 13 == 0);
            let wen = u64::from(step % 3 != 0);
            tree.poke("rst", rst).expect("tree poke");
            compiled.poke("rst", rst).expect("compiled poke");
            tree.poke("wen", wen).expect("tree poke");
            compiled.poke("wen", wen).expect("compiled poke");
            tree.clock().expect("tree clock");
            compiled.clock().expect("compiled clock");
            read_all(&tree, &compiled, &names);
        }
        let ts = tree.stats();
        let cs = compiled.stats();
        assert_eq!(ts.clock_edges, cs.clock_edges);
        assert_eq!(ts.nba_writes, cs.nba_writes);
        assert!(
            cs.assign_evals < ts.assign_evals,
            "event-driven engine should evaluate fewer assigns ({} vs {})",
            cs.assign_evals,
            ts.assign_evals
        );
        assert_eq!(
            tree.vcd_end().expect("tree vcd"),
            compiled.vcd_end().expect("compiled vcd"),
            "VCD dumps must be byte-identical"
        );
    }

    #[test]
    fn load_memory_defers_propagation_like_interpreter() {
        let design = counter_ram();
        let mut tree = Interpreter::elaborate(&design, "dut").expect("tree elab");
        let mut compiled = CompiledSim::compile(&design, "dut").expect("compile");
        let image: Vec<u64> = (0..8).map(|i| 0x30 + i).collect();
        tree.load_memory("ram", &image).expect("tree load");
        compiled.load_memory("ram", &image).expect("compiled load");
        // Neither engine propagates the backdoor write until the next
        // settle; the stale combinational read must agree.
        assert_eq!(
            tree.read("dout").expect("tree"),
            compiled.read("dout").expect("compiled")
        );
        tree.poke("rst", 0).expect("tree");
        compiled.poke("rst", 0).expect("compiled");
        assert_eq!(tree.read("dout").expect("tree"), 0x30);
        assert_eq!(compiled.read("dout").expect("compiled"), 0x30);
    }

    #[test]
    fn combinational_loop_is_rejected_statically() {
        let mut m = VModule::new("loopy");
        m.port(Port::input("a", 1)).port(Port::output("y", 1));
        m.item(Item::Net(NetDecl::wire("x", 1)));
        m.item(Item::Assign {
            lhs: Expr::id("x"),
            rhs: Expr::bin(BinaryOp::Xor, Expr::id("y"), Expr::id("a")),
        });
        m.item(Item::Assign {
            lhs: Expr::id("y"),
            rhs: Expr::Unary(UnaryOp::BitNot, Box::new(Expr::id("x"))),
        });
        let err = CompiledSim::compile(&Design::new(m), "loopy").expect_err("loop");
        assert!(
            err.message.contains("combinational loop"),
            "{}",
            err.message
        );
    }

    #[test]
    fn evals_attribute_to_instance_paths() {
        // Two instances of a child module: attribution must separate them.
        let mut child = VModule::new("stage");
        child
            .port(Port::input("clk", 1))
            .port(Port::input("d", 8))
            .port(Port::output("q", 8));
        child.item(Item::Net(NetDecl::reg("r", 8)));
        child.item(Item::Always {
            sensitivity: Sensitivity::PosEdge("clk".into()),
            body: vec![Stmt::NonBlocking(Expr::id("r"), Expr::id("d"))],
        });
        child.item(Item::Assign {
            lhs: Expr::id("q"),
            rhs: Expr::bin(BinaryOp::Add, Expr::id("r"), Expr::lit(8, 1)),
        });
        let mut top = VModule::new("top");
        top.port(Port::input("clk", 1))
            .port(Port::input("din", 8))
            .port(Port::output("dout", 8));
        top.item(Item::Net(NetDecl::wire("mid", 8)));
        for (name, d, q) in [("u0", "din", "mid"), ("u1", "mid", "dout")] {
            top.item(Item::Instance {
                module: "stage".into(),
                name: name.into(),
                params: vec![],
                connections: vec![
                    ("clk".into(), Expr::id("clk")),
                    ("d".into(), Expr::id(d)),
                    ("q".into(), Expr::id(q)),
                ],
            });
        }
        let mut d = Design::new(top);
        d.add_module(child);
        let mut sim = CompiledSim::compile(&d, "top").expect("compile");
        sim.poke("din", 7).expect("poke");
        sim.clock().expect("clock");
        sim.clock().expect("clock");
        let by_module = sim.evals_by_module();
        let paths: Vec<&str> = by_module.iter().map(|(p, _)| p.as_str()).collect();
        assert!(paths.contains(&"u0"), "u0 missing from {paths:?}");
        assert!(paths.contains(&"u1"), "u1 missing from {paths:?}");
        assert!(by_module.iter().all(|(_, n)| *n > 0));
    }

    #[test]
    fn engine_parses_and_elaborates() {
        assert_eq!("tree".parse::<SimEngine>().expect("parse"), SimEngine::Tree);
        assert_eq!(
            "COMPILED".parse::<SimEngine>().expect("parse"),
            SimEngine::Compiled
        );
        assert!("verilator".parse::<SimEngine>().is_err());
        let design = counter_ram();
        for engine in [SimEngine::Tree, SimEngine::Compiled] {
            let mut sim = engine.elaborate(&design, "dut").expect("elaborate");
            sim.clock().expect("clock");
            assert_eq!(sim.read("q").expect("read"), 1);
        }
    }

    // -- randomized equivalence --------------------------------------------

    /// One randomly planned combinational net: an operator applied to
    /// leaves drawn from the inputs, earlier nets, an undriven wire (the
    /// two-state stand-in for x-fanin) and literals. `pub(crate)` so the
    /// interference analyzer's zero-false-positive proptest reuses the
    /// same generator.
    #[derive(Debug, Clone)]
    pub(crate) struct NetPlan {
        op: u8,
        a: u8,
        b: u8,
        lit: u64,
        width: u32,
    }

    pub(crate) fn plan_strategy() -> impl Strategy<Value = (Vec<NetPlan>, Vec<(u8, u64)>)> {
        let net = (0u8..=255, 0u8..=255, 0u8..=255, 0u64..=u64::MAX, 1u32..=16).prop_map(
            |(op, a, b, lit, width)| NetPlan {
                op,
                a,
                b,
                lit,
                width,
            },
        );
        let stimulus = proptest::collection::vec((0u8..3, 0u64..=u64::MAX), 1..24);
        (proptest::collection::vec(net, 1..24), stimulus)
    }

    /// Builds a loop-free combinational design from a plan: three inputs,
    /// one undriven wire, then one wire per plan entry reading only
    /// earlier signals (a DAG by construction).
    pub(crate) fn build_design(plans: &[NetPlan]) -> (Design, Vec<String>) {
        let inputs = ["a", "b", "c"];
        let mut m = VModule::new("rand");
        for i in &inputs {
            m.port(Port::input(*i, 12));
        }
        m.item(Item::Net(NetDecl::wire("undriven", 9)));
        let mut leaves: Vec<String> = inputs.iter().map(|s| s.to_string()).collect();
        leaves.push("undriven".into());
        let mut nets = Vec::new();
        for (i, plan) in plans.iter().enumerate() {
            let name = format!("n{i}");
            m.item(Item::Net(NetDecl::wire(&name, plan.width)));
            let leaf = |sel: u8| -> Expr {
                match sel as usize % (leaves.len() + 1) {
                    k if k < leaves.len() => Expr::id(leaves[k].clone()),
                    _ => Expr::lit(plan.width, plan.lit),
                }
            };
            let (la, lb) = (leaf(plan.a), leaf(plan.b));
            let ops = [
                BinaryOp::Add,
                BinaryOp::Sub,
                BinaryOp::Mul,
                BinaryOp::Div,
                BinaryOp::And,
                BinaryOp::Or,
                BinaryOp::Xor,
                BinaryOp::Shl,
                BinaryOp::Shr,
                BinaryOp::Eq,
                BinaryOp::Ne,
                BinaryOp::Lt,
                BinaryOp::Slt,
                BinaryOp::Ge,
            ];
            let rhs = match plan.op as usize % (ops.len() + 3) {
                k if k < ops.len() => Expr::bin(ops[k], la, lb),
                k if k == ops.len() => {
                    Expr::Ternary(Box::new(leaf(plan.op)), Box::new(la), Box::new(lb))
                }
                k if k == ops.len() + 1 => Expr::Unary(UnaryOp::BitNot, Box::new(la)),
                _ => Expr::Concat(vec![la, lb]),
            };
            // Generated RTL is width-consistent; mirror that by sizing
            // the rhs to the destination net (the interpreter's settle
            // change-detection requires it).
            m.item(Item::Assign {
                lhs: Expr::id(name.clone()),
                rhs: Expr::Slice(Box::new(rhs), plan.width - 1, 0),
            });
            leaves.push(name.clone());
            nets.push(name);
        }
        (Design::new(m), nets)
    }

    /// Drives `sim` through the same mixed reset/write stimulus the
    /// equivalence tests use.
    fn drive<S: Simulator>(sim: &mut S, steps: u64) {
        for step in 0..steps {
            sim.poke("rst", u64::from(step % 13 == 0)).expect("poke");
            sim.poke("wen", u64::from(step % 3 != 0)).expect("poke");
            sim.clock().expect("clock");
        }
    }

    /// The profiled drain must be behaviourally identical to the plain
    /// one — this is the test that licenses `exec_prof` existing as a
    /// duplicate of `exec`.
    #[cfg(feature = "prof")]
    #[test]
    fn profiled_matches_unprofiled() {
        let design = counter_ram();
        let mut plain = CompiledSim::compile(&design, "dut").expect("compile");
        let mut prof = CompiledSim::compile(&design, "dut").expect("compile");
        prof.prof_enable();
        drive(&mut plain, 40);
        drive(&mut prof, 40);
        for n in ["q", "dout", "count", "addr"] {
            assert_eq!(
                plain.read(n).expect("plain read"),
                prof.read(n).expect("prof read"),
                "signal `{n}` diverged under profiling"
            );
        }
        let (ps, fs) = (plain.stats(), prof.stats());
        assert_eq!(ps.clock_edges, fs.clock_edges);
        assert_eq!(ps.settle_passes, fs.settle_passes);
        assert_eq!(ps.assign_evals, fs.assign_evals);
        assert_eq!(ps.nba_writes, fs.nba_writes);
        assert_eq!(plain.evals_by_module(), prof.evals_by_module());
    }

    /// Attribution invariants: segment evals sum to the total, opcode
    /// counts sum to the op total, and an op executes for every eval.
    #[cfg(feature = "prof")]
    #[test]
    fn profile_attribution_sums_are_consistent() {
        let design = counter_ram();
        let mut sim = CompiledSim::compile(&design, "dut").expect("compile");
        assert!(sim.prof_profile().is_none(), "no profile before enable");
        sim.prof_enable();
        drive(&mut sim, 40);
        let p = sim.prof_profile().expect("profile");
        assert_eq!(p.engine, "compiled");
        assert!(p.total_evals > 0, "stimulus must exercise the tape");
        let seg_evals: u64 = p.segments.iter().map(|s| s.evals).sum();
        let seg_ops: u64 = p.segments.iter().map(|s| s.ops).sum();
        let op_counts: u64 = p.opcodes.iter().map(|o| o.count).sum();
        assert_eq!(seg_evals, p.total_evals);
        assert_eq!(seg_ops, p.total_ops);
        assert_eq!(op_counts, p.total_ops);
        assert_eq!(p.sweeps.evals, p.total_evals);
        assert!(
            p.total_ops >= p.total_evals,
            "every eval executes at least one op"
        );
        assert!(p.sweeps.sweeps > 0);
        assert_eq!(p.sweeps.dirty_occupancy.count(), p.sweeps.sweeps);
    }

    /// The levelizer's longest-path levels respect tape dependencies:
    /// `addr` derives from `count` (level 0 sources feed it), and
    /// `dout` reads `ram[addr]` so it must sit strictly above `addr`.
    #[cfg(feature = "prof")]
    #[test]
    fn profile_levels_follow_dependencies() {
        let design = counter_ram();
        let mut sim = CompiledSim::compile(&design, "dut").expect("compile");
        sim.prof_enable();
        drive(&mut sim, 8);
        let p = sim.prof_profile().expect("profile");
        let max_level = p.segments.iter().map(|s| s.level).max().unwrap_or(0);
        assert!(max_level >= 1, "dout depends on addr: at least two levels");
        for cut in &p.cuts {
            assert!(cut.level >= 1 && cut.level <= max_level);
        }
        assert!(
            p.cuts.iter().any(|c| c.cross_evals > 0),
            "count -> addr -> dout traffic must cross a level boundary"
        );
    }

    // -- parallel settle ---------------------------------------------------

    #[test]
    fn parallel_engine_parses_and_resolves_threads() {
        assert_eq!(
            "parallel".parse::<SimEngine>().expect("parse"),
            SimEngine::Parallel(SimThreads::AUTO)
        );
        assert_eq!(
            "Parallel:4".parse::<SimEngine>().expect("parse"),
            SimEngine::Parallel(SimThreads(4))
        );
        assert!("parallel:x".parse::<SimEngine>().is_err());
        assert_eq!(SimEngine::Tree.with_threads(SimThreads(4)), SimEngine::Tree);
        assert_eq!(
            SimEngine::Compiled.with_threads(SimThreads(4)),
            SimEngine::Parallel(SimThreads(4))
        );
        assert_eq!(
            SimEngine::Parallel(SimThreads(2)).with_threads(SimThreads::ONE),
            SimEngine::Compiled
        );
        assert_eq!(SimEngine::Parallel(SimThreads(4)).threads(), 4);
        assert_eq!(SimEngine::Compiled.threads(), 1);
        let design = counter_ram();
        let mut sim = SimEngine::Parallel(SimThreads(2))
            .elaborate(&design, "dut")
            .expect("elaborate");
        sim.clock().expect("clock");
        assert_eq!(sim.read("q").expect("read"), 1);
        assert!(sim.par_stats().is_some(), "parallel engine reports stats");
    }

    #[test]
    fn one_lane_parallel_is_exactly_serial() {
        let design = counter_ram();
        let sim = ParallelSim::compile(&design, "dut", SimThreads::ONE).expect("compile");
        assert!(
            sim.par_stats().is_none(),
            "one lane must not carry parallel state"
        );
        assert!(sim.partition_plan().is_none());
    }

    /// The tentpole's core invariant: the partitioned drain is
    /// bit-identical to the serial compiled engine — values, counters,
    /// per-module attribution and VCD bytes — at any lane count, with
    /// the batch threshold forced to 1 so even this small design runs
    /// its wide levels through the worker pool.
    #[test]
    fn parallel_matches_serial_bit_identical() {
        let design = counter_ram();
        let mut serial = CompiledSim::compile(&design, "dut").expect("compile");
        // Elaboration settles the full tape serially before
        // `enable_parallel`, so those evals predate the par counters.
        let base_evals = serial.stats().assign_evals;
        serial.vcd_begin("dut");
        drive(&mut serial, 40);
        let serial_vcd = serial.vcd_end().expect("serial vcd");
        for threads in [2usize, 4] {
            let mut par =
                ParallelSim::compile(&design, "dut", SimThreads(threads)).expect("compile");
            par.par_set_min_batch(1);
            par.vcd_begin("dut");
            drive(&mut par, 40);
            for n in ["q", "dout", "count", "addr"] {
                assert_eq!(
                    serial.read(n).expect("serial read"),
                    par.read(n).expect("parallel read"),
                    "signal `{n}` diverged at {threads} lanes"
                );
            }
            let (ss, ps) = (serial.stats(), par.stats());
            assert_eq!(ss.clock_edges, ps.clock_edges);
            assert_eq!(ss.settle_passes, ps.settle_passes);
            assert_eq!(ss.assign_evals, ps.assign_evals);
            assert_eq!(ss.nba_writes, ps.nba_writes);
            assert_eq!(serial.evals_by_module(), par.evals_by_module());
            assert_eq!(
                par.vcd_end().expect("parallel vcd"),
                serial_vcd,
                "VCD dumps must be byte-identical at {threads} lanes"
            );
            let stats = par.par_stats().expect("par stats");
            assert_eq!(stats.threads, threads as u64);
            assert!(stats.settles > 0);
            assert!(
                stats.parallel_batches > 0,
                "min_batch=1 must push batches through the pool"
            );
            assert_eq!(
                stats.parallel_evals + stats.serial_evals,
                ps.assign_evals - base_evals,
                "every parallel-settle eval attributes to exactly one batch kind"
            );
            let region_evals: u64 = stats.regions.iter().map(|r| r.evals).sum();
            assert_eq!(
                region_evals,
                ps.assign_evals - base_evals,
                "every parallel-settle eval attributes to exactly one region"
            );
        }
    }

    /// Same invariant with the production batch threshold: narrow
    /// levels settle inline and attribution still balances.
    #[test]
    fn parallel_default_threshold_matches_serial() {
        let design = counter_ram();
        let mut serial = CompiledSim::compile(&design, "dut").expect("compile");
        let base_evals = serial.stats().assign_evals;
        let mut par = ParallelSim::compile(&design, "dut", SimThreads(2)).expect("compile");
        drive(&mut serial, 40);
        drive(&mut par, 40);
        for n in ["q", "dout", "count", "addr"] {
            assert_eq!(
                serial.read(n).expect("serial"),
                par.read(n).expect("parallel"),
                "signal `{n}` diverged"
            );
        }
        assert_eq!(serial.stats().assign_evals, par.stats().assign_evals);
        let stats = par.par_stats().expect("par stats");
        assert_eq!(
            stats.parallel_evals + stats.serial_evals,
            par.stats().assign_evals - base_evals
        );
    }

    /// DESIGN.md §16 error-path contract: when several instructions of
    /// one level fail in a single settle, the parallel drain surfaces
    /// the failure with the lowest tape index — bit-identical to the
    /// serial tape-order scan — at 2 and 4 lanes with the pool forced
    /// on. Two level-0 assigns each fail when `sel` rises (unknown
    /// names in the taken ternary arm lower to `Op::Fail`); the initial
    /// settle takes the healthy arm.
    #[test]
    fn same_level_failures_surface_lowest_tape_index() {
        let mut m = VModule::new("faulty");
        m.port(Port::input("sel", 1))
            .port(Port::input("a", 8))
            .port(Port::output("f1", 8))
            .port(Port::output("f2", 8));
        for (out, bogus) in [("f1", "nope1"), ("f2", "nope2")] {
            m.item(Item::Assign {
                lhs: Expr::id(out),
                rhs: Expr::Ternary(
                    Box::new(Expr::id("sel")),
                    Box::new(Expr::id(bogus)),
                    Box::new(Expr::id("a")),
                ),
            });
        }
        let design = Design::new(m);
        let mut serial = CompiledSim::compile(&design, "faulty").expect("compile");
        let serial_err = serial.poke("sel", 1).expect_err("serial fault");
        assert!(
            serial_err.message.contains("nope1"),
            "serial surfaces the lower tape index: {}",
            serial_err.message
        );
        for threads in [2usize, 4] {
            let mut par =
                ParallelSim::compile(&design, "faulty", SimThreads(threads)).expect("compile");
            par.par_set_min_batch(1);
            let err = par.poke("sel", 1).expect_err("parallel fault");
            assert_eq!(
                err.message, serial_err.message,
                "error surfacing diverged at {threads} lanes"
            );
        }
    }

    /// Miri lane smoke test (the CI lane filters on the `pool_` test
    /// prefix): drives a forced-pool settle through the unsafe
    /// worker-pool surface under a workload small enough for Miri,
    /// checking values against the serial engine. The threshold is set
    /// through the hook, not `DEEPBURNING_PAR_MIN_BATCH` — Miri's
    /// isolated environment hides env vars.
    #[test]
    fn pool_forced_batch_matches_serial_smoke() {
        let design = counter_ram();
        let mut serial = CompiledSim::compile(&design, "dut").expect("compile");
        let mut par = ParallelSim::compile(&design, "dut", SimThreads(3)).expect("compile");
        par.par_set_min_batch(1);
        drive(&mut serial, 4);
        drive(&mut par, 4);
        for n in ["q", "dout", "count", "addr"] {
            assert_eq!(
                serial.read(n).expect("serial"),
                par.read(n).expect("parallel"),
                "signal `{n}` diverged under the forced pool"
            );
        }
        assert!(par.par_stats().expect("stats").parallel_batches > 0);
    }

    /// Miri lane smoke test: the race-checked pool path — actual-touch
    /// recording crossing the worker boundary through the batch
    /// context — stays clean and bit-identical on a valid tape.
    #[test]
    fn pool_race_checker_passes_clean_design_smoke() {
        let design = counter_ram();
        let mut serial = CompiledSim::compile(&design, "dut").expect("compile");
        let mut par = ParallelSim::compile(&design, "dut", SimThreads(2)).expect("compile");
        par.par_set_min_batch(1);
        par.enable_race_check();
        drive(&mut serial, 4);
        drive(&mut par, 4);
        for n in ["q", "dout", "count", "addr"] {
            assert_eq!(
                serial.read(n).expect("serial"),
                par.read(n).expect("parallel"),
                "signal `{n}` diverged under the race checker"
            );
        }
    }

    /// Profiled parallel drain ≡ profiled serial drain: same profile
    /// totals, same occupancy histogram, same values.
    #[cfg(feature = "prof")]
    #[test]
    fn parallel_profile_matches_serial_profile() {
        let design = counter_ram();
        let mut serial = CompiledSim::compile(&design, "dut").expect("compile");
        serial.prof_enable();
        drive(&mut serial, 40);
        let sp = serial.prof_profile().expect("serial profile");
        let mut par = ParallelSim::compile(&design, "dut", SimThreads(2)).expect("compile");
        par.par_set_min_batch(1);
        par.prof_enable();
        drive(&mut par, 40);
        let pp = par.prof_profile().expect("parallel profile");
        for n in ["q", "dout", "count", "addr"] {
            assert_eq!(
                serial.read(n).expect("serial"),
                par.read(n).expect("parallel")
            );
        }
        assert_eq!(sp.total_evals, pp.total_evals);
        assert_eq!(sp.total_ops, pp.total_ops);
        assert_eq!(sp.sweeps.sweeps, pp.sweeps.sweeps);
        assert_eq!(sp.sweeps.wasted_wakeups, pp.sweeps.wasted_wakeups);
        let sop: Vec<_> = sp.opcodes.iter().map(|o| (o.opcode, o.count)).collect();
        let pop: Vec<_> = pp.opcodes.iter().map(|o| (o.opcode, o.count)).collect();
        assert_eq!(sop, pop, "opcode attribution diverged");
        assert_eq!(
            sp.sweeps.dirty_occupancy.count(),
            pp.sweeps.dirty_occupancy.count()
        );
    }

    proptest! {
        /// CompiledSim ≡ Interpreter on random combinational designs and
        /// random stimulus, covering x-fanin (the undriven leaf) and the
        /// signed compare / divide / shift operators.
        #[test]
        fn compiled_matches_interpreter_on_random_designs(
            (plans, stimulus) in plan_strategy()
        ) {
            let (design, nets) = build_design(&plans);
            let mut tree = Interpreter::elaborate(&design, "rand").expect("tree elab");
            let mut compiled = CompiledSim::compile(&design, "rand").expect("compile");
            let inputs = ["a", "b", "c"];
            for (port, value) in &stimulus {
                let port = inputs[*port as usize % inputs.len()];
                tree.poke(port, *value).expect("tree poke");
                compiled.poke(port, *value).expect("compiled poke");
                for n in &nets {
                    prop_assert_eq!(
                        tree.read(n).expect("tree read"),
                        compiled.read(n).expect("compiled read"),
                        "net `{}` diverged after poke {}={}", n, port, value
                    );
                }
                prop_assert_eq!(tree.read("undriven").expect("t"), 0);
                prop_assert_eq!(compiled.read("undriven").expect("c"), 0);
            }
        }

        /// A 2-lane settle of a random netlist matches the serial
        /// dirty-set evolution sweep-by-sweep: after every poke, both
        /// engines have settled the same cumulative instruction count
        /// (identical dirty sets drained each sweep) and agree on every
        /// net, with the pool path forced on.
        #[test]
        fn two_lane_settle_matches_serial_sweep_by_sweep(
            (plans, stimulus) in plan_strategy()
        ) {
            let (design, nets) = build_design(&plans);
            let mut serial = CompiledSim::compile(&design, "rand").expect("compile");
            let base_evals = serial.stats().assign_evals;
            let mut par =
                ParallelSim::compile(&design, "rand", SimThreads(2)).expect("compile");
            par.par_set_min_batch(1);
            let inputs = ["a", "b", "c"];
            for (port, value) in &stimulus {
                let port = inputs[*port as usize % inputs.len()];
                serial.poke(port, *value).expect("serial poke");
                par.poke(port, *value).expect("parallel poke");
                let (ss, ps) = (serial.stats(), par.stats());
                prop_assert_eq!(
                    ss.settle_passes, ps.settle_passes,
                    "sweep count diverged after poke {}={}", port, value
                );
                prop_assert_eq!(
                    ss.assign_evals, ps.assign_evals,
                    "dirty-set evolution diverged after poke {}={}", port, value
                );
                for n in &nets {
                    prop_assert_eq!(
                        serial.read(n).expect("serial read"),
                        par.read(n).expect("parallel read"),
                        "net `{}` diverged after poke {}={}", n, port, value
                    );
                }
            }
            let stats = par.par_stats().expect("par stats");
            prop_assert_eq!(
                stats.parallel_evals + stats.serial_evals,
                par.stats().assign_evals - base_evals
            );
        }
    }
}
