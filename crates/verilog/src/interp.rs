//! A behavioural interpreter for the emitted Verilog subset.
//!
//! This is the reproduction's stand-in for "RTL-level simulation of
//! forward-propagation … conducted with Vivado to verify the timing and
//! function of the generated accelerators": generated modules are executed
//! cycle by cycle and cross-checked against the compiler's behavioural
//! models (see the AGU and coordinator tests in `deepburning-core`).
//!
//! Semantics implemented:
//! * two-state logic (no X/Z) on arbitrary-width vectors (≤ 64 bits);
//! * continuous assigns re-evaluated to a fixed point each step;
//! * `always @(posedge clk)` blocks with non-blocking assignment
//!   semantics (all RHS evaluated against pre-edge state);
//! * `reg` memories with word read/write;
//! * module instances flattened recursively at construction.

use crate::ast::*;
use crate::vcd::VcdRecorder;
use std::collections::BTreeMap;
use std::fmt;

/// Error raised while elaborating or simulating a module.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimulateError {
    /// Explanation.
    pub message: String,
}

impl fmt::Display for SimulateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "simulation error: {}", self.message)
    }
}

impl std::error::Error for SimulateError {}

fn err(message: impl Into<String>) -> SimulateError {
    SimulateError {
        message: message.into(),
    }
}

fn mask(width: u32) -> u64 {
    if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

#[derive(Debug, Clone)]
enum Value {
    Scalar(u64),
    Memory(Vec<u64>),
}

#[derive(Debug, Clone)]
struct Signal {
    width: u32,
    value: Value,
}

/// Execution counters for one interpreter instance — the attribution data
/// behind "where does the RTL view spend its time".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct InterpStats {
    /// Rising clock edges executed.
    pub clock_edges: u64,
    /// Settle passes over the continuous assigns (each pass re-evaluates
    /// every assign once).
    pub settle_passes: u64,
    /// Continuous-assign right-hand sides evaluated.
    pub assign_evals: u64,
    /// Non-blocking assignments committed on clock edges.
    pub nba_writes: u64,
}

impl InterpStats {
    /// Total expression evaluations attributable to this instance (the
    /// assign fixed-point dominates interpreter cost).
    pub fn evals(&self) -> u64 {
        self.assign_evals + self.nba_writes
    }
}

/// The common testbench surface over both simulation engines: the
/// tree-walking [`Interpreter`] (the semantic reference) and the
/// levelized [`CompiledSim`](crate::CompiledSim). Everything downstream
/// of elaboration — the differential harness, the counter replay, the
/// VCD divergence bundles — drives a `dyn Simulator`, so the engines are
/// interchangeable behind [`SimEngine`](crate::SimEngine).
pub trait Simulator {
    /// Drives a top-level input, then settles the combinational nets.
    ///
    /// # Errors
    ///
    /// Returns an error for unknown or non-input signals.
    fn poke(&mut self, name: &str, value: u64) -> Result<(), SimulateError>;

    /// Reads any signal's current value (hierarchical names use `.`).
    ///
    /// # Errors
    ///
    /// Returns an error for unknown signals or whole-memory reads.
    fn read(&self, name: &str) -> Result<u64, SimulateError>;

    /// Writes a memory word-for-word (testbench backdoor for ROM images).
    ///
    /// # Errors
    ///
    /// Returns an error if the signal is not a memory.
    fn load_memory(&mut self, name: &str, words: &[u64]) -> Result<(), SimulateError>;

    /// One rising edge of the clock named `clk`.
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors.
    fn clock(&mut self) -> Result<(), SimulateError> {
        self.clock_named("clk")
    }

    /// One rising edge of a specific clock signal.
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors.
    fn clock_named(&mut self, clk: &str) -> Result<(), SimulateError>;

    /// Cycles executed so far.
    fn cycles(&self) -> u64;

    /// Execution counters accumulated so far. `clock_edges` and
    /// `nba_writes` are engine-independent; `settle_passes` and
    /// `assign_evals` count the engine's own work (the compiled engine
    /// evaluates only dirty fanout cones, so its counts are lower).
    fn stats(&self) -> InterpStats;

    /// Number of flattened signals (diagnostics).
    fn signal_count(&self) -> usize;

    /// Expression evaluations attributed to the flattened instance path
    /// that produced each instruction (`""` is the top module). Engines
    /// without per-instruction attribution return an empty list.
    fn evals_by_module(&self) -> Vec<(String, u64)> {
        Vec::new()
    }

    /// Starts VCD waveform recording (see [`Interpreter::vcd_begin`]).
    fn vcd_begin(&mut self, top: &str);

    /// Starts VCD recording that streams incrementally into `sink`
    /// instead of buffering in memory: the header is written immediately
    /// and every subsequent clock edge appends one small delta, so
    /// resident memory stays constant however long the run is.
    /// [`Simulator::vcd_end`] flushes the sink and returns `None` — the
    /// document lives wherever the sink wrote it.
    fn vcd_begin_streaming(&mut self, top: &str, sink: Box<dyn std::io::Write + Send>);

    /// Forces a sample outside a clock edge.
    fn vcd_sample_now(&mut self);

    /// Stops recording. Buffered recordings ([`Simulator::vcd_begin`])
    /// return the VCD document; streamed recordings return `None` after
    /// flushing their sink.
    fn vcd_end(&mut self) -> Option<String>;

    /// Timesteps recorded so far, or 0 when not recording.
    fn vcd_timesteps(&self) -> u64;

    /// Bytes the active VCD recording has pushed through its sink, or 0
    /// when not recording.
    fn vcd_bytes_written(&self) -> u64 {
        0
    }

    /// Width in bits of a scalar signal, or `None` for unknown signals
    /// and memories. Used by flight recorders to build watch lists.
    fn signal_width(&self, name: &str) -> Option<u32>;

    /// Starts hot-spot profiling (counter-based; see
    /// `deepburning_trace::prof`). Engines without a profiler ignore
    /// the call.
    #[cfg(feature = "prof")]
    fn prof_enable(&mut self) {}

    /// Snapshot of the accumulated profile, or `None` when profiling
    /// was never enabled (or the engine has no profiler).
    #[cfg(feature = "prof")]
    fn prof_profile(&self) -> Option<deepburning_trace::prof::EngineProfile> {
        None
    }

    /// Parallel-settle attribution counters, or `None` for engines (or
    /// configurations) that settle serially.
    fn par_stats(&self) -> Option<crate::partition::ParStats> {
        None
    }
}

// ---------------------------------------------------------------------------
// Shared elaboration: hierarchy flattening.
// ---------------------------------------------------------------------------

/// One flattened signal declaration.
#[derive(Debug, Clone)]
pub(crate) struct FlatSignal {
    /// Hierarchical dot-separated name.
    pub name: String,
    /// Bit width.
    pub width: u32,
    /// `Some(depth)` for memories.
    pub depth: Option<usize>,
}

/// A [`Design`] flattened to executable primitives: every instance
/// inlined, every identifier rewritten to its hierarchical name. Both
/// engines elaborate from this.
#[derive(Debug, Clone, Default)]
pub(crate) struct FlatDesign {
    /// Signals in declaration order (top ports first).
    pub signals: Vec<FlatSignal>,
    /// Continuous assigns, flattened, in declaration order.
    pub assigns: Vec<(Expr, Expr)>,
    /// `(clock name, body)` for every flattened posedge block.
    pub clocked: Vec<(String, Vec<Stmt>)>,
    /// Top-level input port names (writable from the testbench).
    pub inputs: Vec<String>,
}

impl FlatDesign {
    fn declare(
        &mut self,
        name: &str,
        width: u32,
        depth: Option<usize>,
    ) -> Result<(), SimulateError> {
        if width > 64 {
            return Err(err(format!(
                "signal `{name}` is {width} bits; the interpreter handles at most 64"
            )));
        }
        self.signals.push(FlatSignal {
            name: name.to_string(),
            width,
            depth,
        });
        Ok(())
    }

    fn flatten(
        &mut self,
        design: &Design,
        module: &VModule,
        prefix: &str,
        binds: &BTreeMap<String, Expr>,
    ) -> Result<(), SimulateError> {
        for item in &module.items {
            match item {
                Item::Net(n) => {
                    self.declare(&prefixed(prefix, &n.name), n.width, n.depth)?;
                }
                Item::Assign { lhs, rhs } => {
                    self.assigns.push((
                        rewrite_expr(lhs, prefix, binds),
                        rewrite_expr(rhs, prefix, binds),
                    ));
                }
                Item::Always { sensitivity, body } => {
                    let clk = match sensitivity {
                        Sensitivity::PosEdge(c) => {
                            // Resolve the clock through the binds.
                            match binds.get(c) {
                                Some(Expr::Id(parent)) => parent.clone(),
                                Some(_) => return Err(err("clock bound to a non-identifier")),
                                None => prefixed(prefix, c),
                            }
                        }
                        Sensitivity::Combinational => {
                            return Err(err(
                                "combinational always blocks are not supported; use assigns",
                            ))
                        }
                    };
                    let body = body
                        .iter()
                        .map(|s| rewrite_stmt(s, prefix, binds))
                        .collect();
                    self.clocked.push((clk, body));
                }
                Item::Instance {
                    module: child_name,
                    name,
                    connections,
                    ..
                } => {
                    let child = design
                        .module(child_name)
                        .ok_or_else(|| err(format!("no module `{child_name}`")))?;
                    let child_prefix = prefixed(prefix, name);
                    let mut child_binds = BTreeMap::new();
                    for (port, expr) in connections {
                        child_binds.insert(port.clone(), rewrite_expr(expr, prefix, binds));
                    }
                    // Unconnected child ports become local nets.
                    for p in &child.ports {
                        if !child_binds.contains_key(&p.name) {
                            let local = prefixed(&child_prefix, &p.name);
                            self.declare(&local, p.width, None)?;
                            child_binds.insert(p.name.clone(), Expr::Id(local));
                        }
                    }
                    // Output ports drive the bound expression: model as a
                    // continuous assign parent_expr = child_port_signal.
                    for p in &child.ports {
                        let local = prefixed(&child_prefix, &p.name);
                        match p.dir {
                            PortDir::Output => {
                                self.declare(&local, p.width, None)?;
                                let parent = child_binds[&p.name].clone();
                                self.assigns.push((parent, Expr::Id(local.clone())));
                            }
                            PortDir::Input => {
                                // Inputs read the parent's expression
                                // directly through the bind map.
                            }
                        }
                    }
                    // Inside the child, output port writes go to the local
                    // signal; input port reads go through the bind.
                    let mut inner_binds = child_binds.clone();
                    for p in &child.ports {
                        if p.dir == PortDir::Output {
                            inner_binds
                                .insert(p.name.clone(), Expr::Id(prefixed(&child_prefix, &p.name)));
                        }
                    }
                    self.flatten(design, child, &child_prefix, &inner_binds)?;
                }
                Item::Comment(_) => {}
            }
        }
        Ok(())
    }
}

/// Flattens `design`'s module `top` (instantiating submodules
/// recursively) into executable primitives.
pub(crate) fn flatten_design(design: &Design, top: &str) -> Result<FlatDesign, SimulateError> {
    let module = design
        .module(top)
        .ok_or_else(|| err(format!("no module `{top}`")))?;
    let mut flat = FlatDesign::default();
    // Top ports become plain signals the testbench reads/writes.
    for p in &module.ports {
        flat.declare(&p.name, p.width, None)?;
        if p.dir == PortDir::Input {
            flat.inputs.push(p.name.clone());
        }
    }
    flat.flatten(design, module, "", &BTreeMap::new())?;
    Ok(flat)
}

/// A flattened, executable instance of a [`Design`]'s module.
///
/// # Examples
///
/// ```
/// use deepburning_verilog::*;
///
/// let mut m = VModule::new("toggler");
/// m.port(Port::input("clk", 1)).port(Port::output("q", 1));
/// m.item(Item::Net(NetDecl::reg("state", 1)));
/// m.item(Item::Always {
///     sensitivity: Sensitivity::PosEdge("clk".into()),
///     body: vec![Stmt::NonBlocking(
///         Expr::id("state"),
///         Expr::Unary(UnaryOp::BitNot, Box::new(Expr::id("state"))),
///     )],
/// });
/// m.item(Item::Assign { lhs: Expr::id("q"), rhs: Expr::id("state") });
///
/// let mut sim = Interpreter::elaborate(&Design::new(m), "toggler")?;
/// assert_eq!(sim.read("q")?, 0);
/// sim.clock()?;
/// assert_eq!(sim.read("q")?, 1);
/// sim.clock()?;
/// assert_eq!(sim.read("q")?, 0);
/// # Ok::<(), deepburning_verilog::SimulateError>(())
/// ```
#[derive(Debug)]
pub struct Interpreter {
    signals: BTreeMap<String, Signal>,
    /// Continuous assigns, flattened, in declaration order.
    assigns: Vec<(Expr, Expr)>,
    /// `(clock name, body)` for every flattened posedge block.
    clocked: Vec<(String, Vec<Stmt>)>,
    /// Top-level input port names (writable from the testbench).
    inputs: Vec<String>,
    /// Cycles executed so far.
    cycles: u64,
    /// Execution counters.
    stats: InterpStats,
    /// Active waveform recorder (see [`Interpreter::vcd_begin`]) and the
    /// dumped signal names in recorder order.
    vcd: Option<Box<VcdRecorder>>,
    vcd_names: Vec<String>,
    /// Instance-path table and per-path eval counts — the Tree engine's
    /// coarse attribution, matching the compiled engine's
    /// `evals_by_module` semantics (assign evals plus NBA writes,
    /// attributed to the destination signal's instance path).
    module_paths: Vec<String>,
    module_evals: Vec<u64>,
    /// Per-assign module id (indexed like `assigns`).
    assign_module: Vec<u32>,
    /// Module id by instance path, for NBA-write attribution at runtime.
    module_of: BTreeMap<String, u32>,
    /// Assign evals whose destination value did not change — the Tree
    /// engine's analogue of the compiled engine's wasted wakeups.
    wasted_evals: u64,
}

/// Root identifier of an lvalue expression (`a.b.c[i]` → `a.b.c`).
fn lhs_root(e: &Expr) -> Option<&str> {
    match e {
        Expr::Id(n) => Some(n),
        Expr::Index(b, _) | Expr::Slice(b, _, _) => lhs_root(b),
        _ => None,
    }
}

fn prefixed(prefix: &str, name: &str) -> String {
    if prefix.is_empty() {
        name.to_string()
    } else {
        format!("{prefix}.{name}")
    }
}

/// Rewrites every identifier in `e` with the instance prefix, and replaces
/// identifiers bound to parent expressions (port connections).
fn rewrite_expr(e: &Expr, prefix: &str, binds: &BTreeMap<String, Expr>) -> Expr {
    match e {
        Expr::Id(n) => {
            if let Some(bound) = binds.get(n) {
                bound.clone()
            } else {
                Expr::Id(prefixed(prefix, n))
            }
        }
        Expr::Lit { .. } => e.clone(),
        Expr::Unary(op, a) => Expr::Unary(*op, Box::new(rewrite_expr(a, prefix, binds))),
        Expr::Binary(op, l, r) => Expr::Binary(
            *op,
            Box::new(rewrite_expr(l, prefix, binds)),
            Box::new(rewrite_expr(r, prefix, binds)),
        ),
        Expr::Ternary(c, a, b) => Expr::Ternary(
            Box::new(rewrite_expr(c, prefix, binds)),
            Box::new(rewrite_expr(a, prefix, binds)),
            Box::new(rewrite_expr(b, prefix, binds)),
        ),
        Expr::Index(b, i) => Expr::Index(
            Box::new(rewrite_expr(b, prefix, binds)),
            Box::new(rewrite_expr(i, prefix, binds)),
        ),
        Expr::Slice(b, hi, lo) => Expr::Slice(Box::new(rewrite_expr(b, prefix, binds)), *hi, *lo),
        Expr::Concat(es) => {
            Expr::Concat(es.iter().map(|e| rewrite_expr(e, prefix, binds)).collect())
        }
    }
}

fn rewrite_stmt(s: &Stmt, prefix: &str, binds: &BTreeMap<String, Expr>) -> Stmt {
    match s {
        Stmt::NonBlocking(l, r) => Stmt::NonBlocking(
            rewrite_expr(l, prefix, binds),
            rewrite_expr(r, prefix, binds),
        ),
        Stmt::Blocking(l, r) => Stmt::Blocking(
            rewrite_expr(l, prefix, binds),
            rewrite_expr(r, prefix, binds),
        ),
        Stmt::If {
            cond,
            then_body,
            else_body,
        } => Stmt::If {
            cond: rewrite_expr(cond, prefix, binds),
            then_body: then_body
                .iter()
                .map(|s| rewrite_stmt(s, prefix, binds))
                .collect(),
            else_body: else_body
                .iter()
                .map(|s| rewrite_stmt(s, prefix, binds))
                .collect(),
        },
        Stmt::Case {
            subject,
            arms,
            default,
        } => Stmt::Case {
            subject: rewrite_expr(subject, prefix, binds),
            arms: arms
                .iter()
                .map(|(m, body)| {
                    (
                        rewrite_expr(m, prefix, binds),
                        body.iter()
                            .map(|s| rewrite_stmt(s, prefix, binds))
                            .collect(),
                    )
                })
                .collect(),
            default: default
                .iter()
                .map(|s| rewrite_stmt(s, prefix, binds))
                .collect(),
        },
        Stmt::Comment(c) => Stmt::Comment(c.clone()),
    }
}

impl Interpreter {
    /// Flattens `top` (instantiating submodules recursively) into an
    /// executable state machine. All signals start at zero.
    ///
    /// # Errors
    ///
    /// Returns [`SimulateError`] on unknown modules, unbound output ports
    /// connected to non-identifiers, or signals wider than 64 bits.
    pub fn elaborate(design: &Design, top: &str) -> Result<Self, SimulateError> {
        let flat = flatten_design(design, top)?;
        let mut signals = BTreeMap::new();
        for sig in &flat.signals {
            let value = match sig.depth {
                Some(d) => Value::Memory(vec![0; d]),
                None => Value::Scalar(0),
            };
            signals.insert(
                sig.name.clone(),
                Signal {
                    width: sig.width,
                    value,
                },
            );
        }
        // Instance-path table keyed like the compiled engine's: module
        // id 0 is the top (`""`), others are flattened instance paths.
        let mut module_paths: Vec<String> = vec![String::new()];
        let mut module_of: BTreeMap<String, u32> = BTreeMap::new();
        module_of.insert(String::new(), 0);
        for sig in &flat.signals {
            let path = sig.name.rsplit_once('.').map_or("", |(p, _)| p);
            if !module_of.contains_key(path) {
                module_of.insert(path.to_string(), module_paths.len() as u32);
                module_paths.push(path.to_string());
            }
        }
        let assign_module: Vec<u32> = flat
            .assigns
            .iter()
            .map(|(lhs, _)| {
                let path = lhs_root(lhs)
                    .and_then(|root| root.rsplit_once('.'))
                    .map_or("", |(p, _)| p);
                module_of.get(path).copied().unwrap_or(0)
            })
            .collect();
        let module_evals = vec![0; module_paths.len()];
        let mut interp = Interpreter {
            signals,
            assigns: flat.assigns,
            clocked: flat.clocked,
            inputs: flat.inputs,
            cycles: 0,
            stats: InterpStats::default(),
            vcd: None,
            vcd_names: Vec::new(),
            module_paths,
            module_evals,
            assign_module,
            module_of,
            wasted_evals: 0,
        };
        interp.settle()?;
        Ok(interp)
    }

    fn width_of(&self, name: &str) -> Result<u32, SimulateError> {
        self.signals
            .get(name)
            .map(|s| s.width)
            .ok_or_else(|| err(format!("unknown signal `{name}`")))
    }

    fn eval(&self, e: &Expr) -> Result<(u64, u32), SimulateError> {
        Ok(match e {
            Expr::Id(n) => {
                let s = self
                    .signals
                    .get(n)
                    .ok_or_else(|| err(format!("unknown signal `{n}`")))?;
                match &s.value {
                    Value::Scalar(v) => (*v & mask(s.width), s.width),
                    Value::Memory(_) => {
                        return Err(err(format!("memory `{n}` read without index")))
                    }
                }
            }
            Expr::Lit { width, value } => (*value & mask(*width), *width),
            Expr::Unary(op, a) => {
                let (v, w) = self.eval(a)?;
                match op {
                    UnaryOp::Not => (u64::from(v == 0), 1),
                    UnaryOp::BitNot => (!v & mask(w), w),
                    UnaryOp::Neg => (v.wrapping_neg() & mask(w), w),
                    UnaryOp::RedOr => (u64::from(v != 0), 1),
                    UnaryOp::RedAnd => (u64::from(v == mask(w)), 1),
                }
            }
            Expr::Binary(op, l, r) => {
                let (lv, lw) = self.eval(l)?;
                let (rv, rw) = self.eval(r)?;
                let w = lw.max(rw);
                let m = mask(w);
                let signed = |v: u64, w: u32| -> i64 {
                    let m = mask(w);
                    let v = v & m;
                    if w < 64 && v >> (w - 1) != 0 {
                        (v | !m) as i64
                    } else {
                        v as i64
                    }
                };
                match op {
                    BinaryOp::Add => (lv.wrapping_add(rv) & m, w),
                    BinaryOp::Sub => (lv.wrapping_sub(rv) & m, w),
                    BinaryOp::Mul => (lv.wrapping_mul(rv) & m, w),
                    BinaryOp::Div => {
                        // `$signed` division truncating toward zero. Division
                        // by zero yields 0 — the two-state stand-in for `x`.
                        let d = signed(rv, rw);
                        let q = if d == 0 {
                            0
                        } else {
                            signed(lv, lw).wrapping_div(d)
                        };
                        ((q as u64) & m, w)
                    }
                    BinaryOp::And => (lv & rv, w),
                    BinaryOp::Or => (lv | rv, w),
                    BinaryOp::Xor => (lv ^ rv, w),
                    BinaryOp::Shl => ((lv << (rv & 63)) & mask(lw), lw),
                    BinaryOp::Shr => {
                        // Arithmetic shift on the left operand's width.
                        let sv = signed(lv, lw) >> (rv & 63);
                        ((sv as u64) & mask(lw), lw)
                    }
                    BinaryOp::Eq => (u64::from((lv & m) == (rv & m)), 1),
                    BinaryOp::Ne => (u64::from((lv & m) != (rv & m)), 1),
                    BinaryOp::Lt => (u64::from(lv < rv), 1),
                    BinaryOp::Slt => (u64::from(signed(lv, lw) < signed(rv, rw)), 1),
                    BinaryOp::Ge => (u64::from(lv >= rv), 1),
                    BinaryOp::LogAnd => (u64::from(lv != 0 && rv != 0), 1),
                    BinaryOp::LogOr => (u64::from(lv != 0 || rv != 0), 1),
                }
            }
            Expr::Ternary(c, a, b) => {
                let (cv, _) = self.eval(c)?;
                if cv != 0 {
                    self.eval(a)?
                } else {
                    self.eval(b)?
                }
            }
            Expr::Index(base, idx) => {
                let root = base
                    .lvalue_root()
                    .ok_or_else(|| err("index on a non-identifier"))?;
                let (i, _) = self.eval(idx)?;
                let s = self
                    .signals
                    .get(root)
                    .ok_or_else(|| err(format!("unknown signal `{root}`")))?;
                match &s.value {
                    Value::Memory(words) => {
                        let v = words.get(i as usize).copied().unwrap_or(0);
                        (v & mask(s.width), s.width)
                    }
                    Value::Scalar(v) => ((v >> (i & 63)) & 1, 1),
                }
            }
            Expr::Slice(base, hi, lo) => {
                let (v, _) = self.eval(base)?;
                let w = hi - lo + 1;
                ((v >> lo) & mask(w), w)
            }
            Expr::Concat(es) => {
                let mut acc = 0u64;
                let mut total = 0u32;
                for part in es {
                    let (v, w) = self.eval(part)?;
                    acc = (acc << w) | (v & mask(w));
                    total += w;
                }
                (acc & mask(total), total)
            }
        })
    }

    fn write_signal(&mut self, lhs: &Expr, value: u64) -> Result<(), SimulateError> {
        match lhs {
            Expr::Id(n) => {
                let s = self
                    .signals
                    .get_mut(n)
                    .ok_or_else(|| err(format!("unknown signal `{n}`")))?;
                let w = s.width;
                match &mut s.value {
                    Value::Scalar(slot) => *slot = value & mask(w),
                    Value::Memory(_) => {
                        return Err(err(format!("memory `{n}` written without index")))
                    }
                }
            }
            Expr::Index(base, idx) => {
                let root = base
                    .lvalue_root()
                    .ok_or_else(|| err("index write on a non-identifier"))?
                    .to_string();
                let (i, _) = self.eval(idx)?;
                let s = self
                    .signals
                    .get_mut(&root)
                    .ok_or_else(|| err(format!("unknown signal `{root}`")))?;
                let w = s.width;
                match &mut s.value {
                    Value::Memory(words) => {
                        if let Some(slot) = words.get_mut(i as usize) {
                            *slot = value & mask(w);
                        }
                    }
                    Value::Scalar(slot) => {
                        let bit = i & 63;
                        *slot = (*slot & !(1 << bit)) | ((value & 1) << bit);
                    }
                }
            }
            Expr::Slice(base, hi, lo) => {
                let root = base
                    .lvalue_root()
                    .ok_or_else(|| err("slice write on a non-identifier"))?
                    .to_string();
                let s = self
                    .signals
                    .get_mut(&root)
                    .ok_or_else(|| err(format!("unknown signal `{root}`")))?;
                if let Value::Scalar(slot) = &mut s.value {
                    let field = mask(hi - lo + 1);
                    *slot = (*slot & !(field << lo)) | ((value & field) << lo);
                }
            }
            _ => return Err(err("assignment to a non-lvalue")),
        }
        Ok(())
    }

    /// Re-evaluates continuous assigns until the net values stop changing.
    fn settle(&mut self) -> Result<(), SimulateError> {
        for _ in 0..(self.assigns.len() + 2) {
            let mut changed = false;
            let assigns = self.assigns.clone();
            self.stats.settle_passes += 1;
            self.stats.assign_evals += assigns.len() as u64;
            for (idx, (lhs, rhs)) in assigns.iter().enumerate() {
                let (v, _) = self.eval(rhs)?;
                self.module_evals[self.assign_module[idx] as usize] += 1;
                let before = self.eval_lhs_current(lhs)?;
                if before != Some(v) {
                    self.write_signal(lhs, v)?;
                    changed = true;
                } else {
                    self.wasted_evals += 1;
                }
            }
            if !changed {
                return Ok(());
            }
        }
        Err(err("combinational loop: assigns did not settle"))
    }

    fn eval_lhs_current(&self, lhs: &Expr) -> Result<Option<u64>, SimulateError> {
        Ok(match lhs {
            Expr::Id(_) | Expr::Index(_, _) | Expr::Slice(_, _, _) => {
                Some(self.eval(lhs).map(|(v, _)| v).unwrap_or(0))
            }
            _ => None,
        })
    }

    fn run_stmts(&self, stmts: &[Stmt], nba: &mut Vec<(Expr, u64)>) -> Result<(), SimulateError> {
        for s in stmts {
            match s {
                Stmt::NonBlocking(lhs, rhs) => {
                    let (v, _) = self.eval(rhs)?;
                    nba.push((lhs.clone(), v));
                }
                Stmt::Blocking(lhs, rhs) => {
                    // Treated as NBA too: the generated code never relies
                    // on intra-block ordering.
                    let (v, _) = self.eval(rhs)?;
                    nba.push((lhs.clone(), v));
                }
                Stmt::If {
                    cond,
                    then_body,
                    else_body,
                } => {
                    let (c, _) = self.eval(cond)?;
                    if c != 0 {
                        self.run_stmts(then_body, nba)?;
                    } else {
                        self.run_stmts(else_body, nba)?;
                    }
                }
                Stmt::Case {
                    subject,
                    arms,
                    default,
                } => {
                    let (sv, sw) = self.eval(subject)?;
                    let mut hit = false;
                    for (m, body) in arms {
                        let (mv, _) = self.eval(m)?;
                        if (mv & mask(sw)) == sv {
                            self.run_stmts(body, nba)?;
                            hit = true;
                            break;
                        }
                    }
                    if !hit {
                        self.run_stmts(default, nba)?;
                    }
                }
                Stmt::Comment(_) => {}
            }
        }
        Ok(())
    }

    /// Drives a top-level input.
    ///
    /// # Errors
    ///
    /// Returns an error for unknown or non-input signals.
    pub fn poke(&mut self, name: &str, value: u64) -> Result<(), SimulateError> {
        if !self.inputs.iter().any(|i| i == name) {
            return Err(err(format!("`{name}` is not a top-level input")));
        }
        let w = self.width_of(name)?;
        self.write_signal(&Expr::id(name), value & mask(w))?;
        self.settle()
    }

    /// Reads any signal's current value (hierarchical names use `.`).
    ///
    /// # Errors
    ///
    /// Returns an error for unknown signals or whole-memory reads.
    pub fn read(&self, name: &str) -> Result<u64, SimulateError> {
        self.eval(&Expr::id(name)).map(|(v, _)| v)
    }

    /// Writes a memory word directly (testbench backdoor for ROM images).
    ///
    /// # Errors
    ///
    /// Returns an error if the signal is not a memory.
    pub fn load_memory(&mut self, name: &str, words: &[u64]) -> Result<(), SimulateError> {
        let s = self
            .signals
            .get_mut(name)
            .ok_or_else(|| err(format!("unknown signal `{name}`")))?;
        let w = s.width;
        match &mut s.value {
            Value::Memory(slots) => {
                for (slot, word) in slots.iter_mut().zip(words) {
                    *slot = word & mask(w);
                }
                Ok(())
            }
            Value::Scalar(_) => Err(err(format!("`{name}` is not a memory"))),
        }
    }

    /// Advances every clock named `clk` by one rising edge, then settles
    /// the combinational nets.
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors.
    pub fn clock(&mut self) -> Result<(), SimulateError> {
        self.clock_named("clk")
    }

    /// One rising edge of a specific clock signal.
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors.
    pub fn clock_named(&mut self, clk: &str) -> Result<(), SimulateError> {
        let mut nba: Vec<(Expr, u64)> = Vec::new();
        let blocks = self.clocked.clone();
        for (block_clk, body) in &blocks {
            if block_clk == clk {
                self.run_stmts(body, &mut nba)?;
            }
        }
        self.stats.nba_writes += nba.len() as u64;
        for (lhs, v) in nba {
            let path = lhs_root(&lhs)
                .and_then(|root| root.rsplit_once('.'))
                .map_or("", |(p, _)| p);
            let module = self.module_of.get(path).copied().unwrap_or(0);
            self.module_evals[module as usize] += 1;
            self.write_signal(&lhs, v)?;
        }
        self.cycles += 1;
        self.stats.clock_edges += 1;
        self.settle()?;
        self.vcd_capture();
        Ok(())
    }

    /// Cycles executed so far.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Execution counters accumulated so far.
    pub fn stats(&self) -> InterpStats {
        self.stats
    }

    /// Number of flattened signals (diagnostics).
    pub fn signal_count(&self) -> usize {
        self.signals.len()
    }

    /// Evaluations attributed per flattened instance path (`""` is the
    /// top module), descending by count. Matches the compiled engine's
    /// attribution semantics (assign evals plus NBA writes keyed by
    /// destination), though absolute counts differ: the Tree engine
    /// re-evaluates every assign each settle pass while the compiled
    /// engine wakes only dirty fanout cones.
    pub fn evals_by_module(&self) -> Vec<(String, u64)> {
        let mut out: Vec<(String, u64)> = self
            .module_paths
            .iter()
            .zip(&self.module_evals)
            .filter(|(_, &n)| n > 0)
            .map(|(p, &n)| (p.clone(), n))
            .collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        out
    }

    /// Coarse profile for engine comparability: per-module segments at
    /// level 0 with `ops == evals` (the Tree engine walks one AST node
    /// set per eval, so evals are the only cost proxy available), no
    /// per-opcode breakdown and no cut table. Always available — the
    /// Tree engine's attribution is unconditional.
    #[cfg(feature = "prof")]
    pub fn prof_profile(&self) -> Option<deepburning_trace::prof::EngineProfile> {
        use deepburning_trace::prof::{EngineProfile, SegmentProf, SweepProf};
        let mut assigns_per_module = vec![0u64; self.module_paths.len()];
        for &m in &self.assign_module {
            assigns_per_module[m as usize] += 1;
        }
        let total_evals: u64 = self.module_evals.iter().sum();
        let segments = self
            .module_paths
            .iter()
            .zip(&self.module_evals)
            .zip(&assigns_per_module)
            .filter(|((_, &evals), &instrs)| evals > 0 || instrs > 0)
            .map(|((path, &evals), &instrs)| SegmentProf {
                module: path.clone(),
                level: 0,
                instrs,
                evals,
                ops: evals,
            })
            .collect();
        Some(EngineProfile {
            engine: "tree".to_string(),
            total_evals,
            total_ops: total_evals,
            segments,
            opcodes: Vec::new(),
            sweeps: SweepProf {
                sweeps: self.stats.settle_passes,
                evals: total_evals,
                wasted_wakeups: self.wasted_evals,
                dirty_occupancy: deepburning_trace::Histogram::new(),
            },
            cuts: Vec::new(),
        })
    }

    // -- waveform recording -------------------------------------------------

    /// Starts VCD waveform recording: every subsequent clock edge becomes
    /// one 10 ns timestep (the paper's 100 MHz clock). Scalar signals are
    /// dumped; memories are skipped. The current state is captured as the
    /// `#0` initial dump.
    pub fn vcd_begin(&mut self, top: &str) {
        let signals = self.vcd_signal_list();
        self.vcd = Some(Box::new(VcdRecorder::new(top, &signals, 10)));
        self.vcd_capture();
    }

    /// Starts VCD recording that streams into `sink` instead of
    /// buffering: constant resident memory regardless of run length.
    /// [`Interpreter::vcd_end`] then flushes the sink and returns `None`.
    pub fn vcd_begin_streaming(&mut self, top: &str, sink: Box<dyn std::io::Write + Send>) {
        let signals = self.vcd_signal_list();
        self.vcd = Some(Box::new(VcdRecorder::streaming(top, &signals, 10, sink)));
        self.vcd_capture();
    }

    fn vcd_signal_list(&mut self) -> Vec<(String, u32)> {
        let signals: Vec<(String, u32)> = self
            .signals
            .iter()
            .filter(|(_, s)| matches!(s.value, Value::Scalar(_)))
            .map(|(name, s)| (name.clone(), s.width))
            .collect();
        self.vcd_names = signals.iter().map(|(n, _)| n.clone()).collect();
        signals
    }

    /// Forces a sample outside a clock edge (used for purely combinational
    /// blocks driven through pokes).
    pub fn vcd_sample_now(&mut self) {
        self.vcd_capture();
    }

    /// Stops recording and returns the VCD document, or `None` if
    /// [`Interpreter::vcd_begin`] was never called.
    pub fn vcd_end(&mut self) -> Option<String> {
        self.vcd_names.clear();
        self.vcd.take().and_then(|rec| rec.finish())
    }

    /// Timesteps recorded so far (including the initial dump), or 0 when
    /// not recording.
    pub fn vcd_timesteps(&self) -> u64 {
        self.vcd.as_ref().map(|r| r.timesteps()).unwrap_or(0)
    }

    /// Bytes the active recording has pushed through its sink.
    pub fn vcd_bytes_written(&self) -> u64 {
        self.vcd.as_ref().map(|r| r.bytes_written()).unwrap_or(0)
    }

    /// Width of a scalar signal, or `None` for unknowns and memories.
    pub fn signal_width(&self, name: &str) -> Option<u32> {
        self.signals
            .get(name)
            .filter(|s| matches!(s.value, Value::Scalar(_)))
            .map(|s| s.width)
    }

    fn vcd_capture(&mut self) {
        if let Some(mut rec) = self.vcd.take() {
            let values: Vec<u64> = self
                .vcd_names
                .iter()
                .map(|n| match self.signals.get(n).map(|s| (&s.value, s.width)) {
                    Some((Value::Scalar(v), w)) => *v & mask(w),
                    _ => 0,
                })
                .collect();
            rec.sample(&values);
            self.vcd = Some(rec);
        }
    }
}

impl Simulator for Interpreter {
    fn poke(&mut self, name: &str, value: u64) -> Result<(), SimulateError> {
        Interpreter::poke(self, name, value)
    }

    fn read(&self, name: &str) -> Result<u64, SimulateError> {
        Interpreter::read(self, name)
    }

    fn load_memory(&mut self, name: &str, words: &[u64]) -> Result<(), SimulateError> {
        Interpreter::load_memory(self, name, words)
    }

    fn clock_named(&mut self, clk: &str) -> Result<(), SimulateError> {
        Interpreter::clock_named(self, clk)
    }

    fn cycles(&self) -> u64 {
        Interpreter::cycles(self)
    }

    fn stats(&self) -> InterpStats {
        Interpreter::stats(self)
    }

    fn signal_count(&self) -> usize {
        Interpreter::signal_count(self)
    }

    fn vcd_begin(&mut self, top: &str) {
        Interpreter::vcd_begin(self, top);
    }

    fn vcd_begin_streaming(&mut self, top: &str, sink: Box<dyn std::io::Write + Send>) {
        Interpreter::vcd_begin_streaming(self, top, sink);
    }

    fn vcd_sample_now(&mut self) {
        Interpreter::vcd_sample_now(self);
    }

    fn vcd_end(&mut self) -> Option<String> {
        Interpreter::vcd_end(self)
    }

    fn vcd_timesteps(&self) -> u64 {
        Interpreter::vcd_timesteps(self)
    }

    fn vcd_bytes_written(&self) -> u64 {
        Interpreter::vcd_bytes_written(self)
    }

    fn signal_width(&self, name: &str) -> Option<u32> {
        Interpreter::signal_width(self, name)
    }

    fn evals_by_module(&self) -> Vec<(String, u64)> {
        Interpreter::evals_by_module(self)
    }

    #[cfg(feature = "prof")]
    fn prof_profile(&self) -> Option<deepburning_trace::prof::EngineProfile> {
        Interpreter::prof_profile(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counter(width: u32) -> VModule {
        let mut m = VModule::new("counter");
        m.port(Port::input("clk", 1))
            .port(Port::input("rst", 1))
            .port(Port::output("q", width));
        m.item(Item::Net(NetDecl::reg("count", width)));
        m.item(Item::Always {
            sensitivity: Sensitivity::PosEdge("clk".into()),
            body: vec![Stmt::If {
                cond: Expr::id("rst"),
                then_body: vec![Stmt::NonBlocking(Expr::id("count"), Expr::lit(width, 0))],
                else_body: vec![Stmt::NonBlocking(
                    Expr::id("count"),
                    Expr::bin(BinaryOp::Add, Expr::id("count"), Expr::lit(width, 1)),
                )],
            }],
        });
        m.item(Item::Assign {
            lhs: Expr::id("q"),
            rhs: Expr::id("count"),
        });
        m
    }

    #[test]
    fn counter_counts_and_wraps() {
        let mut sim = Interpreter::elaborate(&Design::new(counter(3)), "counter").expect("elab");
        for expected in 1..=7u64 {
            sim.clock().expect("clock");
            assert_eq!(sim.read("q").expect("read"), expected);
        }
        sim.clock().expect("clock");
        assert_eq!(sim.read("q").expect("read"), 0, "3-bit counter wraps");
    }

    #[test]
    fn reset_dominates() {
        let mut sim = Interpreter::elaborate(&Design::new(counter(8)), "counter").expect("elab");
        sim.clock().expect("clock");
        sim.clock().expect("clock");
        sim.poke("rst", 1).expect("poke");
        sim.clock().expect("clock");
        assert_eq!(sim.read("q").expect("read"), 0);
        sim.poke("rst", 0).expect("poke");
        sim.clock().expect("clock");
        assert_eq!(sim.read("q").expect("read"), 1);
    }

    #[test]
    fn nonblocking_semantics_swap() {
        // a <= b; b <= a; must swap, not duplicate.
        let mut m = VModule::new("swap");
        m.port(Port::input("clk", 1))
            .port(Port::output("a_out", 4))
            .port(Port::output("b_out", 4));
        m.item(Item::Net(NetDecl::reg("a", 4)));
        m.item(Item::Net(NetDecl::reg("b", 4)));
        m.item(Item::Always {
            sensitivity: Sensitivity::PosEdge("clk".into()),
            body: vec![
                Stmt::NonBlocking(Expr::id("a"), Expr::id("b")),
                Stmt::NonBlocking(Expr::id("b"), Expr::id("a")),
            ],
        });
        m.item(Item::Assign {
            lhs: Expr::id("a_out"),
            rhs: Expr::id("a"),
        });
        m.item(Item::Assign {
            lhs: Expr::id("b_out"),
            rhs: Expr::id("b"),
        });
        let mut sim = Interpreter::elaborate(&Design::new(m), "swap").expect("elab");
        // Backdoor: set a=3, b=9 through the registers directly.
        sim.signals.get_mut("a").expect("a").value = Value::Scalar(3);
        sim.signals.get_mut("b").expect("b").value = Value::Scalar(9);
        sim.settle().expect("settle");
        sim.clock().expect("clock");
        assert_eq!(sim.read("a_out").expect("read"), 9);
        assert_eq!(sim.read("b_out").expect("read"), 3);
    }

    #[test]
    fn memory_read_write() {
        let mut m = VModule::new("ram");
        m.port(Port::input("clk", 1))
            .port(Port::input("we", 1))
            .port(Port::input("addr", 4))
            .port(Port::input("din", 8))
            .port(Port::output("dout", 8));
        m.item(Item::Net(NetDecl::memory("mem", 8, 16)));
        m.item(Item::Net(NetDecl::reg("dout_r", 8)));
        m.item(Item::Always {
            sensitivity: Sensitivity::PosEdge("clk".into()),
            body: vec![
                Stmt::If {
                    cond: Expr::id("we"),
                    then_body: vec![Stmt::NonBlocking(
                        Expr::Index(Box::new(Expr::id("mem")), Box::new(Expr::id("addr"))),
                        Expr::id("din"),
                    )],
                    else_body: vec![],
                },
                Stmt::NonBlocking(
                    Expr::id("dout_r"),
                    Expr::Index(Box::new(Expr::id("mem")), Box::new(Expr::id("addr"))),
                ),
            ],
        });
        m.item(Item::Assign {
            lhs: Expr::id("dout"),
            rhs: Expr::id("dout_r"),
        });
        let mut sim = Interpreter::elaborate(&Design::new(m), "ram").expect("elab");
        sim.poke("we", 1).expect("poke");
        sim.poke("addr", 5).expect("poke");
        sim.poke("din", 0xAB).expect("poke");
        sim.clock().expect("clock");
        sim.poke("we", 0).expect("poke");
        sim.clock().expect("clock");
        assert_eq!(sim.read("dout").expect("read"), 0xAB);
    }

    #[test]
    fn hierarchy_flattens_and_connects() {
        // top wires two counters in series via an enable-less passthrough.
        let mut top = VModule::new("top");
        top.port(Port::input("clk", 1))
            .port(Port::input("rst", 1))
            .port(Port::output("total", 8));
        top.item(Item::Net(NetDecl::wire("q0", 8)));
        top.item(Item::Instance {
            module: "counter".into(),
            name: "u0".into(),
            params: vec![],
            connections: vec![
                ("clk".into(), Expr::id("clk")),
                ("rst".into(), Expr::id("rst")),
                ("q".into(), Expr::id("q0")),
            ],
        });
        top.item(Item::Assign {
            lhs: Expr::id("total"),
            rhs: Expr::bin(BinaryOp::Add, Expr::id("q0"), Expr::id("q0")),
        });
        let mut d = Design::new(top);
        d.add_module(counter(8));
        let mut sim = Interpreter::elaborate(&d, "top").expect("elab");
        sim.clock().expect("clock");
        sim.clock().expect("clock");
        sim.clock().expect("clock");
        assert_eq!(sim.read("q0").expect("read"), 3);
        assert_eq!(sim.read("total").expect("read"), 6);
        // Hierarchical read of the inner register.
        assert_eq!(sim.read("u0.count").expect("read"), 3);
    }

    #[test]
    fn load_memory_backdoor() {
        let mut m = VModule::new("rom");
        m.port(Port::input("addr", 2)).port(Port::output("data", 8));
        m.item(Item::Net(NetDecl::memory("content", 8, 4)));
        m.item(Item::Assign {
            lhs: Expr::id("data"),
            rhs: Expr::Index(Box::new(Expr::id("content")), Box::new(Expr::id("addr"))),
        });
        let mut sim = Interpreter::elaborate(&Design::new(m), "rom").expect("elab");
        sim.load_memory("content", &[10, 20, 30, 40]).expect("load");
        for (a, v) in [(0u64, 10u64), (1, 20), (2, 30), (3, 40)] {
            sim.poke("addr", a).expect("poke");
            assert_eq!(sim.read("data").expect("read"), v);
        }
    }

    #[test]
    fn arithmetic_shift_is_signed() {
        let mut m = VModule::new("shifter");
        m.port(Port::input("x", 8)).port(Port::output("y", 8));
        m.item(Item::Assign {
            lhs: Expr::id("y"),
            rhs: Expr::bin(BinaryOp::Shr, Expr::id("x"), Expr::lit(8, 1)),
        });
        let mut sim = Interpreter::elaborate(&Design::new(m), "shifter").expect("elab");
        sim.poke("x", 0b1000_0000).expect("poke"); // -128
        assert_eq!(sim.read("y").expect("read"), 0b1100_0000); // -64
        sim.poke("x", 8).expect("poke");
        assert_eq!(sim.read("y").expect("read"), 4);
    }

    #[test]
    fn stats_count_edges_and_evals() {
        let mut sim = Interpreter::elaborate(&Design::new(counter(8)), "counter").expect("elab");
        let after_elab = sim.stats();
        assert!(after_elab.settle_passes > 0, "elaboration settles once");
        for _ in 0..5 {
            sim.clock().expect("clock");
        }
        let s = sim.stats();
        assert_eq!(s.clock_edges, 5);
        assert_eq!(s.nba_writes, 5);
        assert!(s.assign_evals > after_elab.assign_evals);
        assert!(s.evals() >= s.assign_evals);
    }

    #[test]
    fn vcd_records_cycles_and_header() {
        let mut sim = Interpreter::elaborate(&Design::new(counter(4)), "counter").expect("elab");
        sim.vcd_begin("counter");
        for _ in 0..7 {
            sim.clock().expect("clock");
        }
        // Initial dump + one timestep per clock edge.
        assert_eq!(sim.vcd_timesteps(), 1 + sim.cycles());
        let vcd = sim.vcd_end().expect("recording was active");
        assert!(sim.vcd_end().is_none(), "recording stops after vcd_end");
        assert!(vcd.starts_with("$date"), "{vcd}");
        assert!(vcd.contains("$timescale 1 ns $end"), "{vcd}");
        assert!(vcd.contains("$scope module counter $end"), "{vcd}");
        assert!(vcd.contains("$enddefinitions $end"), "{vcd}");
        assert!(vcd.contains("$dumpvars"), "{vcd}");
        // 7 clocks at 10 ns: the last change stamp is #70.
        assert!(vcd.contains("\n#70\n"), "{vcd}");
        // The 4-bit count register is dumped as a binary vector.
        assert!(vcd.contains("b0111 "), "{vcd}");
    }

    #[test]
    fn vcd_hierarchy_scopes() {
        let mut top = VModule::new("top");
        top.port(Port::input("clk", 1))
            .port(Port::input("rst", 1))
            .port(Port::output("q", 8));
        top.item(Item::Instance {
            module: "counter".into(),
            name: "u0".into(),
            params: vec![],
            connections: vec![
                ("clk".into(), Expr::id("clk")),
                ("rst".into(), Expr::id("rst")),
                ("q".into(), Expr::id("q")),
            ],
        });
        let mut d = Design::new(top);
        d.add_module(counter(8));
        let mut sim = Interpreter::elaborate(&d, "top").expect("elab");
        sim.vcd_begin("top");
        sim.clock().expect("clock");
        let vcd = sim.vcd_end().expect("vcd");
        assert!(vcd.contains("$scope module u0 $end"), "{vcd}");
        assert!(vcd.contains("$var wire 8 "), "{vcd}");
    }

    #[test]
    fn unknown_signal_is_an_error() {
        let sim = Interpreter::elaborate(&Design::new(counter(4)), "counter").expect("elab");
        assert!(sim.read("ghost").is_err());
    }

    #[test]
    fn combinational_loop_detected() {
        let mut m = VModule::new("loopy");
        m.port(Port::output("y", 1));
        m.item(Item::Net(NetDecl::wire("a", 1)));
        m.item(Item::Assign {
            lhs: Expr::id("a"),
            rhs: Expr::Unary(UnaryOp::BitNot, Box::new(Expr::id("a"))),
        });
        m.item(Item::Assign {
            lhs: Expr::id("y"),
            rhs: Expr::id("a"),
        });
        assert!(Interpreter::elaborate(&Design::new(m), "loopy").is_err());
    }
}
