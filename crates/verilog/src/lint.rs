//! Structural lint for generated designs.
//!
//! The paper verifies generated RTL with Vivado simulation; in this
//! reproduction every emitted design must pass this lint instead:
//! undeclared or doubly-driven nets, reg/wire assignment-context mixups,
//! dangling instance ports and width mismatches are all rejected.

use crate::ast::*;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Severity of a lint finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Suspicious but not necessarily wrong (e.g. unused net).
    Warning,
    /// The design is structurally broken.
    Error,
}

/// A single lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintIssue {
    /// Module the finding is in.
    pub module: String,
    /// Severity.
    pub severity: Severity,
    /// Stable machine-readable rule identifier (e.g. `undriven-net`).
    pub rule: &'static str,
    /// Signal (or port/instance) name the finding is about, when one
    /// exists.
    pub signal: Option<String>,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for LintIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sev = match self.severity {
            Severity::Warning => "warning",
            Severity::Error => "error",
        };
        write!(f, "[{sev} {}] {}: {}", self.rule, self.module, self.message)
    }
}

/// The outcome of linting a design.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LintReport {
    /// All findings, errors first.
    pub issues: Vec<LintIssue>,
}

impl LintReport {
    /// True when no error-severity findings exist.
    pub fn is_clean(&self) -> bool {
        self.issues.iter().all(|i| i.severity != Severity::Error)
    }

    /// Error-severity findings only.
    pub fn errors(&self) -> impl Iterator<Item = &LintIssue> {
        self.issues.iter().filter(|i| i.severity == Severity::Error)
    }
}

impl fmt::Display for LintReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.issues.is_empty() {
            return writeln!(f, "lint clean");
        }
        for issue in &self.issues {
            writeln!(f, "{issue}")?;
        }
        Ok(())
    }
}

#[derive(Debug, Clone, Copy)]
struct Symbol {
    width: Option<u32>,
    is_reg: bool,
    is_memory: bool,
    is_input: bool,
    is_output: bool,
}

struct ModuleLinter<'a> {
    module: &'a VModule,
    design: &'a Design,
    symbols: BTreeMap<&'a str, Symbol>,
    issues: Vec<LintIssue>,
}

impl<'a> ModuleLinter<'a> {
    fn new(module: &'a VModule, design: &'a Design) -> Self {
        let mut symbols = BTreeMap::new();
        let mut issues = Vec::new();
        for p in &module.ports {
            if symbols
                .insert(
                    p.name.as_str(),
                    Symbol {
                        width: Some(p.width),
                        is_reg: false,
                        is_memory: false,
                        is_input: p.dir == PortDir::Input,
                        is_output: p.dir == PortDir::Output,
                    },
                )
                .is_some()
            {
                issues.push(LintIssue {
                    module: module.name.clone(),
                    severity: Severity::Error,
                    rule: "dup-decl",
                    signal: Some(p.name.clone()),
                    message: format!("duplicate declaration of `{}`", p.name),
                });
            }
        }
        for n in module.nets() {
            if symbols
                .insert(
                    n.name.as_str(),
                    Symbol {
                        width: Some(n.width),
                        is_reg: n.kind == NetKind::Reg,
                        is_memory: n.depth.is_some(),
                        is_input: false,
                        is_output: false,
                    },
                )
                .is_some()
            {
                issues.push(LintIssue {
                    module: module.name.clone(),
                    severity: Severity::Error,
                    rule: "dup-decl",
                    signal: Some(n.name.clone()),
                    message: format!("duplicate declaration of `{}`", n.name),
                });
            }
        }
        for (p, _) in &module.params {
            symbols.entry(p.as_str()).or_insert(Symbol {
                width: None,
                is_reg: false,
                is_memory: false,
                is_input: true, // parameters behave like external constants
                is_output: false,
            });
        }
        ModuleLinter {
            module,
            design,
            symbols,
            issues,
        }
    }

    fn error(&mut self, rule: &'static str, signal: Option<String>, message: String) {
        self.issues.push(LintIssue {
            module: self.module.name.clone(),
            severity: Severity::Error,
            rule,
            signal,
            message,
        });
    }

    fn warn(&mut self, rule: &'static str, signal: Option<String>, message: String) {
        self.issues.push(LintIssue {
            module: self.module.name.clone(),
            severity: Severity::Warning,
            rule,
            signal,
            message,
        });
    }

    fn check_declared(&mut self, idents: &[&str], context: &str) {
        for id in idents {
            if !self.symbols.contains_key(id) {
                self.error(
                    "undeclared-id",
                    Some((*id).to_string()),
                    format!("undeclared identifier `{id}` in {context}"),
                );
            }
        }
    }

    /// Infers the bit width of an expression when statically known.
    fn expr_width(&self, expr: &Expr) -> Option<u32> {
        match expr {
            Expr::Id(n) => self.symbols.get(n.as_str()).and_then(|s| s.width),
            Expr::Lit { width, .. } => Some(*width),
            Expr::Unary(op, e) => match op {
                UnaryOp::Not | UnaryOp::RedOr | UnaryOp::RedAnd => Some(1),
                UnaryOp::BitNot | UnaryOp::Neg => self.expr_width(e),
            },
            Expr::Binary(op, l, r) => {
                if op.is_comparison() {
                    Some(1)
                } else if matches!(op, BinaryOp::Shl | BinaryOp::Shr) {
                    self.expr_width(l)
                } else {
                    match (self.expr_width(l), self.expr_width(r)) {
                        (Some(a), Some(b)) => Some(a.max(b)),
                        _ => None,
                    }
                }
            }
            Expr::Ternary(_, a, b) => match (self.expr_width(a), self.expr_width(b)) {
                (Some(a), Some(b)) => Some(a.max(b)),
                _ => None,
            },
            Expr::Index(base, _) => {
                // Word select on a memory yields the word width; bit select
                // on a vector yields one bit.
                if let Some(root) = base.lvalue_root() {
                    if let Some(sym) = self.symbols.get(root) {
                        return if sym.is_memory { sym.width } else { Some(1) };
                    }
                }
                None
            }
            Expr::Slice(_, hi, lo) => Some(hi - lo + 1),
            Expr::Concat(es) => {
                let mut total = 0;
                for e in es {
                    total += self.expr_width(e)?;
                }
                Some(total)
            }
        }
    }

    fn check_assign_width(&mut self, lhs: &Expr, rhs: &Expr, context: &str) {
        if let (Some(lw), Some(rw)) = (self.expr_width(lhs), self.expr_width(rhs)) {
            if lw != rw {
                let trunc = if rw > lw {
                    " (implicit truncation)"
                } else {
                    " (implicit zero-extension)"
                };
                self.error(
                    "width-mismatch",
                    lhs.lvalue_root().map(str::to_string),
                    format!("width mismatch in {context}: lhs {lw} bits, rhs {rw} bits{trunc}"),
                );
            }
        }
    }

    fn run(mut self) -> Vec<LintIssue> {
        // driver_count tracks whole-net continuous drivers per root name.
        let mut whole_drivers: BTreeMap<String, u32> = BTreeMap::new();
        let mut partial_driven: BTreeSet<String> = BTreeSet::new();
        let mut proc_assigned: BTreeSet<String> = BTreeSet::new();
        let mut read_anywhere: BTreeSet<String> = BTreeSet::new();

        for item in &self.module.items {
            match item {
                Item::Net(_) | Item::Comment(_) => {}
                Item::Assign { lhs, rhs } => {
                    self.check_declared(&rhs.idents(), "continuous assign");
                    for id in rhs.idents() {
                        read_anywhere.insert(id.to_string());
                    }
                    let Some(root) = lhs.lvalue_root().map(str::to_string) else {
                        self.error(
                            "bad-lvalue",
                            None,
                            "continuous assign to a non-lvalue".into(),
                        );
                        continue;
                    };
                    self.check_declared(&[root.as_str()], "continuous assign lhs");
                    if let Some(sym) = self.symbols.get(root.as_str()).copied() {
                        if sym.is_reg {
                            self.error(
                                "assign-to-reg",
                                Some(root.clone()),
                                format!("continuous assign drives reg `{root}` (must be a wire)"),
                            );
                        }
                        if sym.is_input {
                            self.error(
                                "assign-to-input",
                                Some(root.clone()),
                                format!("continuous assign drives input port `{root}`"),
                            );
                        }
                    }
                    match lhs {
                        Expr::Id(_) => {
                            *whole_drivers.entry(root).or_insert(0) += 1;
                        }
                        _ => {
                            partial_driven.insert(root);
                        }
                    }
                    self.check_assign_width(lhs, rhs, "continuous assign");
                }
                Item::Always { body, sensitivity } => {
                    if let Sensitivity::PosEdge(clk) = sensitivity {
                        self.check_declared(&[clk.as_str()], "always sensitivity");
                        read_anywhere.insert(clk.clone());
                    }
                    for stmt in body {
                        for id in stmt.read_idents() {
                            read_anywhere.insert(id.to_string());
                        }
                        self.check_declared(&stmt.read_idents(), "always block");
                        for id in stmt.assigned_idents() {
                            self.check_declared(&[id], "always block lvalue");
                            if let Some(sym) = self.symbols.get(id).copied() {
                                if !sym.is_reg && !sym.is_output {
                                    self.error(
                                        "proc-assign-to-wire",
                                        Some(id.to_string()),
                                        format!(
                                            "procedural assignment to wire `{id}` (must be a reg)"
                                        ),
                                    );
                                } else if !sym.is_reg && sym.is_output {
                                    // Output ports assigned procedurally must be
                                    // declared reg via a shadow net; we treat
                                    // the port itself as the reg, matching the
                                    // emitter's `output reg` shortcut — flag it.
                                    self.warn(
                                        "output-reg-port",
                                        Some(id.to_string()),
                                        format!(
                                            "procedural assignment to output port `{id}` assumes `output reg`"
                                        ),
                                    );
                                }
                            }
                            proc_assigned.insert(id.to_string());
                        }
                    }
                }
                Item::Instance {
                    module,
                    name,
                    connections,
                    ..
                } => {
                    let Some(target) = self.design.module(module) else {
                        self.error(
                            "unknown-module",
                            Some(name.clone()),
                            format!("instance `{name}` of unknown module `{module}`"),
                        );
                        continue;
                    };
                    let mut bound = BTreeSet::new();
                    for (port, expr) in connections {
                        let Some(tport) = target.find_port(port) else {
                            self.error(
                                "unknown-port",
                                Some(port.clone()),
                                format!(
                                    "instance `{name}` binds nonexistent port `{module}.{port}`"
                                ),
                            );
                            continue;
                        };
                        if !bound.insert(port.as_str()) {
                            self.error(
                                "dup-port-bind",
                                Some(port.clone()),
                                format!("instance `{name}` binds port `{port}` twice"),
                            );
                        }
                        self.check_declared(&expr.idents(), "instance connection");
                        if let Some(w) = self.expr_width(expr) {
                            if w != tport.width {
                                self.error(
                                    "port-width-mismatch",
                                    Some(port.clone()),
                                    format!(
                                        "instance `{name}` port `{port}` is {} bits, connected to {w} bits",
                                        tport.width
                                    ),
                                );
                            }
                        }
                        match tport.dir {
                            PortDir::Input => {
                                for id in expr.idents() {
                                    read_anywhere.insert(id.to_string());
                                }
                            }
                            PortDir::Output => {
                                if let Some(root) = expr.lvalue_root() {
                                    match expr {
                                        Expr::Id(_) => {
                                            *whole_drivers.entry(root.to_string()).or_insert(0) +=
                                                1;
                                        }
                                        _ => {
                                            partial_driven.insert(root.to_string());
                                        }
                                    }
                                } else {
                                    self.error(
                                        "bad-lvalue",
                                        Some(port.clone()),
                                        format!(
                                            "instance `{name}` output `{port}` connected to a non-lvalue"
                                        ),
                                    );
                                }
                            }
                        }
                    }
                    for tport in &target.ports {
                        if tport.dir == PortDir::Input && !bound.contains(tport.name.as_str()) {
                            self.warn(
                                "unconnected-input",
                                Some(tport.name.clone()),
                                format!(
                                    "instance `{name}` leaves input `{module}.{}` unconnected",
                                    tport.name
                                ),
                            );
                        }
                    }
                }
            }
        }

        // Multiple whole-net drivers.
        for (net, count) in &whole_drivers {
            if *count > 1 {
                self.error(
                    "multi-driver",
                    Some(net.clone()),
                    format!("net `{net}` has {count} whole-net drivers"),
                );
            }
            if partial_driven.contains(net) {
                self.error(
                    "mixed-driver",
                    Some(net.clone()),
                    format!("net `{net}` mixes whole-net and part-select drivers"),
                );
            }
        }
        // Output ports must be driven somehow.
        let outputs: Vec<String> = self
            .module
            .ports
            .iter()
            .filter(|p| p.dir == PortDir::Output)
            .map(|p| p.name.clone())
            .collect();
        for out in outputs {
            let driven = whole_drivers.contains_key(out.as_str())
                || partial_driven.contains(out.as_str())
                || proc_assigned.contains(out.as_str());
            if !driven {
                self.error(
                    "undriven-output",
                    Some(out.clone()),
                    format!("output port `{out}` is never driven"),
                );
            }
        }
        // Unused internal nets: declared, never read, never driving anything.
        // And the dual: wires that are read but never driven carry X into
        // the datapath — an error.
        let decl_names: Vec<(String, bool)> = self
            .module
            .nets()
            .map(|n| (n.name.clone(), n.kind == NetKind::Reg))
            .collect();
        for (name, is_reg) in decl_names {
            let driven = whole_drivers.contains_key(name.as_str())
                || partial_driven.contains(name.as_str())
                || proc_assigned.contains(name.as_str());
            let read = read_anywhere.contains(name.as_str());
            if !driven && !read {
                self.warn(
                    "unused-net",
                    Some(name.clone()),
                    format!("net `{name}` is declared but never used"),
                );
            } else if !driven && read && !is_reg {
                self.error(
                    "undriven-net",
                    Some(name.clone()),
                    format!("wire `{name}` is read but never driven"),
                );
            }
        }
        self.issues
    }
}

/// Lints every module of a design.
///
/// # Examples
///
/// ```
/// use deepburning_verilog::{Design, VModule, Port, Item, Expr, lint_design};
///
/// let mut m = VModule::new("buf0");
/// m.port(Port::input("a", 4)).port(Port::output("y", 4));
/// m.item(Item::Assign { lhs: Expr::id("y"), rhs: Expr::id("a") });
/// let report = lint_design(&Design::new(m));
/// assert!(report.is_clean());
/// ```
pub fn lint_design(design: &Design) -> LintReport {
    let mut issues = Vec::new();
    let mut names = BTreeSet::new();
    for m in &design.modules {
        if !names.insert(m.name.as_str()) {
            issues.push(LintIssue {
                module: m.name.clone(),
                severity: Severity::Error,
                rule: "dup-module",
                signal: None,
                message: "duplicate module name in design".into(),
            });
        }
    }
    if design.module(&design.top).is_none() {
        issues.push(LintIssue {
            module: design.top.clone(),
            severity: Severity::Error,
            rule: "missing-top",
            signal: None,
            message: "design names a top module that does not exist".into(),
        });
    }
    for m in &design.modules {
        issues.extend(ModuleLinter::new(m, design).run());
    }
    issues.sort_by(|a, b| b.severity.cmp(&a.severity).then(a.module.cmp(&b.module)));
    LintReport { issues }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn passthrough() -> VModule {
        let mut m = VModule::new("pass");
        m.port(Port::input("a", 8)).port(Port::output("y", 8));
        m.item(Item::Assign {
            lhs: Expr::id("y"),
            rhs: Expr::id("a"),
        });
        m
    }

    #[test]
    fn clean_module_passes() {
        let report = lint_design(&Design::new(passthrough()));
        assert!(report.is_clean(), "{report}");
        assert!(report.issues.is_empty(), "{report}");
    }

    #[test]
    fn undeclared_identifier_caught() {
        let mut m = passthrough();
        m.item(Item::Assign {
            lhs: Expr::id("y"),
            rhs: Expr::id("ghost"),
        });
        let report = lint_design(&Design::new(m));
        assert!(!report.is_clean());
        assert!(report.errors().any(|i| i.message.contains("ghost")));
    }

    #[test]
    fn double_driver_caught() {
        let mut m = passthrough();
        m.item(Item::Assign {
            lhs: Expr::id("y"),
            rhs: Expr::id("a"),
        });
        let report = lint_design(&Design::new(m));
        assert!(
            report
                .errors()
                .any(|i| i.message.contains("2 whole-net drivers")),
            "{report}"
        );
    }

    #[test]
    fn undriven_output_caught() {
        let mut m = VModule::new("dead");
        m.port(Port::output("y", 4));
        let report = lint_design(&Design::new(m));
        assert!(report.errors().any(|i| i.message.contains("never driven")));
    }

    #[test]
    fn continuous_assign_to_reg_caught() {
        let mut m = VModule::new("bad");
        m.port(Port::output("y", 4));
        m.item(Item::Net(NetDecl::reg("r", 4)))
            .item(Item::Assign {
                lhs: Expr::id("r"),
                rhs: Expr::lit(4, 0),
            })
            .item(Item::Assign {
                lhs: Expr::id("y"),
                rhs: Expr::id("r"),
            });
        let report = lint_design(&Design::new(m));
        assert!(report.errors().any(|i| i.message.contains("drives reg")));
    }

    #[test]
    fn procedural_assign_to_wire_caught() {
        let mut m = VModule::new("bad");
        m.port(Port::input("clk", 1)).port(Port::output("y", 1));
        m.item(Item::Net(NetDecl::wire("w", 1)))
            .item(Item::Always {
                sensitivity: Sensitivity::PosEdge("clk".into()),
                body: vec![Stmt::NonBlocking(Expr::id("w"), Expr::lit(1, 0))],
            })
            .item(Item::Assign {
                lhs: Expr::id("y"),
                rhs: Expr::id("w"),
            });
        let report = lint_design(&Design::new(m));
        assert!(report
            .errors()
            .any(|i| i.message.contains("procedural assignment to wire")));
    }

    #[test]
    fn width_mismatch_caught() {
        let mut m = VModule::new("bad");
        m.port(Port::input("a", 4)).port(Port::output("y", 8));
        m.item(Item::Assign {
            lhs: Expr::id("y"),
            rhs: Expr::id("a"),
        });
        let report = lint_design(&Design::new(m));
        assert!(report
            .errors()
            .any(|i| i.message.contains("width mismatch")));
    }

    #[test]
    fn concat_fixes_width() {
        let mut m = VModule::new("ok");
        m.port(Port::input("a", 4)).port(Port::output("y", 8));
        m.item(Item::Assign {
            lhs: Expr::id("y"),
            rhs: Expr::Concat(vec![Expr::lit(4, 0), Expr::id("a")]),
        });
        let report = lint_design(&Design::new(m));
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn unknown_instance_module_caught() {
        let mut m = VModule::new("top");
        m.item(Item::Instance {
            module: "missing".into(),
            name: "u0".into(),
            params: vec![],
            connections: vec![],
        });
        let report = lint_design(&Design::new(m));
        assert!(report
            .errors()
            .any(|i| i.message.contains("unknown module")));
    }

    #[test]
    fn bad_instance_port_caught() {
        let mut top = VModule::new("top");
        top.port(Port::input("a", 8));
        top.item(Item::Instance {
            module: "pass".into(),
            name: "u0".into(),
            params: vec![],
            connections: vec![("a".into(), Expr::id("a")), ("nope".into(), Expr::id("a"))],
        });
        let mut d = Design::new(top);
        d.add_module(passthrough());
        let report = lint_design(&d);
        assert!(report
            .errors()
            .any(|i| i.message.contains("nonexistent port")));
    }

    #[test]
    fn instance_port_width_mismatch_caught() {
        let mut top = VModule::new("top");
        top.port(Port::input("a", 4));
        top.item(Item::Net(NetDecl::wire("y", 8)))
            .item(Item::Instance {
                module: "pass".into(),
                name: "u0".into(),
                params: vec![],
                connections: vec![("a".into(), Expr::id("a")), ("y".into(), Expr::id("y"))],
            });
        let mut d = Design::new(top);
        d.add_module(passthrough());
        let report = lint_design(&d);
        assert!(report.errors().any(|i| i
            .message
            .contains("port `a` is 8 bits, connected to 4 bits")));
    }

    #[test]
    fn instance_output_counts_as_driver() {
        let mut top = VModule::new("top");
        top.port(Port::input("a", 8)).port(Port::output("y", 8));
        top.item(Item::Instance {
            module: "pass".into(),
            name: "u0".into(),
            params: vec![],
            connections: vec![("a".into(), Expr::id("a")), ("y".into(), Expr::id("y"))],
        });
        let mut d = Design::new(top);
        d.add_module(passthrough());
        let report = lint_design(&d);
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn missing_top_caught() {
        let d = Design {
            top: "ghost".into(),
            modules: vec![passthrough()],
        };
        let report = lint_design(&d);
        assert!(report
            .errors()
            .any(|i| i.message.contains("does not exist")));
    }

    #[test]
    fn unused_net_warned() {
        let mut m = passthrough();
        m.item(Item::Net(NetDecl::wire("dangling", 8)));
        let report = lint_design(&Design::new(m));
        assert!(report.is_clean()); // warning, not error
        assert!(report
            .issues
            .iter()
            .any(|i| i.message.contains("never used")));
    }

    #[test]
    fn memory_word_select_width() {
        let mut m = VModule::new("ram");
        m.port(Port::input("clk", 1))
            .port(Port::input("addr", 8))
            .port(Port::output("q", 16));
        m.item(Item::Net(NetDecl::memory("mem", 16, 256)))
            .item(Item::Net(NetDecl::reg("qr", 16)))
            .item(Item::Always {
                sensitivity: Sensitivity::PosEdge("clk".into()),
                body: vec![Stmt::NonBlocking(
                    Expr::id("qr"),
                    Expr::Index(Box::new(Expr::id("mem")), Box::new(Expr::id("addr"))),
                )],
            })
            .item(Item::Assign {
                lhs: Expr::id("q"),
                rhs: Expr::id("qr"),
            });
        let report = lint_design(&Design::new(m));
        assert!(report.is_clean(), "{report}");
    }
}
