//! Self-checking Verilog testbench emission for exported designs.
//!
//! `deepburning generate` hands users a `.v` file; this module emits the
//! matching testbench (clock/reset generation, start pulse, done timeout)
//! so the RTL runs under any stock simulator (Icarus, Verilator, Vivado
//! xsim) without hand-written glue.

use crate::ast::{Design, PortDir};
use std::fmt::Write as _;

/// Options for [`emit_testbench`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TestbenchOptions {
    /// Clock half-period in simulator time units.
    pub half_period: u32,
    /// Cycles to wait for `done` before declaring a timeout failure.
    pub timeout_cycles: u64,
}

impl Default for TestbenchOptions {
    fn default() -> Self {
        TestbenchOptions {
            half_period: 5,
            timeout_cycles: 1_000_000,
        }
    }
}

/// Emits a self-checking testbench for the design's top module.
///
/// The testbench assumes the NN-Gen port convention: `clk`/`rst` inputs, a
/// `start` pulse and a `done` flag; every other input is tied low and
/// every output is left observable. Designs without a `done` output get a
/// fixed-length run instead of the completion check.
pub fn emit_testbench(design: &Design, options: &TestbenchOptions) -> String {
    let top = design.top_module();
    let mut out = String::new();
    let _ = writeln!(out, "`timescale 1ns/1ps");
    let _ = writeln!(
        out,
        "// Self-checking testbench for `{}` (generated).",
        top.name
    );
    let _ = writeln!(out, "module tb_{};", top.name);
    // Declarations.
    for p in &top.ports {
        let range = if p.width > 1 {
            format!("[{}:0] ", p.width - 1)
        } else {
            String::new()
        };
        match p.dir {
            PortDir::Input => {
                let _ = writeln!(out, "    reg {range}{};", p.name);
            }
            PortDir::Output => {
                let _ = writeln!(out, "    wire {range}{};", p.name);
            }
        }
    }
    // DUT instance.
    let _ = writeln!(out, "\n    {} dut (", top.name);
    for (i, p) in top.ports.iter().enumerate() {
        let comma = if i + 1 < top.ports.len() { "," } else { "" };
        let _ = writeln!(out, "        .{}({}){comma}", p.name, p.name);
    }
    let _ = writeln!(out, "    );");
    // Clock.
    let has = |name: &str| top.find_port(name).is_some();
    if has("clk") {
        let _ = writeln!(out, "\n    initial clk = 1'b0;");
        let _ = writeln!(out, "    always #{} clk = ~clk;", options.half_period);
    }
    // Stimulus.
    let _ = writeln!(out, "\n    integer cycles;");
    let _ = writeln!(out, "    initial begin");
    for p in &top.ports {
        if p.dir == PortDir::Input && p.name != "clk" {
            let _ = writeln!(out, "        {} = {}'d0;", p.name, p.width.max(1));
        }
    }
    if has("rst") {
        let _ = writeln!(out, "        rst = 1'b1;");
        let _ = writeln!(out, "        repeat (4) @(posedge clk);");
        let _ = writeln!(out, "        rst = 1'b0;");
    }
    if has("start") {
        let _ = writeln!(out, "        @(posedge clk);");
        let _ = writeln!(out, "        start = 1'b1;");
        let _ = writeln!(out, "        @(posedge clk);");
        let _ = writeln!(out, "        start = 1'b0;");
    }
    if has("done") {
        let _ = writeln!(out, "        cycles = 0;");
        let _ = writeln!(
            out,
            "        while (done !== 1'b1 && cycles < {}) begin",
            options.timeout_cycles
        );
        let _ = writeln!(out, "            @(posedge clk);");
        let _ = writeln!(out, "            cycles = cycles + 1;");
        let _ = writeln!(out, "        end");
        let _ = writeln!(out, "        if (done !== 1'b1) begin");
        let _ = writeln!(
            out,
            "            $display(\"FAIL: timeout after %0d cycles\", cycles);"
        );
        let _ = writeln!(out, "            $fatal(1);");
        let _ = writeln!(out, "        end");
        let _ = writeln!(
            out,
            "        $display(\"PASS: done after %0d cycles\", cycles);"
        );
    } else {
        let _ = writeln!(out, "        repeat (1000) @(posedge clk);");
        let _ = writeln!(out, "        $display(\"PASS: ran 1000 cycles\");");
    }
    let _ = writeln!(out, "        $finish;");
    let _ = writeln!(out, "    end");
    let _ = writeln!(out, "endmodule");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Expr, Item, Port, VModule};

    fn accel_like() -> Design {
        let mut m = VModule::new("demo_accelerator");
        m.port(Port::input("clk", 1))
            .port(Port::input("rst", 1))
            .port(Port::input("start", 1))
            .port(Port::output("done", 1))
            .port(Port::input("dram_rdata", 32))
            .port(Port::output("dram_addr", 32));
        m.item(Item::Assign {
            lhs: Expr::id("done"),
            rhs: Expr::lit(1, 1),
        });
        m.item(Item::Assign {
            lhs: Expr::id("dram_addr"),
            rhs: Expr::Concat(vec![Expr::lit(31, 0), Expr::id("start")]),
        });
        Design::new(m)
    }

    #[test]
    fn testbench_has_clock_reset_and_check() {
        let tb = emit_testbench(&accel_like(), &TestbenchOptions::default());
        assert!(tb.contains("module tb_demo_accelerator;"));
        assert!(tb.contains("always #5 clk = ~clk;"));
        assert!(tb.contains("rst = 1'b1;"));
        assert!(tb.contains("start = 1'b1;"));
        assert!(tb.contains("while (done !== 1'b1"));
        assert!(tb.contains("$fatal(1);"));
        assert!(tb.trim_end().ends_with("endmodule"));
    }

    #[test]
    fn inputs_tied_low() {
        let tb = emit_testbench(&accel_like(), &TestbenchOptions::default());
        assert!(tb.contains("dram_rdata = 32'd0;"));
    }

    #[test]
    fn custom_options_respected() {
        let tb = emit_testbench(
            &accel_like(),
            &TestbenchOptions {
                half_period: 2,
                timeout_cycles: 42,
            },
        );
        assert!(tb.contains("always #2 clk"));
        assert!(tb.contains("cycles < 42"));
    }

    #[test]
    fn design_without_done_runs_fixed_length() {
        let mut m = VModule::new("free_runner");
        m.port(Port::input("clk", 1)).port(Port::output("q", 4));
        m.item(Item::Assign {
            lhs: Expr::id("q"),
            rhs: Expr::lit(4, 7),
        });
        let tb = emit_testbench(&Design::new(m), &TestbenchOptions::default());
        assert!(tb.contains("repeat (1000) @(posedge clk);"));
        assert!(!tb.contains("while (done"));
    }

    #[test]
    fn balanced_begin_end() {
        let tb = emit_testbench(&accel_like(), &TestbenchOptions::default());
        assert_eq!(
            tb.matches("begin").count(),
            tb.matches("end").count() - tb.matches("endmodule").count()
        );
    }
}
