//! Register-bounded partitioning of the levelized instruction tape.
//!
//! The compiled engine's tape covers exactly the combinational region
//! between register boundaries: every instruction sits at a topological
//! level (longest dependency path from a clocked/input root), every
//! dependency edge strictly increases level, and clocked state only
//! changes between settles. A partition of the tape therefore only has
//! to respect level boundaries to be register-bounded — a cut between
//! level `L-1` and `L` never splits a dependency that could run
//! backwards, because none exist.
//!
//! [`PartitionPlan::build`] produces two things from the levelization:
//!
//! * the **level cover** — per-level tape-index buckets, which is what
//!   the parallel settle actually schedules (instructions within one
//!   level are mutually independent, see `compile.rs`); and
//! * the **region table** — contiguous level ranges chosen by a cut
//!   search over the static fanout-edge difference array (the same
//!   difference-array construction the profiler uses for its measured
//!   `CutProf` tables, seeded here with static edge weights so the plan
//!   exists without a profiling run). Regions drive per-partition
//!   occupancy/imbalance attribution and the edge-crossing counters;
//!   they are a total, disjoint cover of the tape.
//!
//! The proptests at the bottom pin the cover invariants: regions are
//! sorted, contiguous, disjoint, span every level, and account for
//! every tape instruction exactly once.

use std::fmt;
use std::str::FromStr;

/// Whether the parallel-settle independence proof runs at plan-build
/// time (DESIGN.md §17): always in debug builds — the proof is linear
/// in the tape, cheaper than one full settle — and opt-in via
/// `DEEPBURNING_VERIFY_PLAN` (any value but `0`) in release.
pub(crate) fn verify_plan_enabled() -> bool {
    cfg!(debug_assertions) || std::env::var("DEEPBURNING_VERIFY_PLAN").is_ok_and(|v| v != "0")
}

/// Worker count for the parallel engine. `SimThreads(0)` means "auto":
/// resolve [`std::thread::available_parallelism`] at pool construction.
/// `SimThreads(1)` selects exactly the serial settle path — no pool, no
/// partition bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimThreads(pub usize);

impl SimThreads {
    /// Resolve hardware parallelism at pool-construction time.
    pub const AUTO: SimThreads = SimThreads(0);
    /// The serial path.
    pub const ONE: SimThreads = SimThreads(1);

    /// The concrete worker count: `auto` resolves to the machine's
    /// available parallelism (1 when unknown).
    pub fn resolve(self) -> usize {
        match self.0 {
            0 => std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
            n => n,
        }
    }
}

impl Default for SimThreads {
    fn default() -> Self {
        SimThreads::AUTO
    }
}

impl fmt::Display for SimThreads {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            0 => f.write_str("auto"),
            n => write!(f, "{n}"),
        }
    }
}

impl FromStr for SimThreads {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s.trim().to_ascii_lowercase().as_str() {
            "auto" | "0" => Ok(SimThreads::AUTO),
            n => n
                .parse::<usize>()
                .map(SimThreads)
                .map_err(|e| format!("thread count `{n}`: {e}")),
        }
    }
}

/// One contiguous level range of the tape (both bounds inclusive).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Region {
    pub level_lo: u32,
    pub level_hi: u32,
    /// Tape instructions whose level falls inside the range.
    pub instrs: u64,
}

/// The partition plan: level buckets plus the region table. Built once
/// at elaboration from the levelization; immutable afterwards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionPlan {
    /// Tape indices per level, ascending within each bucket (filled in
    /// tape order, which is ascending by construction).
    pub level_instrs: Vec<Vec<u32>>,
    /// Contiguous, disjoint level ranges covering `0..=max_level`.
    pub regions: Vec<Region>,
    /// Region index for each level (`region_of_level[L]` indexes
    /// `regions`).
    pub region_of_level: Vec<u32>,
    /// Static fanout edges crossing each register-boundary cut:
    /// `cut_traffic[c]` counts edges from a level `< c` to a level
    /// `>= c` (index 0 is unused and always zero).
    pub cut_traffic: Vec<u64>,
}

impl PartitionPlan {
    /// Builds the plan from the per-tape-slot levels and the static
    /// dependency edges `(producer_level, consumer_level)`. `regions`
    /// bounds the region count; the cut search places `regions - 1`
    /// cuts at low-traffic boundaries near instruction-balanced
    /// positions, seeded by the fanout-edge difference array.
    pub fn build(
        instr_levels: &[u32],
        edges: impl Iterator<Item = (u32, u32)>,
        regions: usize,
    ) -> PartitionPlan {
        let max_level = instr_levels.iter().copied().max().unwrap_or(0) as usize;
        let mut level_instrs: Vec<Vec<u32>> = vec![Vec::new(); max_level + 1];
        for (t, &l) in instr_levels.iter().enumerate() {
            level_instrs[l as usize].push(t as u32);
        }

        // Difference array over cuts: an edge li -> lt (lt > li) crosses
        // every cut in (li, lt]. Identical construction to the
        // profiler's measured CutProf, with weight 1 per static edge.
        // Every dependence edge of a valid levelization strictly
        // increases level — that is obligation (c) of the independence
        // proof (DESIGN.md §17), asserted here when verification is on
        // rather than silently filtered.
        let verify = verify_plan_enabled();
        let mut diff = vec![0i64; max_level + 2];
        for (li, lt) in edges {
            assert!(
                !verify || lt > li,
                "partition plan: dependence edge level {li} -> level {lt} does not strictly \
                 increase; the levelization invariant (DESIGN.md §17) is broken"
            );
            if lt > li {
                diff[li as usize + 1] += 1;
                diff[lt as usize + 1] -= 1;
            }
        }
        let mut cut_traffic = vec![0u64; max_level + 1];
        let mut acc = 0i64;
        for (c, slot) in cut_traffic.iter_mut().enumerate().skip(1) {
            acc += diff[c];
            *slot = acc.max(0) as u64;
        }

        // Cut search: for each of the `regions - 1` boundaries, aim at
        // the instruction-balanced position and take the cheapest cut
        // (fewest crossing edges) within a half-share window around it;
        // ties resolve toward the balanced position, then downward.
        let total = instr_levels.len() as u64;
        let want = regions.max(1).min(max_level + 1);
        // prefix[c] = instructions strictly below cut c.
        let mut prefix = vec![0u64; max_level + 2];
        for l in 0..=max_level {
            prefix[l + 1] = prefix[l] + level_instrs[l].len() as u64;
        }
        let mut cuts: Vec<usize> = Vec::new();
        let mut prev_cut = 0usize;
        for r in 1..want {
            let ideal = total * r as u64 / want as u64;
            let slack = (total / (2 * want as u64)).max(1);
            let mut best: Option<(u64, u64, usize)> = None;
            for c in prev_cut + 1..=max_level {
                if max_level - c < want - 1 - r {
                    // Leave room for the remaining cuts.
                    break;
                }
                let pos = prefix[c];
                let dist = pos.abs_diff(ideal);
                if dist > slack && best.is_some() {
                    continue;
                }
                let key = (cut_traffic[c], dist, c);
                let better = match best {
                    None => true,
                    Some(b) => {
                        if dist > slack {
                            false
                        } else {
                            key < b
                        }
                    }
                };
                if better {
                    best = Some(key);
                }
                if pos > ideal + slack && best.is_some() {
                    break;
                }
            }
            match best {
                Some((_, _, c)) => {
                    cuts.push(c);
                    prev_cut = c;
                }
                None => break,
            }
        }

        let mut regions_out = Vec::with_capacity(cuts.len() + 1);
        let mut region_of_level = vec![0u32; max_level + 1];
        let mut lo = 0usize;
        for (ri, bound) in cuts
            .iter()
            .copied()
            .chain(std::iter::once(max_level + 1))
            .enumerate()
        {
            let instrs = prefix[bound] - prefix[lo];
            regions_out.push(Region {
                level_lo: lo as u32,
                level_hi: (bound - 1) as u32,
                instrs,
            });
            for slot in &mut region_of_level[lo..bound] {
                *slot = ri as u32;
            }
            lo = bound;
        }

        PartitionPlan {
            level_instrs,
            regions: regions_out,
            region_of_level,
            cut_traffic,
        }
    }

    /// Highest level in the plan.
    pub fn max_level(&self) -> u32 {
        (self.level_instrs.len() - 1) as u32
    }
}

/// Attribution counters the parallel settle accumulates: how the dirty
/// set split into batches, how much of it ran on the worker pool, and
/// how much dirty-set traffic crossed partition edges. Snapshotted via
/// `Simulator::par_stats`; all counts are deterministic for a given
/// design, stimulus and lane count.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ParStats {
    /// Resolved lane count (workers + the calling thread).
    pub threads: u64,
    /// Settle sweeps drained by the parallel path.
    pub settles: u64,
    /// Level batches wide enough to split across the pool.
    pub parallel_batches: u64,
    /// Level batches settled inline on the calling thread.
    pub serial_batches: u64,
    /// Instructions evaluated on the pool.
    pub parallel_evals: u64,
    /// Instructions evaluated inline.
    pub serial_evals: u64,
    /// Widest batch observed.
    pub max_batch: u64,
    /// Newly dirtied instructions whose level fell in a different
    /// region than the instruction that dirtied them — the dirty-set
    /// exchange traffic at partition edges.
    pub edge_crossings: u64,
    /// Per-region attribution, aligned with [`PartitionPlan::regions`].
    pub regions: Vec<RegionStats>,
}

/// One region's slice of the parallel-settle attribution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RegionStats {
    pub level_lo: u32,
    pub level_hi: u32,
    /// Tape instructions inside the region (static).
    pub instrs: u64,
    /// Instructions evaluated inside the region (dynamic).
    pub evals: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn threads_parse_and_display() {
        assert_eq!("auto".parse::<SimThreads>().unwrap(), SimThreads::AUTO);
        assert_eq!("0".parse::<SimThreads>().unwrap(), SimThreads::AUTO);
        assert_eq!("4".parse::<SimThreads>().unwrap(), SimThreads(4));
        assert!("four".parse::<SimThreads>().is_err());
        assert_eq!(SimThreads::AUTO.to_string(), "auto");
        assert_eq!(SimThreads(2).to_string(), "2");
        assert!(SimThreads::AUTO.resolve() >= 1);
        assert_eq!(SimThreads(3).resolve(), 3);
    }

    #[test]
    fn single_region_covers_everything() {
        let levels = [0u32, 0, 1, 2, 2, 3];
        let plan = PartitionPlan::build(&levels, std::iter::empty(), 1);
        assert_eq!(plan.regions.len(), 1);
        assert_eq!(plan.regions[0].level_lo, 0);
        assert_eq!(plan.regions[0].level_hi, 3);
        assert_eq!(plan.regions[0].instrs, 6);
    }

    #[test]
    fn cut_search_prefers_low_traffic_boundaries() {
        // Four levels, 4 instrs each; heavy traffic across cuts 1 and 3,
        // none across cut 2 — two regions must split at cut 2.
        let levels: Vec<u32> = (0..4).flat_map(|l| std::iter::repeat_n(l, 4)).collect();
        let edges = (0..10)
            .map(|_| (0u32, 1u32))
            .chain((0..10).map(|_| (2u32, 3u32)))
            .chain(std::iter::once((1u32, 2u32)));
        let plan = PartitionPlan::build(&levels, edges, 2);
        assert_eq!(plan.cut_traffic, vec![0, 10, 1, 10]);
        assert_eq!(plan.regions.len(), 2);
        assert_eq!(plan.regions[0].level_hi, 1);
        assert_eq!(plan.regions[1].level_lo, 2);
    }

    proptest! {
        /// The region table is a total, disjoint, register-bounded cover
        /// of the tape: sorted contiguous level ranges spanning
        /// `0..=max_level`, with every instruction counted exactly once
        /// and every level mapped to exactly the region containing it.
        #[test]
        fn regions_are_a_total_disjoint_cover(
            levels in proptest::collection::vec(0u32..24, 1..200),
            edges in proptest::collection::vec((0u32..24, 0u32..24), 0..200),
            regions in 1usize..9,
        ) {
            let max_level = *levels.iter().max().unwrap();
            let plan = PartitionPlan::build(
                &levels,
                edges.iter().copied().filter(|(a, b)| b > a && *a <= max_level && *b <= max_level),
                regions,
            );
            prop_assert!(!plan.regions.is_empty());
            prop_assert!(plan.regions.len() <= regions);
            // Contiguous cover of 0..=max_level.
            prop_assert_eq!(plan.regions[0].level_lo, 0);
            prop_assert_eq!(plan.regions.last().unwrap().level_hi, max_level);
            for w in plan.regions.windows(2) {
                prop_assert_eq!(w[1].level_lo, w[0].level_hi + 1, "regions must abut");
            }
            // Every instruction in exactly one region; counts add up.
            let total: u64 = plan.regions.iter().map(|r| r.instrs).sum();
            prop_assert_eq!(total, levels.len() as u64);
            for (ri, r) in plan.regions.iter().enumerate() {
                let counted = levels
                    .iter()
                    .filter(|&&l| l >= r.level_lo && l <= r.level_hi)
                    .count() as u64;
                prop_assert_eq!(r.instrs, counted);
                for l in r.level_lo..=r.level_hi {
                    prop_assert_eq!(plan.region_of_level[l as usize], ri as u32);
                }
            }
            // The level cover accounts for every tape index once.
            let covered: usize = plan.level_instrs.iter().map(Vec::len).sum();
            prop_assert_eq!(covered, levels.len());
            for (l, bucket) in plan.level_instrs.iter().enumerate() {
                for &t in bucket {
                    prop_assert_eq!(levels[t as usize] as usize, l);
                }
                prop_assert!(bucket.windows(2).all(|w| w[0] < w[1]), "buckets ascend");
            }
        }
    }
}
