//! Asserts the profiler's disabled path is free: with the `prof`
//! feature compiled in but no `ProfState` installed, the settle
//! dispatcher must add <1% to a full-tape settle sweep — the operation
//! that dominates the diffcheck sweep's RTL time. Run with
//! `cargo bench -p deepburning-verilog --features prof`.

use criterion::{criterion_group, criterion_main, Criterion};
use deepburning_verilog::*;
use std::time::{Duration, Instant};

/// A deep combinational chain: `n0 = a + 1`, `n[i] = (n[i-1] ^ K) + 1`,
/// so every instruction sits on its own level and a full-tape settle
/// walks the whole chain in order — the worst case for per-instruction
/// dispatch overhead.
fn chain_design(n: usize) -> Design {
    let mut m = VModule::new("bench");
    m.port(Port::input("clk", 1)).port(Port::input("a", 16));
    let mut prev = Expr::id("a");
    for i in 0..n {
        let name = format!("n{i}");
        m.item(Item::Net(NetDecl::wire(&name, 16)));
        m.item(Item::Assign {
            lhs: Expr::id(&name),
            rhs: Expr::bin(
                BinaryOp::Add,
                Expr::bin(BinaryOp::Xor, prev, Expr::lit(16, 0x5A5A)),
                Expr::lit(16, 1),
            ),
        });
        prev = Expr::id(&name);
    }
    m.port(Port::output("q", 16));
    m.item(Item::Assign {
        lhs: Expr::id("q"),
        rhs: prev,
    });
    Design::new(m)
}

fn median(samples: &mut [Duration]) -> Duration {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn bench_prof_overhead(c: &mut Criterion) {
    let design = chain_design(4000);
    let mut sim = CompiledSim::compile(&design, "bench").expect("compile");

    let mut group = c.benchmark_group("prof_overhead");
    group.sample_size(30);
    group.bench_function("settle_plain_direct", |b| {
        b.iter(|| {
            sim.dirty_all();
            sim.settle_direct().expect("settle");
        })
    });
    group.bench_function("settle_dispatch_prof_disabled", |b| {
        b.iter(|| {
            sim.dirty_all();
            sim.settle_dispatch().expect("settle");
        })
    });
    group.finish();

    // The hard bound. Samples are interleaved so clock drift and cache
    // warmth hit both paths equally; medians reject scheduler outliers.
    const ROUNDS: usize = 200;
    let mut direct = Vec::with_capacity(ROUNDS);
    let mut dispatch = Vec::with_capacity(ROUNDS);
    for _ in 0..ROUNDS {
        sim.dirty_all();
        let t = Instant::now();
        sim.settle_direct().expect("settle");
        direct.push(t.elapsed());

        sim.dirty_all();
        let t = Instant::now();
        sim.settle_dispatch().expect("settle");
        dispatch.push(t.elapsed());
    }
    let d = median(&mut direct).as_secs_f64();
    let p = median(&mut dispatch).as_secs_f64();
    // 2µs absolute slop keeps timer granularity from failing a bound
    // that is structurally a single well-predicted branch per settle.
    assert!(
        p <= d * 1.01 + 2e-6,
        "disabled profiler path exceeds 1% overhead: direct {d:.3e}s vs dispatch {p:.3e}s"
    );
    println!(
        "prof_overhead: direct {d:.3e}s, dispatch {p:.3e}s ({:+.3}%) — within the 1% bound",
        (p / d - 1.0) * 100.0
    );

    // Informational: the runtime-enabled path, for the profiling-cost
    // number quoted in DESIGN.md §15.
    sim.prof_enable();
    let mut enabled = Vec::with_capacity(ROUNDS);
    for _ in 0..ROUNDS {
        sim.dirty_all();
        let t = Instant::now();
        sim.settle_dispatch().expect("settle");
        enabled.push(t.elapsed());
    }
    let e = median(&mut enabled).as_secs_f64();
    println!(
        "prof_overhead: enabled profiling costs {:+.1}% over plain settle",
        (e / d - 1.0) * 100.0
    );
}

criterion_group!(benches, bench_prof_overhead);
criterion_main!(benches);
