//! Training recipes for the zoo — the stand-in for the paper's Matlab and
//! Caffe training runs ("The training of neural network models are
//! conducted with Matlab except that Alexnet, NiN, Cifar and MNIST are
//! trained in Caffe").
//!
//! Small models train with the SGD engine on synthetic data; Hopfield uses
//! Hebbian pattern storage; CMAC uses the classic delta rule on its cell
//! table; AlexNet/NiN carry structured pseudo-random weights (their
//! accuracy experiment uses the paper's Eq. (1) relative distance).

use crate::zoo::{self, Benchmark};
use deepburning_model::{LayerKind, Shape};
use deepburning_tensor::{
    cmac_index, digits_dataset, fft_reference, jpeg_reference, kmeans_reference,
    regression_dataset, textures_dataset, train_sgd, Init, LayerWeights, Target, Tensor,
    TrainConfig, WeightSet,
};
use rand::Rng;

/// A trained benchmark: weights plus a held-out evaluation set.
#[derive(Debug, Clone)]
pub struct TrainedModel {
    /// The zoo entry.
    pub bench: Benchmark,
    /// Trained weights.
    pub weights: WeightSet,
    /// Held-out regression set `(input, golden output)` — golden comes
    /// from the *orthodox program* (Eq. (1)'s `B`), not the NN.
    pub regression_test: Vec<(Tensor, Vec<f32>)>,
    /// Held-out classification set `(input, label)`.
    pub classification_test: Vec<(Tensor, usize)>,
}

/// An orthodox-program reference: the golden function plus its output
/// arity.
type Reference = (fn(&[f32]) -> Vec<f32>, usize);

fn reference_for(app: &str) -> Option<Reference> {
    match app {
        "fft" => Some((fft_reference, 1)),
        "jpeg" => Some((jpeg_reference, 8)),
        "kmeans" => Some((kmeans_reference, 3)),
        _ => None,
    }
}

/// Trains one of the AxBench-style approximation ANNs.
///
/// # Panics
///
/// Panics if `bench` is not one of ANN-0/1/2.
pub fn train_ann<R: Rng>(bench: Benchmark, samples: usize, rng: &mut R) -> TrainedModel {
    let (reference, dims) =
        reference_for(bench.application).expect("train_ann called on a non-ANN benchmark");
    let mut weights =
        WeightSet::init(&bench.network, Init::Xavier, rng).expect("zoo networks are valid");
    let train: Vec<(Tensor, Target)> = regression_dataset(reference, dims, samples, rng)
        .into_iter()
        .map(|(x, y)| (x, Target::Values(y)))
        .collect();
    let cfg = TrainConfig {
        learning_rate: 0.05,
        epochs: 60,
        ..TrainConfig::default()
    };
    train_sgd(&bench.network, &mut weights, &train, &cfg, rng).expect("ANNs are trainable");
    let regression_test = regression_dataset(reference, dims, samples / 4 + 8, rng);
    TrainedModel {
        bench,
        weights,
        regression_test,
        classification_test: Vec::new(),
    }
}

/// Trains the MNIST model on procedural digit glyphs.
pub fn train_mnist<R: Rng>(samples: usize, rng: &mut R) -> TrainedModel {
    let bench = zoo::mnist();
    let shape = Shape::new(1, 28, 28);
    let mut weights =
        WeightSet::init(&bench.network, Init::Xavier, rng).expect("zoo networks are valid");
    let data = digits_dataset(samples, shape, 0.08, rng);
    let train: Vec<(Tensor, Target)> = data
        .iter()
        .map(|(x, l)| (x.clone(), Target::Class(*l)))
        .collect();
    let cfg = TrainConfig {
        learning_rate: 0.02,
        epochs: 12,
        ..TrainConfig::default()
    };
    train_sgd(&bench.network, &mut weights, &train, &cfg, rng).expect("mnist is trainable");
    let classification_test = digits_dataset(samples / 4 + 20, shape, 0.08, rng);
    TrainedModel {
        bench,
        weights,
        regression_test: Vec::new(),
        classification_test,
    }
}

/// Trains the Cifar model on oriented-texture classes.
pub fn train_cifar<R: Rng>(samples: usize, rng: &mut R) -> TrainedModel {
    let bench = zoo::cifar();
    let shape = Shape::new(3, 32, 32);
    let classes = 10;
    let mut weights =
        WeightSet::init(&bench.network, Init::Xavier, rng).expect("zoo networks are valid");
    let data = textures_dataset(samples, classes, shape, 0.05, rng);
    let train: Vec<(Tensor, Target)> = data
        .iter()
        .map(|(x, l)| (x.clone(), Target::Class(*l)))
        .collect();
    let cfg = TrainConfig {
        learning_rate: 0.01,
        epochs: 8,
        ..TrainConfig::default()
    };
    train_sgd(&bench.network, &mut weights, &train, &cfg, rng).expect("cifar is trainable");
    let classification_test = textures_dataset(samples / 4 + 20, classes, shape, 0.05, rng);
    TrainedModel {
        bench,
        weights,
        regression_test: Vec::new(),
        classification_test,
    }
}

/// Stores binary patterns in the Hopfield network by the Hebbian rule and
/// returns weights for the zoo's recurrent layer layout (`w[out][in+out]`).
pub fn hopfield_weights(patterns: &[Vec<f32>]) -> WeightSet {
    let n = 32usize;
    let mut wh = vec![0.0f32; n * n];
    for p in patterns {
        assert_eq!(p.len(), n, "patterns must be {n} long");
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    wh[i * n + j] += p[i] * p[j] / n as f32;
                }
            }
        }
    }
    // Input weights: a weak persistent probe injection — strong enough to
    // seed the state, weak enough for the Hebbian field to correct
    // corrupted bits over the settle steps.
    let mut w = vec![0.0f32; n * (n + n)];
    for o in 0..n {
        w[o * 2 * n + o] = 0.5; // Wx = 0.5·I
        for j in 0..n {
            w[o * 2 * n + n + j] = wh[o * n + j];
        }
    }
    let mut ws = WeightSet::new();
    ws.insert("settle", LayerWeights { w, b: vec![0.0; n] });
    ws
}

/// Delta-rule training of the CMAC table + readout layer on a robot-arm
/// style target `y = f(joint angles)`.
pub fn train_cmac<R: Rng>(samples: usize, rng: &mut R) -> TrainedModel {
    let bench = zoo::cmac();
    let (table_size, active) = match bench
        .network
        .layer("assoc")
        .map(|l| l.kind.clone())
        .expect("cmac has an assoc layer")
    {
        LayerKind::Associative {
            table_size,
            active_cells,
        } => (table_size, active_cells),
        _ => unreachable!("assoc layer is associative"),
    };
    // Target: planar 6-joint arm end-effector position, expressed in
    // workspace coordinates (origin at the mounting corner so coordinates
    // stay positive — every input dimension matters to the table).
    let target = |x: &[f32]| -> Vec<f32> {
        let mut angle = 0.0f32;
        let (mut px, mut py) = (0.0f32, 0.0f32);
        for (i, &xi) in x.iter().enumerate() {
            angle += (xi - 0.5) * std::f32::consts::PI / (i + 1) as f32;
            px += angle.cos() / (i + 1) as f32;
            py += angle.sin() / (i + 1) as f32;
        }
        vec![px + 3.0, py + 3.0]
    };
    let mut table = vec![0.0f32; table_size];
    // Each output owns half of the active cells (classic per-output CMAC
    // tables, realised here as a fixed sparse readout).
    let half = active / 2;
    let mut readout = vec![0.0f32; 2 * active];
    for i in 0..half {
        readout[i] = 2.0 / active as f32; // output 0: first half
        readout[active + half + i] = 2.0 / active as f32; // output 1: second half
    }
    let lr = 0.3f32;
    for _ in 0..8 {
        for _ in 0..samples {
            let x: Vec<f32> = (0..6).map(|_| rng.gen_range(0.0..1.0f32)).collect();
            let y = target(&x);
            let idxs: Vec<usize> = (0..active)
                .map(|s| cmac_index(&x, s, active, table_size))
                .collect();
            for (o, yo) in y.iter().enumerate().take(2) {
                let own = if o == 0 { 0..half } else { half..active };
                let pred: f32 = own
                    .clone()
                    .map(|s| table[idxs[s]] * 2.0 / active as f32)
                    .sum();
                let err = yo - pred;
                // Per-cell correction sized so the prediction moves by
                // lr * err after updating the output's own half.
                for s in own {
                    table[idxs[s]] += lr * err;
                }
            }
        }
    }
    let mut weights = WeightSet::new();
    weights.insert(
        "assoc",
        LayerWeights {
            w: table,
            b: vec![],
        },
    );
    weights.insert(
        "out",
        LayerWeights {
            w: readout,
            b: vec![0.0; 2],
        },
    );
    let regression_test = (0..samples / 4 + 8)
        .map(|_| {
            let x: Vec<f32> = (0..6).map(|_| rng.gen_range(0.0..1.0f32)).collect();
            let y = target(&x);
            (Tensor::vector(&x), y)
        })
        .collect();
    TrainedModel {
        bench,
        weights,
        regression_test,
        classification_test: Vec::new(),
    }
}

/// Pseudo-random ("structured") weights for the untrained deep models.
///
/// The scale keeps activations well inside the Q7.8 range while staying
/// far above its resolution — the regime a trained, properly-scaled
/// network operates in.
pub fn pseudo_weights<R: Rng>(bench: &Benchmark, rng: &mut R) -> WeightSet {
    WeightSet::init(&bench.network, Init::Uniform(0.25), rng).expect("zoo networks are valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepburning_tensor::{classification_accuracy, forward, relative_accuracy};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ann0_learns_fft_reasonably() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = train_ann(zoo::ann0(), 200, &mut rng);
        let mut total = 0.0;
        for (x, golden) in &m.regression_test {
            let y = forward(&m.bench.network, &m.weights, x).expect("forward");
            total += relative_accuracy(y.as_slice(), golden);
        }
        let mean = total / m.regression_test.len() as f64;
        assert!(mean > 70.0, "ANN-0 Eq.(1) accuracy {mean}%");
    }

    #[test]
    fn mnist_learns_digits() {
        let mut rng = StdRng::seed_from_u64(2);
        let m = train_mnist(120, &mut rng);
        let acc = classification_accuracy(&m.bench.network, &m.weights, &m.classification_test);
        assert!(acc > 0.7, "MNIST accuracy {acc}");
    }

    #[test]
    fn hopfield_recalls_stored_pattern() {
        let pattern: Vec<f32> = (0..32)
            .map(|i| if i % 3 == 0 { 1.0 } else { -1.0 })
            .collect();
        let ws = hopfield_weights(std::slice::from_ref(&pattern));
        // Probe with a corrupted copy (4 bits flipped).
        let mut probe = pattern.clone();
        for i in [1, 7, 13, 22] {
            probe[i] = -probe[i];
        }
        let net = zoo::hopfield().network;
        let blobs =
            deepburning_tensor::forward_all(&net, &ws, &Tensor::vector(&probe)).expect("forward");
        let settled = &blobs["settle"];
        // Sign agreement with the stored pattern.
        let agree = settled
            .as_slice()
            .iter()
            .zip(&pattern)
            .filter(|(a, b)| a.signum() == b.signum())
            .count();
        assert!(agree >= 28, "recall agreement {agree}/32");
    }

    #[test]
    fn cmac_delta_rule_reduces_error() {
        let mut rng = StdRng::seed_from_u64(3);
        let m = train_cmac(300, &mut rng);
        let mut total = 0.0;
        for (x, golden) in &m.regression_test {
            let y = forward(&m.bench.network, &m.weights, x).expect("forward");
            total += relative_accuracy(y.as_slice(), golden);
        }
        let mean = total / m.regression_test.len() as f64;
        assert!(mean > 55.0, "CMAC Eq.(1) accuracy {mean}%");
    }

    #[test]
    fn pseudo_weights_cover_all_layers() {
        let mut rng = StdRng::seed_from_u64(4);
        let bench = zoo::alexnet_micro();
        let ws = pseudo_weights(&bench, &mut rng);
        assert!(ws.validate(&bench.network).is_ok());
    }
}
