//! Evaluation baselines for the DeepBurning reproduction: the benchmark
//! zoo of paper Table 2, the hand-tuned "Custom" designs, the Xeon CPU
//! cost model and the Zhang FPGA'15 literature reference.
//!
//! # Examples
//!
//! ```
//! use deepburning_baselines::{zoo, CpuModel};
//!
//! let bench = zoo::mnist();
//! let cpu = CpuModel::xeon_2_4ghz();
//! let seconds = cpu.forward_time(&bench.network)?;
//! assert!(seconds > 0.0);
//! # Ok::<(), deepburning_model::NetworkError>(())
//! ```

mod cpu;
mod custom;
mod trained;
pub mod zoo;

pub use cpu::{CpuModel, ZhangFpga15};
pub use custom::{
    custom_config, custom_design, custom_timing_params, CUSTOM_PHASE_OVERHEAD_CYCLES,
    HANDWIRED_CONTROL_FACTOR,
};
pub use trained::{
    hopfield_weights, pseudo_weights, train_ann, train_cifar, train_cmac, train_mnist, TrainedModel,
};
pub use zoo::{
    alexnet, alexnet_micro, all_benchmarks, ann0, ann1, ann2, cifar, cmac, googlenet_slice,
    hopfield, mlp4, mnist, nin, nin_micro, Benchmark,
};
