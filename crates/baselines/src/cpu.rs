//! Analytic CPU baseline: the "Xeon 2.4 GHz" software runs of Figs. 8-10.
//!
//! The model charges every layer its arithmetic ops at an effective
//! throughput (vectorised but cache/bandwidth-limited, 2015-era BLAS-style
//! inference) plus a fixed per-layer framework overhead, and burns a
//! server-class package power for the duration. Absolute numbers are
//! first-order; the figures depend on the *ratios* against the simulated
//! accelerators, which come from op counts shared with the simulator.

use deepburning_model::{network_stats, Network, NetworkError};

/// CPU performance/power parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuModel {
    /// Marketing name.
    pub name: &'static str,
    /// Clock, Hz.
    pub freq_hz: f64,
    /// Effective MACs per second for NN kernels.
    pub effective_mac_per_s: f64,
    /// Effective aux/LUT ops per second (branchy scalar code).
    pub effective_aux_per_s: f64,
    /// Per-layer invocation overhead, seconds (framework dispatch).
    pub layer_overhead_s: f64,
    /// Sustained memory bandwidth for streaming weights, bytes/s.
    pub mem_bandwidth_bps: f64,
    /// Package power while running, watts.
    pub power_w: f64,
    /// Package power during framework dispatch (no vector units busy).
    pub idle_power_w: f64,
}

impl CpuModel {
    /// The paper's host: "Intel Xeon 2.4 GHz CPU with 8 MB last level
    /// cache", single-socket inference.
    pub fn xeon_2_4ghz() -> Self {
        CpuModel {
            name: "Xeon 2.4GHz",
            freq_hz: 2.4e9,
            effective_mac_per_s: 4.8e9,
            effective_aux_per_s: 2.4e9,
            layer_overhead_s: 1.5e-6,
            mem_bandwidth_bps: 4.0e9,
            power_w: 65.0,
            idle_power_w: 15.0,
        }
    }

    /// Forward-propagation time of one input set, seconds.
    ///
    /// # Errors
    ///
    /// Propagates shape-inference failures from the network.
    pub fn forward_time(&self, net: &Network) -> Result<f64, NetworkError> {
        let stats = network_stats(net)?;
        let mac_s = stats.total.macs as f64 / self.effective_mac_per_s;
        let aux_s = (stats.total.aux_ops + stats.total.lut_ops) as f64 / self.effective_aux_per_s;
        // FC-heavy models stream f32 weights from DRAM; the CPU is bound
        // by whichever of compute and weight traffic is slower.
        let weight_s = stats.total.weights as f64 * 4.0 / self.mem_bandwidth_bps;
        let layers = net.layers().len() as f64;
        Ok(mac_s.max(weight_s) + aux_s + layers * self.layer_overhead_s)
    }

    /// One SGD training iteration (forward + backward + update), seconds.
    ///
    /// # Errors
    ///
    /// Propagates shape-inference failures from the network.
    pub fn training_iteration_time(&self, net: &Network) -> Result<f64, NetworkError> {
        let ts = deepburning_model::training_stats(net)?;
        let fwd = self.forward_time(net)?;
        let back_s = ts.backward_macs as f64 / self.effective_mac_per_s
            + ts.backward_aux as f64 / self.effective_aux_per_s;
        // Backward touches weights twice (read for dX, write dW) and the
        // update streams them again — all in f32.
        let weight_s = ts.forward.weights as f64 * 4.0 * 3.0 / self.mem_bandwidth_bps;
        let update_s = ts.update_ops as f64 / self.effective_mac_per_s;
        Ok(fwd + back_s.max(weight_s) + update_s)
    }

    /// Energy of one forward propagation, joules. Busy time burns the
    /// full package power; dispatch overhead burns idle power.
    ///
    /// # Errors
    ///
    /// Propagates shape-inference failures from the network.
    pub fn forward_energy(&self, net: &Network) -> Result<f64, NetworkError> {
        let total = self.forward_time(net)?;
        let overhead = net.layers().len() as f64 * self.layer_overhead_s;
        let busy = (total - overhead).max(0.0);
        Ok(busy * self.power_w + overhead * self.idle_power_w)
    }
}

impl Default for CpuModel {
    fn default() -> Self {
        CpuModel::xeon_2_4ghz()
    }
}

/// Literature reference point: Zhang et al., FPGA'15 — a hand-optimised
/// AlexNet accelerator on a Virtex-7 at 100 MHz. The paper quotes ~20 ms
/// per forward pass and notes it "consumes more energy than both DB-L and
/// DB-S" (~0.5 J) "for it uses a much larger-scale FPGA device".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ZhangFpga15;

impl ZhangFpga15 {
    /// Forward-propagation latency, seconds.
    pub const LATENCY_S: f64 = 0.0216;
    /// Energy per forward pass, joules.
    pub const ENERGY_J: f64 = 0.5;
    /// Board power, watts.
    pub const POWER_W: f64 = 18.6;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;

    #[test]
    fn alexnet_cpu_time_in_plausible_range() {
        let cpu = CpuModel::xeon_2_4ghz();
        let t = cpu.forward_time(&zoo::alexnet().network).expect("time");
        // ~0.7 GMAC at ~5 GMAC/s -> low hundreds of ms.
        assert!((0.05..1.0).contains(&t), "AlexNet CPU time {t}s");
    }

    #[test]
    fn small_ann_dominated_by_overhead() {
        let cpu = CpuModel::xeon_2_4ghz();
        let t = cpu.forward_time(&zoo::ann0().network).expect("time");
        let overhead = 6.0 * cpu.layer_overhead_s;
        assert!(t < overhead * 2.0, "ANN-0 time {t}");
    }

    #[test]
    fn energy_is_time_times_power() {
        let cpu = CpuModel::xeon_2_4ghz();
        let net = zoo::mnist().network;
        let t = cpu.forward_time(&net).expect("time");
        let e = cpu.forward_energy(&net).expect("energy");
        // Energy is bounded by busy power and above idle power.
        assert!(e <= t * cpu.power_w + 1e-12);
        assert!(e >= t * cpu.idle_power_w);
    }

    #[test]
    fn bigger_network_takes_longer() {
        let cpu = CpuModel::xeon_2_4ghz();
        let small = cpu.forward_time(&zoo::mnist().network).expect("time");
        let big = cpu.forward_time(&zoo::alexnet().network).expect("time");
        assert!(big > small * 10.0);
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn zhang_constants() {
        assert!(ZhangFpga15::LATENCY_S > 0.02 && ZhangFpga15::LATENCY_S < 0.025);
        assert!((ZhangFpga15::ENERGY_J - 0.5).abs() < 1e-12);
    }
}
