//! The hand-tuned "Custom" baselines.
//!
//! The paper compares NN-Gen against accelerators that "a fourth-year
//! graduate student with sufficient experience on deep learning and FPGA
//! manually designed … for every application". We reproduce that baseline
//! as the same block library driven by an *application-specific*
//! configuration: the lane count is matched to the network's layer widths
//! (no fold remainder waste), buffers are sized to the network's actual
//! working set, and the hand-written control path carries less
//! reconfiguration overhead per phase.

use crate::zoo::Benchmark;
use deepburning_compiler::CompilerConfig;
use deepburning_core::{
    derive_config, generate_with_config, AcceleratorDesign, Budget, GenerateError,
};
use deepburning_model::network_stats;
use deepburning_sim::TimingParams;

/// Per-phase control overhead of a hand-written design (versus the
/// generated coordinator's 32 cycles): no generic crossbar walk, layer
/// transitions are hard-wired.
pub const CUSTOM_PHASE_OVERHEAD_CYCLES: u64 = 8;

/// Timing parameters for a hand-tuned design: less per-phase control
/// overhead, and a dataflow mapped by hand so every lane stays busy.
pub fn custom_timing_params() -> TimingParams {
    TimingParams {
        phase_overhead_cycles: CUSTOM_PHASE_OVERHEAD_CYCLES,
        assume_full_lane_utilization: true,
        ..TimingParams::default()
    }
}

/// Derives the application-specific configuration a hand designer would
/// pick on the same device budget.
pub fn custom_config(bench: &Benchmark, budget: &Budget) -> CompilerConfig {
    let generated = derive_config(budget, 16);
    // A hand designer fills the same lane budget; the win comes from a
    // dataflow mapped to the application (full lane utilisation, see
    // [`custom_timing_params`]) and from not instantiating parallelism a
    // tiny network cannot use.
    let max_units = deepburning_core::max_parallel_units(&bench.network);
    let lanes = generated.lanes.min(max_units);
    // Buffers trimmed to the network's real working set (a hand design
    // doesn't waste BRAM it doesn't need).
    let stats = network_stats(&bench.network).expect("zoo networks are valid");
    let wb = generated.word_bytes();
    let largest_blob = bench
        .network
        .infer_shapes()
        .expect("zoo networks are valid")
        .values()
        .map(|s| s.elements() as u64)
        .max()
        .unwrap_or(1)
        * wb;
    let feature_buffer_bytes = (largest_blob * 2)
        .min(generated.feature_buffer_bytes)
        .max(1024);
    let largest_layer_weights = stats
        .per_layer
        .iter()
        .map(|(_, s)| s.weights)
        .max()
        .unwrap_or(1)
        * wb;
    let weight_buffer_bytes = largest_layer_weights
        .min(generated.weight_buffer_bytes)
        .max(1024);
    CompilerConfig {
        lanes: lanes.max(1),
        feature_buffer_bytes,
        weight_buffer_bytes,
        ..generated
    }
}

/// Fraction of the generated control-path cost a hand-wired design pays:
/// the template AGUs, the coordinator FSM and the generic crossbar are
/// replaced by fixed address counters and point-to-point wiring.
pub const HANDWIRED_CONTROL_FACTOR: f64 = 0.4;

fn discount(cost: deepburning_components::ResourceCost) -> deepburning_components::ResourceCost {
    deepburning_components::ResourceCost {
        dsp: cost.dsp, // multipliers don't shrink by hand
        lut: (cost.lut as f64 * HANDWIRED_CONTROL_FACTOR) as u32,
        ff: (cost.ff as f64 * HANDWIRED_CONTROL_FACTOR) as u32,
        bram_bits: cost.bram_bits,
    }
}

/// Generates the hand-tuned design for a benchmark on a budget.
///
/// The resource report is adjusted for the hand-wired control path (see
/// [`HANDWIRED_CONTROL_FACTOR`]); the datapath blocks are identical.
///
/// # Errors
///
/// Propagates generator failures.
pub fn custom_design(
    bench: &Benchmark,
    budget: &Budget,
) -> Result<AcceleratorDesign, GenerateError> {
    let mut cfg = custom_config(bench, budget);
    loop {
        let mut design = generate_with_config(&bench.network, budget, &cfg)?;
        let mut total = deepburning_components::ResourceCost::ZERO;
        for (name, cost) in design.resources.items.iter_mut() {
            let is_control = name.contains("AGU")
                || name.contains("coordinator")
                || name.contains("connection box");
            if is_control {
                *cost = discount(*cost);
            }
            total += *cost;
        }
        design.resources.total = total;
        design.fits = (
            total.fits_in(&budget.envelope()),
            total.utilization(&budget.envelope()),
        );
        let at_floor =
            cfg.lanes == 1 && cfg.feature_buffer_bytes <= 1024 && cfg.weight_buffer_bytes <= 1024;
        if design.fits.0 || at_floor {
            return Ok(design);
        }
        // Hand designs respect the budget too: fold harder until it fits.
        cfg.lanes = (cfg.lanes * 4 / 5).max(1);
        cfg.feature_buffer_bytes = (cfg.feature_buffer_bytes * 4 / 5).max(1024);
        cfg.weight_buffer_bytes = (cfg.weight_buffer_bytes * 4 / 5).max(1024);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;
    use deepburning_sim::{simulate_timing, TimingParams};

    #[test]
    fn custom_lanes_capped_by_application_parallelism() {
        // ANN-0's widest layer exposes only 4 parallel units; a hand
        // design instantiates no more than that.
        let cfg = custom_config(&zoo::ann0(), &Budget::Medium);
        assert_eq!(cfg.lanes, 4);
        // A large CNN saturates the budget.
        let big = custom_config(&zoo::alexnet(), &Budget::Medium);
        assert_eq!(big.lanes, derive_config(&Budget::Medium, 16).lanes);
    }

    #[test]
    fn custom_buffers_never_exceed_generated() {
        for bench in zoo::all_benchmarks() {
            let gen = derive_config(&Budget::Medium, 16);
            let cus = custom_config(&bench, &Budget::Medium);
            assert!(
                cus.feature_buffer_bytes <= gen.feature_buffer_bytes,
                "{}",
                bench.name
            );
            assert!(
                cus.weight_buffer_bytes <= gen.weight_buffer_bytes,
                "{}",
                bench.name
            );
        }
    }

    #[test]
    fn custom_beats_db_on_latency_mostly() {
        // "Custom mostly beats DB in performance."
        let mut wins = 0;
        let mut total = 0;
        for bench in [zoo::mnist(), zoo::cifar(), zoo::ann1()] {
            let db =
                deepburning_core::generate(&bench.network, &Budget::Medium).expect("db design");
            let cu = custom_design(&bench, &Budget::Medium).expect("custom design");
            let t_db = simulate_timing(&db.compiled, &TimingParams::default()).total_cycles;
            let t_cu = simulate_timing(&cu.compiled, &custom_timing_params()).total_cycles;
            total += 1;
            if t_cu <= t_db {
                wins += 1;
            }
        }
        assert!(wins * 2 >= total, "custom won {wins}/{total}");
    }

    #[test]
    fn custom_designs_generate_cleanly() {
        for bench in zoo::all_benchmarks() {
            let d = custom_design(&bench, &Budget::Medium)
                .unwrap_or_else(|e| panic!("{}: {e}", bench.name));
            assert!(d.lint.is_clean(), "{}", bench.name);
        }
    }
}
