//! The benchmark model zoo — the eight networks of paper Table 2.
//!
//! "Eight NN models are testified with NN-Gen: three 4-layer ANNs, 2-layer
//! Hopfield, 2-layer CMAC, 5-layer MNIST, Alexnet, NiN and Cifar."
//!
//! AlexNet and NiN are built at the paper's full ImageNet dimensions for
//! the timing/resource experiments; `alexnet_micro`/`nin_micro` are
//! reduced-resolution variants with identical layer structure used by the
//! functional-accuracy experiment (running 724 M MACs through the bit-true
//! simulator per image is not informative — the fixed-point error is a
//! per-layer property).

use deepburning_model::{
    Activation, ConnectDirection, ConnectType, Connection, ConvParam, FullParam, Layer, LayerKind,
    LrnParam, Network, PoolMethod, PoolParam,
};

/// A zoo entry: network plus Table 2 metadata.
#[derive(Debug, Clone)]
pub struct Benchmark {
    /// Short name used in the figures (`ANN-0`, `Alexnet`, …).
    pub name: &'static str,
    /// The application column of Table 2.
    pub application: &'static str,
    /// The network itself.
    pub network: Network,
}

fn conv(name: &str, bottom: &str, p: ConvParam) -> Layer {
    Layer::new(name, LayerKind::Convolution(p), bottom, name)
}

fn pool(name: &str, bottom: &str, method: PoolMethod, k: usize, s: usize) -> Layer {
    Layer::new(
        name,
        LayerKind::Pooling(PoolParam {
            method,
            kernel_size: k,
            stride: s,
        }),
        bottom,
        name,
    )
}

fn fc(name: &str, bottom: &str, n: usize) -> Layer {
    Layer::new(
        name,
        LayerKind::FullConnection(FullParam::dense(n)),
        bottom,
        name,
    )
}

fn act(name: &str, blob: &str, a: Activation) -> Layer {
    Layer::new(name, LayerKind::Activation(a), blob, blob)
}

/// A 4-layer MLP `inputs-h1-h2-outputs` with the given hidden activation.
pub fn mlp4(
    name: &str,
    inputs: usize,
    h1: usize,
    h2: usize,
    outputs: usize,
    hidden: Activation,
) -> Network {
    Network::from_layers(
        name,
        vec![
            Layer::input("data", "data", inputs, 1, 1),
            fc("fc1", "data", h1),
            act("act1", "fc1", hidden),
            fc("fc2", "fc1", h2),
            act("act2", "fc2", hidden),
            fc("out", "fc2", outputs),
        ],
    )
    .expect("mlp4 is well-formed")
}

/// ANN-0: approximates the fft twiddle kernel (AxBench), MLP 1-4-4-2.
pub fn ann0() -> Benchmark {
    Benchmark {
        name: "ANN-0",
        application: "fft",
        network: mlp4("ann0", 1, 4, 4, 2, Activation::Tanh),
    }
}

/// ANN-1: approximates the jpeg 8-point DCT kernel, MLP 8-16-16-8.
pub fn ann1() -> Benchmark {
    Benchmark {
        name: "ANN-1",
        application: "jpeg",
        network: mlp4("ann1", 8, 16, 16, 8, Activation::Tanh),
    }
}

/// ANN-2: approximates the kmeans centroid-distance kernel, MLP 3-8-8-4.
pub fn ann2() -> Benchmark {
    Benchmark {
        name: "ANN-2",
        application: "kmeans",
        network: mlp4("ann2", 3, 8, 8, 4, Activation::Sigmoid),
    }
}

/// 2-layer CMAC: associative table + output layer, recurrent connection
/// for trajectory feedback (robot arm control).
pub fn cmac() -> Benchmark {
    let layers = vec![
        Layer::input("data", "data", 6, 1, 1),
        Layer::new(
            "assoc",
            LayerKind::Associative {
                table_size: 2048,
                active_cells: 32,
            },
            "data",
            "assoc",
        ),
        fc("out", "assoc", 2),
    ];
    let connections = vec![Connection {
        name: "arm_fb".to_string(),
        from: "out".to_string(),
        to: "assoc".to_string(),
        direction: ConnectDirection::Recurrent,
        kind: ConnectType::FullPerChannel,
    }];
    Benchmark {
        name: "CMAC",
        application: "Robot arm control",
        network: Network::with_connections("cmac", layers, connections)
            .expect("cmac is well-formed"),
    }
}

/// 2-layer Hopfield network (32 neurons, 8 settle steps) for TSP.
pub fn hopfield() -> Benchmark {
    let layers = vec![
        Layer::input("data", "data", 32, 1, 1),
        Layer::new(
            "settle",
            LayerKind::Recurrent {
                num_output: 32,
                steps: 8,
            },
            "data",
            "settle",
        ),
        Layer::new("cls", LayerKind::Classifier { top_k: 4 }, "settle", "cls"),
    ];
    let connections = vec![Connection {
        name: "hop_fb".to_string(),
        from: "settle".to_string(),
        to: "settle".to_string(),
        direction: ConnectDirection::Recurrent,
        kind: ConnectType::FullPerChannel,
    }];
    Benchmark {
        name: "Hopfield",
        application: "TSP solver",
        network: Network::with_connections("hopfield", layers, connections)
            .expect("hopfield is well-formed"),
    }
}

/// 5-layer MNIST network (LeNet-style).
pub fn mnist() -> Benchmark {
    Benchmark {
        name: "MNIST",
        application: "Number recognition",
        network: Network::from_layers(
            "mnist",
            vec![
                Layer::input("data", "data", 1, 28, 28),
                conv("conv1", "data", ConvParam::new(20, 5, 1)),
                pool("pool1", "conv1", PoolMethod::Max, 2, 2),
                fc("ip1", "pool1", 100),
                act("sig1", "ip1", Activation::Sigmoid),
                fc("ip2", "ip1", 10),
            ],
        )
        .expect("mnist is well-formed"),
    }
}

/// Cifar-quick-style network on 3×32×32 images.
pub fn cifar() -> Benchmark {
    Benchmark {
        name: "Cifar",
        application: "Image classification",
        network: Network::from_layers(
            "cifar",
            vec![
                Layer::input("data", "data", 3, 32, 32),
                conv("conv1", "data", ConvParam::new(32, 5, 1).with_pad(2)),
                pool("pool1", "conv1", PoolMethod::Max, 2, 2),
                act("relu1", "pool1", Activation::Relu),
                conv("conv2", "pool1", ConvParam::new(32, 5, 1).with_pad(2)),
                act("relu2", "conv2", Activation::Relu),
                pool("pool2", "conv2", PoolMethod::Average, 2, 2),
                fc("ip1", "pool2", 64),
                fc("ip2", "ip1", 10),
            ],
        )
        .expect("cifar is well-formed"),
    }
}

/// Full AlexNet (227×227×3, ILSVRC dimensions).
pub fn alexnet() -> Benchmark {
    Benchmark {
        name: "Alexnet",
        application: "Image recognition",
        network: Network::from_layers(
            "alexnet",
            vec![
                Layer::input("data", "data", 3, 227, 227),
                conv("conv1", "data", ConvParam::new(96, 11, 4)),
                act("relu1", "conv1", Activation::Relu),
                Layer::new(
                    "norm1",
                    LayerKind::Lrn(LrnParam::default()),
                    "conv1",
                    "norm1",
                ),
                pool("pool1", "norm1", PoolMethod::Max, 3, 2),
                conv(
                    "conv2",
                    "pool1",
                    ConvParam::new(256, 5, 1).with_pad(2).with_group(2),
                ),
                act("relu2", "conv2", Activation::Relu),
                Layer::new(
                    "norm2",
                    LayerKind::Lrn(LrnParam::default()),
                    "conv2",
                    "norm2",
                ),
                pool("pool2", "norm2", PoolMethod::Max, 3, 2),
                conv("conv3", "pool2", ConvParam::new(384, 3, 1).with_pad(1)),
                act("relu3", "conv3", Activation::Relu),
                conv(
                    "conv4",
                    "conv3",
                    ConvParam::new(384, 3, 1).with_pad(1).with_group(2),
                ),
                act("relu4", "conv4", Activation::Relu),
                conv(
                    "conv5",
                    "conv4",
                    ConvParam::new(256, 3, 1).with_pad(1).with_group(2),
                ),
                act("relu5", "conv5", Activation::Relu),
                pool("pool5", "conv5", PoolMethod::Max, 3, 2),
                fc("fc6", "pool5", 4096),
                act("relu6", "fc6", Activation::Relu),
                Layer::new("drop6", LayerKind::Dropout { ratio: 0.5 }, "fc6", "fc6"),
                fc("fc7", "fc6", 4096),
                act("relu7", "fc7", Activation::Relu),
                Layer::new("drop7", LayerKind::Dropout { ratio: 0.5 }, "fc7", "fc7"),
                fc("fc8", "fc7", 1000),
            ],
        )
        .expect("alexnet is well-formed"),
    }
}

/// Reduced-resolution AlexNet (27×27 input, same layer structure) for the
/// bit-true accuracy experiment.
pub fn alexnet_micro() -> Benchmark {
    Benchmark {
        name: "Alexnet(micro)",
        application: "Image recognition (accuracy probe)",
        network: Network::from_layers(
            "alexnet_micro",
            vec![
                Layer::input("data", "data", 3, 27, 27),
                conv("conv1", "data", ConvParam::new(12, 5, 2)),
                act("relu1", "conv1", Activation::Relu),
                Layer::new(
                    "norm1",
                    LayerKind::Lrn(LrnParam::default()),
                    "conv1",
                    "norm1",
                ),
                pool("pool1", "norm1", PoolMethod::Max, 3, 2),
                conv(
                    "conv2",
                    "pool1",
                    ConvParam::new(16, 3, 1).with_pad(1).with_group(2),
                ),
                act("relu2", "conv2", Activation::Relu),
                conv("conv3", "conv2", ConvParam::new(16, 3, 1).with_pad(1)),
                act("relu3", "conv3", Activation::Relu),
                fc("fc6", "conv3", 64),
                act("relu6", "fc6", Activation::Relu),
                fc("fc8", "fc6", 10),
            ],
        )
        .expect("alexnet_micro is well-formed"),
    }
}

/// Network-in-Network at ImageNet dimensions (mlpconv blocks).
pub fn nin() -> Benchmark {
    Benchmark {
        name: "NiN",
        application: "Image recognition",
        network: Network::from_layers(
            "nin",
            vec![
                Layer::input("data", "data", 3, 227, 227),
                conv("conv1", "data", ConvParam::new(96, 11, 4)),
                act("relu0", "conv1", Activation::Relu),
                conv("cccp1", "conv1", ConvParam::new(96, 1, 1)),
                act("relu1", "cccp1", Activation::Relu),
                conv("cccp2", "cccp1", ConvParam::new(96, 1, 1)),
                act("relu2", "cccp2", Activation::Relu),
                pool("pool0", "cccp2", PoolMethod::Max, 3, 2),
                conv("conv2", "pool0", ConvParam::new(256, 5, 1).with_pad(2)),
                act("relu3", "conv2", Activation::Relu),
                conv("cccp3", "conv2", ConvParam::new(256, 1, 1)),
                act("relu4", "cccp3", Activation::Relu),
                conv("cccp4", "cccp3", ConvParam::new(256, 1, 1)),
                act("relu5", "cccp4", Activation::Relu),
                pool("pool2", "cccp4", PoolMethod::Max, 3, 2),
                conv("conv3", "pool2", ConvParam::new(384, 3, 1).with_pad(1)),
                act("relu6", "conv3", Activation::Relu),
                conv("cccp5", "conv3", ConvParam::new(384, 1, 1)),
                act("relu7", "cccp5", Activation::Relu),
                conv("cccp6", "cccp5", ConvParam::new(384, 1, 1)),
                act("relu8", "cccp6", Activation::Relu),
                pool("pool3", "cccp6", PoolMethod::Max, 3, 2),
                conv("conv4", "pool3", ConvParam::new(1024, 3, 1).with_pad(1)),
                act("relu9", "conv4", Activation::Relu),
                conv("cccp7", "conv4", ConvParam::new(1024, 1, 1)),
                act("relu10", "cccp7", Activation::Relu),
                conv("cccp8", "cccp7", ConvParam::new(1000, 1, 1)),
                act("relu11", "cccp8", Activation::Relu),
                pool("pool4", "cccp8", PoolMethod::Average, 6, 6),
            ],
        )
        .expect("nin is well-formed"),
    }
}

/// Reduced-resolution NiN for the accuracy experiment.
pub fn nin_micro() -> Benchmark {
    Benchmark {
        name: "NiN(micro)",
        application: "Image recognition (accuracy probe)",
        network: Network::from_layers(
            "nin_micro",
            vec![
                Layer::input("data", "data", 3, 24, 24),
                conv("conv1", "data", ConvParam::new(12, 5, 2)),
                act("relu0", "conv1", Activation::Relu),
                conv("cccp1", "conv1", ConvParam::new(12, 1, 1)),
                act("relu1", "cccp1", Activation::Relu),
                pool("pool0", "cccp1", PoolMethod::Max, 2, 2),
                conv("conv2", "pool0", ConvParam::new(16, 3, 1).with_pad(1)),
                act("relu2", "conv2", Activation::Relu),
                conv("cccp2", "conv2", ConvParam::new(10, 1, 1)),
                act("relu3", "cccp2", Activation::Relu),
                pool("pool1", "cccp2", PoolMethod::Average, 5, 5),
            ],
        )
        .expect("nin_micro is well-formed"),
    }
}

/// A representative GoogLeNet slice: conv stem + LRN + inception block +
/// drop-out + classifier head. Used by the Table 1 decomposition and the
/// inception-path tests; not part of the Table 2 suite.
pub fn googlenet_slice() -> Benchmark {
    Benchmark {
        name: "GoogleNet",
        application: "Image classification (decomposition column)",
        network: Network::from_layers(
            "googlenet_slice",
            vec![
                Layer::input("data", "data", 3, 56, 56),
                conv("conv1", "data", ConvParam::new(64, 7, 2).with_pad(3)),
                pool("pool1", "conv1", PoolMethod::Max, 3, 2),
                Layer::new("lrn1", LayerKind::Lrn(LrnParam::default()), "pool1", "lrn1"),
                Layer::new(
                    "incep",
                    LayerKind::Inception(deepburning_model::InceptionParam {
                        c1x1: 64,
                        c3x3: 128,
                        c5x5: 32,
                        cpool: 32,
                    }),
                    "lrn1",
                    "incep",
                ),
                act("relu", "incep", Activation::Relu),
                Layer::new("drop", LayerKind::Dropout { ratio: 0.4 }, "incep", "incep"),
                fc("fc", "incep", 1000),
                Layer::new("cls", LayerKind::Classifier { top_k: 5 }, "fc", "cls"),
            ],
        )
        .expect("googlenet slice is well-formed"),
    }
}

/// The eight benchmarks of Table 2, in the paper's order.
pub fn all_benchmarks() -> Vec<Benchmark> {
    vec![
        ann0(),
        ann1(),
        ann2(),
        alexnet(),
        nin(),
        cifar(),
        cmac(),
        hopfield(),
        mnist(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepburning_model::{decompose, network_stats};

    #[test]
    fn all_benchmarks_validate_and_have_shapes() {
        for b in all_benchmarks() {
            let shapes = b.network.infer_shapes().expect("shapes infer");
            assert!(!shapes.is_empty(), "{}", b.name);
        }
    }

    #[test]
    fn alexnet_conv_shapes_match_the_literature() {
        let net = alexnet().network;
        let shapes = net.infer_shapes().expect("shapes");
        assert_eq!(shapes["conv1"].to_string(), "96x55x55");
        assert_eq!(shapes["pool1"].to_string(), "96x27x27");
        assert_eq!(shapes["conv2"].to_string(), "256x27x27");
        assert_eq!(shapes["conv5"].to_string(), "256x13x13");
        assert_eq!(shapes["pool5"].to_string(), "256x6x6");
        assert_eq!(shapes["fc8"].to_string(), "1000x1x1");
    }

    #[test]
    fn alexnet_mac_count_in_ballpark() {
        let net = alexnet().network;
        let stats = network_stats(&net).expect("stats");
        // Literature: ~714M MACs for AlexNet conv+fc.
        let total = stats.total.macs as f64;
        assert!(
            (6.0e8..9.0e8).contains(&total),
            "AlexNet MACs {total:e} out of expected range"
        );
    }

    #[test]
    fn table2_feature_columns() {
        // Conv / FC / Recurrent flags per Table 2.
        let expect = [
            ("ANN-0", false, true, false),
            ("ANN-1", false, true, false),
            ("ANN-2", false, true, false),
            ("Alexnet", true, true, false),
            ("NiN", true, false, false),
            ("Cifar", true, true, false),
            ("CMAC", false, true, true),
            ("Hopfield", false, true, true),
            ("MNIST", true, true, false),
        ];
        for (name, conv, fc, rec) in expect {
            let b = all_benchmarks()
                .into_iter()
                .find(|b| b.name == name)
                .unwrap_or_else(|| panic!("{name} missing"));
            let d = decompose(&b.network);
            assert_eq!(d.conv, conv, "{name} conv");
            assert_eq!(d.fc, fc, "{name} fc");
            assert_eq!(d.recurrent, rec, "{name} recurrent");
        }
    }

    #[test]
    fn recurrent_benchmarks_flagged() {
        assert!(cmac().network.is_recurrent());
        assert!(hopfield().network.is_recurrent());
        assert!(!mnist().network.is_recurrent());
    }

    #[test]
    fn micro_variants_are_small() {
        let full = network_stats(&alexnet().network).expect("stats").total.macs;
        let micro = network_stats(&alexnet_micro().network)
            .expect("stats")
            .total
            .macs;
        assert!(micro * 100 < full, "micro should be <1% of full");
        let nin_full = network_stats(&nin().network).expect("stats").total.macs;
        let nin_m = network_stats(&nin_micro().network)
            .expect("stats")
            .total
            .macs;
        assert!(nin_m * 100 < nin_full);
    }

    #[test]
    fn mnist_is_five_weighted_or_pooling_layers() {
        // input + conv + pool + fc + sigmoid + fc = the paper's "5-layer".
        let net = mnist().network;
        let functional = net
            .layers()
            .iter()
            .filter(|l| {
                !matches!(
                    l.kind,
                    deepburning_model::LayerKind::Input { .. }
                        | deepburning_model::LayerKind::Activation(_)
                )
            })
            .count();
        assert_eq!(functional, 4 + 1 - 1); // conv, pool, fc, fc
    }
}
