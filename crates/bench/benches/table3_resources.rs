//! Criterion bench behind Table 3: resource estimation of generated
//! designs (the whole generate path, dominated by RTL assembly + costing).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use deepburning_baselines::zoo;
use deepburning_core::{estimate_resources, generate, Budget};
use std::hint::black_box;

fn bench_table3(c: &mut Criterion) {
    let mut group = c.benchmark_group("table3_resource_estimation");
    group.sample_size(20);
    for bench in [zoo::ann0(), zoo::mnist(), zoo::alexnet()] {
        let design = generate(&bench.network, &Budget::Medium).expect("generates");
        group.bench_with_input(
            BenchmarkId::from_parameter(bench.name),
            &(bench, design),
            |b, (bench, design)| {
                b.iter(|| estimate_resources(black_box(&bench.network), &design.compiled).total)
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_table3);
criterion_main!(benches);
