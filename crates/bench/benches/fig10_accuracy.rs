//! Criterion bench behind Fig. 10: throughput of the bit-true functional
//! simulator (the accuracy experiment's inner loop) against the f32
//! reference engine.

use criterion::{criterion_group, criterion_main, Criterion};
use deepburning_baselines::zoo;
use deepburning_compiler::{generate_luts, CompilerConfig};
use deepburning_sim::functional_forward;
use deepburning_tensor::{forward, Init, Tensor, WeightSet};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_fig10(c: &mut Criterion) {
    let bench = zoo::mnist();
    let mut rng = StdRng::seed_from_u64(1);
    let ws = WeightSet::init(&bench.network, Init::Xavier, &mut rng).expect("init");
    let cfg = CompilerConfig::default();
    let luts = generate_luts(&bench.network, &cfg).expect("luts");
    let input = Tensor::from_fn(bench.network.input_shape(), |_, y, x| {
        ((y * 28 + x) % 17) as f32 / 17.0
    });

    let mut group = c.benchmark_group("fig10_accuracy_pipeline");
    group.sample_size(10);
    group.bench_function("mnist_f32_reference", |b| {
        b.iter(|| forward(black_box(&bench.network), &ws, &input).expect("forward"))
    });
    group.bench_function("mnist_fixed_point_sim", |b| {
        b.iter(|| {
            functional_forward(black_box(&bench.network), &ws, &input, &luts, cfg.format)
                .expect("functional sim")
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fig10);
criterion_main!(benches);
