//! Criterion bench behind Fig. 9: the energy-accounting pass over an
//! already-compiled design.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use deepburning_baselines::zoo;
use deepburning_core::{generate, Budget};
use deepburning_sim::{inference_energy, simulate_timing, EnergyParams, TimingParams};
use std::hint::black_box;

fn bench_fig9(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9_energy_pipeline");
    group.sample_size(20);
    for bench in [zoo::mnist(), zoo::cifar(), zoo::alexnet()] {
        let design = generate(&bench.network, &Budget::Medium).expect("generates");
        let timing = simulate_timing(&design.compiled, &TimingParams::default());
        group.bench_with_input(
            BenchmarkId::from_parameter(bench.name),
            &design,
            |b, design| {
                b.iter(|| {
                    inference_energy(black_box(design), &timing, &EnergyParams::default()).total_j
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fig9);
criterion_main!(benches);
