//! Criterion bench behind Fig. 8: the generate → timing-simulate pipeline
//! per benchmark and budget tier. Wall-clock here measures the *tool*
//! (NN-Gen + simulator); the figure's data comes from the simulated cycle
//! counts printed by `--bin fig8`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use deepburning_baselines::zoo;
use deepburning_core::{generate, Budget};
use deepburning_sim::{simulate_timing, TimingParams};
use std::hint::black_box;

fn bench_fig8(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_forward_latency_pipeline");
    group.sample_size(10);
    for bench in [zoo::ann1(), zoo::mnist(), zoo::cifar()] {
        for (budget, tag) in [(Budget::Medium, "DB"), (Budget::Large, "DB-L")] {
            group.bench_with_input(BenchmarkId::new(bench.name, tag), &bench, |b, bench| {
                b.iter(|| {
                    let design = generate(black_box(&bench.network), &budget).expect("generates");
                    simulate_timing(&design.compiled, &TimingParams::default()).total_cycles
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig8);
criterion_main!(benches);
