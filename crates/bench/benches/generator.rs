//! Tool-throughput benches: script parsing, compilation, RTL emission —
//! NN-Gen's own speed (the paper runs it on a Xeon; "one-click" generation
//! should be interactive).

use criterion::{criterion_group, criterion_main, Criterion};
use deepburning_baselines::zoo;
use deepburning_compiler::{compile, CompilerConfig};
use deepburning_core::{assemble_top, generate, Budget};
use deepburning_model::parse_network;
use deepburning_verilog::emit_design;
use std::hint::black_box;

const SCRIPT: &str = r#"
name: "bench"
layers { name: "data" type: INPUT top: "data"
         input_param { channels: 3 height: 32 width: 32 } }
layers { name: "conv1" type: CONVOLUTION bottom: "data" top: "conv1"
         param { num_output: 32 kernel_size: 5 stride: 1 pad: 2 } }
layers { name: "pool1" type: POOLING bottom: "conv1" top: "pool1"
         pooling_param { pool: MAX kernel_size: 2 stride: 2 } }
layers { name: "sig1" type: SIGMOID bottom: "pool1" top: "pool1" }
layers { name: "fc1" type: FC bottom: "pool1" top: "fc1"
         param { num_output: 64 } }
layers { name: "fc2" type: FC bottom: "fc1" top: "fc2"
         param { num_output: 10 } }
"#;

fn bench_generator(c: &mut Criterion) {
    let mut group = c.benchmark_group("nn_gen_tool_throughput");
    group.bench_function("parse_prototxt", |b| {
        b.iter(|| parse_network(black_box(SCRIPT)).expect("parses"))
    });
    let net = parse_network(SCRIPT).expect("parses");
    group.bench_function("compile_passes", |b| {
        b.iter(|| compile(black_box(&net), &CompilerConfig::default()).expect("compiles"))
    });
    let compiled = compile(&net, &CompilerConfig::default()).expect("compiles");
    group.bench_function("rtl_assembly_and_emit", |b| {
        b.iter(|| {
            let design = assemble_top(black_box(&net), &compiled);
            emit_design(&design).len()
        })
    });
    group.bench_function("end_to_end_generate_mnist", |b| {
        let mnist = zoo::mnist();
        b.iter(|| generate(black_box(&mnist.network), &Budget::Medium).expect("generates"))
    });
    group.finish();
}

criterion_group!(benches, bench_generator);
criterion_main!(benches);
