//! The generated zoo must be lint-clean: no analyzer pass may
//! false-positive on designs the generator itself emits. This is the
//! test-suite mirror of CI's `dblint --deny warn` sweep (which also
//! covers the Medium/Large tiers in release mode).

use deepburning_baselines::{pseudo_weights, zoo};
use deepburning_core::{generate, Budget};
use deepburning_lint::{analyze, Severity};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn zoo_is_clean_at_deny_warn() {
    for bench in [
        zoo::ann0(),
        zoo::ann1(),
        zoo::ann2(),
        zoo::cmac(),
        zoo::hopfield(),
        zoo::mnist(),
        zoo::cifar(),
        zoo::alexnet_micro(),
        zoo::nin_micro(),
        zoo::googlenet_slice(),
    ] {
        let design = generate(&bench.network, &Budget::Small).expect("generates");
        // Same seed scheme as the diffcheck/dblint sweeps: the weights
        // the analyzer proves are the weights the simulation runs.
        let mut rng = StdRng::seed_from_u64(0xD1FF ^ bench.name.len() as u64);
        let ws = pseudo_weights(&bench, &mut rng);
        let report = analyze(
            &bench.network,
            &design.compiled,
            &design.design,
            Some(&ws),
            Some(&design.verilog),
        );
        assert!(
            report.is_clean_at(Severity::Warning),
            "{} is not lint-clean:\n{report}",
            bench.name
        );
        assert!(
            !report.proofs.is_empty(),
            "{}: range pass produced no proofs",
            bench.name
        );
        let proof = report
            .interference
            .as_ref()
            .unwrap_or_else(|| panic!("{}: interference proof did not run", bench.name));
        assert!(
            proof.is_proven(),
            "{}: tape not proven independent:\n{proof}",
            bench.name
        );
        assert!(
            proof.instrs > 0 && proof.levels > 0,
            "{}: proof covered an empty tape",
            bench.name
        );
    }
}
