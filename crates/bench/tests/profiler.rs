//! Engine hot-spot profiler acceptance (DESIGN.md §15): attribution
//! stays consistent on real zoo designs, the two engines agree on where
//! the heat is within the documented slack, and profiling a full MNIST
//! RTL run does not overflow the default tracer ring.

use deepburning_baselines::{pseudo_weights, zoo, Benchmark};
use deepburning_core::{generate, Budget};
use deepburning_sim::{full_network_run, FullRunOptions, SimEngine};
use deepburning_tensor::{Tensor, WeightSet};
use deepburning_trace as trace;
use deepburning_trace::prof::EngineProfile;

fn stimulus(bench: &Benchmark) -> (WeightSet, Tensor) {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(0xB0F ^ bench.name.len() as u64);
    let ws = pseudo_weights(bench, &mut rng);
    let input = Tensor::from_fn(bench.network.input_shape(), |_, _, _| {
        rng.gen_range(-1.0..1.0f32)
    });
    (ws, input)
}

fn profiled_run(bench: &Benchmark, engine: SimEngine) -> EngineProfile {
    let design = generate(&bench.network, &Budget::Small).expect("generates");
    let (ws, input) = stimulus(bench);
    let full = full_network_run(
        &design,
        &bench.network,
        &ws,
        &input,
        &FullRunOptions {
            engine,
            profile: true,
            ..FullRunOptions::default()
        },
    )
    .expect("full run");
    assert!(full.is_clean(), "{}: full run diverged", bench.name);
    full.profile.expect("profile requested")
}

/// Normalized per-module eval shares, `(top)` for the root.
fn module_shares(p: &EngineProfile) -> Vec<(String, f64)> {
    let total: u64 = p.modules().iter().map(|(_, e, _)| e).sum();
    p.modules()
        .iter()
        .map(|(m, e, _)| {
            let name = if m.is_empty() {
                "(top)".to_string()
            } else {
                m.clone()
            };
            (name, *e as f64 / total.max(1) as f64)
        })
        .collect()
}

/// Attribution bookkeeping on a real zoo design: per-segment evals sum
/// to the engine's total tape evals, per-opcode counts sum to the total
/// executed ops, and the ranked JIT table covers the 80% acceptance
/// floor.
#[test]
fn opcode_and_segment_attribution_sum_on_zoo_design() {
    let p = profiled_run(&zoo::ann0(), SimEngine::Compiled);
    assert!(p.total_evals > 0 && p.total_ops >= p.total_evals);
    let seg_evals: u64 = p.segments.iter().map(|s| s.evals).sum();
    let seg_ops: u64 = p.segments.iter().map(|s| s.ops).sum();
    let op_counts: u64 = p.opcodes.iter().map(|o| o.count).sum();
    assert_eq!(seg_evals, p.total_evals, "segment evals must sum to total");
    assert_eq!(seg_ops, p.total_ops, "segment ops must sum to total");
    assert_eq!(
        op_counts, p.total_ops,
        "opcode counts must sum to total ops"
    );
    assert_eq!(p.sweeps.evals, p.total_evals, "sweep evals mirror totals");
    let jit = p.jit_table(0.8);
    let cov = jit.last().map_or(0.0, |r| r.cum_share);
    assert!(cov >= 0.8, "JIT table covers {cov:.3} < 0.8");
}

/// The two engines attribute heat to the same places. Documented slack
/// (DESIGN.md §15): the engines count different units — the Tree walker
/// evaluates *every* assign each settle pass while the compiled tape
/// only wakes dirty instructions — so shares are compared coarsely:
/// both attribute to the identical module set, and any module one
/// engine charges ≥10% of evals to must get a nonzero share from the
/// other.
#[test]
fn tree_and_compiled_module_attribution_agree() {
    let bench = zoo::ann0();
    let compiled = profiled_run(&bench, SimEngine::Compiled);
    let tree = profiled_run(&bench, SimEngine::Tree);
    assert_eq!(compiled.engine, "compiled");
    assert_eq!(tree.engine, "tree");
    let cs = module_shares(&compiled);
    let ts = module_shares(&tree);
    assert!(!cs.is_empty() && !ts.is_empty());
    let c_names: Vec<&str> = cs.iter().map(|(m, _)| m.as_str()).collect();
    let t_names: Vec<&str> = ts.iter().map(|(m, _)| m.as_str()).collect();
    for (names, other, label) in [(&cs, &t_names, "tree"), (&ts, &c_names, "compiled")] {
        for (m, share) in names.iter() {
            if *share >= 0.10 {
                assert!(
                    other.contains(&m.as_str()),
                    "{label} engine attributes nothing to hot module `{m}` \
                     (share {share:.3} on the other engine); compiled={cs:?} tree={ts:?}"
                );
            }
        }
    }
}

/// A profiled MNIST full-RTL run with the default-capacity tracer
/// installed — including the profile's own `prof.*` counter emission —
/// must not overflow the ring: `events_dropped` stays 0.
#[test]
fn profiled_mnist_run_does_not_drop_trace_events() {
    let bench = zoo::mnist();
    let tracer = trace::Tracer::new();
    {
        let _session = trace::install(&tracer);
        let p = profiled_run(&bench, SimEngine::Compiled);
        assert!(p.total_evals > 0);
        p.emit_counters();
    }
    assert_eq!(
        tracer.events_dropped(),
        0,
        "profiled MNIST run overflowed the default trace ring"
    );
}
