//! Differential-of-the-differential: the three-view harness itself must
//! be engine-invariant. For a spread of zoo benchmarks the full
//! [`diff_design`] report — layer audits, divergence list, RTL module
//! stats and the fourth-view counter cross-check — is computed once
//! under the tree-walking interpreter and once under the compiled
//! levelized engine, and the two reports must be equal field for field.
//! The divergence-bundle VCD capture path is held to the same standard:
//! both engines must dump byte-identical waveforms.
//!
//! The partitioned parallel engine joins the same contract at every lane
//! count: `parallel:1`, `parallel:2` and `parallel:4` must reproduce the
//! compiled engine's reports, RTL-read counters and control-top VCDs
//! bit for bit — the thread-matrix CI lane runs this suite per count and
//! byte-compares the digests across the matrix.

use deepburning_baselines::{pseudo_weights, zoo, Benchmark};
use deepburning_core::{generate, Budget};
use deepburning_sim::{
    capture_layer_vcd, diff_design, full_network_run, DiffOptions, DiffReport, FullRunOptions,
    SimEngine, SimThreads,
};
use deepburning_tensor::{Tensor, WeightSet};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn opts(engine: SimEngine) -> DiffOptions {
    DiffOptions {
        max_rtl_samples: 8,
        engine,
        ..DiffOptions::default()
    }
}

/// Normalises the per-module *effort* counters (`settle_passes`,
/// `evals`) that are documented to differ between engines — the
/// event-driven tape evaluates only dirty fanout cones — while keeping
/// `clock_edges`, which both engines must count bit-for-bit. Modules are
/// re-sorted by name because the default ordering is by eval count.
fn normalised(mut report: DiffReport) -> DiffReport {
    for m in &mut report.rtl_modules {
        m.settle_passes = 0;
        m.evals = 0;
    }
    report.rtl_modules.sort_by(|a, b| a.module.cmp(&b.module));
    report
}

fn stimulus(bench: &Benchmark) -> (WeightSet, Tensor) {
    let mut rng = StdRng::seed_from_u64(0xE9E ^ bench.name.len() as u64);
    let ws = pseudo_weights(bench, &mut rng);
    let input = Tensor::from_fn(bench.network.input_shape(), |_, _, _| {
        rng.gen_range(-1.0..1.0f32)
    });
    (ws, input)
}

/// Every layer kind the zoo exercises, both budget extremes: the tree
/// and compiled engines must produce the *same report object*, down to
/// the counter cross-check.
#[test]
fn tree_and_compiled_reports_are_identical_across_zoo() {
    let cases = [
        (zoo::ann0(), Budget::Small),
        (zoo::ann2(), Budget::Large),
        (zoo::cmac(), Budget::Small),
        (zoo::hopfield(), Budget::Medium),
        (zoo::mnist(), Budget::Small),
        (zoo::alexnet_micro(), Budget::Small),
    ];
    for (bench, budget) in cases {
        let design = generate(&bench.network, &budget)
            .unwrap_or_else(|e| panic!("{}: generation failed: {e}", bench.name));
        let (ws, input) = stimulus(&bench);
        let tree = diff_design(&design, &bench.network, &ws, &input, &opts(SimEngine::Tree))
            .unwrap_or_else(|e| panic!("{}: tree diff failed: {e}", bench.name));
        let compiled = diff_design(
            &design,
            &bench.network,
            &ws,
            &input,
            &opts(SimEngine::Compiled),
        )
        .unwrap_or_else(|e| panic!("{}: compiled diff failed: {e}", bench.name));
        assert!(tree.is_clean(), "{}: tree diff diverged", bench.name);
        // The counter cross-check rides inside the report; assert the
        // RTL-read registers explicitly so a mismatch names the engine.
        let (tc, cc) = (
            tree.counters.as_ref().expect("tree counters"),
            compiled.counters.as_ref().expect("compiled counters"),
        );
        assert_eq!(
            tc.rtl, cc.rtl,
            "{}: RTL counter readback differs",
            bench.name
        );
        assert_eq!(tc.cycle_slack, cc.cycle_slack, "{}", bench.name);
        assert_eq!(
            normalised(tree),
            normalised(compiled),
            "{}: engines disagree on the diff report",
            bench.name
        );
    }
}

/// The injected-fault path flags the same divergences under both
/// engines: a harness that only agrees on clean runs proves nothing.
#[test]
fn injected_fault_reports_are_identical() {
    let bench = zoo::mnist();
    let design = generate(&bench.network, &Budget::Small).expect("generates");
    let (ws, input) = stimulus(&bench);
    let fault = |engine| DiffOptions {
        inject_rtl_fault: Some(2),
        ..opts(engine)
    };
    let tree = diff_design(
        &design,
        &bench.network,
        &ws,
        &input,
        &fault(SimEngine::Tree),
    )
    .expect("tree diff");
    let compiled = diff_design(
        &design,
        &bench.network,
        &ws,
        &input,
        &fault(SimEngine::Compiled),
    )
    .expect("compiled diff");
    assert!(!tree.is_clean(), "fault injection must diverge");
    assert_eq!(
        normalised(tree),
        normalised(compiled),
        "engines disagree on the faulted report"
    );
}

/// The fifth view is held to the same standard: one continuous
/// coordinator-driven run across every layer, under both engines, on two
/// zoo networks — outputs (the divergence list stays empty and equal),
/// RTL-read counters and the control-top VCD must all be bit-identical.
#[test]
fn full_network_runs_are_identical_between_engines() {
    let cases = [(zoo::mnist(), Budget::Small), (zoo::cmac(), Budget::Small)];
    for (bench, budget) in cases {
        let design = generate(&bench.network, &budget)
            .unwrap_or_else(|e| panic!("{}: generation failed: {e}", bench.name));
        let (ws, input) = stimulus(&bench);
        let full = |engine| DiffOptions {
            full_rtl: true,
            ..opts(engine)
        };
        let tree = diff_design(&design, &bench.network, &ws, &input, &full(SimEngine::Tree))
            .unwrap_or_else(|e| panic!("{}: tree full run failed: {e}", bench.name));
        let compiled = diff_design(
            &design,
            &bench.network,
            &ws,
            &input,
            &full(SimEngine::Compiled),
        )
        .unwrap_or_else(|e| panic!("{}: compiled full run failed: {e}", bench.name));
        let (tf, cf) = (
            tree.full_run.as_ref().expect("tree full run"),
            compiled.full_run.as_ref().expect("compiled full run"),
        );
        assert!(
            tf.is_clean(),
            "{}: full-network run diverged: {:#?}",
            bench.name,
            tf.divergences
        );
        assert_eq!(
            tf.rtl_counters, cf.rtl_counters,
            "{}: full-run counter readback differs",
            bench.name
        );
        assert_eq!(tf.cycles, cf.cycles, "{}", bench.name);
        // Clean diff_design runs skip full waveform capture (divergence
        // bundles ship the flight-recorder window instead), so drive the
        // standalone API with capture on to hold the control-top VCDs
        // byte-identical.
        let wave = |engine| {
            full_network_run(
                &design,
                &bench.network,
                &ws,
                &input,
                &FullRunOptions {
                    engine,
                    capture_vcd: true,
                    ..FullRunOptions::default()
                },
            )
            .unwrap_or_else(|e| panic!("{}: captured full run failed: {e}", bench.name))
        };
        let (tw, cw) = (wave(SimEngine::Tree), wave(SimEngine::Compiled));
        assert_eq!(
            vcd_digest(tw.vcd.as_deref().expect("tree control-top vcd")),
            vcd_digest(cw.vcd.as_deref().expect("compiled control-top vcd")),
            "{}: control-top VCD digests differ",
            bench.name
        );
        assert_eq!(
            normalised(tree),
            normalised(compiled),
            "{}: engines disagree on the full-rtl report",
            bench.name
        );
    }
}

/// The parallel engine at 1, 2 and 4 lanes against the serial compiled
/// engine: same diff report, same RTL-read counters, same control-top
/// VCD bytes. One lane takes the exactly-serial path; two and four
/// exercise the worker pool and the level-barrier apply protocol, so
/// any nondeterminism in the partitioned settle shows up here as a
/// field-level or digest mismatch naming the lane count.
#[test]
fn parallel_reports_match_compiled_at_every_lane_count() {
    let cases = [(zoo::mnist(), Budget::Small), (zoo::cmac(), Budget::Small)];
    for (bench, budget) in cases {
        let design = generate(&bench.network, &budget)
            .unwrap_or_else(|e| panic!("{}: generation failed: {e}", bench.name));
        let (ws, input) = stimulus(&bench);
        let compiled = diff_design(
            &design,
            &bench.network,
            &ws,
            &input,
            &opts(SimEngine::Compiled),
        )
        .unwrap_or_else(|e| panic!("{}: compiled diff failed: {e}", bench.name));
        assert!(
            compiled.is_clean(),
            "{}: compiled diff diverged",
            bench.name
        );
        let compiled_wave = full_network_run(
            &design,
            &bench.network,
            &ws,
            &input,
            &FullRunOptions {
                capture_vcd: true,
                ..FullRunOptions::default()
            },
        )
        .unwrap_or_else(|e| panic!("{}: compiled full run failed: {e}", bench.name));
        let compiled_digest = vcd_digest(compiled_wave.vcd.as_deref().expect("compiled vcd"));
        let compiled_norm = normalised(compiled);
        for lanes in [1usize, 2, 4] {
            let engine = SimEngine::Parallel(SimThreads(lanes));
            let par = diff_design(&design, &bench.network, &ws, &input, &opts(engine))
                .unwrap_or_else(|e| panic!("{} x{lanes}: parallel diff failed: {e}", bench.name));
            let (cc, pc) = (
                compiled_norm.counters.as_ref().expect("compiled counters"),
                par.counters.as_ref().expect("parallel counters"),
            );
            assert_eq!(
                cc.rtl, pc.rtl,
                "{} x{lanes}: RTL counter readback differs",
                bench.name
            );
            assert_eq!(cc.cycle_slack, pc.cycle_slack, "{} x{lanes}", bench.name);
            assert_eq!(
                compiled_norm,
                normalised(par),
                "{} x{lanes}: parallel engine disagrees with compiled",
                bench.name
            );
            let par_wave = full_network_run(
                &design,
                &bench.network,
                &ws,
                &input,
                &FullRunOptions {
                    engine,
                    capture_vcd: true,
                    ..FullRunOptions::default()
                },
            )
            .unwrap_or_else(|e| panic!("{} x{lanes}: parallel full run failed: {e}", bench.name));
            assert_eq!(
                par_wave.rtl_counters, compiled_wave.rtl_counters,
                "{} x{lanes}: full-run counter readback differs",
                bench.name
            );
            assert_eq!(
                vcd_digest(par_wave.vcd.as_deref().expect("parallel vcd")),
                compiled_digest,
                "{} x{lanes}: control-top VCD digests differ",
                bench.name
            );
            if lanes > 1 {
                let prof = par_wave.par.as_ref().unwrap_or_else(|| {
                    panic!(
                        "{} x{lanes}: parallel run must report ParProfile",
                        bench.name
                    )
                });
                assert_eq!(prof.threads, lanes as u64, "{}", bench.name);
            } else {
                assert!(
                    par_wave.par.is_none(),
                    "{}: one lane is exactly the serial path",
                    bench.name
                );
            }
        }
    }
}

/// The dynamic race checker is semantics-preserving: a forced-pool
/// (`DEEPBURNING_PAR_MIN_BATCH=1`) full-network run with
/// `DEEPBURNING_RACE_CHECK=1` armed must reproduce the serial compiled
/// engine bit for bit while cross-checking every level batch's actual
/// signal touches against the static interference sets (DESIGN.md §17).
/// This is the test the ThreadSanitizer CI lane runs, where those env
/// vars are set process-wide.
#[test]
fn race_checked_forced_pool_run_matches_compiled() {
    let bench = zoo::cmac();
    let design = generate(&bench.network, &Budget::Small).expect("generates");
    let (ws, input) = stimulus(&bench);
    let compiled = full_network_run(
        &design,
        &bench.network,
        &ws,
        &input,
        &FullRunOptions::default(),
    )
    .expect("compiled full run");
    // Concurrently-running tests may observe these vars between set and
    // restore; both only arm extra checking on clean designs, so the
    // cross-talk is correctness-neutral.
    let saved: Vec<(&str, Option<String>)> =
        ["DEEPBURNING_RACE_CHECK", "DEEPBURNING_PAR_MIN_BATCH"]
            .into_iter()
            .map(|k| (k, std::env::var(k).ok()))
            .collect();
    std::env::set_var("DEEPBURNING_RACE_CHECK", "1");
    std::env::set_var("DEEPBURNING_PAR_MIN_BATCH", "1");
    let par = full_network_run(
        &design,
        &bench.network,
        &ws,
        &input,
        &FullRunOptions {
            engine: SimEngine::Parallel(SimThreads(2)),
            ..FullRunOptions::default()
        },
    );
    for (k, v) in saved {
        match v {
            Some(v) => std::env::set_var(k, v),
            None => std::env::remove_var(k),
        }
    }
    let par = par.expect("race-checked forced-pool run");
    assert!(
        par.is_clean(),
        "race-checked run diverged: {:#?}",
        par.divergences
    );
    assert_eq!(
        par.rtl_counters, compiled.rtl_counters,
        "race-checked counter readback differs from serial"
    );
    assert_eq!(par.cycles, compiled.cycles);
    let prof = par.par.as_ref().expect("pool profile");
    assert!(
        prof.parallel_batches > 0,
        "forced-pool run never crossed the worker pool"
    );
}

/// FNV-1a over the VCD text: a compact digest so an engine mismatch
/// reports one number per side instead of two multi-megabyte dumps.
fn vcd_digest(text: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in text.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// The streaming VCD sink is held to the capture standard: whole-run
/// waveforms streamed to disk by either engine are byte-identical to each
/// other *and* to the buffered in-memory capture — streaming changes where
/// the bytes go, never what they are.
#[test]
fn streamed_vcd_files_are_byte_identical_between_engines() {
    let bench = zoo::cmac();
    let design = generate(&bench.network, &Budget::Small).expect("generates");
    let (ws, input) = stimulus(&bench);
    let buffered = full_network_run(
        &design,
        &bench.network,
        &ws,
        &input,
        &FullRunOptions {
            capture_vcd: true,
            ..FullRunOptions::default()
        },
    )
    .expect("buffered run")
    .vcd
    .expect("buffered control-top vcd");
    let stream_digest = |engine: SimEngine| {
        let path = std::env::temp_dir().join(format!(
            "deepburning-eq-stream-{}-{engine}.vcd",
            std::process::id()
        ));
        let report = full_network_run(
            &design,
            &bench.network,
            &ws,
            &input,
            &FullRunOptions {
                engine,
                vcd_stream: Some(path.clone()),
                ..FullRunOptions::default()
            },
        )
        .unwrap_or_else(|e| panic!("{engine}: streamed run failed: {e}"));
        assert_eq!(report.vcd, None, "{engine}: streaming must not buffer");
        assert_eq!(report.vcd_path.as_deref(), Some(path.as_path()));
        let text = std::fs::read_to_string(&path).expect("streamed file readable");
        let _ = std::fs::remove_file(&path);
        vcd_digest(&text)
    };
    let tree = stream_digest(SimEngine::Tree);
    let compiled = stream_digest(SimEngine::Compiled);
    assert_eq!(tree, compiled, "streamed VCD file digests differ");
    assert_eq!(
        tree,
        vcd_digest(&buffered),
        "streamed file differs from the buffered capture"
    );
}

/// Divergence-bundle waveforms: the VCD text a hardware engineer would
/// inspect is byte-identical whichever engine replayed the layer.
#[test]
fn vcd_capture_is_byte_identical_between_engines() {
    let bench = zoo::mnist();
    let design = generate(&bench.network, &Budget::Small).expect("generates");
    let (ws, input) = stimulus(&bench);
    let layer = &bench.network.layers()[1].name;
    let capture = |engine| {
        capture_layer_vcd(
            &bench.network,
            &ws,
            &input,
            &design.compiled.luts,
            design.compiled.config.format,
            design.compiled.config.lanes,
            &opts(engine),
            layer,
        )
        .expect("capture")
    };
    let tree = capture(SimEngine::Tree);
    let compiled = capture(SimEngine::Compiled);
    assert!(!tree.is_empty(), "layer must exercise at least one block");
    assert_eq!(tree, compiled, "VCD dumps differ between engines");
}
