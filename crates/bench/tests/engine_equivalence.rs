//! Differential-of-the-differential: the three-view harness itself must
//! be engine-invariant. For a spread of zoo benchmarks the full
//! [`diff_design`] report — layer audits, divergence list, RTL module
//! stats and the fourth-view counter cross-check — is computed once
//! under the tree-walking interpreter and once under the compiled
//! levelized engine, and the two reports must be equal field for field.
//! The divergence-bundle VCD capture path is held to the same standard:
//! both engines must dump byte-identical waveforms.

use deepburning_baselines::{pseudo_weights, zoo, Benchmark};
use deepburning_core::{generate, Budget};
use deepburning_sim::{capture_layer_vcd, diff_design, DiffOptions, DiffReport, SimEngine};
use deepburning_tensor::{Tensor, WeightSet};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn opts(engine: SimEngine) -> DiffOptions {
    DiffOptions {
        max_rtl_samples: 8,
        engine,
        ..DiffOptions::default()
    }
}

/// Normalises the per-module *effort* counters (`settle_passes`,
/// `evals`) that are documented to differ between engines — the
/// event-driven tape evaluates only dirty fanout cones — while keeping
/// `clock_edges`, which both engines must count bit-for-bit. Modules are
/// re-sorted by name because the default ordering is by eval count.
fn normalised(mut report: DiffReport) -> DiffReport {
    for m in &mut report.rtl_modules {
        m.settle_passes = 0;
        m.evals = 0;
    }
    report.rtl_modules.sort_by(|a, b| a.module.cmp(&b.module));
    report
}

fn stimulus(bench: &Benchmark) -> (WeightSet, Tensor) {
    let mut rng = StdRng::seed_from_u64(0xE9E ^ bench.name.len() as u64);
    let ws = pseudo_weights(bench, &mut rng);
    let input = Tensor::from_fn(bench.network.input_shape(), |_, _, _| {
        rng.gen_range(-1.0..1.0f32)
    });
    (ws, input)
}

/// Every layer kind the zoo exercises, both budget extremes: the tree
/// and compiled engines must produce the *same report object*, down to
/// the counter cross-check.
#[test]
fn tree_and_compiled_reports_are_identical_across_zoo() {
    let cases = [
        (zoo::ann0(), Budget::Small),
        (zoo::ann2(), Budget::Large),
        (zoo::cmac(), Budget::Small),
        (zoo::hopfield(), Budget::Medium),
        (zoo::mnist(), Budget::Small),
        (zoo::alexnet_micro(), Budget::Small),
    ];
    for (bench, budget) in cases {
        let design = generate(&bench.network, &budget)
            .unwrap_or_else(|e| panic!("{}: generation failed: {e}", bench.name));
        let (ws, input) = stimulus(&bench);
        let tree = diff_design(&design, &bench.network, &ws, &input, &opts(SimEngine::Tree))
            .unwrap_or_else(|e| panic!("{}: tree diff failed: {e}", bench.name));
        let compiled = diff_design(
            &design,
            &bench.network,
            &ws,
            &input,
            &opts(SimEngine::Compiled),
        )
        .unwrap_or_else(|e| panic!("{}: compiled diff failed: {e}", bench.name));
        assert!(tree.is_clean(), "{}: tree diff diverged", bench.name);
        // The counter cross-check rides inside the report; assert the
        // RTL-read registers explicitly so a mismatch names the engine.
        let (tc, cc) = (
            tree.counters.as_ref().expect("tree counters"),
            compiled.counters.as_ref().expect("compiled counters"),
        );
        assert_eq!(
            tc.rtl, cc.rtl,
            "{}: RTL counter readback differs",
            bench.name
        );
        assert_eq!(tc.cycle_slack, cc.cycle_slack, "{}", bench.name);
        assert_eq!(
            normalised(tree),
            normalised(compiled),
            "{}: engines disagree on the diff report",
            bench.name
        );
    }
}

/// The injected-fault path flags the same divergences under both
/// engines: a harness that only agrees on clean runs proves nothing.
#[test]
fn injected_fault_reports_are_identical() {
    let bench = zoo::mnist();
    let design = generate(&bench.network, &Budget::Small).expect("generates");
    let (ws, input) = stimulus(&bench);
    let fault = |engine| DiffOptions {
        inject_rtl_fault: Some(2),
        ..opts(engine)
    };
    let tree = diff_design(
        &design,
        &bench.network,
        &ws,
        &input,
        &fault(SimEngine::Tree),
    )
    .expect("tree diff");
    let compiled = diff_design(
        &design,
        &bench.network,
        &ws,
        &input,
        &fault(SimEngine::Compiled),
    )
    .expect("compiled diff");
    assert!(!tree.is_clean(), "fault injection must diverge");
    assert_eq!(
        normalised(tree),
        normalised(compiled),
        "engines disagree on the faulted report"
    );
}

/// Divergence-bundle waveforms: the VCD text a hardware engineer would
/// inspect is byte-identical whichever engine replayed the layer.
#[test]
fn vcd_capture_is_byte_identical_between_engines() {
    let bench = zoo::mnist();
    let design = generate(&bench.network, &Budget::Small).expect("generates");
    let (ws, input) = stimulus(&bench);
    let layer = &bench.network.layers()[1].name;
    let capture = |engine| {
        capture_layer_vcd(
            &bench.network,
            &ws,
            &input,
            &design.compiled.luts,
            design.compiled.config.format,
            design.compiled.config.lanes,
            &opts(engine),
            layer,
        )
        .expect("capture")
    };
    let tree = capture(SimEngine::Tree);
    let compiled = capture(SimEngine::Compiled);
    assert!(!tree.is_empty(), "layer must exercise at least one block");
    assert_eq!(tree, compiled, "VCD dumps differ between engines");
}
