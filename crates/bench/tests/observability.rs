//! Streaming-observability acceptance: the phase timeline renders
//! per-phase duration and segment-bandwidth rows (with p50/p95 summary
//! stats) for the zoo benchmarks, and a full-network MNIST run with a
//! streaming VCD sink completes in bounded memory — every handoff to the
//! sink is a small incremental chunk, never the accumulated document.

use deepburning_baselines::{pseudo_weights, zoo, Benchmark};
use deepburning_bench::render_timeline_table;
use deepburning_core::{generate, Budget};
use deepburning_sim::{full_network_run, full_network_run_to_sink, FullRunOptions};
use deepburning_tensor::{Tensor, WeightSet};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn stimulus(bench: &Benchmark) -> (WeightSet, Tensor) {
    let mut rng = StdRng::seed_from_u64(0x0B5 ^ bench.name.len() as u64);
    let ws = pseudo_weights(bench, &mut rng);
    let input = Tensor::from_fn(bench.network.input_shape(), |_, _, _| {
        rng.gen_range(-1.0..1.0f32)
    });
    (ws, input)
}

/// `dbreport --timeline` acceptance: every zoo benchmark of the report
/// suite produces per-phase duration rows and per-segment bandwidth rows,
/// with p50/p95 distribution stats, straight off the control wires.
#[test]
fn timeline_tables_render_for_zoo_benchmarks() {
    for bench in [zoo::ann0(), zoo::cmac(), zoo::mnist()] {
        let design = generate(&bench.network, &Budget::Small)
            .unwrap_or_else(|e| panic!("{}: generation failed: {e}", bench.name));
        let (ws, input) = stimulus(&bench);
        let full = full_network_run(
            &design,
            &bench.network,
            &ws,
            &input,
            &FullRunOptions::default(),
        )
        .unwrap_or_else(|e| panic!("{}: full run failed: {e}", bench.name));
        assert!(full.is_clean(), "{}: full run diverged", bench.name);
        let tl = &full.timeline;
        assert_eq!(
            tl.phases.len(),
            design.compiled.folding.phases.len(),
            "{}: one slice per scheduled phase",
            bench.name
        );
        assert!(tl.phase_cycles.count() > 0, "{}", bench.name);
        assert!(
            tl.phase_cycles.p95() >= tl.phase_cycles.p50(),
            "{}",
            bench.name
        );
        assert!(!tl.segments.is_empty(), "{}", bench.name);
        let table = render_timeline_table(tl);
        for p in &tl.phases {
            assert!(
                table.contains(&format!("p{}", p.phase)),
                "{}: phase row p{} missing:\n{table}",
                bench.name,
                p.phase
            );
            assert!(
                table.contains(&p.layer),
                "{}: layer {} missing from table",
                bench.name,
                p.layer
            );
        }
        for s in &tl.segments {
            assert!(
                table.contains(&s.segment),
                "{}: segment row {} missing:\n{table}",
                bench.name,
                s.segment
            );
        }
        for needle in ["min", "p50", "p95", "max", "words/kcycle", "share"] {
            assert!(
                table.contains(needle),
                "{}: `{needle}` missing:\n{table}",
                bench.name
            );
        }
        // The JSON image carries the same stats for machine consumers.
        let doc = tl.to_json();
        assert!(doc.get("phase_cycles").and_then(|h| h.get("p95")).is_some());
        assert!(doc
            .get("segments")
            .and_then(deepburning_trace::json::Json::as_arr)
            .is_some_and(|a| !a.is_empty()));
    }
}

/// A write sink that forbids large handoffs: accumulating the whole VCD
/// and dumping it at the end would arrive as one multi-hundred-KiB write
/// and fail the cap, while true streaming hands over one header and one
/// small chunk per sampled cycle.
struct CappedSink {
    cap: usize,
    largest: Arc<AtomicU64>,
    total: Arc<AtomicU64>,
}

impl std::io::Write for CappedSink {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        assert!(
            buf.len() <= self.cap,
            "sink handed {} bytes at once (cap {}): the writer is buffering, not streaming",
            buf.len(),
            self.cap
        );
        self.largest.fetch_max(buf.len() as u64, Ordering::Relaxed);
        self.total.fetch_add(buf.len() as u64, Ordering::Relaxed);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Bounded-memory acceptance: the clean full-network MNIST run streams
/// its VCD through a sink capped at 64 KiB per write while emitting far
/// more than 64 KiB in total — the recorder never holds the document.
#[test]
fn mnist_streaming_vcd_runs_in_bounded_memory() {
    const CAP: usize = 64 * 1024;
    let bench = zoo::mnist();
    let design = generate(&bench.network, &Budget::Small).expect("generates");
    let (ws, input) = stimulus(&bench);
    let largest = Arc::new(AtomicU64::new(0));
    let total = Arc::new(AtomicU64::new(0));
    let sink = CappedSink {
        cap: CAP,
        largest: Arc::clone(&largest),
        total: Arc::clone(&total),
    };
    let report = full_network_run_to_sink(
        &design,
        &bench.network,
        &ws,
        &input,
        &FullRunOptions::default(),
        Some(Box::new(sink)),
    )
    .expect("streamed run");
    assert!(report.is_clean(), "mnist full run diverged");
    assert_eq!(report.vcd, None, "streaming must not return buffered text");
    let largest = largest.load(Ordering::Relaxed);
    let total = total.load(Ordering::Relaxed);
    assert!(
        total > CAP as u64,
        "run must emit more than one cap of VCD ({total} bytes)"
    );
    assert!(largest <= CAP as u64);
    assert!(largest > 0, "the sink must have received the header");
}
