//! Evaluation harness shared by the table/figure binaries and the
//! Criterion benches.
//!
//! Each paper table/figure has a `cargo run -p deepburning-bench --bin
//! <id>` binary (run with `--release` — the accuracy figure trains models)
//! and a matching Criterion bench measuring the pipeline that produces it.

mod artifacts;
mod gate;
mod history;
mod report;

pub use artifacts::write_divergence_bundle;
pub use gate::{compare_bench_summaries, gate_bench_text, GatePolicy};
pub use history::{
    append_entry, detect_drift, history_path, load_history, render_history_table, sparkline, Drift,
    HistoryEntry, DRIFT_THRESHOLD, DRIFT_WINDOW, WATCHED_METRICS,
};
pub use report::{
    attach_full_run, bench_summary_json, build_report, render_report_table, render_timeline_table,
    report_json, LayerProfile, PerfReport, Roofline, StallBreakdown,
};

use deepburning_baselines::{
    custom_design, custom_timing_params, Benchmark, CpuModel, ZhangFpga15,
};
use deepburning_core::{generate, AcceleratorDesign, Budget, GenerateError};
use deepburning_sim::{
    inference_energy, simulate_timing, EnergyParams, TimingParams, TimingReport,
};

/// One scheme's measurement for one benchmark (a bar in Figs. 8/9).
#[derive(Debug, Clone, PartialEq)]
pub struct SchemeResult {
    /// Scheme label: `Custom`, `DB`, `DB-L`, `DB-S`, `CPU`.
    pub scheme: &'static str,
    /// Forward-propagation latency, seconds.
    pub seconds: f64,
    /// Energy per forward propagation, joules.
    pub energy_j: f64,
    /// Whether the design fit its budget envelope (always true for CPU).
    pub fits: bool,
}

/// Latency + energy of one generated design under given timing params.
pub fn measure(design: &AcceleratorDesign, timing_params: &TimingParams) -> (f64, f64) {
    let timing: TimingReport = simulate_timing(&design.compiled, timing_params);
    let seconds = timing.seconds(design.clock_hz());
    let energy = inference_energy(design, &timing, &EnergyParams::default());
    (seconds, energy.total_j)
}

/// Runs every scheme of Figs. 8/9 on one benchmark.
///
/// # Errors
///
/// Propagates generator failures.
pub fn evaluate_benchmark(bench: &Benchmark) -> Result<Vec<SchemeResult>, GenerateError> {
    let mut out = Vec::with_capacity(5);

    let cu = custom_design(bench, &Budget::Medium)?;
    let (s, e) = measure(&cu, &custom_timing_params());
    out.push(SchemeResult {
        scheme: "Custom",
        seconds: s,
        energy_j: e,
        fits: cu.fits.0,
    });

    for (budget, label) in [
        (Budget::Medium, "DB"),
        (Budget::Large, "DB-L"),
        (Budget::Small, "DB-S"),
    ] {
        let d = generate(&bench.network, &budget)?;
        let (s, e) = measure(&d, &TimingParams::default());
        out.push(SchemeResult {
            scheme: label,
            seconds: s,
            energy_j: e,
            fits: d.fits.0,
        });
    }

    let cpu = CpuModel::xeon_2_4ghz();
    let s = cpu
        .forward_time(&bench.network)
        .expect("zoo networks are valid");
    let e = cpu
        .forward_energy(&bench.network)
        .expect("zoo networks are valid");
    out.push(SchemeResult {
        scheme: "CPU",
        seconds: s,
        energy_j: e,
        fits: true,
    });
    Ok(out)
}

/// Formats seconds with an adaptive unit.
pub fn fmt_seconds(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else {
        format!("{:.1} us", s * 1e6)
    }
}

/// Formats joules with an adaptive unit.
pub fn fmt_joules(j: f64) -> String {
    if j >= 1.0 {
        format!("{j:.3} J")
    } else if j >= 1e-3 {
        format!("{:.3} mJ", j * 1e3)
    } else {
        format!("{:.2} uJ", j * 1e6)
    }
}

/// Prints one aligned row.
pub fn print_row(cells: &[String], widths: &[usize]) {
    let row: Vec<String> = cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:>w$}", w = w))
        .collect();
    println!("{}", row.join("  "));
}

/// The Zhang FPGA'15 reference row for the AlexNet comparisons.
pub fn zhang_row() -> SchemeResult {
    SchemeResult {
        scheme: "[7]",
        seconds: ZhangFpga15::LATENCY_S,
        energy_j: ZhangFpga15::ENERGY_J,
        fits: true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepburning_baselines::zoo;

    #[test]
    fn evaluate_small_benchmark_has_all_schemes() {
        let rows = evaluate_benchmark(&zoo::ann0()).expect("evaluates");
        let schemes: Vec<&str> = rows.iter().map(|r| r.scheme).collect();
        assert_eq!(schemes, vec!["Custom", "DB", "DB-L", "DB-S", "CPU"]);
        assert!(rows.iter().all(|r| r.seconds > 0.0 && r.energy_j > 0.0));
    }

    #[test]
    fn formatting_units() {
        assert_eq!(fmt_seconds(2.0), "2.000 s");
        assert_eq!(fmt_seconds(0.0216), "21.600 ms");
        assert_eq!(fmt_seconds(12e-6), "12.0 us");
        assert_eq!(fmt_joules(0.5), "500.000 mJ");
        assert_eq!(fmt_joules(1.5), "1.500 J");
    }

    #[test]
    fn fig8_shape_holds_on_mnist() {
        // CPU slower than DB; DB-L at least as fast as DB.
        let rows = evaluate_benchmark(&zoo::mnist()).expect("evaluates");
        let get = |s: &str| rows.iter().find(|r| r.scheme == s).expect("scheme").seconds;
        assert!(get("CPU") > get("DB"), "CPU must lose to DB");
        assert!(get("DB-L") <= get("DB"), "DB-L must not lose to DB");
        assert!(get("DB-S") >= get("DB-L"), "DB-S must not beat DB-L");
    }

    #[test]
    fn fig9_shape_holds_on_mnist() {
        let rows = evaluate_benchmark(&zoo::mnist()).expect("evaluates");
        let get = |s: &str| {
            rows.iter()
                .find(|r| r.scheme == s)
                .expect("scheme")
                .energy_j
        };
        assert!(get("CPU") > get("DB") * 5.0, "CPU energy must dwarf DB");
        assert!(
            get("Custom") <= get("DB"),
            "Custom must not burn more than DB"
        );
    }
}
