//! Roofline / stall reporting built on the performance-counter view.
//!
//! [`build_report`] runs the analytic timing model over a generated
//! design and folds the result into a [`PerfReport`]: the counter set of
//! the generated `perf_counters` block (DESIGN.md §10), a per-layer
//! utilisation profile, the compute-vs-memory stall split, the
//! buffer-occupancy series, and the design's roofline placement against
//! its DSP-budget compute peak and the [`TimingParams`] bandwidth
//! ceiling. `dbreport` renders it as `report.json` plus a text table.

use deepburning_components::dsps_per_multiplier;
use deepburning_core::AcceleratorDesign;
use deepburning_sim::{
    counter_set_json, simulate_timing, CounterSet, RunTimeline, TimingParams, TimingReport,
};
use deepburning_trace::json::Json;

/// Aggregated timing profile of one network layer (all its phases).
#[derive(Debug, Clone, PartialEq)]
pub struct LayerProfile {
    /// Layer name.
    pub layer: String,
    /// Number of schedule phases the layer occupies.
    pub phases: usize,
    /// Latency contribution in cycles.
    pub cycles: u64,
    /// Datapath demand in cycles.
    pub compute_cycles: u64,
    /// DRAM-traffic demand in cycles.
    pub dram_cycles: u64,
    /// On-chip buffer demand in cycles.
    pub buffer_cycles: u64,
    /// MAC operations retired by the layer.
    pub mac_ops: u64,
    /// Cycles stalled on DRAM beyond compute/buffer overlap.
    pub stall_cycles: u64,
    /// MAC lane occupancy over the layer's latency:
    /// `mac_ops / (lanes * cycles)`.
    pub utilization: f64,
}

/// Where the cycles of a run went.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StallBreakdown {
    /// End-to-end latency in cycles.
    pub total_cycles: u64,
    /// Cycles the datapath was retiring work.
    pub active_cycles: u64,
    /// Cycles stalled on DRAM transfers (memory-bound slack).
    pub memory_bound_cycles: u64,
    /// Everything else: buffer-bound cycles plus per-phase fill/drain and
    /// coordinator reconnection overhead.
    pub overhead_cycles: u64,
}

/// Roofline placement of one design/run.
#[derive(Debug, Clone, PartialEq)]
pub struct Roofline {
    /// Operational intensity: MACs per DRAM byte moved.
    pub intensity_ops_per_byte: f64,
    /// Attained throughput: MACs per cycle over the whole run.
    pub attained_ops_per_cycle: f64,
    /// Compute roof of the instantiated lanes (one MAC/lane/cycle).
    pub lane_peak_ops_per_cycle: f64,
    /// Compute roof the budget's DSP envelope could support at this word
    /// width (`envelope.dsp / dsps_per_multiplier`).
    pub dsp_peak_ops_per_cycle: f64,
    /// Bandwidth roof at this intensity:
    /// `intensity * dram_bytes_per_cycle`.
    pub bandwidth_ops_per_cycle: f64,
    /// Which roof is lower at this intensity: `"compute"` or `"memory"`.
    pub bound: &'static str,
}

/// The full observability report for one benchmark × budget run.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfReport {
    /// Benchmark name.
    pub benchmark: String,
    /// Budget tag (`DB-S`, `DB`, `DB-L`).
    pub budget: String,
    /// Synergy lanes instantiated.
    pub lanes: u32,
    /// Datapath word width in bits.
    pub word_bits: u32,
    /// Target device clock.
    pub clock_hz: u64,
    /// The analytic performance-counter set (register-map order).
    pub counters: CounterSet,
    /// Per-layer profile in first-execution order.
    pub layers: Vec<LayerProfile>,
    /// Cycle accounting.
    pub stalls: StallBreakdown,
    /// Buffer-occupancy series: `(phase id, words written that phase)`,
    /// the write-side proxy the RTL peak counter tracks.
    pub occupancy: Vec<(usize, u64)>,
    /// Roofline placement.
    pub roofline: Roofline,
    /// `(clean, cycle_slack)` when the RTL counter cross-check ran.
    pub counter_check: Option<(bool, u64)>,
    /// The RTL-read register set from a full-network run (`perf_rdata`
    /// readback of the generated `perf_counters` block), when one ran.
    pub rtl_counters: Option<CounterSet>,
    /// What drives the roofline's attained point: `"rtl"` when
    /// [`attach_full_run`] installed hardware-read counters (the default
    /// `dbreport` path), `"analytic"` for model-only runs.
    pub counter_source: &'static str,
}

/// Installs the RTL-read counter set from a full-network run and
/// re-derives the roofline's attained throughput from hardware registers
/// instead of the analytic model. Operational intensity (MACs per DRAM
/// byte) is a property of the compiled schedule, so the roofs and the
/// compute/memory bound classification are unchanged; only the attained
/// point moves to what the fabric actually measured. Note the fabric
/// counts one transaction per cycle with no DRAM beat model, so
/// RTL-read cycles sit on a different scale than the analytic
/// bandwidth-model cycles (DESIGN.md §13).
pub fn attach_full_run(report: &mut PerfReport, rtl: &CounterSet) {
    report.rtl_counters = Some(*rtl);
    report.counter_source = "rtl";
    report.roofline.attained_ops_per_cycle = if rtl.cycles == 0 {
        0.0
    } else {
        rtl.mac_ops as f64 / rtl.cycles as f64
    };
}

/// Builds the observability report for a generated design by running the
/// analytic timing model (the RTL counter cross-check is attached
/// separately via [`PerfReport::counter_check`]).
pub fn build_report(
    benchmark: &str,
    design: &AcceleratorDesign,
    params: &TimingParams,
) -> PerfReport {
    let timing: TimingReport = simulate_timing(&design.compiled, params);
    let cfg = &design.compiled.config;
    let folding = &design.compiled.folding;

    let mut layers: Vec<LayerProfile> = Vec::new();
    let mut occupancy = Vec::with_capacity(folding.phases.len());
    for (phase, pt) in folding.phases.iter().zip(&timing.phases) {
        occupancy.push((phase.id, phase.work.buffer_write_words));
        let stall = pt
            .dram_cycles
            .saturating_sub(pt.compute_cycles.max(pt.buffer_cycles));
        let entry = match layers.iter_mut().find(|l| l.layer == phase.layer) {
            Some(l) => l,
            None => {
                layers.push(LayerProfile {
                    layer: phase.layer.clone(),
                    phases: 0,
                    cycles: 0,
                    compute_cycles: 0,
                    dram_cycles: 0,
                    buffer_cycles: 0,
                    mac_ops: 0,
                    stall_cycles: 0,
                    utilization: 0.0,
                });
                layers.last_mut().expect("just pushed")
            }
        };
        entry.phases += 1;
        entry.cycles = entry.cycles.saturating_add(pt.latency_cycles);
        entry.compute_cycles = entry.compute_cycles.saturating_add(pt.compute_cycles);
        entry.dram_cycles = entry.dram_cycles.saturating_add(pt.dram_cycles);
        entry.buffer_cycles = entry.buffer_cycles.saturating_add(pt.buffer_cycles);
        entry.mac_ops = entry.mac_ops.saturating_add(phase.work.macs);
        entry.stall_cycles = entry.stall_cycles.saturating_add(stall);
    }
    let lane_cycles = |cycles: u64| (cfg.lanes as f64) * (cycles as f64);
    for l in &mut layers {
        l.utilization = if l.cycles == 0 {
            0.0
        } else {
            l.mac_ops as f64 / lane_cycles(l.cycles)
        };
    }

    let c = timing.counters;
    let stalls = StallBreakdown {
        total_cycles: c.cycles,
        active_cycles: c.active_cycles,
        memory_bound_cycles: c.stall_cycles,
        overhead_cycles: c
            .cycles
            .saturating_sub(c.active_cycles.saturating_add(c.stall_cycles)),
    };

    let dram_bytes: u64 = folding
        .phases
        .iter()
        .map(|p| p.work.dram_read_bytes + p.work.dram_write_bytes)
        .sum();
    let intensity = if dram_bytes == 0 {
        f64::INFINITY
    } else {
        c.mac_ops as f64 / dram_bytes as f64
    };
    let attained = if c.cycles == 0 {
        0.0
    } else {
        c.mac_ops as f64 / c.cycles as f64
    };
    let lane_peak = f64::from(cfg.lanes);
    let dsp_peak =
        f64::from(design.budget.envelope().dsp) / f64::from(dsps_per_multiplier(cfg.word_bits));
    let bandwidth_roof = intensity * params.dram_bytes_per_cycle;
    let roofline = Roofline {
        intensity_ops_per_byte: intensity,
        attained_ops_per_cycle: attained,
        lane_peak_ops_per_cycle: lane_peak,
        dsp_peak_ops_per_cycle: dsp_peak,
        bandwidth_ops_per_cycle: bandwidth_roof,
        bound: if bandwidth_roof < lane_peak.min(dsp_peak) {
            "memory"
        } else {
            "compute"
        },
    };

    PerfReport {
        benchmark: benchmark.to_string(),
        budget: design.budget.tag().to_string(),
        lanes: cfg.lanes,
        word_bits: cfg.word_bits,
        clock_hz: design.clock_hz(),
        counters: c,
        layers,
        stalls,
        occupancy,
        roofline,
        counter_check: None,
        rtl_counters: None,
        counter_source: "analytic",
    }
}

/// The `report.json` image of a [`PerfReport`].
pub fn report_json(r: &PerfReport) -> Json {
    Json::obj([
        ("benchmark", Json::str(r.benchmark.clone())),
        ("budget", Json::str(r.budget.clone())),
        ("lanes", Json::num(f64::from(r.lanes))),
        ("word_bits", Json::num(f64::from(r.word_bits))),
        ("clock_hz", Json::num(r.clock_hz as f64)),
        ("counters", counter_set_json(&r.counters)),
        (
            "layers",
            Json::Arr(
                r.layers
                    .iter()
                    .map(|l| {
                        Json::obj([
                            ("layer", Json::str(l.layer.clone())),
                            ("phases", Json::num(l.phases as f64)),
                            ("cycles", Json::num(l.cycles as f64)),
                            ("compute_cycles", Json::num(l.compute_cycles as f64)),
                            ("dram_cycles", Json::num(l.dram_cycles as f64)),
                            ("buffer_cycles", Json::num(l.buffer_cycles as f64)),
                            ("mac_ops", Json::num(l.mac_ops as f64)),
                            ("stall_cycles", Json::num(l.stall_cycles as f64)),
                            ("utilization", Json::num(l.utilization)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "stalls",
            Json::obj([
                ("total_cycles", Json::num(r.stalls.total_cycles as f64)),
                ("active_cycles", Json::num(r.stalls.active_cycles as f64)),
                (
                    "memory_bound_cycles",
                    Json::num(r.stalls.memory_bound_cycles as f64),
                ),
                (
                    "overhead_cycles",
                    Json::num(r.stalls.overhead_cycles as f64),
                ),
            ]),
        ),
        (
            "occupancy",
            Json::Arr(
                r.occupancy
                    .iter()
                    .map(|(phase, words)| {
                        Json::obj([
                            ("phase", Json::num(*phase as f64)),
                            ("words", Json::num(*words as f64)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "roofline",
            Json::obj([
                (
                    "intensity_ops_per_byte",
                    Json::num(r.roofline.intensity_ops_per_byte),
                ),
                (
                    "attained_ops_per_cycle",
                    Json::num(r.roofline.attained_ops_per_cycle),
                ),
                (
                    "lane_peak_ops_per_cycle",
                    Json::num(r.roofline.lane_peak_ops_per_cycle),
                ),
                (
                    "dsp_peak_ops_per_cycle",
                    Json::num(r.roofline.dsp_peak_ops_per_cycle),
                ),
                (
                    "bandwidth_ops_per_cycle",
                    Json::num(r.roofline.bandwidth_ops_per_cycle),
                ),
                ("bound", Json::str(r.roofline.bound)),
            ]),
        ),
        (
            "counter_check",
            match r.counter_check {
                Some((clean, slack)) => Json::obj([
                    ("clean", Json::Bool(clean)),
                    ("cycle_slack", Json::num(slack as f64)),
                ]),
                None => Json::Null,
            },
        ),
        ("counter_source", Json::str(r.counter_source)),
        (
            "rtl_counters",
            match &r.rtl_counters {
                Some(c) => {
                    let mut j = counter_set_json(c);
                    if let Json::Obj(fields) = &mut j {
                        fields.push(("utilization".to_string(), Json::num(rtl_utilization(c))));
                    }
                    j
                }
                None => Json::Null,
            },
        ),
    ])
}

/// Derived RTL duty cycle — `active_cycles / cycles` out of the
/// fabric's own counter registers (0 when the run recorded no cycles).
fn rtl_utilization(c: &CounterSet) -> f64 {
    if c.cycles == 0 {
        0.0
    } else {
        c.active_cycles as f64 / c.cycles as f64
    }
}

/// The small committed-baseline image (`BENCH_<name>.json`): headline
/// cycles, overall utilisation and the stall split — the numbers whose
/// drift a CI diff should surface.
pub fn bench_summary_json(r: &PerfReport) -> Json {
    let util = if r.stalls.total_cycles == 0 {
        0.0
    } else {
        r.counters.mac_ops as f64 / (f64::from(r.lanes) * r.stalls.total_cycles as f64)
    };
    Json::obj([
        ("benchmark", Json::str(r.benchmark.clone())),
        ("budget", Json::str(r.budget.clone())),
        ("cycles", Json::num(r.stalls.total_cycles as f64)),
        ("mac_ops", Json::num(r.counters.mac_ops as f64)),
        ("utilization", Json::num(util)),
        (
            "stalls",
            Json::obj([
                ("active_cycles", Json::num(r.stalls.active_cycles as f64)),
                (
                    "memory_bound_cycles",
                    Json::num(r.stalls.memory_bound_cycles as f64),
                ),
                (
                    "overhead_cycles",
                    Json::num(r.stalls.overhead_cycles as f64),
                ),
            ]),
        ),
        (
            "rtl",
            match &r.rtl_counters {
                Some(c) => Json::obj([
                    ("cycles", Json::num(c.cycles as f64)),
                    ("mac_ops", Json::num(c.mac_ops as f64)),
                    ("active_cycles", Json::num(c.active_cycles as f64)),
                    ("stall_cycles", Json::num(c.stall_cycles as f64)),
                    ("agu_bursts", Json::num(c.agu_bursts as f64)),
                    ("utilization", Json::num(rtl_utilization(c))),
                ]),
                None => Json::Null,
            },
        ),
    ])
}

/// Renders the human-readable table `dbreport` prints.
pub fn render_report_table(r: &PerfReport) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} @ {}: {} lanes x {} bits, {} MHz",
        r.benchmark,
        r.budget,
        r.lanes,
        r.word_bits,
        r.clock_hz / 1_000_000
    );
    let _ = writeln!(
        out,
        "  {:<14} {:>7} {:>10} {:>10} {:>10} {:>10} {:>6}",
        "layer", "phases", "cycles", "compute", "dram", "macs", "util"
    );
    for l in &r.layers {
        let _ = writeln!(
            out,
            "  {:<14} {:>7} {:>10} {:>10} {:>10} {:>10} {:>5.1}%",
            l.layer,
            l.phases,
            l.cycles,
            l.compute_cycles,
            l.dram_cycles,
            l.mac_ops,
            l.utilization * 100.0
        );
    }
    let s = &r.stalls;
    let pct = |v: u64| {
        if s.total_cycles == 0 {
            0.0
        } else {
            v as f64 * 100.0 / s.total_cycles as f64
        }
    };
    let _ = writeln!(
        out,
        "  cycles {}: active {} ({:.1}%) | memory-bound {} ({:.1}%) | overhead {} ({:.1}%)",
        s.total_cycles,
        s.active_cycles,
        pct(s.active_cycles),
        s.memory_bound_cycles,
        pct(s.memory_bound_cycles),
        s.overhead_cycles,
        pct(s.overhead_cycles),
    );
    let rf = &r.roofline;
    let _ = writeln!(
        out,
        "  roofline: {:.3} ops/cycle attained @ {:.3} ops/byte | roofs: lanes {:.0}, \
         dsp {:.1}, bandwidth {:.1} -> {}-bound",
        rf.attained_ops_per_cycle,
        rf.intensity_ops_per_byte,
        rf.lane_peak_ops_per_cycle,
        rf.dsp_peak_ops_per_cycle,
        rf.bandwidth_ops_per_cycle,
        rf.bound,
    );
    match r.counter_check {
        Some((true, slack)) => {
            let _ = writeln!(out, "  counter cross-check: clean (cycle slack {slack})");
        }
        Some((false, slack)) => {
            let _ = writeln!(out, "  counter cross-check: DIVERGED (cycle slack {slack})");
        }
        None => {}
    }
    if let Some(c) = &r.rtl_counters {
        let _ = writeln!(
            out,
            "  rtl-read counters: {} cycles, {} macs, {} active / {} stall (roofline source: {})",
            c.cycles, c.mac_ops, c.active_cycles, c.stall_cycles, r.counter_source,
        );
    }
    out
}

/// Renders the phase-timeline tables of a full-network run (`dbreport
/// --timeline`): one row per coordinator-FSM phase (duration, DRAM
/// transactions, stall cycles, share of the run), the log-scale
/// distribution summaries (p50/p95/max), and per-segment DRAM bandwidth
/// in words per kilocycle.
pub fn render_timeline_table(tl: &RunTimeline) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let total = tl.total_cycles();
    let _ = writeln!(
        out,
        "  timeline: {} phases over {} busy cycles",
        tl.phases.len(),
        total
    );
    let _ = writeln!(
        out,
        "  {:<6} {:<14} {:>10} {:>10} {:>8} {:>8} {:>6}",
        "phase", "layer", "start", "cycles", "xacts", "stall", "share"
    );
    for p in &tl.phases {
        let _ = writeln!(
            out,
            "  p{:<5} {:<14} {:>10} {:>10} {:>8} {:>8} {:>5.1}%",
            p.phase,
            p.layer,
            p.start_cycle,
            p.cycles,
            p.xacts,
            p.stall_cycles,
            p.cycles as f64 * 100.0 / total.max(1) as f64,
        );
    }
    for (name, h) in [
        ("phase cycles", &tl.phase_cycles),
        ("burst length", &tl.burst_lengths),
        ("stall cycles", &tl.stall_cycles),
    ] {
        // min/max are tracked exactly; p50/p95 are conservative log2
        // bucket upper edges (clamped to the exact max).
        let _ = writeln!(
            out,
            "  {:<13} min {:>8} p50 {:>8} p95 {:>8} max {:>8}  ({} samples)",
            name,
            h.min(),
            h.p50(),
            h.p95(),
            h.max(),
            h.count(),
        );
    }
    let _ = writeln!(
        out,
        "  {:<14} {:>10} {:>10} {:>10} {:>14}",
        "segment", "reads", "writes", "words", "words/kcycle"
    );
    for s in &tl.segments {
        let words = s.reads + s.writes;
        let _ = writeln!(
            out,
            "  {:<14} {:>10} {:>10} {:>10} {:>14.2}",
            s.segment,
            s.reads,
            s.writes,
            words,
            words as f64 * 1000.0 / total.max(1) as f64,
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepburning_baselines::zoo;
    use deepburning_core::{generate, Budget};

    fn report() -> PerfReport {
        let bench = zoo::ann0();
        let design = generate(&bench.network, &Budget::Small).expect("generates");
        build_report(bench.name, &design, &TimingParams::default())
    }

    #[test]
    fn report_accounts_all_cycles_and_layers() {
        let r = report();
        assert!(!r.layers.is_empty());
        let layer_cycles: u64 = r.layers.iter().map(|l| l.cycles).sum();
        assert_eq!(layer_cycles, r.stalls.total_cycles);
        assert_eq!(
            r.stalls.total_cycles,
            r.stalls.active_cycles + r.stalls.memory_bound_cycles + r.stalls.overhead_cycles
        );
        assert!(r.layers.iter().all(|l| l.utilization <= 1.0));
        assert_eq!(r.occupancy.len(), r.layers.iter().map(|l| l.phases).sum());
    }

    #[test]
    fn roofline_is_sane() {
        let r = report();
        let rf = &r.roofline;
        assert!(rf.attained_ops_per_cycle <= rf.lane_peak_ops_per_cycle);
        assert!(rf.lane_peak_ops_per_cycle <= rf.dsp_peak_ops_per_cycle + 1.0);
        assert!(rf.intensity_ops_per_byte > 0.0);
        assert!(matches!(rf.bound, "compute" | "memory"));
    }

    #[test]
    fn json_round_trips_through_the_renderer() {
        let mut r = report();
        r.counter_check = Some((true, 42));
        let json = report_json(&r);
        let parsed = deepburning_trace::json::Json::parse(&json.render()).expect("valid json");
        assert_eq!(
            parsed.get("benchmark").and_then(Json::as_str),
            Some(r.benchmark.as_str())
        );
        let roof = parsed.get("roofline").expect("roofline");
        assert!(roof.get("attained_ops_per_cycle").is_some());
        assert_eq!(
            parsed
                .get("counter_check")
                .and_then(|c| c.get("cycle_slack"))
                .and_then(Json::as_f64),
            Some(42.0)
        );
        let summary = bench_summary_json(&r);
        assert!(summary.get("stalls").is_some());
        let table = render_report_table(&r);
        assert!(table.contains("roofline"), "{table}");
        assert!(table.contains("counter cross-check: clean"), "{table}");
    }

    #[test]
    fn attach_full_run_switches_roofline_to_rtl_counters() {
        let mut r = report();
        assert_eq!(r.counter_source, "analytic");
        let rtl = CounterSet {
            cycles: 100,
            active_cycles: 60,
            stall_cycles: 10,
            mac_ops: 30,
            agu_bursts: 5,
            ..CounterSet::default()
        };
        attach_full_run(&mut r, &rtl);
        assert_eq!(r.counter_source, "rtl");
        assert_eq!(r.rtl_counters, Some(rtl));
        assert!((r.roofline.attained_ops_per_cycle - 0.3).abs() < 1e-12);
        let json = report_json(&r);
        let parsed = deepburning_trace::json::Json::parse(&json.render()).expect("valid json");
        assert_eq!(
            parsed.get("counter_source").and_then(Json::as_str),
            Some("rtl")
        );
        assert_eq!(
            parsed
                .get("rtl_counters")
                .and_then(|c| c.get("cycles"))
                .and_then(Json::as_f64),
            Some(100.0)
        );
        let summary = bench_summary_json(&r);
        assert_eq!(
            summary
                .get("rtl")
                .and_then(|c| c.get("mac_ops"))
                .and_then(Json::as_f64),
            Some(30.0)
        );
        let table = render_report_table(&r);
        assert!(table.contains("rtl-read counters"), "{table}");
    }
}
