//! Performance-counter observability report: runs one zoo benchmark
//! through generation and the analytic timing model, cross-checks the
//! generated `perf_counters` RTL block against the analytic counter set
//! (the fourth verification view, DESIGN.md §10), and writes:
//!
//! * `report.json` — per-layer utilisation, compute-vs-memory stall
//!   breakdown, buffer-occupancy series and roofline placement;
//! * a human-readable table on stdout.
//!
//! ```text
//! dbreport <benchmark> [--budget small|medium|large] [--out DIR]
//!          [--beat-cap N] [--engine tree|compiled|parallel[:N]]
//!          [--threads N] [--bench-json] [--check] [--analytic]
//!          [--timeline]
//! ```
//!
//! `--threads N` sets the RTL engine's lane count, upgrading a compiled
//! selection to `parallel:N` (`--threads 1` pins the serial compiled
//! path). Reports stay bit-identical across lane counts; only wall time
//! and the ledger key change.
//!
//! `--vcd FILE` streams the full-network run's control-top waveform to
//! FILE (requires the full run, so it cannot combine with `--analytic`).
//! The bytes are engine- and lane-count-invariant; the thread-matrix CI
//! lane hashes this file per lane count and byte-compares the digests.
//!
//! By default the roofline's attained point is driven by *RTL-read*
//! counters: a full-network run (DESIGN.md §13) drives the coordinator
//! FSM across every layer and the `perf_rdata` registers are read back
//! out of the fabric, cross-checked against the fabric cycle prediction
//! within the documented slack. `--analytic` skips the full run and
//! falls back to the analytic timing model (the pre-§13 behaviour).
//!
//! `--timeline` renders the phase timeline the full run observed on the
//! control wires — per-phase durations, DRAM transactions, stall cycles,
//! log-scale p50/p95 distribution summaries and per-segment bandwidth —
//! and writes it as `timeline.json` (requires the full run, so it cannot
//! combine with `--analytic`).
//!
//! `--bench-json` additionally writes `BENCH_<name>.json` (headline
//! cycles, utilisation, stall split, RTL-read registers) — the
//! committed-baseline format the CI drift diff uses. `--check` re-parses
//! `report.json` and validates the schema plus a clean counter
//! cross-check, exiting nonzero otherwise — the CI smoke mode.
//!
//! `--history` appends the run's summary to the cross-run JSONL ledger
//! under `--history-dir` (default `bench/history/`, DESIGN.md §15) keyed
//! by `--rev` × benchmark × budget × engine × threads, then prints the trend table
//! with rolling-window drift flags — the slow creep the ±2% point gate
//! cannot see. Use `dbhist` to inspect or check a ledger offline.

use deepburning_baselines::{pseudo_weights, zoo, Benchmark};
use deepburning_bench::{
    append_entry, attach_full_run, bench_summary_json, build_report, load_history,
    render_history_table, render_report_table, render_timeline_table, report_json, HistoryEntry,
    DRIFT_THRESHOLD, DRIFT_WINDOW,
};
use deepburning_core::{generate, Budget};
use deepburning_sim::{
    full_network_run, verify_counters, FullRunOptions, SimEngine, TimingParams, DEFAULT_BEAT_CAP,
};
use deepburning_tensor::Tensor;
use deepburning_trace::json::Json;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::PathBuf;
use std::process::ExitCode;

fn benchmarks() -> Vec<Benchmark> {
    let mut list = zoo::all_benchmarks();
    for extra in [
        zoo::alexnet_micro(),
        zoo::nin_micro(),
        zoo::googlenet_slice(),
    ] {
        if !list.iter().any(|b| b.name == extra.name) {
            list.push(extra);
        }
    }
    list
}

/// Name matching ignores case and punctuation so `alexnet-micro` finds
/// `Alexnet(micro)` and `ann0` finds `ANN-0`.
fn canon(name: &str) -> String {
    name.chars()
        .filter(char::is_ascii_alphanumeric)
        .map(|c| c.to_ascii_lowercase())
        .collect()
}

struct Args {
    benchmark: String,
    budget: Budget,
    out: PathBuf,
    beat_cap: u64,
    engine: SimEngine,
    bench_json: bool,
    check: bool,
    analytic: bool,
    timeline: bool,
    history: bool,
    history_dir: PathBuf,
    rev: String,
    vcd: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        benchmark: String::new(),
        budget: Budget::Medium,
        out: PathBuf::from("target/dbreport"),
        beat_cap: DEFAULT_BEAT_CAP,
        engine: SimEngine::default(),
        bench_json: false,
        check: false,
        analytic: false,
        timeline: false,
        history: false,
        history_dir: PathBuf::from("bench/history"),
        rev: "local".to_string(),
        vcd: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--budget" => {
                let v = it.next().ok_or("--budget needs a value")?;
                args.budget = match v.as_str() {
                    "small" => Budget::Small,
                    "medium" => Budget::Medium,
                    "large" => Budget::Large,
                    other => return Err(format!("unknown budget `{other}`")),
                };
            }
            "--out" => args.out = PathBuf::from(it.next().ok_or("--out needs a value")?),
            "--beat-cap" => {
                args.beat_cap = it
                    .next()
                    .ok_or("--beat-cap needs a value")?
                    .parse()
                    .map_err(|e| format!("--beat-cap: {e}"))?;
            }
            "--engine" => {
                args.engine = it.next().ok_or("--engine needs a value")?.parse()?;
            }
            "--threads" => {
                let t = it
                    .next()
                    .ok_or("--threads needs a value")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?;
                args.engine = args.engine.with_threads(t);
            }
            "--bench-json" => args.bench_json = true,
            "--check" => args.check = true,
            "--analytic" => args.analytic = true,
            "--timeline" => args.timeline = true,
            "--history" => args.history = true,
            "--history-dir" => {
                args.history_dir = PathBuf::from(it.next().ok_or("--history-dir needs a value")?);
            }
            "--rev" => args.rev = it.next().ok_or("--rev needs a value")?,
            "--vcd" => args.vcd = Some(PathBuf::from(it.next().ok_or("--vcd needs a value")?)),
            other if args.benchmark.is_empty() && !other.starts_with('-') => {
                args.benchmark = other.to_string();
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if args.benchmark.is_empty() {
        return Err("usage: dbreport <benchmark> [--budget small|medium|large] \
                    [--out DIR] [--beat-cap N] \
                    [--engine tree|compiled|parallel[:N]] [--threads N] \
                    [--bench-json] [--check] [--analytic] [--timeline] \
                    [--history] [--history-dir DIR] [--rev REV] [--vcd FILE]"
            .into());
    }
    if args.timeline && args.analytic {
        return Err("--timeline needs the full-network run; drop --analytic".into());
    }
    if args.vcd.is_some() && args.analytic {
        return Err("--vcd needs the full-network run; drop --analytic".into());
    }
    Ok(args)
}

/// Validates the `report.json` schema: required top-level keys, the eight
/// register-map counters, roofline and stall fields, and a clean counter
/// cross-check.
fn check_report(doc: &Json) -> Result<(), String> {
    for key in ["benchmark", "budget", "lanes", "counters", "layers"] {
        if doc.get(key).is_none() {
            return Err(format!("report.json missing `{key}`"));
        }
    }
    let counters = doc.get("counters").ok_or("missing counters")?;
    for reg in deepburning_components::PERF_REG_NAMES {
        let key = if reg == "buffer_peak" {
            "buffer_peak_words".to_string()
        } else {
            reg.to_string()
        };
        if counters.get(&key).and_then(Json::as_f64).is_none() {
            return Err(format!("report.json counters missing `{key}`"));
        }
    }
    let stalls = doc.get("stalls").ok_or("report.json missing `stalls`")?;
    for key in [
        "total_cycles",
        "active_cycles",
        "memory_bound_cycles",
        "overhead_cycles",
    ] {
        if stalls.get(key).and_then(Json::as_f64).is_none() {
            return Err(format!("report.json stalls missing `{key}`"));
        }
    }
    let roof = doc
        .get("roofline")
        .ok_or("report.json missing `roofline`")?;
    for key in [
        "intensity_ops_per_byte",
        "attained_ops_per_cycle",
        "lane_peak_ops_per_cycle",
        "dsp_peak_ops_per_cycle",
        "bandwidth_ops_per_cycle",
    ] {
        if roof.get(key).and_then(Json::as_f64).is_none() {
            return Err(format!("report.json roofline missing `{key}`"));
        }
    }
    if !matches!(
        roof.get("bound").and_then(Json::as_str),
        Some("compute") | Some("memory")
    ) {
        return Err("report.json roofline `bound` must be compute|memory".into());
    }
    match doc.get("counter_source").and_then(Json::as_str) {
        Some("rtl") => {
            if doc
                .get("rtl_counters")
                .and_then(|c| c.get("cycles"))
                .and_then(Json::as_f64)
                .is_none()
            {
                return Err("counter_source is `rtl` but `rtl_counters` is missing".into());
            }
        }
        Some("analytic") => {}
        _ => return Err("report.json `counter_source` must be rtl|analytic".into()),
    }
    let check = doc
        .get("counter_check")
        .ok_or("report.json missing `counter_check`")?;
    match check.get("clean") {
        Some(Json::Bool(true)) => Ok(()),
        Some(Json::Bool(false)) => Err("counter cross-check diverged".into()),
        _ => Err("report.json counter_check missing `clean`".into()),
    }
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    let bench = benchmarks()
        .into_iter()
        .find(|b| canon(b.name) == canon(&args.benchmark))
        .ok_or_else(|| {
            format!(
                "unknown benchmark `{}`; available: {}",
                args.benchmark,
                benchmarks()
                    .iter()
                    .map(|b| b.name)
                    .collect::<Vec<_>>()
                    .join(", ")
            )
        })?;

    let params = TimingParams::default();
    let design =
        generate(&bench.network, &args.budget).map_err(|e| format!("generation failed: {e}"))?;
    let mut report = build_report(bench.name, &design, &params);
    let replay_start = std::time::Instant::now();
    let check = verify_counters(
        &design.design,
        &design.compiled,
        &params,
        args.beat_cap,
        args.engine,
    )
    .map_err(|e| format!("counter cross-check failed: {e}"))?;
    let replay_elapsed = replay_start.elapsed();
    report.counter_check = Some((check.is_clean(), check.cycle_slack));
    println!(
        "counter replay: engine {} in {:.3}s",
        args.engine,
        replay_elapsed.as_secs_f64()
    );

    let mut timeline = None;
    if !args.analytic {
        // Fifth view (DESIGN.md §13): drive the coordinator FSM across
        // the whole network and read the perf registers out of the
        // fabric; the roofline's attained point then comes from
        // hardware-read counters, not the analytic model.
        let mut rng = StdRng::seed_from_u64(0xD8 ^ bench.name.len() as u64);
        let ws = pseudo_weights(&bench, &mut rng);
        let input = Tensor::from_fn(bench.network.input_shape(), |_, _, _| {
            rng.gen_range(-1.0..1.0f32)
        });
        let full_start = std::time::Instant::now();
        if let Some(parent) = args.vcd.as_ref().and_then(|p| p.parent()) {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent).map_err(|e| format!("mkdir {parent:?}: {e}"))?;
            }
        }
        let full = full_network_run(
            &design,
            &bench.network,
            &ws,
            &input,
            &FullRunOptions {
                engine: args.engine,
                vcd_stream: args.vcd.clone(),
                ..FullRunOptions::default()
            },
        )
        .map_err(|e| format!("full-network run failed: {e}"))?;
        if !full.is_clean() {
            for d in &full.divergences {
                eprintln!("dbreport: full-network divergence: {d}");
            }
            return Err(format!(
                "full-network run diverged ({} divergences; re-fed layers: {})",
                full.divergences.len(),
                full.refed_layers.join(", ")
            ));
        }
        println!(
            "full-network run: {} cycles ({} predicted, slack {}) in {:.3}s",
            full.cycles,
            full.predicted_cycles,
            full.cycle_slack,
            full_start.elapsed().as_secs_f64()
        );
        if let Some(p) = &full.vcd_path {
            println!("wrote {}", p.display());
        }
        if let Some(par) = &full.par {
            println!(
                "parallel settle: {} lanes, {} pool batches (widest {}), \
                 {:.0}% of evals settled in parallel",
                par.threads,
                par.parallel_batches,
                par.max_batch,
                par.parallel_share() * 100.0
            );
        }
        attach_full_run(&mut report, &full.rtl_counters);
        if args.timeline {
            timeline = Some(full.timeline);
        }
    }

    print!("{}", render_report_table(&report));
    let timeline_doc = timeline.map(|tl| {
        print!("{}", render_timeline_table(&tl));
        tl.to_json()
    });
    if !check.is_clean() {
        for d in &check.divergences {
            eprintln!("dbreport: counter divergence: {d}");
        }
    }

    let doc = report_json(&report);
    std::fs::create_dir_all(&args.out).map_err(|e| format!("mkdir {:?}: {e}", args.out))?;
    let report_path = args.out.join("report.json");
    std::fs::write(&report_path, doc.render())
        .map_err(|e| format!("write {report_path:?}: {e}"))?;
    println!("wrote {}", report_path.display());
    if let Some(tl) = timeline_doc {
        let tl_path = args.out.join("timeline.json");
        std::fs::write(&tl_path, tl.render()).map_err(|e| format!("write {tl_path:?}: {e}"))?;
        println!("wrote {}", tl_path.display());
    }
    if args.bench_json {
        let bench_path = args.out.join(format!("BENCH_{}.json", canon(bench.name)));
        std::fs::write(&bench_path, bench_summary_json(&report).render())
            .map_err(|e| format!("write {bench_path:?}: {e}"))?;
        println!("wrote {}", bench_path.display());
    }

    if args.history {
        // Cross-run ledger (DESIGN.md §15): append this run's flattened
        // summary and render the trend over everything recorded so far.
        // The rolling-window drift rule flags slow creep that each ±2%
        // point comparison passes; flags here are informational —
        // `dbhist check` is the CI tripwire.
        let now = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        let entry = HistoryEntry::from_summary(
            &bench_summary_json(&report),
            &args.rev,
            &args.engine.to_string(),
            args.engine.threads(),
            now,
        )?;
        let ledger = append_entry(&args.history_dir, &entry)?;
        println!(
            "history: appended rev {} to {}",
            entry.rev,
            ledger.display()
        );
        let entries = load_history(&args.history_dir, &entry.benchmark)?;
        print!(
            "{}",
            render_history_table(
                &entries,
                &entry.budget,
                &entry.engine,
                entry.threads,
                DRIFT_WINDOW,
                DRIFT_THRESHOLD,
            )
        );
    }

    if args.check {
        let text = std::fs::read_to_string(&report_path)
            .map_err(|e| format!("read back {report_path:?}: {e}"))?;
        let parsed = Json::parse(&text).map_err(|e| format!("report.json invalid: {e}"))?;
        check_report(&parsed)?;
        println!("check ok: schema valid, counter cross-check clean");
    } else if !check.is_clean() {
        return Err("counter cross-check diverged".into());
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("dbreport: {e}");
            ExitCode::FAILURE
        }
    }
}
