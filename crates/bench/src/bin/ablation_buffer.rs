//! Ablation: on-chip buffer capacity vs DRAM traffic — the locality
//! argument of §3.4 ("It is key to the effect of acceleration by
//! preserving the memory locality").

use deepburning_baselines::zoo;
use deepburning_bench::{fmt_seconds, print_row};
use deepburning_compiler::{compile, CompilerConfig};
use deepburning_sim::{simulate_timing, TimingParams};

fn main() {
    let bench = zoo::cifar();
    println!(
        "Ablation: feature-buffer capacity sweep on {}\n",
        bench.name
    );
    let widths = [12usize, 14, 14, 14];
    print_row(
        &[
            "buffer".into(),
            "DRAM read".into(),
            "latency".into(),
            "mem-bound".into(),
        ],
        &widths,
    );
    for kib in [1u64, 4, 16, 64, 256, 1024] {
        let cfg = CompilerConfig {
            feature_buffer_bytes: kib * 1024,
            ..CompilerConfig::default()
        };
        let compiled = compile(&bench.network, &cfg).expect("compiles");
        let work = compiled.folding.total_work();
        let timing = simulate_timing(&compiled, &TimingParams::default());
        print_row(
            &[
                format!("{kib} KiB"),
                format!("{} KiB", work.dram_read_bytes / 1024),
                fmt_seconds(timing.seconds(100_000_000)),
                format!("{}", timing.memory_bound_cycles()),
            ],
            &widths,
        );
    }
    println!("\n(bigger buffers keep activations resident and cut refetch traffic)");
}
