//! Regenerates paper Table 3: hardware resource occupation (DSP / LUT /
//! FF) of the Custom (CU) and DeepBurning (DB) implementations, plus the
//! Alexnet-L row (DB-L budget).
//!
//! Expected shape: "the implementation of DeepBurning consumes more
//! resources than Custom on average."

use deepburning_baselines::{all_benchmarks, custom_design};
use deepburning_bench::print_row;
use deepburning_core::{generate, Budget};

fn main() {
    println!("Table 3: hardware resource occupation\n");
    let widths = [12usize, 8, 8, 10, 10, 10, 10];
    print_row(
        &[
            String::new(),
            "DSP(CU)".into(),
            "DSP(DB)".into(),
            "LUT(CU)".into(),
            "LUT(DB)".into(),
            "FF(CU)".into(),
            "FF(DB)".into(),
        ],
        &widths,
    );
    let mut cu_total = (0u64, 0u64, 0u64);
    let mut db_total = (0u64, 0u64, 0u64);
    for bench in all_benchmarks() {
        let cu = match custom_design(&bench, &Budget::Medium) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("{}: custom generation failed: {e}", bench.name);
                continue;
            }
        };
        let db = match generate(&bench.network, &Budget::Medium) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("{}: generation failed: {e}", bench.name);
                continue;
            }
        };
        let (c, d) = (cu.resources.total, db.resources.total);
        cu_total = (
            cu_total.0 + u64::from(c.dsp),
            cu_total.1 + u64::from(c.lut),
            cu_total.2 + u64::from(c.ff),
        );
        db_total = (
            db_total.0 + u64::from(d.dsp),
            db_total.1 + u64::from(d.lut),
            db_total.2 + u64::from(d.ff),
        );
        print_row(
            &[
                bench.name.into(),
                c.dsp.to_string(),
                d.dsp.to_string(),
                c.lut.to_string(),
                d.lut.to_string(),
                c.ff.to_string(),
                d.ff.to_string(),
            ],
            &widths,
        );
        if bench.name == "Alexnet" {
            if let Ok(dl) = generate(&bench.network, &Budget::Large) {
                let r = dl.resources.total;
                print_row(
                    &[
                        "Alexnet-L".into(),
                        "-".into(),
                        r.dsp.to_string(),
                        "-".into(),
                        r.lut.to_string(),
                        "-".into(),
                        r.ff.to_string(),
                    ],
                    &widths,
                );
            }
        }
    }
    println!();
    println!(
        "totals: CU dsp={} lut={} ff={}  |  DB dsp={} lut={} ff={}",
        cu_total.0, cu_total.1, cu_total.2, db_total.0, db_total.1, db_total.2
    );
    println!("(paper: DB consumes more resources than Custom on average)");
}
