//! Cross-run performance ledger tool (DESIGN.md §15).
//!
//! `dbhist` maintains the append-only JSONL ledger under
//! `bench/history/` that `dbreport --history` and the CI bench-gate job
//! feed: one line per recorded run, keyed by git rev × benchmark ×
//! budget × engine × threads. Where `benchgate` compares one fresh run
//! against one committed baseline (±2%), `dbhist` watches the *series*
//! — a rolling-window mean comparison that flags slow drift the point
//! gate passes step by step.
//!
//! ```text
//! dbhist append --bench-json BENCH_mnist.json --rev abc1234
//!               [--engine compiled] [--threads N]
//!               [--dir bench/history] [--time N]
//! dbhist show   --benchmark MNIST [--budget DB] [--engine compiled]
//!               [--threads N] [--dir bench/history]
//!               [--window 5] [--threshold 0.03]
//! dbhist check  ...same flags as show; exits nonzero on flagged drift
//! ```
//!
//! `--threads` is part of the canonical series key: parallel-engine runs
//! land in their own per-lane-count series and never pollute the serial
//! drift windows (ledger lines predating the field read as 1 lane).
//!
//! `append` records the flattened numeric fields of a `BENCH_*.json`
//! summary. `show` prints the trend table (first/latest/delta/sparkline
//! per watched metric) plus any drift flags; `check` does the same but
//! fails the process when drift is flagged, for use as a soft CI tripwire.

use deepburning_bench::{
    append_entry, detect_drift, load_history, render_history_table, HistoryEntry, DRIFT_THRESHOLD,
    DRIFT_WINDOW,
};
use deepburning_trace::json::Json;
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    command: String,
    dir: PathBuf,
    bench_json: Option<PathBuf>,
    rev: String,
    time: Option<u64>,
    benchmark: String,
    budget: String,
    engine: String,
    threads: u64,
    window: usize,
    threshold: f64,
}

const USAGE: &str = "usage: dbhist <append|show|check> [--dir DIR] \
    [--bench-json FILE --rev REV [--time N]] \
    [--benchmark NAME] [--budget DB] [--engine compiled] [--threads N] \
    [--window 5] [--threshold 0.03]";

fn parse_args() -> Result<Args, String> {
    let mut it = std::env::args().skip(1);
    let command = it.next().ok_or(USAGE)?;
    if !["append", "show", "check"].contains(&command.as_str()) {
        return Err(format!("unknown command `{command}`; {USAGE}"));
    }
    let mut args = Args {
        command,
        dir: PathBuf::from("bench/history"),
        bench_json: None,
        rev: String::new(),
        time: None,
        benchmark: String::new(),
        budget: "DB".to_string(),
        engine: "compiled".to_string(),
        threads: 1,
        window: DRIFT_WINDOW,
        threshold: DRIFT_THRESHOLD,
    };
    while let Some(arg) = it.next() {
        let mut val = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match arg.as_str() {
            "--dir" => args.dir = PathBuf::from(val("--dir")?),
            "--bench-json" => args.bench_json = Some(PathBuf::from(val("--bench-json")?)),
            "--rev" => args.rev = val("--rev")?,
            "--time" => {
                args.time = Some(val("--time")?.parse().map_err(|e| format!("--time: {e}"))?);
            }
            "--benchmark" => args.benchmark = val("--benchmark")?,
            "--budget" => args.budget = val("--budget")?,
            "--engine" => args.engine = val("--engine")?,
            "--threads" => {
                args.threads = val("--threads")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?;
            }
            "--window" => {
                args.window = val("--window")?
                    .parse()
                    .map_err(|e| format!("--window: {e}"))?;
            }
            "--threshold" => {
                args.threshold = val("--threshold")?
                    .parse()
                    .map_err(|e| format!("--threshold: {e}"))?;
            }
            other => return Err(format!("unknown argument `{other}`; {USAGE}")),
        }
    }
    Ok(args)
}

fn unix_now() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

fn run_append(args: &Args) -> Result<(), String> {
    let path = args
        .bench_json
        .as_ref()
        .ok_or("append needs --bench-json FILE")?;
    if args.rev.is_empty() {
        return Err("append needs --rev REV".into());
    }
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path:?}: {e}"))?;
    let summary = Json::parse(&text).map_err(|e| format!("{path:?}: {e}"))?;
    let entry = HistoryEntry::from_summary(
        &summary,
        &args.rev,
        &args.engine,
        args.threads,
        args.time.unwrap_or_else(unix_now),
    )?;
    let ledger = append_entry(&args.dir, &entry)?;
    println!(
        "appended {} x {} x {} x {} threads @ {} -> {}",
        entry.benchmark,
        entry.budget,
        entry.engine,
        entry.threads,
        entry.rev,
        ledger.display()
    );
    Ok(())
}

/// Renders the series; returns the number of flagged drifts so `check`
/// can turn them into a failing exit code.
fn run_show(args: &Args) -> Result<usize, String> {
    if args.benchmark.is_empty() {
        return Err(format!("{} needs --benchmark NAME", args.command));
    }
    let entries = load_history(&args.dir, &args.benchmark)?;
    if entries.is_empty() {
        println!(
            "no ledger for {} under {} (run `dbhist append` or `dbreport --history` first)",
            args.benchmark,
            args.dir.display()
        );
        return Ok(0);
    }
    println!("== {} ==", args.benchmark);
    print!(
        "{}",
        render_history_table(
            &entries,
            &args.budget,
            &args.engine,
            args.threads,
            args.window,
            args.threshold
        )
    );
    Ok(detect_drift(
        &entries,
        &args.budget,
        &args.engine,
        args.threads,
        args.window,
        args.threshold,
    )
    .len())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("dbhist: {e}");
            return ExitCode::FAILURE;
        }
    };
    let outcome = match args.command.as_str() {
        "append" => run_append(&args).map(|()| 0),
        _ => run_show(&args),
    };
    match outcome {
        Ok(drifts) if args.command == "check" && drifts > 0 => {
            eprintln!(
                "dbhist: {drifts} metric(s) drifted beyond the rolling window threshold \
                 — investigate or reset the ledger alongside a [bench-reset]"
            );
            ExitCode::FAILURE
        }
        Ok(_) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("dbhist: {e}");
            ExitCode::FAILURE
        }
    }
}
