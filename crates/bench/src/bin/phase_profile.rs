//! Analysis: per-layer latency profile of a generated design — where the
//! folded schedule spends its cycles, across DB and DB-L budgets.

use deepburning_baselines::zoo;
use deepburning_bench::print_row;
use deepburning_core::{generate, Budget};
use deepburning_sim::{aggregate_by_layer, simulate_timing, TimingParams};

fn main() {
    let bench = zoo::alexnet();
    println!("Analysis: per-layer cycle profile of {}\n", bench.name);
    let widths = [10usize, 14, 10, 14, 10];
    print_row(
        &[
            "layer".into(),
            "DB cycles".into(),
            "DB %".into(),
            "DB-L cycles".into(),
            "DB-L %".into(),
        ],
        &widths,
    );
    let db = generate(&bench.network, &Budget::Medium).expect("generates");
    let dbl = generate(&bench.network, &Budget::Large).expect("generates");
    let t_db = simulate_timing(&db.compiled, &TimingParams::default());
    let t_dbl = simulate_timing(&dbl.compiled, &TimingParams::default());
    let prof_db = aggregate_by_layer(&db.compiled.folding, &t_db);
    let prof_dbl = aggregate_by_layer(&dbl.compiled.folding, &t_dbl);
    const SHOWN: usize = 12;
    let mut shown_db = 0u64;
    let mut shown_dbl = 0u64;
    for (layer, cycles) in prof_db.iter().take(SHOWN) {
        let dbl_cycles = prof_dbl
            .iter()
            .find(|(l, _)| l == layer)
            .map(|(_, c)| *c)
            .unwrap_or(0);
        shown_db += cycles;
        shown_dbl += dbl_cycles;
        print_row(
            &[
                layer.clone(),
                cycles.to_string(),
                format!("{:.1}%", *cycles as f64 / t_db.total_cycles as f64 * 100.0),
                dbl_cycles.to_string(),
                format!(
                    "{:.1}%",
                    dbl_cycles as f64 / t_dbl.total_cycles as f64 * 100.0
                ),
            ],
            &widths,
        );
    }
    // Everything past the displayed rows folds into one aggregate line so
    // the percentage columns account for the full schedule.
    if prof_db.len() > SHOWN {
        let other_db = t_db.total_cycles.saturating_sub(shown_db);
        let other_dbl = t_dbl.total_cycles.saturating_sub(shown_dbl);
        print_row(
            &[
                "(other)".into(),
                other_db.to_string(),
                format!("{:.1}%", other_db as f64 / t_db.total_cycles as f64 * 100.0),
                other_dbl.to_string(),
                format!(
                    "{:.1}%",
                    other_dbl as f64 / t_dbl.total_cycles as f64 * 100.0
                ),
            ],
            &widths,
        );
    }
    println!(
        "\ntotals: DB {} cycles, DB-L {} cycles ({:.2}x)",
        t_db.total_cycles,
        t_dbl.total_cycles,
        t_db.total_cycles as f64 / t_dbl.total_cycles as f64
    );
}
