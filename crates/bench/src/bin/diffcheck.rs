//! Differential verification sweep: every zoo benchmark, every budget
//! tier, one quantised input through the three execution views.
//!
//! For each (network, budget) pair the accelerator is generated end to
//! end (compile → RTL → lint), then [`deepburning_sim::diff_design`]
//! runs the same input through
//!
//! * the `f32` tensor reference,
//! * the bit-true fixed-point functional simulator, and
//! * the generated block RTL on the Verilog interpreter,
//!
//! comparing functional↔RTL bit-exactly and tensor↔functional under
//! derived quantisation bounds. Any divergence is a generator bug; the
//! process exits nonzero so CI fails, and a divergence bundle (layer
//! audit JSON + VCD waveforms of the blocks the diverging layer
//! exercised) is written under `--artifacts DIR` (default
//! `target/diffcheck-artifacts`) for CI to upload.
//!
//! `--formats Q4.12,Q12.4` switches to the fixed-point-format sweep: a
//! reduced subset of tiny zoo networks is regenerated at the Small tier
//! under each QFormat override (`derive_config_for_format`) and run
//! through the same differential check, covering the quantisation
//! corners the default Q8.8 sweep never exercises. `Q<i>.<f>` means `i`
//! integer bits (sign included) and `f` fraction bits.
//!
//! `--engine tree|compiled|parallel[:N]` selects the RTL evaluation
//! engine: the levelized event-driven `CompiledSim` (default), the
//! tree-walking `Interpreter` reference, or the partitioned parallel
//! settle. All produce bit-identical reports; the total sweep wall time
//! is printed per engine so CI can compare them.
//!
//! `--threads N` sets the parallel lane count and upgrades a compiled
//! engine selection to `parallel:N` (`--threads 1` pins the serial
//! compiled path; the tree engine is unaffected). Equivalent to
//! `--engine parallel:N`.
//!
//! `--full-rtl` adds the fifth view: one continuous coordinator-driven
//! RTL run across every layer of the generated top, activations flowing
//! through the real `input`/`spill` memory segments, checked bit-exactly
//! against the chained per-layer RTL view (DESIGN.md §13). On a
//! divergence the run bisects by re-feeding the offending layer from
//! functional values, and the control-top waveform joins the bundle.
//!
//! `--only NAME[,NAME...]` restricts the sweep to the named zoo
//! benchmarks (the CI full-network smoke step runs a fast subset this
//! way; the nightly sweep covers the whole grid).
//!
//! Run with `--release` — the RTL view interprets elaborated netlists.

use deepburning_baselines::{pseudo_weights, zoo, Benchmark};
use deepburning_bench::write_divergence_bundle;
use deepburning_core::{derive_config_for_format, generate, generate_with_config, Budget};
use deepburning_fixed::QFormat;
use deepburning_sim::{diff_design, DiffOptions, SimEngine};
use deepburning_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::PathBuf;
use std::process::ExitCode;

fn benchmarks() -> Vec<Benchmark> {
    // The full Alexnet/NiN networks take minutes per tier through the
    // interpreter; the micro variants exercise the identical layer kinds
    // (the zoo sanctions the substitution for bit-true work), and the
    // GoogleNet slice adds LRN / Inception / Classifier coverage.
    vec![
        zoo::ann0(),
        zoo::ann1(),
        zoo::ann2(),
        zoo::cmac(),
        zoo::hopfield(),
        zoo::mnist(),
        zoo::cifar(),
        zoo::alexnet_micro(),
        zoo::nin_micro(),
        zoo::googlenet_slice(),
    ]
}

/// The tiny networks of the `--formats` sweep: small enough that every
/// format runs in seconds, yet together they cover conv, pooling,
/// activation-LUT and FC quantisation paths.
fn format_sweep_benchmarks() -> Vec<Benchmark> {
    vec![
        zoo::ann0(),
        zoo::ann1(),
        zoo::ann2(),
        zoo::cmac(),
        zoo::mnist(),
    ]
}

/// Parses `Q<i>.<f>` with `i` integer bits (sign included) and `f`
/// fraction bits, e.g. `Q4.12` → 16-bit word with 12 fraction bits.
fn parse_format(spec: &str) -> Result<QFormat, String> {
    let body = spec
        .trim()
        .strip_prefix(['Q', 'q'])
        .ok_or_else(|| format!("format `{spec}` must start with `Q`"))?;
    let (int, frac) = body
        .split_once('.')
        .ok_or_else(|| format!("format `{spec}` must look like Q<int>.<frac>"))?;
    let int: u32 = int
        .parse()
        .map_err(|e| format!("format `{spec}` integer bits: {e}"))?;
    let frac: u32 = frac
        .parse()
        .map_err(|e| format!("format `{spec}` fraction bits: {e}"))?;
    QFormat::new(int + frac, frac).map_err(|e| format!("format `{spec}`: {e}"))
}

struct Sweep {
    verbose: bool,
    artifacts_dir: PathBuf,
    opts: DiffOptions,
    runs: usize,
    failures: usize,
}

impl Sweep {
    fn run_one(
        &mut self,
        bench: &Benchmark,
        design: &deepburning_core::AcceleratorDesign,
        label: &str,
    ) {
        // Same seed across tiers and formats: a configuration-dependent
        // divergence then points at configuration handling, not at the
        // input.
        let mut rng = StdRng::seed_from_u64(0xD1FF ^ bench.name.len() as u64);
        let ws = pseudo_weights(bench, &mut rng);
        let input = Tensor::from_fn(bench.network.input_shape(), |_, _, _| {
            rng.gen_range(-1.0..1.0f32)
        });
        let run_start = std::time::Instant::now();
        match diff_design(design, &bench.network, &ws, &input, &self.opts) {
            Ok(report) => {
                let elapsed = run_start.elapsed();
                self.runs += 1;
                if report.is_clean() {
                    let exact = report.rtl_checked();
                    println!(
                        "ok    {label:<24} {exact:>5} rtl-exact elements  {:>8.3}s",
                        elapsed.as_secs_f64()
                    );
                    if let Some(full) = &report.full_run {
                        println!(
                            "      full-rtl: {} cycles ({} predicted, slack {}), {} output words exact",
                            full.cycles,
                            full.predicted_cycles,
                            full.cycle_slack,
                            full.output_words
                        );
                    }
                    let blind = report.skip_audited();
                    if !blind.is_empty() {
                        println!(
                            "      {} layers skip-audited ({})",
                            blind.len(),
                            blind
                                .iter()
                                .map(|l| format!(
                                    "{}: {}",
                                    l.layer,
                                    l.skip_reason.unwrap_or("all elements near saturation")
                                ))
                                .collect::<Vec<_>>()
                                .join("; ")
                        );
                    }
                    if self.verbose {
                        print!("{report}");
                    }
                } else {
                    self.runs -= 1;
                    self.failures += 1;
                    println!("FAIL  {label:<24}");
                    print!("{report}");
                    match write_divergence_bundle(
                        &self.artifacts_dir,
                        label,
                        &bench.network,
                        &ws,
                        &input,
                        &design.compiled.luts,
                        design.compiled.config.format,
                        design.compiled.config.lanes,
                        &self.opts,
                        &report,
                    ) {
                        Ok(paths) => {
                            for p in paths {
                                println!("      wrote {}", p.display());
                            }
                        }
                        Err(e) => println!("      artifact bundle failed: {e}"),
                    }
                }
            }
            Err(e) => {
                self.failures += 1;
                println!("FAIL  {label:<24} {e}");
            }
        }
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().collect();
    let verbose = argv.iter().any(|a| a == "--verbose" || a == "-v");
    let full_rtl = argv.iter().any(|a| a == "--full-rtl");
    let only: Vec<String> = argv
        .iter()
        .position(|a| a == "--only")
        .and_then(|i| argv.get(i + 1))
        .map(|list| list.split(',').map(|s| s.trim().to_string()).collect())
        .unwrap_or_default();
    let selected = |name: &str| only.is_empty() || only.iter().any(|o| o == name);
    let artifacts_dir = argv
        .iter()
        .position(|a| a == "--artifacts")
        .and_then(|i| argv.get(i + 1))
        .map_or_else(
            || PathBuf::from("target/diffcheck-artifacts"),
            PathBuf::from,
        );
    let formats: Vec<QFormat> = match argv
        .iter()
        .position(|a| a == "--formats")
        .and_then(|i| argv.get(i + 1))
    {
        Some(list) => match list.split(',').map(parse_format).collect() {
            Ok(f) => f,
            Err(e) => {
                eprintln!("diffcheck: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => Vec::new(),
    };
    let mut engine: SimEngine = match argv
        .iter()
        .position(|a| a == "--engine")
        .and_then(|i| argv.get(i + 1))
    {
        Some(name) => match name.parse() {
            Ok(e) => e,
            Err(e) => {
                eprintln!("diffcheck: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => SimEngine::default(),
    };
    if let Some(spec) = argv
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| argv.get(i + 1))
    {
        match spec.parse() {
            Ok(t) => engine = engine.with_threads(t),
            Err(e) => {
                eprintln!("diffcheck: --threads {spec}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let mut sweep = Sweep {
        verbose,
        artifacts_dir,
        opts: DiffOptions {
            max_rtl_samples: 32,
            engine,
            full_rtl,
            ..DiffOptions::default()
        },
        runs: 0,
        failures: 0,
    };
    let sweep_start = std::time::Instant::now();
    if formats.is_empty() {
        let tiers = [Budget::Small, Budget::Medium, Budget::Large];
        println!("differential check: tensor / functional / rtl views\n");
        for bench in benchmarks() {
            if !selected(bench.name) {
                continue;
            }
            for budget in &tiers {
                let label = format!("{} @ {}", bench.name, budget.tag());
                match generate(&bench.network, budget) {
                    Ok(d) => sweep.run_one(&bench, &d, &label),
                    Err(e) => {
                        println!("FAIL  {label:<24} generation: {e}");
                        sweep.failures += 1;
                    }
                }
            }
        }
    } else {
        println!("differential check: QFormat override sweep\n");
        let budget = Budget::Small;
        for format in &formats {
            for bench in format_sweep_benchmarks() {
                if !selected(bench.name) {
                    continue;
                }
                let label = format!("{} @ {}/{}", bench.name, budget.tag(), format);
                let cfg = derive_config_for_format(&budget, *format);
                match generate_with_config(&bench.network, &budget, &cfg) {
                    Ok(d) => sweep.run_one(&bench, &d, &label),
                    Err(e) => {
                        println!("FAIL  {label:<24} generation: {e}");
                        sweep.failures += 1;
                    }
                }
            }
        }
    }
    println!(
        "\nsweep wall time: {:.2}s (engine {engine})",
        sweep_start.elapsed().as_secs_f64()
    );
    println!("{} clean runs, {} failures", sweep.runs, sweep.failures);
    if sweep.failures == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
