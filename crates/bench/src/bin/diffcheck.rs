//! Differential verification sweep: every zoo benchmark, every budget
//! tier, one quantised input through the three execution views.
//!
//! For each (network, budget) pair the accelerator is generated end to
//! end (compile → RTL → lint), then [`deepburning_sim::diff_design`]
//! runs the same input through
//!
//! * the `f32` tensor reference,
//! * the bit-true fixed-point functional simulator, and
//! * the generated block RTL on the Verilog interpreter,
//!
//! comparing functional↔RTL bit-exactly and tensor↔functional under
//! derived quantisation bounds. Any divergence is a generator bug; the
//! process exits nonzero so CI fails, and a divergence bundle (layer
//! audit JSON + VCD waveforms of the blocks the diverging layer
//! exercised) is written under `--artifacts DIR` (default
//! `target/diffcheck-artifacts`) for CI to upload.
//!
//! Run with `--release` — the RTL view interprets elaborated netlists.

use deepburning_baselines::{pseudo_weights, zoo, Benchmark};
use deepburning_bench::write_divergence_bundle;
use deepburning_core::{generate, Budget};
use deepburning_sim::{diff_design, DiffOptions};
use deepburning_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::PathBuf;
use std::process::ExitCode;

fn benchmarks() -> Vec<Benchmark> {
    // The full Alexnet/NiN networks take minutes per tier through the
    // interpreter; the micro variants exercise the identical layer kinds
    // (the zoo sanctions the substitution for bit-true work), and the
    // GoogleNet slice adds LRN / Inception / Classifier coverage.
    vec![
        zoo::ann0(),
        zoo::ann1(),
        zoo::ann2(),
        zoo::cmac(),
        zoo::hopfield(),
        zoo::mnist(),
        zoo::cifar(),
        zoo::alexnet_micro(),
        zoo::nin_micro(),
        zoo::googlenet_slice(),
    ]
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().collect();
    let verbose = argv.iter().any(|a| a == "--verbose" || a == "-v");
    let artifacts_dir = argv
        .iter()
        .position(|a| a == "--artifacts")
        .and_then(|i| argv.get(i + 1))
        .map_or_else(
            || PathBuf::from("target/diffcheck-artifacts"),
            PathBuf::from,
        );
    let opts = DiffOptions {
        max_rtl_samples: 32,
        ..DiffOptions::default()
    };
    let tiers = [Budget::Small, Budget::Medium, Budget::Large];
    let mut failures = 0usize;
    let mut runs = 0usize;
    println!("differential check: tensor / functional / rtl views\n");
    for bench in benchmarks() {
        for budget in &tiers {
            let label = format!("{} @ {}", bench.name, budget.tag());
            let design = match generate(&bench.network, budget) {
                Ok(d) => d,
                Err(e) => {
                    println!("FAIL  {label:<24} generation: {e}");
                    failures += 1;
                    continue;
                }
            };
            // Same seed across tiers: a tier-dependent divergence then
            // points at configuration handling, not at the input.
            let mut rng = StdRng::seed_from_u64(0xD1FF ^ bench.name.len() as u64);
            let ws = pseudo_weights(&bench, &mut rng);
            let input = Tensor::from_fn(bench.network.input_shape(), |_, _, _| {
                rng.gen_range(-1.0..1.0f32)
            });
            match diff_design(&design, &bench.network, &ws, &input, &opts) {
                Ok(report) => {
                    runs += 1;
                    if report.is_clean() {
                        let exact = report.rtl_checked();
                        println!("ok    {label:<24} {exact:>5} rtl-exact elements");
                        if verbose {
                            print!("{report}");
                        }
                    } else {
                        failures += 1;
                        println!("FAIL  {label:<24}");
                        print!("{report}");
                        match write_divergence_bundle(
                            &artifacts_dir,
                            &label,
                            &bench.network,
                            &ws,
                            &input,
                            &design.compiled.luts,
                            design.compiled.config.format,
                            design.compiled.config.lanes,
                            &opts,
                            &report,
                        ) {
                            Ok(paths) => {
                                for p in paths {
                                    println!("      wrote {}", p.display());
                                }
                            }
                            Err(e) => println!("      artifact bundle failed: {e}"),
                        }
                    }
                }
                Err(e) => {
                    failures += 1;
                    println!("FAIL  {label:<24} {e}");
                }
            }
        }
    }
    println!("\n{runs} clean runs, {failures} failures");
    if failures == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
