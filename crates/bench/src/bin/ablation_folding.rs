//! Ablation: lane-count sweep and double-buffering on/off — the design
//! choices behind DB vs DB-L vs DB-S and the data-driven overlap the AGUs
//! enable.

use deepburning_baselines::zoo;
use deepburning_bench::{fmt_seconds, print_row};
use deepburning_compiler::{compile, CompilerConfig};
use deepburning_sim::{simulate_timing, TimingParams};

fn main() {
    let bench = zoo::alexnet();
    println!("Ablation: spatial folding (lane sweep) on {}\n", bench.name);
    let widths = [8usize, 10, 14, 14, 12];
    print_row(
        &[
            "lanes".into(),
            "phases".into(),
            "latency".into(),
            "no-dblbuf".into(),
            "overlap".into(),
        ],
        &widths,
    );
    for lanes in [32u32, 64, 128, 221, 512, 761] {
        let cfg = CompilerConfig {
            lanes,
            ..CompilerConfig::default()
        };
        let compiled = compile(&bench.network, &cfg).expect("compiles");
        let on = simulate_timing(&compiled, &TimingParams::default());
        let off = simulate_timing(
            &compiled,
            &TimingParams {
                double_buffering: false,
                ..TimingParams::default()
            },
        );
        let clock = 100_000_000u64;
        print_row(
            &[
                lanes.to_string(),
                compiled.folding.phases.len().to_string(),
                fmt_seconds(on.seconds(clock)),
                fmt_seconds(off.seconds(clock)),
                format!("{:.2}x", off.total_cycles as f64 / on.total_cycles as f64),
            ],
            &widths,
        );
    }
    println!("\n(overlap = speedup from double buffering; lanes 221/761 = DB/DB-L budgets)");
}
