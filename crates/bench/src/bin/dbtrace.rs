//! End-to-end pipeline tracing: runs one zoo benchmark through
//! generation, timing simulation and the three-view differential check
//! with the instrumentation layer installed, then writes the full trace
//! artifact set:
//!
//! * `trace.json` — Chrome trace-event JSON (open in Perfetto or
//!   `chrome://tracing`): wall-clock compiler/generator spans, counter
//!   tracks, and the simulated schedule as a virtual timeline (one
//!   microsecond per cycle);
//! * `metrics.json` — aggregated span durations, counter totals and
//!   gauges, machine-readable;
//! * a human-readable summary on stdout.
//!
//! ```text
//! dbtrace <benchmark> [--budget small|medium|large] [--out DIR]
//!         [--rtl-samples N] [--engine tree|compiled|parallel[:N]]
//!         [--threads N] [--full-rtl] [--profile] [--check]
//! ```
//!
//! `--full-rtl` adds the fifth view to the traced pipeline: the
//! continuous coordinator-driven run streams its phase timeline into the
//! trace as `fullrtl.fsm` track events and `fullrtl.seg.*` bandwidth
//! counters, so the Perfetto timeline shows the simulated schedule as the
//! hardware executed it.
//!
//! `--threads N` upgrades a compiled engine selection to the
//! partitioned parallel settle with N lanes (`parallel:N`); when the
//! full-network view runs on it, the per-partition `par.*` occupancy
//! counters merge into `trace.json` next to the `prof.*` tracks.
//!
//! `--profile` (implies `--full-rtl`) turns on the engine hot-spot
//! profiler (DESIGN.md §15) for the full-network run and writes two more
//! artifacts: `folded.txt` (folded-stack text for `flamegraph.pl` /
//! speedscope) and `profile.json` (the `ProfileReport`: ranked
//! JIT-candidate levels, partition-cut suggestions, per-opcode and
//! per-module attribution). The profile's counter tracks (`prof.*`)
//! merge into `trace.json` so Perfetto shows tape heat alongside the
//! schedule.
//!
//! `--check` re-validates the emitted trace (valid JSON, non-empty,
//! balanced spans) and asserts the metrics carry compiler-stage spans and
//! interpreter counters (plus the `sim.full_rtl` span and `fullrtl.cycles`
//! counter under `--full-rtl`), exiting nonzero otherwise — the CI smoke
//! mode.

use deepburning_baselines::{pseudo_weights, zoo, Benchmark};
use deepburning_core::{generate, Budget};
use deepburning_sim::{
    diff_design, functional_forward_all, simulate_timing, DiffOptions, SimEngine, TimingParams,
};
use deepburning_tensor::Tensor;
use deepburning_trace as trace;
use deepburning_trace::json::Json;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::PathBuf;
use std::process::ExitCode;

fn benchmarks() -> Vec<Benchmark> {
    let mut list = zoo::all_benchmarks();
    for extra in [
        zoo::alexnet_micro(),
        zoo::nin_micro(),
        zoo::googlenet_slice(),
    ] {
        if !list.iter().any(|b| b.name == extra.name) {
            list.push(extra);
        }
    }
    list
}

/// Name matching ignores case and punctuation so `alexnet-micro` finds
/// `Alexnet(micro)` and `ann0` finds `ANN-0`.
fn canon(name: &str) -> String {
    name.chars()
        .filter(char::is_ascii_alphanumeric)
        .map(|c| c.to_ascii_lowercase())
        .collect()
}

struct Args {
    benchmark: String,
    budget: Budget,
    out: PathBuf,
    rtl_samples: usize,
    engine: SimEngine,
    full_rtl: bool,
    profile: bool,
    check: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        benchmark: String::new(),
        budget: Budget::Medium,
        out: PathBuf::from("target/dbtrace"),
        rtl_samples: 16,
        engine: SimEngine::default(),
        full_rtl: false,
        profile: false,
        check: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--budget" => {
                let v = it.next().ok_or("--budget needs a value")?;
                args.budget = match v.as_str() {
                    "small" => Budget::Small,
                    "medium" => Budget::Medium,
                    "large" => Budget::Large,
                    other => return Err(format!("unknown budget `{other}`")),
                };
            }
            "--out" => args.out = PathBuf::from(it.next().ok_or("--out needs a value")?),
            "--rtl-samples" => {
                args.rtl_samples = it
                    .next()
                    .ok_or("--rtl-samples needs a value")?
                    .parse()
                    .map_err(|e| format!("--rtl-samples: {e}"))?;
            }
            "--engine" => {
                args.engine = it.next().ok_or("--engine needs a value")?.parse()?;
            }
            "--threads" => {
                let t = it
                    .next()
                    .ok_or("--threads needs a value")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?;
                args.engine = args.engine.with_threads(t);
            }
            "--full-rtl" => args.full_rtl = true,
            "--profile" => {
                // Profiling attributes the full-network run's tape, so
                // it needs the fifth view in the pipeline.
                args.profile = true;
                args.full_rtl = true;
            }
            "--check" => args.check = true,
            other if args.benchmark.is_empty() && !other.starts_with('-') => {
                args.benchmark = other.to_string();
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if args.benchmark.is_empty() {
        return Err("usage: dbtrace <benchmark> [--budget small|medium|large] \
                    [--out DIR] [--rtl-samples N] \
                    [--engine tree|compiled|parallel[:N]] [--threads N] \
                    [--full-rtl] [--profile] [--check]"
            .into());
    }
    Ok(args)
}

/// Asserts the metrics document carries the stages the pipeline must have
/// traced: compiler spans plus functional/RTL interpreter counters, and
/// the full-network span/counters when the fifth view ran.
fn check_metrics(metrics: &Json, full_rtl: bool) -> Result<(), String> {
    let spans = metrics
        .get("spans")
        .and_then(Json::as_arr)
        .ok_or("metrics missing spans array")?;
    let mut required_spans = vec![
        "compiler.compile",
        "compiler.folding",
        "core.generate",
        "sim.timing",
    ];
    if full_rtl {
        required_spans.push("sim.full_rtl");
    }
    for required in required_spans {
        if !spans
            .iter()
            .any(|s| s.get("name").and_then(Json::as_str) == Some(required))
        {
            return Err(format!("span `{required}` missing from metrics"));
        }
    }
    let counters = metrics
        .get("counters")
        .and_then(Json::as_obj)
        .ok_or("metrics missing counters object")?;
    let mut required_counters = vec!["fx.layers", "rtl.evals", "sim.timing.total_cycles"];
    if full_rtl {
        required_counters.push("fullrtl.cycles");
    }
    for required in required_counters {
        let positive = counters
            .iter()
            .find(|(n, _)| n == required)
            .and_then(|(_, v)| v.as_f64())
            .is_some_and(|v| v > 0.0);
        if !positive {
            return Err(format!("counter `{required}` missing or zero"));
        }
    }
    Ok(())
}

/// Profiler acceptance (DESIGN.md §15): the folded stacks are non-empty,
/// the `ProfileReport` attributes real work, its ranked JIT-candidate
/// prefix covers at least 80% of attributed engine ops, and the `prof.*`
/// counter tracks made it into the Chrome trace.
fn check_profile(doc: &Json, chrome: &str) -> Result<(), String> {
    let num = |key: &str| {
        doc.get(key)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("profile.json missing `{key}`"))
    };
    if num("total_evals")? <= 0.0 || num("total_ops")? <= 0.0 {
        return Err("profile.json attributes no work".into());
    }
    let coverage = num("jit_coverage")?;
    if coverage < 0.8 {
        return Err(format!(
            "profile.json jit_coverage {coverage:.3} below the 0.8 acceptance floor"
        ));
    }
    if doc
        .get("jit_candidates")
        .and_then(Json::as_arr)
        .is_none_or(<[Json]>::is_empty)
    {
        return Err("profile.json has no JIT candidates".into());
    }
    if !chrome.contains("prof.") {
        return Err("trace.json missing the merged `prof.*` counter tracks".into());
    }
    Ok(())
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    let bench = benchmarks()
        .into_iter()
        .find(|b| canon(b.name) == canon(&args.benchmark))
        .ok_or_else(|| {
            format!(
                "unknown benchmark `{}`; available: {}",
                args.benchmark,
                benchmarks()
                    .iter()
                    .map(|b| b.name)
                    .collect::<Vec<_>>()
                    .join(", ")
            )
        })?;

    let tracer = trace::Tracer::new();
    let profile;
    {
        let _session = trace::install(&tracer);
        let design = generate(&bench.network, &args.budget)
            .map_err(|e| format!("generation failed: {e}"))?;
        let timing = simulate_timing(&design.compiled, &TimingParams::default());
        let mut rng = StdRng::seed_from_u64(0xD8);
        let ws = pseudo_weights(&bench, &mut rng);
        let input = Tensor::from_fn(bench.network.input_shape(), |_, _, _| {
            rng.gen_range(-1.0..1.0f32)
        });
        let cfg = &design.compiled.config;
        functional_forward_all(
            &bench.network,
            &ws,
            &input,
            &design.compiled.luts,
            cfg.format,
        )
        .map_err(|e| format!("functional run failed: {e}"))?;
        let opts = DiffOptions {
            max_rtl_samples: args.rtl_samples.max(1),
            engine: args.engine,
            full_rtl: args.full_rtl,
            profile: args.profile,
            ..DiffOptions::default()
        };
        let diff_start = std::time::Instant::now();
        let report = diff_design(&design, &bench.network, &ws, &input, &opts)
            .map_err(|e| format!("differential run failed: {e}"))?;
        let diff_elapsed = diff_start.elapsed();
        println!(
            "{} @ {}: {} phases, {} simulated cycles, {} rtl-exact elements \
             (engine {} in {:.3}s){}",
            bench.name,
            args.budget.tag(),
            design.compiled.folding.phases.len(),
            timing.total_cycles,
            report.rtl_checked(),
            args.engine,
            diff_elapsed.as_secs_f64(),
            if report.is_clean() {
                ""
            } else {
                " (DIVERGED — see report)"
            }
        );
        if let Some(full) = &report.full_run {
            println!(
                "full-rtl: {} cycles, {} timeline phases, phase p95 {} cycles",
                full.cycles,
                full.timeline.phases.len(),
                full.timeline.phase_cycles.p95(),
            );
        }
        if !report.is_clean() {
            print!("{report}");
        }
        let full_run = report.full_run;
        if let Some(p) = full_run.as_ref().and_then(|f| f.par.as_ref()) {
            // Inside the session so the par.* occupancy tracks land in
            // the same trace.json as the schedule timeline.
            p.emit_counters();
            println!(
                "parallel: {} lanes, {} pool batches ({} evals, {:.0}% of settled), \
                 {} edge crossings, imbalance {:.2}",
                p.threads,
                p.parallel_batches,
                p.parallel_evals,
                p.parallel_share() * 100.0,
                p.edge_crossings,
                p.imbalance(),
            );
        }
        profile = full_run.and_then(|f| f.profile);
        if let Some(p) = &profile {
            // Inside the session so the prof.* counter tracks land in
            // the same trace.json as the schedule timeline.
            p.emit_counters();
        }
    }

    let chrome = tracer.chrome_trace();
    let metrics = tracer.metrics();
    std::fs::create_dir_all(&args.out).map_err(|e| format!("mkdir {:?}: {e}", args.out))?;
    let trace_path = args.out.join("trace.json");
    let metrics_path = args.out.join("metrics.json");
    std::fs::write(&trace_path, &chrome).map_err(|e| format!("write {trace_path:?}: {e}"))?;
    std::fs::write(&metrics_path, metrics.render())
        .map_err(|e| format!("write {metrics_path:?}: {e}"))?;
    println!("\n{}", tracer.summary());
    println!("wrote {} ({} events)", trace_path.display(), tracer.len());
    println!("wrote {}", metrics_path.display());

    let mut profile_doc = None;
    if args.profile {
        let p = profile
            .as_ref()
            .ok_or("--profile requested but the run returned no profile")?;
        let folded_path = args.out.join("folded.txt");
        std::fs::write(&folded_path, p.folded_stacks())
            .map_err(|e| format!("write {folded_path:?}: {e}"))?;
        let doc = p.report_json();
        let profile_path = args.out.join("profile.json");
        std::fs::write(&profile_path, doc.render())
            .map_err(|e| format!("write {profile_path:?}: {e}"))?;
        print!("\n{}", p.render_table());
        println!("wrote {}", folded_path.display());
        println!("wrote {}", profile_path.display());
        profile_doc = Some(doc);
    }

    if args.check {
        let n = trace::validate_chrome_trace(&chrome)
            .map_err(|e| format!("chrome trace invalid: {e}"))?;
        check_metrics(&metrics, args.full_rtl)?;
        if args.full_rtl && !chrome.contains("fullrtl.fsm") {
            return Err("trace.json missing the `fullrtl.fsm` timeline track".into());
        }
        if let Some(doc) = &profile_doc {
            check_profile(doc, &chrome)?;
        }
        println!("check ok: {n} trace events, required spans and counters present");
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("dbtrace: {e}");
            ExitCode::FAILURE
        }
    }
}
