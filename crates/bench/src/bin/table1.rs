//! Regenerates paper Table 1: "A Decomposition of the typical neural
//! networks" — which layer categories each model family uses.
//!
//! The paper's column set is MLP / Hopfield / CMAC / Alexnet / Mnist /
//! GoogleNet; we decompose the same model families from the zoo.

use deepburning_bench::print_row;
use deepburning_model::{decompose, Decomposition};

fn main() {
    let mlp =
        deepburning_baselines::mlp4("mlp", 8, 16, 16, 4, deepburning_model::Activation::Sigmoid);
    let columns: Vec<(&str, Decomposition)> = vec![
        ("MLP", decompose(&mlp)),
        (
            "Hopfield",
            decompose(&deepburning_baselines::hopfield().network),
        ),
        ("CMAC", decompose(&deepburning_baselines::cmac().network)),
        (
            "Alexnet",
            decompose(&deepburning_baselines::alexnet().network),
        ),
        ("Mnist", decompose(&deepburning_baselines::mnist().network)),
        (
            "GoogleNet",
            decompose(&deepburning_baselines::googlenet_slice().network),
        ),
    ];

    println!("Table 1: decomposition of the typical neural networks");
    println!("(x = absent, v = present)\n");
    let widths: Vec<usize> = std::iter::once(12usize)
        .chain(columns.iter().map(|(n, _)| n.len().max(5)))
        .collect();
    let header: Vec<String> = std::iter::once(String::new())
        .chain(columns.iter().map(|(n, _)| n.to_string()))
        .collect();
    print_row(&header, &widths);
    for (row_idx, category) in Decomposition::CATEGORIES.iter().enumerate() {
        let cells: Vec<String> = std::iter::once(category.to_string())
            .chain(columns.iter().map(|(_, d)| {
                if d.as_flags()[row_idx] {
                    "v".to_string()
                } else {
                    "x".to_string()
                }
            }))
            .collect();
        print_row(&cells, &widths);
    }
    // The paper folds recurrence into the Associative/FC rows; we print it
    // explicitly as supplementary information.
    let cells: Vec<String> = std::iter::once("(Recurrent)".to_string())
        .chain(columns.iter().map(|(_, d)| {
            if d.recurrent {
                "v".to_string()
            } else {
                "x".to_string()
            }
        }))
        .collect();
    print_row(&cells, &widths);
}
