//! Ablation: Method-1 data tiling versus naive row-major layout
//! (paper §3.4 / Fig. 7 — "the continuous mapping leads to a poor
//! bandwidth utilization").
//!
//! Reports, per representative convolution configuration, the memory rows
//! touched per window and the resulting bandwidth utilisation.

use deepburning_bench::print_row;
use deepburning_compiler::{
    bandwidth_utilization, plan_tiling, rows_touched_linear, rows_touched_tiled,
};

fn main() {
    println!("Ablation: Method-1 tiling vs row-major layout\n");
    // (label, image width, kernel, stride, port width, maps)
    let cases = [
        (
            "Fig.7 (57px,k12,s4)",
            57usize,
            12usize,
            4usize,
            12usize,
            3usize,
        ),
        ("AlexNet conv1", 227, 11, 4, 16, 3),
        ("AlexNet conv2", 27, 5, 1, 16, 96),
        ("MNIST conv1", 28, 5, 1, 16, 1),
        ("Cifar conv1", 32, 5, 1, 16, 3),
        ("NiN cccp (1x1)", 55, 1, 1, 16, 96),
    ];
    let widths = [22usize, 14, 10, 10, 12, 10];
    print_row(
        &[
            "case".into(),
            "tiling case".into(),
            "linear".into(),
            "tiled".into(),
            "saving".into(),
            "util".into(),
        ],
        &widths,
    );
    for (label, w, k, s, d, maps) in cases {
        let plan = plan_tiling(k, s, d, maps);
        let linear = rows_touched_linear(k, w, d);
        let tiled = rows_touched_tiled(k, &plan);
        let util = bandwidth_utilization(k, &plan);
        print_row(
            &[
                label.into(),
                plan.case.to_string(),
                linear.to_string(),
                tiled.to_string(),
                format!("{:.2}x", linear as f64 / tiled as f64),
                format!("{:.0}%", util * 100.0),
            ],
            &widths,
        );
    }
    println!("\n(rows touched per kxk window fetch; higher saving = better layout)");
}
