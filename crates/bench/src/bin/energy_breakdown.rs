//! Ablation: where the joules go — per-component energy stack of one
//! inference across the budget tiers (the detail behind Fig. 9's bars).

use deepburning_baselines::zoo;
use deepburning_bench::{fmt_joules, print_row};
use deepburning_core::{generate, Budget};
use deepburning_sim::{inference_energy, simulate_timing, EnergyParams, TimingParams};

fn main() {
    println!("Ablation: energy breakdown per inference\n");
    let widths = [10usize, 8, 12, 12, 12, 12, 12];
    print_row(
        &[
            String::new(),
            "tier".into(),
            "compute".into(),
            "buffer".into(),
            "dram".into(),
            "static".into(),
            "total".into(),
        ],
        &widths,
    );
    for bench in [zoo::mnist(), zoo::cifar(), zoo::alexnet()] {
        for budget in [Budget::Small, Budget::Medium, Budget::Large] {
            let design = match generate(&bench.network, &budget) {
                Ok(d) => d,
                Err(e) => {
                    eprintln!("{} on {}: {e}", bench.name, budget.tag());
                    continue;
                }
            };
            let timing = simulate_timing(&design.compiled, &TimingParams::default());
            let e = inference_energy(&design, &timing, &EnergyParams::default());
            print_row(
                &[
                    bench.name.into(),
                    budget.tag().into(),
                    fmt_joules(e.compute_j),
                    fmt_joules(e.buffer_j),
                    fmt_joules(e.dram_j),
                    fmt_joules(e.static_j),
                    fmt_joules(e.total_j),
                ],
                &widths,
            );
        }
    }
    println!("\n(static energy dominates small nets; DRAM grows with model size)");
}
