//! Analysis: how fixed-point error accumulates layer by layer.
//!
//! Runs the f32 reference and the bit-true simulator side by side on a
//! trained MNIST network and reports the Eq. (1) accuracy of every
//! intermediate blob — showing where the Q7.8 datapath and the Approx LUT
//! inject error and where saturation/ReLU wash it out. Run with
//! `--release`.

use deepburning_baselines::train_mnist;
use deepburning_bench::print_row;
use deepburning_compiler::{generate_luts, CompilerConfig};
use deepburning_sim::functional_forward_all;
use deepburning_tensor::{forward_all, relative_accuracy};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    println!("Analysis: per-layer fixed-point error propagation (trained MNIST)\n");
    let mut rng = StdRng::seed_from_u64(7);
    let model = train_mnist(120, &mut rng);
    let net = &model.bench.network;
    let cfg = CompilerConfig::default();
    let luts = generate_luts(net, &cfg).expect("luts");

    let widths = [10usize, 14, 14];
    print_row(
        &["blob".into(), "Eq.(1) %".into(), "max |err|".into()],
        &widths,
    );

    // Average over a few test images.
    let samples: Vec<_> = model.classification_test.iter().take(8).collect();
    // Blob order = layer order.
    let blob_order: Vec<String> = net
        .layers()
        .iter()
        .flat_map(|l| l.tops.clone())
        .collect::<Vec<_>>()
        .into_iter()
        .fold(Vec::new(), |mut acc, b| {
            if !acc.contains(&b) {
                acc.push(b);
            }
            acc
        });
    let mut per_blob: Vec<(String, f64, f64)> = blob_order
        .iter()
        .map(|b| (b.clone(), 0.0, 0.0f64))
        .collect();
    for (x, _) in &samples {
        let golden = forward_all(net, &model.weights, x).expect("reference");
        let approx =
            functional_forward_all(net, &model.weights, x, &luts, cfg.format).expect("fx sim");
        for (blob, acc, max_err) in per_blob.iter_mut() {
            let (g, a) = (&golden[blob], &approx[blob]);
            *acc += relative_accuracy(a.as_slice(), g.as_slice());
            let worst = g
                .as_slice()
                .iter()
                .zip(a.as_slice())
                .map(|(x, y)| (x - y).abs() as f64)
                .fold(0.0f64, f64::max);
            *max_err = max_err.max(worst);
        }
    }
    for (blob, acc, max_err) in &per_blob {
        print_row(
            &[
                blob.clone(),
                format!("{:.3}", acc / samples.len() as f64),
                format!("{max_err:.4}"),
            ],
            &widths,
        );
    }
    println!("\n(error grows through the MAC-heavy layers and is bounded by the LUT resolution)");
}
