//! Static netlist analysis sweep: every zoo benchmark, every budget
//! tier, no simulation.
//!
//! For each (network, budget) pair the accelerator is generated end to
//! end and [`deepburning_lint::analyze`] runs the seven-pass pipeline —
//! structural RTL lint, combinational-loop diagnosis, FSM reachability,
//! fixed-point range analysis, AGU bounds proof, counter/schedule
//! consistency and the tape interference proof — over the elaborated
//! design, the compiled artifacts and the pseudo-trained weights. Each
//! run takes milliseconds, so this is the cheap front line CI runs
//! before any `diffcheck` simulation.
//!
//! * `--deny info|warn|error` (default `warn`): exit nonzero when any
//!   diagnostic reaches the threshold.
//! * `--json` emits one machine-readable document (the diagnostic schema
//!   of DESIGN.md §12) instead of text; CI uploads it on failure.
//! * `--net SUBSTR` / `--budget TAG` filter the sweep.

use deepburning_baselines::{pseudo_weights, zoo, Benchmark};
use deepburning_core::{generate, Budget};
use deepburning_lint::{analyze, Severity};
use deepburning_trace::json::Json;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::process::ExitCode;

fn benchmarks() -> Vec<Benchmark> {
    vec![
        zoo::ann0(),
        zoo::ann1(),
        zoo::ann2(),
        zoo::cmac(),
        zoo::hopfield(),
        zoo::mnist(),
        zoo::cifar(),
        zoo::alexnet_micro(),
        zoo::nin_micro(),
        zoo::googlenet_slice(),
    ]
}

fn flag_value<'a>(argv: &'a [String], flag: &str) -> Option<&'a str> {
    argv.iter()
        .position(|a| a == flag)
        .and_then(|i| argv.get(i + 1))
        .map(String::as_str)
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().collect();
    let json_out = argv.iter().any(|a| a == "--json");
    let deny = match flag_value(&argv, "--deny") {
        Some(s) => match Severity::parse(s) {
            Some(t) => t,
            None => {
                eprintln!("dblint: unknown --deny threshold `{s}` (info|warn|error)");
                return ExitCode::FAILURE;
            }
        },
        None => Severity::Warning,
    };
    let net_filter = flag_value(&argv, "--net").map(str::to_lowercase);
    let budget_filter = flag_value(&argv, "--budget").map(str::to_uppercase);
    let tiers = [Budget::Small, Budget::Medium, Budget::Large];
    let mut runs = Vec::new();
    let mut failures = 0usize;
    let mut generation_failures = 0usize;
    let start = std::time::Instant::now();
    if !json_out {
        println!("dblint: static netlist analysis (deny >= {deny})\n");
    }
    for bench in benchmarks() {
        if let Some(f) = &net_filter {
            if !bench.name.to_lowercase().contains(f) {
                continue;
            }
        }
        for budget in &tiers {
            if let Some(f) = &budget_filter {
                if budget.tag() != f {
                    continue;
                }
            }
            let label = format!("{} @ {}", bench.name, budget.tag());
            let design = match generate(&bench.network, budget) {
                Ok(d) => d,
                Err(e) => {
                    generation_failures += 1;
                    if !json_out {
                        println!("FAIL  {label:<24} generation: {e}");
                    }
                    continue;
                }
            };
            // Same seed scheme as diffcheck, so the weights the analyzer
            // proves are the weights the simulation sweep runs.
            let mut rng = StdRng::seed_from_u64(0xD1FF ^ bench.name.len() as u64);
            let ws = pseudo_weights(&bench, &mut rng);
            let run_start = std::time::Instant::now();
            let report = analyze(
                &bench.network,
                &design.compiled,
                &design.design,
                Some(&ws),
                Some(&design.verilog),
            );
            let denied = report.count_at(deny);
            if denied > 0 {
                failures += 1;
            }
            if !json_out {
                let chain = report.proofs.iter().filter(|p| p.chain_proven).count();
                let interfere = match &report.interference {
                    Some(p) if p.is_proven() => "tape independent".to_string(),
                    Some(p) => format!("{} interference violations", p.violations.len()),
                    None => "no tape proof".to_string(),
                };
                println!(
                    "{}  {label:<24} {:>3} diagnostics  {:>2}/{:<2} layers chain-proven  {interfere}  {:>7.1}ms",
                    if denied == 0 { "ok  " } else { "FAIL" },
                    report.diagnostics.len(),
                    chain,
                    report.proofs.len(),
                    run_start.elapsed().as_secs_f64() * 1e3
                );
                for d in report
                    .diagnostics
                    .iter()
                    .filter(|d| d.severity >= deny || denied == 0)
                {
                    println!("      {d}");
                }
            }
            runs.push((bench.name.to_string(), budget.tag().to_string(), report));
        }
    }
    if json_out {
        let doc = Json::obj([
            ("deny", Json::str(deny.name())),
            (
                "runs",
                Json::arr(runs.iter().map(|(net, budget, report)| {
                    Json::obj([
                        ("network", Json::str(net.clone())),
                        ("budget", Json::str(budget.clone())),
                        ("clean", Json::Bool(report.is_clean_at(deny))),
                        ("report", report.to_json()),
                    ])
                })),
            ),
            ("failures", Json::num(failures as f64)),
            ("generation_failures", Json::num(generation_failures as f64)),
        ]);
        println!("{}", doc.render());
    } else {
        println!(
            "\n{} runs analyzed in {:.2}s, {} denied at >= {deny}, {} generation failures",
            runs.len(),
            start.elapsed().as_secs_f64(),
            failures,
            generation_failures
        );
    }
    if failures == 0 && generation_failures == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
