//! Hard CI gate over the committed `BENCH_*.json` baselines.
//!
//! Compares each committed baseline against a freshly generated
//! `dbreport --bench-json` summary under the DESIGN.md §11 policy:
//! deterministic counters (`benchmark`, `budget`, `mac_ops`) must match
//! exactly, cycle-denominated fields (`cycles`, `stalls.*`,
//! `utilization`) may drift ±2%. Exits nonzero on any violation so the
//! `bench-gate` CI job fails the build.
//!
//! ```text
//! benchgate [--baseline-dir DIR] [--fresh-dir DIR]
//!           [--benchmarks ann0,cmac,mnist] [--tolerance 0.02]
//!           [--history-append DIR] [--rev REV] [--engine NAME]
//!           [--threads N]
//! ```
//!
//! To intentionally move a baseline, commit with `[bench-reset]` in the
//! message: CI then skips this gate and publishes the refreshed
//! `BENCH_*.json` files as an artifact to commit.
//!
//! `--history-append DIR` records each fresh summary into the cross-run
//! JSONL ledger (DESIGN.md §15) after a *clean* gate — regressed runs
//! never poison the trend series — keyed by `--rev` × benchmark × budget
//! × `--engine` × `--threads` (default 1, the serial engines), so a
//! parallel-engine run never pollutes a serial drift window. CI uploads
//! the ledger as an artifact and renders it with `dbhist show`.

use deepburning_bench::{append_entry, gate_bench_text, GatePolicy, HistoryEntry};
use deepburning_trace::json::Json;
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    baseline_dir: PathBuf,
    fresh_dir: PathBuf,
    benchmarks: Vec<String>,
    policy: GatePolicy,
    history_dir: Option<PathBuf>,
    rev: String,
    engine: String,
    threads: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        baseline_dir: PathBuf::from("."),
        fresh_dir: PathBuf::from("target/dbreport-baseline"),
        benchmarks: ["ann0", "cmac", "mnist"].map(String::from).to_vec(),
        policy: GatePolicy::default(),
        history_dir: None,
        rev: "local".to_string(),
        engine: "compiled".to_string(),
        threads: 1,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--baseline-dir" => {
                args.baseline_dir = PathBuf::from(it.next().ok_or("--baseline-dir needs a value")?)
            }
            "--fresh-dir" => {
                args.fresh_dir = PathBuf::from(it.next().ok_or("--fresh-dir needs a value")?)
            }
            "--benchmarks" => {
                args.benchmarks = it
                    .next()
                    .ok_or("--benchmarks needs a value")?
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect();
            }
            "--tolerance" => {
                args.policy.cycle_tolerance = it
                    .next()
                    .ok_or("--tolerance needs a value")?
                    .parse()
                    .map_err(|e| format!("--tolerance: {e}"))?;
            }
            "--history-append" => {
                args.history_dir = Some(PathBuf::from(
                    it.next().ok_or("--history-append needs a value")?,
                ));
            }
            "--rev" => args.rev = it.next().ok_or("--rev needs a value")?,
            "--engine" => args.engine = it.next().ok_or("--engine needs a value")?,
            "--threads" => {
                args.threads = it
                    .next()
                    .ok_or("--threads needs a value")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?;
            }
            other => {
                return Err(format!(
                    "unknown argument `{other}`; usage: benchgate [--baseline-dir DIR] \
                     [--fresh-dir DIR] [--benchmarks a,b,c] [--tolerance 0.02] \
                     [--history-append DIR] [--rev REV] [--engine NAME] [--threads N]"
                ))
            }
        }
    }
    if args.benchmarks.is_empty() {
        return Err("--benchmarks list is empty".into());
    }
    Ok(args)
}

/// Records every fresh summary into the cross-run ledger. Only called
/// after a clean gate, so a regressed run never enters the trend series.
fn append_history(args: &Args, dir: &std::path::Path) -> Result<(), String> {
    let now = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    for name in &args.benchmarks {
        let path = args.fresh_dir.join(format!("BENCH_{name}.json"));
        let text = std::fs::read_to_string(&path).map_err(|e| format!("{path:?}: {e}"))?;
        let summary = Json::parse(&text).map_err(|e| format!("{path:?}: {e}"))?;
        let entry =
            HistoryEntry::from_summary(&summary, &args.rev, &args.engine, args.threads, now)?;
        let ledger = append_entry(dir, &entry)?;
        println!(
            "history: appended {} x {} x {} x {} threads @ {} -> {}",
            entry.benchmark,
            entry.budget,
            entry.engine,
            entry.threads,
            entry.rev,
            ledger.display()
        );
    }
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("benchgate: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut failures = 0usize;
    for name in &args.benchmarks {
        let file = format!("BENCH_{name}.json");
        let baseline_path = args.baseline_dir.join(&file);
        let fresh_path = args.fresh_dir.join(&file);
        let read = |p: &PathBuf| std::fs::read_to_string(p).map_err(|e| format!("{p:?}: {e}"));
        let verdict = read(&baseline_path)
            .and_then(|b| read(&fresh_path).and_then(|f| gate_bench_text(&b, &f, &args.policy)));
        match verdict {
            Ok(v) if v.is_empty() => println!("ok    {file}"),
            Ok(v) => {
                failures += 1;
                println!("FAIL  {file}");
                for m in v {
                    println!("      {m}");
                }
            }
            Err(e) => {
                failures += 1;
                println!("FAIL  {file}: {e}");
            }
        }
    }
    if failures == 0 {
        println!("bench gate clean: {} baselines held", args.benchmarks.len());
        if let Some(dir) = &args.history_dir {
            if let Err(e) = append_history(&args, dir) {
                eprintln!("benchgate: history append failed: {e}");
                return ExitCode::FAILURE;
            }
        }
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "benchgate: {failures} baseline(s) regressed — if intentional, commit with \
             [bench-reset] and refresh the BENCH_*.json files"
        );
        ExitCode::FAILURE
    }
}
