//! Ablation: Approx LUT entry-count sweep ("The size (depending on
//! accuracy requirement) … of Approx LUT") and sampling strategy.
//!
//! Run with `--release`.

use deepburning_bench::print_row;
use deepburning_fixed::{ApproxLut, QFormat, Sampling};

fn main() {
    println!("Ablation: Approx LUT size and sampling vs max error\n");
    let sigmoid = |x: f64| 1.0 / (1.0 + (-x).exp());
    let tanh = |x: f64| x.tanh();
    let fmt = QFormat::Q16_16;
    let widths = [10usize, 16, 16, 16, 16];
    print_row(
        &[
            "entries".into(),
            "sigmoid(uni)".into(),
            "sigmoid(eq)".into(),
            "tanh(uni)".into(),
            "tanh(eq)".into(),
        ],
        &widths,
    );
    for entries in [8usize, 16, 32, 64, 128, 256] {
        let e = |f: &dyn Fn(f64) -> f64, s: Sampling| {
            ApproxLut::sample(f, -8.0, 8.0, entries, fmt, s)
                .expect("valid lut")
                .max_error(f, 4000)
        };
        print_row(
            &[
                entries.to_string(),
                format!("{:.2e}", e(&sigmoid, Sampling::Uniform)),
                format!("{:.2e}", e(&sigmoid, Sampling::ErrorEqualizing)),
                format!("{:.2e}", e(&tanh, Sampling::Uniform)),
                format!("{:.2e}", e(&tanh, Sampling::ErrorEqualizing)),
            ],
            &widths,
        );
    }
    println!("\n(max absolute error over the sampled range; eq = error-equalising keys)");
}
