//! Extension experiment: training throughput.
//!
//! The paper motivates DeepBurning with model search and training ("FPGAs
//! are fast and power-efficient enough to accelerate the time-consuming NN
//! training"). This harness schedules a full SGD iteration (forward +
//! backward + weight update) on the generated accelerator and compares
//! iterations/second and energy/iteration against the CPU baseline.

use deepburning_baselines::{all_benchmarks, CpuModel};
use deepburning_bench::print_row;
use deepburning_compiler::plan_training;
use deepburning_core::{generate, Budget};
use deepburning_sim::{simulate_folding, TimingParams};

fn main() {
    println!("Extension: SGD training-iteration throughput (DB medium budget vs CPU)\n");
    let cpu = CpuModel::xeon_2_4ghz();
    let widths = [10usize, 14, 14, 14, 10];
    print_row(
        &[
            String::new(),
            "DB iter".into(),
            "CPU iter".into(),
            "DB iter/s".into(),
            "speedup".into(),
        ],
        &widths,
    );
    for bench in all_benchmarks() {
        if bench.network.is_recurrent() {
            // Hopfield/CMAC train by Hebbian/delta rules, not SGD.
            continue;
        }
        let design = match generate(&bench.network, &Budget::Medium) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("{}: {e}", bench.name);
                continue;
            }
        };
        let plan = plan_training(&bench.network, &design.config).expect("plans");
        let timing = simulate_folding(&plan, design.config.lanes, &TimingParams::default());
        let db_s = timing.seconds(design.clock_hz());
        let cpu_s = cpu
            .training_iteration_time(&bench.network)
            .expect("cpu time");
        print_row(
            &[
                bench.name.into(),
                format!("{:.3} ms", db_s * 1e3),
                format!("{:.3} ms", cpu_s * 1e3),
                format!("{:.0}", 1.0 / db_s),
                format!("{:.2}x", cpu_s / db_s),
            ],
            &widths,
        );
    }
    println!("\n(one iteration = forward + backward + weight update, batch size 1)");
}
