//! Regenerates paper Fig. 10: output accuracy of the generated
//! accelerators (fixed-point datapath + Approx LUT) against the software
//! NN on CPU.
//!
//! * ANN-0/1/2 and CMAC use the paper's Eq. (1) relative distance against
//!   the golden *orthodox program* (fft / jpeg DCT / kmeans / arm
//!   kinematics).
//! * Hopfield reports pattern-recall rate on corrupted probes.
//! * MNIST and Cifar report classification accuracy on held-out synthetic
//!   sets.
//! * AlexNet/NiN (micro variants, pseudo-random weights) report Eq. (1)
//!   of the accelerator output against the f32 forward pass — the
//!   fixed-point degradation the figure isolates.
//!
//! Expected shape: "the DeepBurning accuracy shows only 1.5% variation
//! over that of CPU-based NNs on average." Run with `--release`.

use deepburning_baselines::{
    alexnet_micro, hopfield, hopfield_weights, nin_micro, pseudo_weights, train_ann, train_cifar,
    train_cmac, train_mnist, zoo, TrainedModel,
};
use deepburning_bench::print_row;
use deepburning_compiler::{generate_luts, CompilerConfig, LutImages};
use deepburning_model::Network;
use deepburning_sim::functional_forward;
use deepburning_tensor::{forward, forward_all, relative_accuracy, Tensor, WeightSet};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

struct Row {
    name: &'static str,
    cpu_acc: f64,
    db_acc: f64,
}

fn luts_for(net: &Network, cfg: &CompilerConfig) -> LutImages {
    generate_luts(net, cfg).expect("zoo networks sample cleanly")
}

/// Eq. (1) accuracy of a regression model, CPU vs accelerator.
fn regression_row(name: &'static str, m: &TrainedModel, cfg: &CompilerConfig) -> Row {
    let luts = luts_for(&m.bench.network, cfg);
    let mut cpu = 0.0;
    let mut db = 0.0;
    for (x, golden) in &m.regression_test {
        let y_cpu = forward(&m.bench.network, &m.weights, x).expect("forward");
        let y_db = functional_forward(&m.bench.network, &m.weights, x, &luts, cfg.format)
            .expect("functional sim");
        cpu += relative_accuracy(y_cpu.as_slice(), golden);
        db += relative_accuracy(y_db.as_slice(), golden);
    }
    let n = m.regression_test.len().max(1) as f64;
    Row {
        name,
        cpu_acc: cpu / n,
        db_acc: db / n,
    }
}

/// Classification accuracy, CPU vs accelerator.
fn classification_row(
    name: &'static str,
    m: &TrainedModel,
    cfg: &CompilerConfig,
    limit: usize,
) -> Row {
    let luts = luts_for(&m.bench.network, cfg);
    let mut cpu_hits = 0usize;
    let mut db_hits = 0usize;
    let set: Vec<_> = m.classification_test.iter().take(limit).collect();
    for (x, label) in &set {
        let y_cpu = forward(&m.bench.network, &m.weights, x).expect("forward");
        let y_db = functional_forward(&m.bench.network, &m.weights, x, &luts, cfg.format)
            .expect("functional sim");
        cpu_hits += usize::from(y_cpu.argmax() == *label);
        db_hits += usize::from(y_db.argmax() == *label);
    }
    let n = set.len().max(1) as f64;
    Row {
        name,
        cpu_acc: cpu_hits as f64 / n * 100.0,
        db_acc: db_hits as f64 / n * 100.0,
    }
}

/// Hopfield recall rate on corrupted probes.
fn hopfield_row(cfg: &CompilerConfig, rng: &mut StdRng) -> Row {
    let bench = hopfield();
    let pattern: Vec<f32> = (0..32)
        .map(|i| if i % 3 == 0 { 1.0 } else { -1.0 })
        .collect();
    let ws = hopfield_weights(std::slice::from_ref(&pattern));
    let luts = luts_for(&bench.network, cfg);
    let trials = 40;
    let mut cpu_ok = 0;
    let mut db_ok = 0;
    for _ in 0..trials {
        let mut probe = pattern.clone();
        for _ in 0..4 {
            let i = rng.gen_range(0..32usize);
            probe[i] = -probe[i];
        }
        let input = Tensor::vector(&probe);
        let recall = |settled: &Tensor| {
            settled
                .as_slice()
                .iter()
                .zip(&pattern)
                .filter(|(a, b)| a.signum() == b.signum())
                .count()
                >= 30
        };
        let blobs = forward_all(&bench.network, &ws, &input).expect("forward");
        cpu_ok += usize::from(recall(&blobs["settle"]));
        let db_blobs =
            deepburning_sim::functional_forward_all(&bench.network, &ws, &input, &luts, cfg.format)
                .expect("functional sim");
        db_ok += usize::from(recall(&db_blobs["settle"]));
    }
    Row {
        name: "Hopfield",
        cpu_acc: cpu_ok as f64 / trials as f64 * 100.0,
        db_acc: db_ok as f64 / trials as f64 * 100.0,
    }
}

/// Eq. (1) of accelerator vs f32 forward on pseudo-random deep nets.
fn eq1_vs_software_row(
    name: &'static str,
    bench: &deepburning_baselines::Benchmark,
    ws: &WeightSet,
    cfg: &CompilerConfig,
    rng: &mut StdRng,
) -> Row {
    let luts = luts_for(&bench.network, cfg);
    let shape = bench.network.input_shape();
    let mut db = 0.0;
    let trials = 5;
    for _ in 0..trials {
        let input = Tensor::from_fn(shape, |_, _, _| rng.gen_range(0.0..1.0f32));
        let golden = forward(&bench.network, ws, &input).expect("forward");
        let approx = functional_forward(&bench.network, ws, &input, &luts, cfg.format)
            .expect("functional sim");
        db += relative_accuracy(approx.as_slice(), golden.as_slice());
    }
    Row {
        name,
        cpu_acc: 100.0, // the software run *is* the reference here
        db_acc: db / trials as f64,
    }
}

fn main() {
    let cfg = CompilerConfig::default();
    let mut rng = StdRng::seed_from_u64(2016);
    println!("Fig 10: accuracy comparison (CPU software NN vs DeepBurning accelerator)");
    println!("(training on synthetic datasets; see DESIGN.md for the substitutions)\n");

    let mut rows = vec![
        regression_row("ANN-0", &train_ann(zoo::ann0(), 200, &mut rng), &cfg),
        regression_row("ANN-1", &train_ann(zoo::ann1(), 200, &mut rng), &cfg),
        regression_row("ANN-2", &train_ann(zoo::ann2(), 200, &mut rng), &cfg),
        regression_row("CMAC", &train_cmac(300, &mut rng), &cfg),
        hopfield_row(&cfg, &mut rng),
        classification_row("MNIST", &train_mnist(150, &mut rng), &cfg, 40),
        classification_row("Cifar", &train_cifar(100, &mut rng), &cfg, 25),
    ];
    let am = alexnet_micro();
    let am_ws = pseudo_weights(&am, &mut rng);
    rows.push(eq1_vs_software_row("Alexnet", &am, &am_ws, &cfg, &mut rng));
    let nm = nin_micro();
    let nm_ws = pseudo_weights(&nm, &mut rng);
    rows.push(eq1_vs_software_row("NiN", &nm, &nm_ws, &cfg, &mut rng));

    let widths = [10usize, 12, 12, 12];
    print_row(
        &[
            String::new(),
            "CPU %".into(),
            "DB %".into(),
            "|delta|".into(),
        ],
        &widths,
    );
    let mut deltas = Vec::new();
    for r in &rows {
        let delta = (r.cpu_acc - r.db_acc).abs();
        deltas.push(delta);
        print_row(
            &[
                r.name.into(),
                format!("{:.2}", r.cpu_acc),
                format!("{:.2}", r.db_acc),
                format!("{delta:.2}"),
            ],
            &widths,
        );
    }
    let mean = deltas.iter().sum::<f64>() / deltas.len() as f64;
    println!();
    println!("mean |CPU - DB| accuracy delta: {mean:.2}%   (paper: ~1.5% variation on average)");
}
