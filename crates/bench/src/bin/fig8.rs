//! Regenerates paper Fig. 8: forward-propagation time of every benchmark
//! on Custom / DB / DB-L / DB-S / CPU, plus the Zhang FPGA'15 reference
//! row on AlexNet.
//!
//! Expected shape (paper §4.2): "Custom mostly beats DB in performance.
//! When compared to CPU (Xeon 2.4 GHz), DB achieves up to 4.7x speed-up.
//! However, DB-L is 3.5x faster than DB on average."

use deepburning_bench::{evaluate_benchmark, fmt_seconds, print_row, zhang_row};

fn main() {
    println!("Fig 8: performance comparison (forward-propagation time)\n");
    let widths = [10usize, 12, 12, 12, 12, 12, 10, 10];
    print_row(
        &[
            String::new(),
            "Custom".into(),
            "DB".into(),
            "DB-L".into(),
            "DB-S".into(),
            "CPU".into(),
            "CPU/DB".into(),
            "DB/DB-L".into(),
        ],
        &widths,
    );
    let mut speedups = Vec::new();
    let mut dbl_ratios = Vec::new();
    for bench in deepburning_baselines::all_benchmarks() {
        let rows = match evaluate_benchmark(&bench) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("{}: generation failed: {e}", bench.name);
                continue;
            }
        };
        let get = |s: &str| {
            rows.iter()
                .find(|r| r.scheme == s)
                .expect("all schemes present")
                .seconds
        };
        let speedup = get("CPU") / get("DB");
        let dbl = get("DB") / get("DB-L");
        speedups.push(speedup);
        dbl_ratios.push(dbl);
        print_row(
            &[
                bench.name.into(),
                fmt_seconds(get("Custom")),
                fmt_seconds(get("DB")),
                fmt_seconds(get("DB-L")),
                fmt_seconds(get("DB-S")),
                fmt_seconds(get("CPU")),
                format!("{speedup:.2}x"),
                format!("{dbl:.2}x"),
            ],
            &widths,
        );
        if bench.name == "Alexnet" {
            let z = zhang_row();
            print_row(
                &[
                    "  [7]".into(),
                    fmt_seconds(z.seconds),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    String::new(),
                    String::new(),
                ],
                &widths,
            );
        }
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    let max_speedup = speedups.iter().copied().fold(0.0f64, f64::max);
    println!();
    println!("max CPU/DB speedup: {max_speedup:.2}x   (paper: up to 4.7x)");
    println!(
        "mean DB/DB-L ratio: {:.2}x   (paper: DB-L ~3.5x faster than DB on average)",
        mean(&dbl_ratios)
    );
}
