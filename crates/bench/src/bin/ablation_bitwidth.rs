//! Ablation: datapath word width vs accuracy and resources — the paper's
//! "accuracy loss due to the fixed-point operation" made quantitative.
//!
//! Sweeps the Q-format of the datapath across the trained approximation
//! ANNs and reports Eq. (1) accuracy against the golden kernels plus the
//! DSP/LUT cost of a lane at that width. Run with `--release`.

use deepburning_baselines::{train_ann, zoo};
use deepburning_bench::print_row;
use deepburning_compiler::{generate_luts, CompilerConfig};
use deepburning_components::{Block, SynergyNeuron};
use deepburning_fixed::QFormat;
use deepburning_sim::functional_forward;
use deepburning_tensor::relative_accuracy;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    println!("Ablation: datapath bit-width vs Eq.(1) accuracy and lane cost\n");
    let mut rng = StdRng::seed_from_u64(99);
    let models = [
        train_ann(zoo::ann0(), 200, &mut rng),
        train_ann(zoo::ann1(), 200, &mut rng),
        train_ann(zoo::ann2(), 200, &mut rng),
    ];
    let formats: [(u32, u32); 5] = [(8, 4), (12, 6), (16, 8), (24, 12), (32, 16)];
    let widths = [10usize, 12, 12, 12, 10, 10];
    print_row(
        &[
            "format".into(),
            "ANN-0 %".into(),
            "ANN-1 %".into(),
            "ANN-2 %".into(),
            "DSP/lane".into(),
            "LUT/lane".into(),
        ],
        &widths,
    );
    for (total, frac) in formats {
        let fmt = QFormat::new(total, frac).expect("valid format");
        let mut cells = vec![format!("Q{}.{}", total - frac - 1, frac)];
        for model in &models {
            let cfg = CompilerConfig {
                format: fmt,
                word_bits: total,
                lut_entries: 64,
                ..CompilerConfig::default()
            };
            let luts = generate_luts(&model.bench.network, &cfg).expect("luts");
            let mut acc = 0.0;
            for (x, golden) in &model.regression_test {
                let y = functional_forward(&model.bench.network, &model.weights, x, &luts, fmt)
                    .expect("functional sim");
                acc += relative_accuracy(y.as_slice(), golden);
            }
            cells.push(format!("{:.2}", acc / model.regression_test.len() as f64));
        }
        let lane = SynergyNeuron::new(total, 1);
        let cost = lane.cost();
        cells.push(cost.dsp.to_string());
        cells.push(cost.lut.to_string());
        print_row(&cells, &widths);
    }
    println!("\n(accuracy = Eq.(1) vs golden fft/jpeg/kmeans kernels; cost per datapath lane)");
}
