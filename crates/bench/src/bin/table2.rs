//! Regenerates paper Table 2: the benchmark suite with its Conv / FC /
//! Recurrent feature columns and target application.

use deepburning_bench::print_row;
use deepburning_model::decompose;

fn main() {
    println!("Table 2: benchmarks\n");
    let widths = [10usize, 6, 6, 6, 24];
    print_row(
        &[
            String::new(),
            "Conv".into(),
            "FC.".into(),
            "Rec.".into(),
            "Application".into(),
        ],
        &widths,
    );
    for bench in deepburning_baselines::all_benchmarks() {
        let d = decompose(&bench.network);
        let mark = |b: bool| if b { "v" } else { "x" }.to_string();
        print_row(
            &[
                bench.name.into(),
                mark(d.conv),
                mark(d.fc),
                mark(d.recurrent),
                bench.application.into(),
            ],
            &widths,
        );
    }
    println!("\n(ANN-0/1/2 implement the AxBench fft/jpeg/kmeans approximation kernels.)");
}
