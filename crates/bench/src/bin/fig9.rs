//! Regenerates paper Fig. 9: energy per forward propagation.
//!
//! Expected shape (paper §4.2): "DB consumes 1.8x more energy than Custom,
//! while DB-L and DB-S dissipate almost the same amount of energy to
//! Custom on average. CPU consumes about 58x more energy than DB on
//! average. … \[7\] (~0.5J) consumes more energy than both DB-L and DB-S."

use deepburning_bench::{evaluate_benchmark, fmt_joules, print_row, zhang_row};

fn main() {
    println!("Fig 9: energy comparison (per forward propagation)\n");
    let widths = [10usize, 12, 12, 12, 12, 12, 10, 10];
    print_row(
        &[
            String::new(),
            "Custom".into(),
            "DB".into(),
            "DB-L".into(),
            "DB-S".into(),
            "CPU".into(),
            "DB/CU".into(),
            "CPU/DB".into(),
        ],
        &widths,
    );
    let mut cpu_ratios = Vec::new();
    let mut custom_ratios = Vec::new();
    for bench in deepburning_baselines::all_benchmarks() {
        let rows = match evaluate_benchmark(&bench) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("{}: generation failed: {e}", bench.name);
                continue;
            }
        };
        let get = |s: &str| {
            rows.iter()
                .find(|r| r.scheme == s)
                .expect("all schemes present")
                .energy_j
        };
        let over_custom = get("DB") / get("Custom");
        let cpu_over_db = get("CPU") / get("DB");
        custom_ratios.push(over_custom);
        cpu_ratios.push(cpu_over_db);
        print_row(
            &[
                bench.name.into(),
                fmt_joules(get("Custom")),
                fmt_joules(get("DB")),
                fmt_joules(get("DB-L")),
                fmt_joules(get("DB-S")),
                fmt_joules(get("CPU")),
                format!("{over_custom:.2}x"),
                format!("{cpu_over_db:.1}x"),
            ],
            &widths,
        );
        if bench.name == "Alexnet" {
            let z = zhang_row();
            print_row(
                &[
                    "  [7]".into(),
                    fmt_joules(z.energy_j),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    String::new(),
                    String::new(),
                ],
                &widths,
            );
        }
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    println!();
    println!(
        "mean DB/Custom energy: {:.2}x   (paper: DB ~1.8x Custom)",
        mean(&custom_ratios)
    );
    println!(
        "mean CPU/DB energy: {:.1}x   (paper: ~58x)",
        mean(&cpu_ratios)
    );
}
