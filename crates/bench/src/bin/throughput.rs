//! Extension experiment: steady-state inference throughput.
//!
//! Fig. 8 measures cold-start latency (weights fetched from DRAM every
//! pass). In the paper's motivating loops — training and serving — the
//! model's weights stay resident on chip whenever they fit, and throughput
//! is the metric. This harness compares both modes.

use deepburning_baselines::all_benchmarks;
use deepburning_bench::{fmt_seconds, print_row};
use deepburning_core::{derive_config, generate_with_config, max_parallel_units, Budget};
use deepburning_sim::{simulate_timing, TimingParams};

fn main() {
    println!("Extension: cold-start latency vs steady-state throughput (DB budget)\n");
    let widths = [10usize, 14, 14, 14, 12];
    print_row(
        &[
            String::new(),
            "cold".into(),
            "steady".into(),
            "inf/s".into(),
            "resident".into(),
        ],
        &widths,
    );
    for bench in all_benchmarks() {
        let mut cfg = derive_config(&Budget::Medium, 16);
        cfg.lanes = cfg.lanes.min(max_parallel_units(&bench.network)).max(1);
        let cold = match generate_with_config(&bench.network, &Budget::Medium, &cfg) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("{}: {e}", bench.name);
                continue;
            }
        };
        let mut warm_cfg = cfg;
        warm_cfg.weights_resident = true;
        let warm = match generate_with_config(&bench.network, &Budget::Medium, &warm_cfg) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("{}: {e}", bench.name);
                continue;
            }
        };
        let t_cold =
            simulate_timing(&cold.compiled, &TimingParams::default()).seconds(cold.clock_hz());
        let t_warm =
            simulate_timing(&warm.compiled, &TimingParams::default()).seconds(warm.clock_hz());
        let resident = warm.compiled.folding.total_work().dram_read_bytes
            < cold.compiled.folding.total_work().dram_read_bytes;
        print_row(
            &[
                bench.name.into(),
                fmt_seconds(t_cold),
                fmt_seconds(t_warm),
                format!("{:.0}", 1.0 / t_warm),
                if resident { "yes" } else { "no (too big)" }.into(),
            ],
            &widths,
        );
    }
    println!("\n(resident = whole weight set fits the on-chip weight buffer)");
}
