//! Divergence artifact bundles.
//!
//! When a differential run flags a layer, the sweep binaries write a
//! bundle a hardware engineer can open directly: the full layer-audit
//! report as JSON plus VCD waveforms of every RTL block the diverging
//! layer exercised (loadable in GTKWave / Surfer). CI uploads the bundle
//! directory when the diffcheck job fails.

use deepburning_compiler::LutImages;
use deepburning_fixed::QFormat;
use deepburning_model::Network;
use deepburning_sim::{capture_layer_vcd, diff_report_json, DiffOptions, DiffReport};
use deepburning_tensor::{Tensor, WeightSet};
use std::path::{Path, PathBuf};

/// Makes a label safe as a file-name stem.
fn slug(s: &str) -> String {
    s.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Writes a divergence bundle for `report` under `dir` and returns the
/// paths written. Does nothing (and writes nothing) when the report is
/// clean.
///
/// The bundle holds `<label>-audit.json` (the machine-readable report,
/// see [`diff_report_json`]) and one `<label>-<layer>-<block>.vcd` per
/// RTL block the first diverging layer exercised. A failed waveform
/// replay degrades to a `<label>-capture-error.txt` note instead of
/// aborting the sweep. When the report carries a full-network run, the
/// flight recorder's frozen window — the last cycles of the control-top
/// (coordinator `phase_w`/`fire_w`/`busy_w`, AGU `valid` streams, DRAM
/// strobes) around the first divergence — lands as
/// `<label>-flight-window.vcd`, a fully captured control-top run lands
/// as `<label>-control-top.vcd`, and a streamed full-run VCD on disk is
/// referenced from `<label>-stream-vcd.txt`.
///
/// # Errors
///
/// Returns any filesystem error raised while creating `dir` or writing
/// the bundle files.
#[allow(clippy::too_many_arguments)]
pub fn write_divergence_bundle(
    dir: &Path,
    label: &str,
    net: &Network,
    weights: &WeightSet,
    input: &Tensor,
    luts: &LutImages,
    fmt: QFormat,
    lanes: u32,
    opts: &DiffOptions,
    report: &DiffReport,
) -> std::io::Result<Vec<PathBuf>> {
    let div = match report.first_divergence() {
        Some(d) => d,
        None => return Ok(Vec::new()),
    };
    std::fs::create_dir_all(dir)?;
    let label = slug(label);
    let mut written = Vec::new();
    let audit_path = dir.join(format!("{label}-audit.json"));
    std::fs::write(&audit_path, diff_report_json(report).render())?;
    written.push(audit_path);
    if let Some(full) = report.full_run.as_ref() {
        if let Some(vcd) = full.vcd.as_ref() {
            let path = dir.join(format!("{label}-control-top.vcd"));
            std::fs::write(&path, vcd)?;
            written.push(path);
        }
        if let Some(window) = full.flight_window.as_ref() {
            let path = dir.join(format!("{label}-flight-window.vcd"));
            std::fs::write(&path, &window.vcd)?;
            written.push(path);
        }
        if let Some(stream) = full.vcd_path.as_ref() {
            let path = dir.join(format!("{label}-stream-vcd.txt"));
            std::fs::write(&path, format!("{}\n", stream.display()))?;
            written.push(path);
        }
    }
    match capture_layer_vcd(net, weights, input, luts, fmt, lanes, opts, &div.layer) {
        Ok(vcds) => {
            for (tag, text) in vcds {
                let path = dir.join(format!("{label}-{}-{}.vcd", slug(&div.layer), slug(&tag)));
                std::fs::write(&path, text)?;
                written.push(path);
            }
        }
        Err(e) => {
            let path = dir.join(format!("{label}-capture-error.txt"));
            std::fs::write(&path, e.to_string())?;
            written.push(path);
        }
    }
    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepburning_compiler::{generate_luts, CompilerConfig};
    use deepburning_model::parse_network;
    use deepburning_sim::diff_network;
    use deepburning_tensor::Init;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn clean_report_writes_nothing() {
        let r = DiffReport {
            network: "t".into(),
            budget: String::new(),
            layers: vec![],
            divergences: vec![],
            rtl_modules: vec![],
            counters: None,
            range_proofs: vec![],
            lint: None,
            full_run: None,
        };
        let net = parse_network(
            r#"layers { name: "data" type: INPUT top: "data"
                       input_param { channels: 1 height: 1 width: 1 } }"#,
        )
        .expect("parses");
        let dir = std::env::temp_dir().join("db-bundle-clean-test");
        let written = write_divergence_bundle(
            &dir,
            "clean",
            &net,
            &WeightSet::new(),
            &Tensor::vector(&[0.0]),
            &LutImages::new(),
            QFormat::Q8_8,
            1,
            &DiffOptions::default(),
            &r,
        )
        .expect("writes");
        assert!(written.is_empty());
    }

    #[test]
    fn forced_divergence_writes_audit_and_vcd() {
        let net = parse_network(
            r#"
            layers { name: "data" type: INPUT top: "data"
                     input_param { channels: 4 height: 1 width: 1 } }
            layers { name: "fc" type: FC bottom: "data" top: "fc"
                     param { num_output: 3 } }
            "#,
        )
        .expect("parses");
        let mut rng = StdRng::seed_from_u64(23);
        let ws = WeightSet::init(&net, Init::Xavier, &mut rng).expect("init");
        let cfg = CompilerConfig::default();
        let luts = generate_luts(&net, &cfg).expect("luts");
        let input = Tensor::from_fn(net.input_shape(), |_, _, _| rng.gen_range(-1.0..1.0f32));
        let opts = DiffOptions {
            inject_rtl_fault: Some(1),
            ..DiffOptions::default()
        };
        let report = diff_network(&net, &ws, &input, &luts, cfg.format, cfg.lanes, &opts)
            .expect("diff runs");
        assert!(!report.is_clean());
        let dir = std::env::temp_dir().join(format!("db-bundle-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let written = write_divergence_bundle(
            &dir, "fc @ DB", &net, &ws, &input, &luts, cfg.format, cfg.lanes, &opts, &report,
        )
        .expect("writes");
        assert!(written.len() >= 2, "audit + at least one vcd: {written:?}");
        let audit = written
            .iter()
            .find(|p| p.extension().is_some_and(|e| e == "json"))
            .expect("audit json");
        let text = std::fs::read_to_string(audit).expect("readable");
        let doc = deepburning_trace::json::Json::parse(&text).expect("valid json");
        assert!(matches!(
            doc.get("clean"),
            Some(deepburning_trace::json::Json::Bool(false))
        ));
        let vcd = written
            .iter()
            .find(|p| p.extension().is_some_and(|e| e == "vcd"))
            .expect("vcd file");
        let wave = std::fs::read_to_string(vcd).expect("readable");
        assert!(wave.contains("$enddefinitions $end"), "{wave}");
        assert!(wave.contains("$dumpvars"), "{wave}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn full_rtl_bundle_carries_control_top_waveform() {
        let net = parse_network(
            r#"
            layers { name: "data" type: INPUT top: "data"
                     input_param { channels: 4 height: 1 width: 1 } }
            layers { name: "fc" type: FC bottom: "data" top: "fc"
                     param { num_output: 3 } }
            "#,
        )
        .expect("parses");
        let mut rng = StdRng::seed_from_u64(29);
        let ws = WeightSet::init(&net, Init::Xavier, &mut rng).expect("init");
        let input = Tensor::from_fn(net.input_shape(), |_, _, _| rng.gen_range(-1.0..1.0f32));
        let design =
            deepburning_core::generate(&net, &deepburning_core::Budget::Small).expect("generates");
        let opts = DiffOptions {
            full_rtl: true,
            inject_rtl_fault: Some(1),
            ..DiffOptions::default()
        };
        let report =
            deepburning_sim::diff_design(&design, &net, &ws, &input, &opts).expect("diff runs");
        assert!(!report.is_clean());
        assert!(report.full_run.is_some());
        let dir = std::env::temp_dir().join(format!("db-bundle-full-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = design.compiled.config;
        let written = write_divergence_bundle(
            &dir,
            "fc-full",
            &net,
            &ws,
            &input,
            &design.compiled.luts,
            cfg.format,
            cfg.lanes,
            &opts,
            &report,
        )
        .expect("writes");
        let window = written
            .iter()
            .find(|p| {
                p.file_name()
                    .is_some_and(|n| n.to_string_lossy().ends_with("-flight-window.vcd"))
            })
            .expect("flight-recorder window in bundle");
        let wave = std::fs::read_to_string(window).expect("readable");
        for signal in ["phase_w", "fire_w", "busy_w", "dram_addr"] {
            assert!(wave.contains(signal), "coordinator signal {signal} dumped");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
