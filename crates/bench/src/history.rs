//! Cross-run performance ledger (`dbhist`, DESIGN.md §15).
//!
//! An append-only JSONL ledger under `bench/history/` — one file per
//! benchmark (`<canon(bench)>.jsonl`), one line per recorded run, keyed
//! by git rev × benchmark × budget × engine × threads. `dbreport
//! --history` and the CI bench-gate job append to it; `dbhist` renders
//! trend tables and runs rolling-window regression detection over it.
//! Thread count is part of the canonical key so parallel-engine history
//! never pollutes a serial drift window (lines predating the field
//! parse as single-lane).
//!
//! The point gate (`benchgate`, ±2% against a single committed
//! baseline) cannot see slow drift: a metric that creeps +1% per PR
//! passes every individual comparison while compounding without bound.
//! The ledger closes that hole with a window rule: compare the mean of
//! the newest `window` entries against the mean of the oldest `window`
//! entries of the series (window shrinks to half the series when the
//! ledger is young) and flag when they differ by more than
//! [`DRIFT_THRESHOLD`]. Means, not endpoints, so a single noisy run
//! cannot raise or hide a flag.

use deepburning_trace::json::Json;
use std::fmt::Write as _;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Default window for the rolling drift rule: entries per side.
pub const DRIFT_WINDOW: usize = 5;

/// Default relative drift that trips a flag (3%): wider than the ±2%
/// point gate so the two never disagree about a single step, tight
/// enough that three compounding in-tolerance steps get caught.
pub const DRIFT_THRESHOLD: f64 = 0.03;

/// Metrics the trend table and drift detection watch, in display
/// order. Entries may carry more (the full flattened summary is
/// recorded); extras are preserved but not rendered.
pub const WATCHED_METRICS: [&str; 6] = [
    "cycles",
    "utilization",
    "stalls.active_cycles",
    "rtl.cycles",
    "rtl.active_cycles",
    "rtl.utilization",
];

/// One recorded run: the ledger key plus every numeric field of the
/// bench summary, flattened to dotted paths.
#[derive(Debug, Clone, PartialEq)]
pub struct HistoryEntry {
    /// Git revision (short hash) the run was built from.
    pub rev: String,
    /// Seconds since the Unix epoch when the entry was appended.
    pub unix_time: u64,
    /// Benchmark name as the summary reports it.
    pub benchmark: String,
    /// Budget tag (`DB`, `DB-L`, `DB-S`…).
    pub budget: String,
    /// Simulation engine that produced the run.
    pub engine: String,
    /// Resolved simulation lane count (1 for the serial engines; the
    /// parallel engine records its settled lane count). Part of the
    /// series key alongside budget and engine.
    pub threads: u64,
    /// Flattened numeric metrics (`cycles`, `stalls.active_cycles`, …).
    pub metrics: Vec<(String, f64)>,
}

/// Recursively flattens the numeric leaves of a summary object into
/// dotted paths. Strings (`benchmark`, `budget`) are skipped — they
/// live in the entry key.
fn flatten_numbers(node: &Json, prefix: &str, out: &mut Vec<(String, f64)>) {
    match node {
        Json::Obj(fields) => {
            for (k, v) in fields {
                let path = if prefix.is_empty() {
                    k.clone()
                } else {
                    format!("{prefix}.{k}")
                };
                flatten_numbers(v, &path, out);
            }
        }
        _ => {
            if let Some(n) = node.as_f64() {
                out.push((prefix.to_string(), n));
            }
        }
    }
}

impl HistoryEntry {
    /// Builds an entry from a `BENCH_*.json` bench summary.
    ///
    /// # Errors
    ///
    /// Returns an error when the summary lacks the `benchmark`/`budget`
    /// key fields.
    pub fn from_summary(
        summary: &Json,
        rev: &str,
        engine: &str,
        threads: u64,
        unix_time: u64,
    ) -> Result<HistoryEntry, String> {
        let field = |key: &str| {
            summary
                .get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("bench summary missing `{key}`"))
        };
        let mut metrics = Vec::new();
        flatten_numbers(summary, "", &mut metrics);
        Ok(HistoryEntry {
            rev: rev.to_string(),
            unix_time,
            benchmark: field("benchmark")?,
            budget: field("budget")?,
            engine: engine.to_string(),
            threads: threads.max(1),
            metrics,
        })
    }

    /// One ledger line (compact JSON, no trailing newline).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("rev", Json::str(self.rev.clone())),
            ("unix_time", Json::num(self.unix_time as f64)),
            ("benchmark", Json::str(self.benchmark.clone())),
            ("budget", Json::str(self.budget.clone())),
            ("engine", Json::str(self.engine.clone())),
            ("threads", Json::num(self.threads as f64)),
            (
                "metrics",
                Json::Obj(
                    self.metrics
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::num(*v)))
                        .collect(),
                ),
            ),
        ])
    }

    /// Parses one ledger line.
    ///
    /// # Errors
    ///
    /// Returns an error on malformed JSON or a missing key field — an
    /// append-only ledger should never contain either.
    pub fn parse(line: &str) -> Result<HistoryEntry, String> {
        let doc = Json::parse(line).map_err(|e| format!("ledger line: {e}"))?;
        let field = |key: &str| {
            doc.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("ledger line missing `{key}`"))
        };
        let metrics = doc
            .get("metrics")
            .and_then(Json::as_obj)
            .ok_or("ledger line missing `metrics`")?
            .iter()
            .filter_map(|(k, v)| v.as_f64().map(|n| (k.clone(), n)))
            .collect();
        Ok(HistoryEntry {
            rev: field("rev")?,
            unix_time: doc.get("unix_time").and_then(Json::as_f64).unwrap_or(0.0) as u64,
            benchmark: field("benchmark")?,
            budget: field("budget")?,
            engine: field("engine")?,
            // Lines predating the parallel engine carry no lane count;
            // they were all serial single-lane runs.
            threads: doc.get("threads").and_then(Json::as_f64).unwrap_or(1.0) as u64,
            metrics,
        })
    }

    /// Looks up one flattened metric.
    #[must_use]
    pub fn metric(&self, name: &str) -> Option<f64> {
        self.metrics
            .iter()
            .find(|(k, _)| k == name)
            .map(|&(_, v)| v)
    }
}

/// Canonical ledger file name for a benchmark (lower-cased
/// alphanumerics, matching `dbreport`'s `BENCH_*` naming).
pub fn canon(name: &str) -> String {
    name.chars()
        .filter(char::is_ascii_alphanumeric)
        .map(|c| c.to_ascii_lowercase())
        .collect()
}

/// Path of a benchmark's ledger inside `dir`.
pub fn history_path(dir: &Path, benchmark: &str) -> PathBuf {
    dir.join(format!("{}.jsonl", canon(benchmark)))
}

/// Appends one entry to the benchmark's ledger, creating the directory
/// and file on first use. Returns the ledger path.
///
/// # Errors
///
/// Returns an error when the directory or file cannot be written.
pub fn append_entry(dir: &Path, entry: &HistoryEntry) -> Result<PathBuf, String> {
    let path = history_path(dir, &entry.benchmark);
    std::fs::create_dir_all(dir).map_err(|e| format!("mkdir {dir:?}: {e}"))?;
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .map_err(|e| format!("open {path:?}: {e}"))?;
    writeln!(file, "{}", entry.to_json().render()).map_err(|e| format!("append {path:?}: {e}"))?;
    Ok(path)
}

/// Loads a benchmark's full ledger in append order. A missing file is
/// an empty ledger, not an error.
///
/// # Errors
///
/// Returns an error on unreadable files or malformed lines.
pub fn load_history(dir: &Path, benchmark: &str) -> Result<Vec<HistoryEntry>, String> {
    let path = history_path(dir, benchmark);
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(format!("read {path:?}: {e}")),
    };
    text.lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty())
        .map(|(i, l)| HistoryEntry::parse(l).map_err(|e| format!("{path:?} line {}: {e}", i + 1)))
        .collect()
}

/// One flagged drift: the windowed means of a metric moved more than
/// the threshold between the oldest and newest end of the series.
#[derive(Debug, Clone, PartialEq)]
pub struct Drift {
    /// Flattened metric name.
    pub metric: String,
    /// Mean over the oldest `window` entries.
    pub older_mean: f64,
    /// Mean over the newest `window` entries.
    pub newer_mean: f64,
    /// Signed relative change, `newer/older - 1`.
    pub ratio: f64,
    /// Entries per side actually used.
    pub window: usize,
}

fn mean(values: &[f64]) -> f64 {
    values.iter().sum::<f64>() / values.len() as f64
}

/// Entries of one (budget, engine, threads) series, in append order.
#[must_use]
pub fn series<'a>(
    entries: &'a [HistoryEntry],
    budget: &str,
    engine: &str,
    threads: u64,
) -> Vec<&'a HistoryEntry> {
    entries
        .iter()
        .filter(|e| e.budget == budget && e.engine == engine && e.threads == threads)
        .collect()
}

/// Rolling-window drift detection over one (budget, engine, threads)
/// series: for each watched metric, compares the mean of the newest
/// `window` entries against the mean of the oldest `window` (window
/// clamps to half the series; series shorter than 4 entries are too
/// young to judge) and flags relative changes beyond `threshold`. This
/// catches the compounding creep the ±2% single-baseline point gate
/// passes step by step.
#[must_use]
pub fn detect_drift(
    entries: &[HistoryEntry],
    budget: &str,
    engine: &str,
    threads: u64,
    window: usize,
    threshold: f64,
) -> Vec<Drift> {
    let run = series(entries, budget, engine, threads);
    if run.len() < 4 {
        return Vec::new();
    }
    let w = window.clamp(1, run.len() / 2);
    let mut out = Vec::new();
    for metric in WATCHED_METRICS {
        let values: Vec<f64> = run.iter().filter_map(|e| e.metric(metric)).collect();
        if values.len() < 2 * w {
            continue;
        }
        let older = mean(&values[..w]);
        let newer = mean(&values[values.len() - w..]);
        if older.abs() < f64::EPSILON {
            continue;
        }
        let ratio = newer / older - 1.0;
        if ratio.abs() > threshold {
            out.push(Drift {
                metric: metric.to_string(),
                older_mean: older,
                newer_mean: newer,
                ratio,
                window: w,
            });
        }
    }
    out
}

/// Eight-level Unicode sparkline over `values`, scaled min..max (flat
/// series render as all-low bars).
#[must_use]
pub fn sparkline(values: &[f64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let (lo, hi) = values
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| {
            (lo.min(v), hi.max(v))
        });
    values
        .iter()
        .map(|&v| {
            if hi <= lo {
                BARS[0]
            } else {
                let t = (v - lo) / (hi - lo);
                BARS[((t * 7.0).round() as usize).min(7)]
            }
        })
        .collect()
}

/// Renders the trend table for one (budget, engine, threads) series:
/// per watched metric the sample count, first and latest value, total
/// relative change and a sparkline — followed by any drift flags.
#[must_use]
pub fn render_history_table(
    entries: &[HistoryEntry],
    budget: &str,
    engine: &str,
    threads: u64,
    window: usize,
    threshold: f64,
) -> String {
    let run = series(entries, budget, engine, threads);
    let mut out = String::new();
    let Some(latest) = run.last() else {
        let _ = writeln!(
            out,
            "  history: no entries for budget {budget} x engine {engine} x {threads} threads"
        );
        return out;
    };
    let _ = writeln!(
        out,
        "  history: {} runs, {} .. {} (budget {budget} x engine {engine} x {threads} threads)",
        run.len(),
        run[0].rev,
        latest.rev,
    );
    let _ = writeln!(
        out,
        "  {:<22} {:>4} {:>14} {:>14} {:>8}  trend",
        "metric", "n", "first", "latest", "delta"
    );
    for metric in WATCHED_METRICS {
        let values: Vec<f64> = run.iter().filter_map(|e| e.metric(metric)).collect();
        let (Some(first), Some(last)) = (values.first(), values.last()) else {
            continue;
        };
        let delta = if first.abs() < f64::EPSILON {
            0.0
        } else {
            (last / first - 1.0) * 100.0
        };
        let _ = writeln!(
            out,
            "  {:<22} {:>4} {:>14.4} {:>14.4} {:>+7.2}%  {}",
            metric,
            values.len(),
            first,
            last,
            delta,
            sparkline(&values),
        );
    }
    let drifts = detect_drift(entries, budget, engine, threads, window, threshold);
    for d in &drifts {
        let _ = writeln!(
            out,
            "  DRIFT `{}`: windowed mean moved {:+.2}% ({:.4} -> {:.4}, window {}) — beyond \
             the {:.0}% rolling threshold the ±2% point gate cannot see",
            d.metric,
            d.ratio * 100.0,
            d.older_mean,
            d.newer_mean,
            d.window,
            threshold * 100.0,
        );
    }
    if drifts.is_empty() && run.len() >= 4 {
        let _ = writeln!(
            out,
            "  no drift beyond {:.0}% (rolling window)",
            threshold * 100.0
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary(cycles: f64) -> Json {
        Json::obj([
            ("benchmark", Json::str("MNIST")),
            ("budget", Json::str("DB")),
            ("cycles", Json::num(cycles)),
            ("mac_ops", Json::num(577000.0)),
            ("utilization", Json::num(0.31)),
            (
                "stalls",
                Json::obj([("active_cycles", Json::num(cycles / 2.0))]),
            ),
            (
                "rtl",
                Json::obj([
                    ("cycles", Json::num(cycles * 2.0)),
                    ("utilization", Json::num(0.02)),
                ]),
            ),
        ])
    }

    fn entry(rev: &str, cycles: f64) -> HistoryEntry {
        HistoryEntry::from_summary(&summary(cycles), rev, "compiled", 1, 1_000).expect("entry")
    }

    #[test]
    fn entry_round_trips_through_jsonl() {
        let e = entry("abc1234", 21321.0);
        let line = e.to_json().render();
        assert!(!line.contains('\n'));
        let back = HistoryEntry::parse(&line).expect("parses");
        assert_eq!(back, e);
        assert_eq!(back.metric("cycles"), Some(21321.0));
        assert_eq!(back.metric("stalls.active_cycles"), Some(21321.0 / 2.0));
        assert_eq!(back.metric("rtl.utilization"), Some(0.02));
    }

    #[test]
    fn lines_without_threads_parse_as_single_lane() {
        // A ledger line written before the parallel engine existed: no
        // `threads` field at all. It must land in the 1-lane series.
        let mut e = entry("abc1234", 21321.0);
        let line = e.to_json().render().replace(",\"threads\":1", "");
        assert!(!line.contains("threads"), "{line}");
        let back = HistoryEntry::parse(&line).expect("parses");
        e.threads = 1;
        assert_eq!(back, e);
    }

    #[test]
    fn append_and_load_preserve_order() {
        let dir = std::env::temp_dir().join(format!("dbhist-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        for (i, rev) in ["r1", "r2", "r3"].iter().enumerate() {
            append_entry(&dir, &entry(rev, 100.0 + i as f64)).expect("append");
        }
        let loaded = load_history(&dir, "MNIST").expect("load");
        assert_eq!(
            loaded.iter().map(|e| e.rev.as_str()).collect::<Vec<_>>(),
            ["r1", "r2", "r3"]
        );
        assert_eq!(load_history(&dir, "never-recorded").expect("empty"), []);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The acceptance scenario: five runs creeping +~1.2% each — every
    /// consecutive step inside the ±2% point tolerance — compound to
    /// +5%, and the rolling window flags it.
    #[test]
    fn rolling_window_flags_creep_the_point_gate_passes() {
        let steps = [21321.0f64, 21577.0, 21836.0, 22098.0, 22387.0];
        for w in steps.windows(2) {
            assert!(
                (w[1] - w[0]).abs() <= 0.02 * w[0],
                "each step must pass the ±2% point gate"
            );
        }
        assert!(steps[4] > steps[0] * 1.049, "total creep is ~5%");
        let entries: Vec<HistoryEntry> = steps
            .iter()
            .enumerate()
            .map(|(i, &c)| entry(&format!("r{i}"), c))
            .collect();
        let drifts = detect_drift(&entries, "DB", "compiled", 1, DRIFT_WINDOW, DRIFT_THRESHOLD);
        assert!(
            drifts
                .iter()
                .any(|d| d.metric == "cycles" && d.ratio > 0.03),
            "drifts: {drifts:?}"
        );
        let table =
            render_history_table(&entries, "DB", "compiled", 1, DRIFT_WINDOW, DRIFT_THRESHOLD);
        assert!(table.contains("DRIFT `cycles`"), "table:\n{table}");
        assert!(
            table.contains('▁') && table.contains('█'),
            "table:\n{table}"
        );
    }

    #[test]
    fn stable_series_stays_quiet_and_young_ledgers_are_not_judged() {
        let stable: Vec<HistoryEntry> = (0..8)
            .map(|i| entry(&format!("r{i}"), 21321.0 + f64::from(i % 2)))
            .collect();
        assert!(
            detect_drift(&stable, "DB", "compiled", 1, DRIFT_WINDOW, DRIFT_THRESHOLD).is_empty()
        );
        let young: Vec<HistoryEntry> = (0..3)
            .map(|i| entry(&format!("r{i}"), 21321.0 * (1.0 + 0.05 * f64::from(i))))
            .collect();
        assert!(
            detect_drift(&young, "DB", "compiled", 1, DRIFT_WINDOW, DRIFT_THRESHOLD).is_empty()
        );
    }

    #[test]
    fn series_are_keyed_by_budget_engine_and_threads() {
        let mut entries = vec![entry("r0", 100.0), entry("r1", 200.0), entry("r2", 300.0)];
        entries[1].engine = "tree".to_string();
        entries[2].engine = "parallel".to_string();
        entries[2].threads = 4;
        assert_eq!(series(&entries, "DB", "compiled", 1).len(), 1);
        assert_eq!(series(&entries, "DB", "tree", 1).len(), 1);
        assert_eq!(series(&entries, "DB", "parallel", 4).len(), 1);
        // The parallel run must not leak into any serial drift window,
        // nor into a different lane count of its own engine.
        assert!(series(&entries, "DB", "parallel", 1).is_empty());
        assert!(series(&entries, "DB", "parallel", 2).is_empty());
        assert!(series(&entries, "DB-L", "compiled", 1).is_empty());
    }

    #[test]
    fn sparkline_scales_min_to_max() {
        assert_eq!(sparkline(&[1.0, 1.0, 1.0]), "▁▁▁");
        let s = sparkline(&[0.0, 0.5, 1.0]);
        assert!(s.starts_with('▁') && s.ends_with('█'), "{s}");
    }
}
