//! Bench-baseline gating: compares fresh `dbreport --bench-json` output
//! against the committed `BENCH_*.json` baselines (DESIGN.md §11).
//!
//! Policy: deterministic counters must match exactly — `benchmark` and
//! `budget` (strings) and `mac_ops` (a pure function of the network) —
//! while cycle-denominated quantities may drift within a relative
//! tolerance (default ±2%): `cycles`, the `stalls.*` split and the
//! `utilization` fields, which are derived from cycles. Missing files
//! and malformed JSON are violations, never silent passes. Field
//! presence is asymmetric: a field the *baseline* lacks is skipped (a
//! newly added metric must not force a `[bench-reset]` of every
//! baseline), while a field the baseline has and the fresh summary
//! dropped is a violation (metrics must not silently disappear).
//! Fields outside the known lists are ignored on both sides.
//!
//! CI runs this as the hard `bench-gate` job via the `benchgate` binary;
//! a `[bench-reset]` commit message skips the gate and publishes
//! refreshed baselines for committing instead.

use deepburning_trace::json::Json;

/// Tolerances for the baseline comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GatePolicy {
    /// Relative tolerance for cycle-denominated fields (0.02 = ±2%).
    pub cycle_tolerance: f64,
}

impl Default for GatePolicy {
    fn default() -> Self {
        GatePolicy {
            cycle_tolerance: 0.02,
        }
    }
}

/// Fields that must match bit-for-bit: generation is deterministic, so
/// any drift here is a real counter regression. `rtl.mac_ops` is read
/// out of the fabric by the full-network run and is just as
/// deterministic as the analytic count.
const EXACT_STRINGS: [&str; 2] = ["benchmark", "budget"];
const EXACT_NUMBERS: [&str; 2] = ["mac_ops", "rtl.mac_ops"];

/// Fields allowed to drift within [`GatePolicy::cycle_tolerance`]: the
/// analytic cycle model may shift slightly as timing parameters are
/// tuned, and the `utilization` fields are derived from cycles. The
/// `rtl.*` cycle registers move whenever the fabric handshake or AGU
/// scheduling changes — intentional moves go through `[bench-reset]`.
const TOLERANCED_NUMBERS: [&str; 9] = [
    "cycles",
    "utilization",
    "stalls.active_cycles",
    "stalls.memory_bound_cycles",
    "stalls.overhead_cycles",
    "rtl.cycles",
    "rtl.active_cycles",
    "rtl.stall_cycles",
    "rtl.utilization",
];

fn lookup<'a>(doc: &'a Json, path: &str) -> Option<&'a Json> {
    let mut node = doc;
    for seg in path.split('.') {
        node = node.get(seg)?;
    }
    Some(node)
}

/// Resolves `path` on both sides under the optional-field rule:
/// `Some((baseline, fresh))` when both carry it, `None` when the
/// baseline predates the metric (skip), a violation pushed when the
/// fresh summary dropped a metric the baseline has.
fn lookup_pair<'a>(
    baseline: &'a Json,
    fresh: &'a Json,
    path: &str,
    violations: &mut Vec<String>,
) -> Option<(&'a Json, &'a Json)> {
    let b = lookup(baseline, path)?;
    match lookup(fresh, path) {
        Some(f) => Some((b, f)),
        None => {
            violations.push(format!(
                "fresh summary dropped `{path}` (present in baseline; metrics must not \
                 silently disappear)"
            ));
            None
        }
    }
}

fn as_num(node: &Json, path: &str, side: &str, violations: &mut Vec<String>) -> Option<f64> {
    let v = node.as_f64();
    if v.is_none() {
        violations.push(format!("{side} `{path}` is not a number"));
    }
    v
}

/// Compares a fresh bench summary against its committed baseline and
/// returns the list of policy violations (empty = gate passes).
#[must_use]
pub fn compare_bench_summaries(baseline: &Json, fresh: &Json, policy: &GatePolicy) -> Vec<String> {
    let mut violations = Vec::new();
    for path in EXACT_STRINGS {
        let Some((b, f)) = lookup_pair(baseline, fresh, path, &mut violations) else {
            continue;
        };
        if b.as_str() != f.as_str() {
            violations.push(format!(
                "`{path}` changed: baseline {b:?} vs fresh {f:?} (exact match required)"
            ));
        }
    }
    for path in EXACT_NUMBERS {
        let Some((bn, fn_)) = lookup_pair(baseline, fresh, path, &mut violations) else {
            continue;
        };
        let (Some(b), Some(f)) = (
            as_num(bn, path, "baseline", &mut violations),
            as_num(fn_, path, "fresh", &mut violations),
        ) else {
            continue;
        };
        if b != f {
            violations.push(format!(
                "`{path}` regressed: baseline {b} vs fresh {f} \
                 (deterministic counter, exact match required)"
            ));
        }
    }
    for path in TOLERANCED_NUMBERS {
        let Some((bn, fn_)) = lookup_pair(baseline, fresh, path, &mut violations) else {
            continue;
        };
        let (Some(b), Some(f)) = (
            as_num(bn, path, "baseline", &mut violations),
            as_num(fn_, path, "fresh", &mut violations),
        ) else {
            continue;
        };
        if (f - b).abs() > policy.cycle_tolerance * b.abs() {
            violations.push(format!(
                "`{path}` drifted beyond ±{:.1}%: baseline {b} vs fresh {f}",
                policy.cycle_tolerance * 100.0
            ));
        }
    }
    violations
}

/// Parses both JSON texts and runs [`compare_bench_summaries`].
///
/// # Errors
///
/// Returns an error if either side is not valid JSON.
pub fn gate_bench_text(
    baseline_text: &str,
    fresh_text: &str,
    policy: &GatePolicy,
) -> Result<Vec<String>, String> {
    let baseline = Json::parse(baseline_text).map_err(|e| format!("baseline JSON: {e}"))?;
    let fresh = Json::parse(fresh_text).map_err(|e| format!("fresh JSON: {e}"))?;
    Ok(compare_bench_summaries(&baseline, &fresh, policy))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary(cycles: f64, mac_ops: f64, active: f64) -> Json {
        Json::obj([
            ("benchmark", Json::str("MNIST")),
            ("budget", Json::str("DB")),
            ("cycles", Json::num(cycles)),
            ("mac_ops", Json::num(mac_ops)),
            ("utilization", Json::num(mac_ops / (64.0 * cycles))),
            (
                "stalls",
                Json::obj([
                    ("active_cycles", Json::num(active)),
                    ("memory_bound_cycles", Json::num(cycles - active - 100.0)),
                    ("overhead_cycles", Json::num(100.0)),
                ]),
            ),
            (
                "rtl",
                Json::obj([
                    ("cycles", Json::num(cycles * 2.0)),
                    ("mac_ops", Json::num(mac_ops)),
                    ("active_cycles", Json::num(active * 2.0)),
                    ("stall_cycles", Json::num(cycles - active)),
                    ("agu_bursts", Json::num(42.0)),
                ]),
            ),
        ])
    }

    #[test]
    fn identical_summaries_pass() {
        let b = summary(21321.0, 577000.0, 10757.0);
        assert!(compare_bench_summaries(&b, &b, &GatePolicy::default()).is_empty());
    }

    #[test]
    fn cycles_within_two_percent_pass() {
        let b = summary(21321.0, 577000.0, 10757.0);
        let f = summary(21321.0 * 1.019, 577000.0, 10757.0 * 1.019);
        assert!(compare_bench_summaries(&b, &f, &GatePolicy::default()).is_empty());
    }

    #[test]
    fn cycles_beyond_two_percent_fail() {
        let b = summary(21321.0, 577000.0, 10757.0);
        let f = summary(21321.0 * 1.03, 577000.0, 10757.0);
        let v = compare_bench_summaries(&b, &f, &GatePolicy::default());
        assert!(
            v.iter().any(|m| m.contains("`cycles` drifted")),
            "violations: {v:?}"
        );
    }

    #[test]
    fn mac_ops_regression_fails_even_off_by_one() {
        let b = summary(21321.0, 577000.0, 10757.0);
        let f = summary(21321.0, 576999.0, 10757.0);
        let v = compare_bench_summaries(&b, &f, &GatePolicy::default());
        assert!(
            v.iter().any(|m| m.contains("`mac_ops` regressed")),
            "violations: {v:?}"
        );
    }

    #[test]
    fn fresh_dropping_a_baseline_field_is_a_violation() {
        let b = summary(21321.0, 577000.0, 10757.0);
        let f = Json::obj([("benchmark", Json::str("MNIST"))]);
        let v = compare_bench_summaries(&b, &f, &GatePolicy::default());
        assert!(
            v.iter().any(|m| m.contains("dropped `cycles`")),
            "violations: {v:?}"
        );
    }

    #[test]
    fn baseline_missing_new_metric_is_skipped() {
        // A baseline written before `rtl.utilization` existed must not
        // fail against a fresh summary that carries it — adding metrics
        // never requires `[bench-reset]`.
        let mut b = summary(21321.0, 577000.0, 10757.0);
        let f = summary(21321.0, 577000.0, 10757.0);
        if let Json::Obj(fields) = &mut b {
            fields.retain(|(k, _)| k.as_str() != "utilization");
            for (k, v) in fields.iter_mut() {
                if k.as_str() == "rtl" {
                    if let Json::Obj(rtl) = v {
                        rtl.retain(|(k, _)| k.as_str() != "active_cycles");
                    }
                }
            }
        }
        let v = compare_bench_summaries(&b, &f, &GatePolicy::default());
        assert!(v.is_empty(), "violations: {v:?}");
    }

    #[test]
    fn unknown_fields_on_either_side_are_ignored() {
        let b = summary(21321.0, 577000.0, 10757.0);
        let mut f = summary(21321.0, 577000.0, 10757.0);
        if let Json::Obj(fields) = &mut f {
            fields.push(("future_metric".to_string(), Json::num(1.0)));
        }
        let v = compare_bench_summaries(&b, &f, &GatePolicy::default());
        assert!(v.is_empty(), "violations: {v:?}");
    }

    #[test]
    fn benchmark_rename_is_a_violation() {
        let b = summary(21321.0, 577000.0, 10757.0);
        let mut f = summary(21321.0, 577000.0, 10757.0);
        if let Json::Obj(fields) = &mut f {
            fields[0].1 = Json::str("CIFAR");
        }
        let v = compare_bench_summaries(&b, &f, &GatePolicy::default());
        assert!(
            v.iter().any(|m| m.contains("`benchmark` changed")),
            "violations: {v:?}"
        );
    }

    #[test]
    fn text_gate_round_trips_and_rejects_garbage() {
        let b = summary(21321.0, 577000.0, 10757.0).render();
        assert!(gate_bench_text(&b, &b, &GatePolicy::default())
            .expect("parses")
            .is_empty());
        assert!(gate_bench_text(&b, "not json", &GatePolicy::default()).is_err());
    }
}
