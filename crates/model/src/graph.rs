//! The network graph: layers wired through named blobs, Caffe-style.
//!
//! Execution order is definition order (as in Caffe); validation checks
//! that every `bottom` blob has been produced by the time its consumer
//! runs, except for feedback edges declared `direction: recurrent`.

use crate::layer::{ConnectDirection, Connection, Layer, LayerKind};
use crate::shape::{infer_output, Shape, ShapeError};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A validated neural network description.
///
/// # Examples
///
/// ```
/// use deepburning_model::{Layer, LayerKind, Network, FullParam, Activation};
///
/// let net = Network::from_layers("mlp", vec![
///     Layer::input("data", "data", 4, 1, 1),
///     Layer::new("ip1", LayerKind::FullConnection(FullParam::dense(8)), "data", "ip1"),
///     Layer::new("sig1", LayerKind::Activation(Activation::Sigmoid), "ip1", "ip1"),
///     Layer::new("ip2", LayerKind::FullConnection(FullParam::dense(2)), "ip1", "out"),
/// ])?;
/// assert_eq!(net.layers().len(), 4);
/// assert_eq!(net.output_blobs(), vec!["out".to_string()]);
/// # Ok::<(), deepburning_model::NetworkError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Network {
    name: String,
    layers: Vec<Layer>,
    connections: Vec<Connection>,
}

/// Error describing an ill-formed network.
#[derive(Debug, Clone, PartialEq)]
pub enum NetworkError {
    /// Two layers share a name.
    DuplicateLayer(String),
    /// A layer consumes a blob that no earlier layer produced.
    UnknownBlob {
        /// Consumer layer.
        layer: String,
        /// Missing blob.
        blob: String,
    },
    /// A `connect` block references a layer that does not exist.
    UnknownLayer {
        /// The connect block name.
        connection: String,
        /// The missing layer.
        layer: String,
    },
    /// The network has no input layer.
    NoInput,
    /// The network has no layers at all.
    Empty,
    /// Shape inference failed.
    Shape(ShapeError),
}

impl fmt::Display for NetworkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetworkError::DuplicateLayer(n) => write!(f, "duplicate layer name `{n}`"),
            NetworkError::UnknownBlob { layer, blob } => {
                write!(f, "layer `{layer}` consumes undefined blob `{blob}`")
            }
            NetworkError::UnknownLayer { connection, layer } => {
                write!(
                    f,
                    "connection `{connection}` references unknown layer `{layer}`"
                )
            }
            NetworkError::NoInput => write!(f, "network has no input layer"),
            NetworkError::Empty => write!(f, "network has no layers"),
            NetworkError::Shape(e) => write!(f, "shape inference failed: {e}"),
        }
    }
}

impl std::error::Error for NetworkError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetworkError::Shape(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ShapeError> for NetworkError {
    fn from(e: ShapeError) -> Self {
        NetworkError::Shape(e)
    }
}

impl Network {
    /// Builds and validates a network from layers in execution order.
    ///
    /// # Errors
    ///
    /// Returns a [`NetworkError`] if names collide, a bottom blob is
    /// undefined, no input layer exists, or shapes do not infer.
    pub fn from_layers(name: impl Into<String>, layers: Vec<Layer>) -> Result<Self, NetworkError> {
        Network::with_connections(name, layers, Vec::new())
    }

    /// Builds and validates a network with explicit `connect` blocks.
    ///
    /// # Errors
    ///
    /// See [`Network::from_layers`]; additionally rejects connections that
    /// reference unknown layers.
    pub fn with_connections(
        name: impl Into<String>,
        layers: Vec<Layer>,
        connections: Vec<Connection>,
    ) -> Result<Self, NetworkError> {
        let net = Network {
            name: name.into(),
            layers,
            connections,
        };
        net.validate()?;
        Ok(net)
    }

    fn validate(&self) -> Result<(), NetworkError> {
        if self.layers.is_empty() {
            return Err(NetworkError::Empty);
        }
        if !self
            .layers
            .iter()
            .any(|l| matches!(l.kind, LayerKind::Input { .. }))
        {
            return Err(NetworkError::NoInput);
        }
        let mut names = BTreeSet::new();
        let mut produced = BTreeSet::new();
        for layer in &self.layers {
            if !names.insert(layer.name.as_str()) {
                return Err(NetworkError::DuplicateLayer(layer.name.clone()));
            }
            for bottom in &layer.bottoms {
                if !produced.contains(bottom.as_str()) {
                    return Err(NetworkError::UnknownBlob {
                        layer: layer.name.clone(),
                        blob: bottom.clone(),
                    });
                }
            }
            for top in &layer.tops {
                produced.insert(top.as_str());
            }
        }
        for conn in &self.connections {
            for layer in [&conn.from, &conn.to] {
                if !names.contains(layer.as_str()) {
                    return Err(NetworkError::UnknownLayer {
                        connection: conn.name.clone(),
                        layer: layer.clone(),
                    });
                }
            }
        }
        // Shape inference must succeed for the network to be accepted.
        self.infer_shapes()?;
        Ok(())
    }

    /// The network name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Layers in execution order.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Explicit `connect` blocks.
    pub fn connections(&self) -> &[Connection] {
        &self.connections
    }

    /// Looks up a layer by name.
    pub fn layer(&self, name: &str) -> Option<&Layer> {
        self.layers.iter().find(|l| l.name == name)
    }

    /// Recurrent feedback connections only.
    pub fn recurrent_connections(&self) -> impl Iterator<Item = &Connection> {
        self.connections
            .iter()
            .filter(|c| c.direction == ConnectDirection::Recurrent)
    }

    /// Whether the network contains any recurrent path (a recurrent layer
    /// or an explicit recurrent connection).
    pub fn is_recurrent(&self) -> bool {
        self.recurrent_connections().next().is_some()
            || self
                .layers
                .iter()
                .any(|l| matches!(l.kind, LayerKind::Recurrent { .. }))
    }

    /// Infers the shape of every blob.
    ///
    /// Returns `(blob → shape)`; in-place layers overwrite their blob's
    /// entry with the (identical) output shape.
    ///
    /// # Errors
    ///
    /// Propagates the first [`ShapeError`].
    pub fn infer_shapes(&self) -> Result<BTreeMap<String, Shape>, NetworkError> {
        let mut shapes: BTreeMap<String, Shape> = BTreeMap::new();
        for layer in &self.layers {
            let inputs: Vec<Shape> = layer
                .bottoms
                .iter()
                .map(|b| {
                    shapes
                        .get(b)
                        .copied()
                        .ok_or_else(|| NetworkError::UnknownBlob {
                            layer: layer.name.clone(),
                            blob: b.clone(),
                        })
                })
                .collect::<Result<_, _>>()?;
            let out = infer_output(layer, &inputs)?;
            for top in &layer.tops {
                shapes.insert(top.clone(), out);
            }
        }
        Ok(shapes)
    }

    /// Shape of the blob produced by layer `name` (its first top).
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError::UnknownLayer`] if the layer does not exist.
    pub fn output_shape_of(&self, name: &str) -> Result<Shape, NetworkError> {
        let layer = self.layer(name).ok_or_else(|| NetworkError::UnknownLayer {
            connection: String::new(),
            layer: name.to_string(),
        })?;
        let shapes = self.infer_shapes()?;
        Ok(shapes[&layer.tops[0]])
    }

    /// Shape of the (first) input layer.
    pub fn input_shape(&self) -> Shape {
        self.layers
            .iter()
            .find_map(|l| match l.kind {
                LayerKind::Input {
                    channels,
                    height,
                    width,
                } => Some(Shape::new(channels, height, width)),
                _ => None,
            })
            .expect("validated network has an input layer")
    }

    /// Blobs produced but never consumed — the network outputs.
    pub fn output_blobs(&self) -> Vec<String> {
        let mut consumed = BTreeSet::new();
        for layer in &self.layers {
            for b in &layer.bottoms {
                // In-place layers consume and re-produce; only count a blob
                // as consumed if a *different* blob is produced from it.
                if !layer.tops.contains(b) {
                    consumed.insert(b.clone());
                }
            }
        }
        let mut seen = BTreeSet::new();
        let mut outs = Vec::new();
        for layer in &self.layers {
            for t in &layer.tops {
                if !consumed.contains(t) && seen.insert(t.clone()) {
                    outs.push(t.clone());
                }
            }
        }
        outs
    }

    /// Shape of the final output blob (the last unconsumed top).
    pub fn output_shape(&self) -> Result<Shape, NetworkError> {
        let shapes = self.infer_shapes()?;
        let outs = self.output_blobs();
        let last = outs.last().ok_or(NetworkError::Empty)?;
        Ok(shapes[last])
    }
}

impl fmt::Display for Network {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "network `{}` ({} layers)", self.name, self.layers.len())?;
        let shapes = self.infer_shapes().map_err(|_| fmt::Error)?;
        for layer in &self.layers {
            let out = layer
                .tops
                .first()
                .and_then(|t| shapes.get(t))
                .map(|s| s.to_string())
                .unwrap_or_default();
            writeln!(
                f,
                "  {:<12} {:<14} -> {}",
                layer.name,
                layer.kind.type_name(),
                out
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{Activation, ConnectType, ConvParam, FullParam, PoolMethod, PoolParam};

    fn lenet_ish() -> Vec<Layer> {
        vec![
            Layer::input("data", "data", 1, 28, 28),
            Layer::new(
                "conv1",
                LayerKind::Convolution(ConvParam::new(20, 5, 1)),
                "data",
                "conv1",
            ),
            Layer::new(
                "pool1",
                LayerKind::Pooling(PoolParam {
                    method: PoolMethod::Max,
                    kernel_size: 2,
                    stride: 2,
                }),
                "conv1",
                "pool1",
            ),
            Layer::new(
                "ip1",
                LayerKind::FullConnection(FullParam::dense(500)),
                "pool1",
                "ip1",
            ),
            Layer::new(
                "relu1",
                LayerKind::Activation(Activation::Relu),
                "ip1",
                "ip1",
            ),
            Layer::new(
                "ip2",
                LayerKind::FullConnection(FullParam::dense(10)),
                "ip1",
                "ip2",
            ),
        ]
    }

    #[test]
    fn builds_and_infers() {
        let net = Network::from_layers("lenet", lenet_ish()).expect("valid");
        let shapes = net.infer_shapes().expect("shapes");
        assert_eq!(shapes["conv1"], Shape::new(20, 24, 24));
        assert_eq!(shapes["pool1"], Shape::new(20, 12, 12));
        assert_eq!(shapes["ip2"], Shape::vector(10));
        assert_eq!(net.output_blobs(), vec!["ip2".to_string()]);
        assert_eq!(net.output_shape().expect("shape"), Shape::vector(10));
    }

    #[test]
    fn in_place_layer_is_not_an_output() {
        let net = Network::from_layers("lenet", lenet_ish()).expect("valid");
        // "ip1" is consumed by ip2 even though relu1 rewrites it in place.
        assert!(!net.output_blobs().contains(&"ip1".to_string()));
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut layers = lenet_ish();
        layers[2].name = "conv1".into();
        assert!(matches!(
            Network::from_layers("bad", layers),
            Err(NetworkError::DuplicateLayer(_))
        ));
    }

    #[test]
    fn undefined_blob_rejected() {
        let layers = vec![
            Layer::input("data", "data", 1, 8, 8),
            Layer::new(
                "ip",
                LayerKind::FullConnection(FullParam::dense(2)),
                "nonexistent",
                "out",
            ),
        ];
        assert!(matches!(
            Network::from_layers("bad", layers),
            Err(NetworkError::UnknownBlob { .. })
        ));
    }

    #[test]
    fn forward_only_use_before_def_rejected() {
        // A layer may not consume a blob produced later (forward direction).
        let layers = vec![
            Layer::input("data", "data", 1, 8, 8),
            Layer::new(
                "a",
                LayerKind::FullConnection(FullParam::dense(2)),
                "b_out",
                "a_out",
            ),
            Layer::new(
                "b",
                LayerKind::FullConnection(FullParam::dense(2)),
                "data",
                "b_out",
            ),
        ];
        assert!(Network::from_layers("bad", layers).is_err());
    }

    #[test]
    fn no_input_rejected() {
        let layers = vec![Layer::new(
            "ip",
            LayerKind::FullConnection(FullParam::dense(2)),
            "x",
            "y",
        )];
        assert!(matches!(
            Network::from_layers("bad", layers),
            Err(NetworkError::NoInput)
        ));
    }

    #[test]
    fn empty_rejected() {
        assert!(matches!(
            Network::from_layers("bad", vec![]),
            Err(NetworkError::Empty)
        ));
    }

    #[test]
    fn recurrent_connection_detected() {
        let layers = vec![
            Layer::input("data", "data", 8, 1, 1),
            Layer::new(
                "ip1",
                LayerKind::FullConnection(FullParam::dense(8)),
                "data",
                "ip1",
            ),
        ];
        let conns = vec![Connection {
            name: "p2f2".into(),
            from: "ip1".into(),
            to: "ip1".into(),
            direction: ConnectDirection::Recurrent,
            kind: ConnectType::FileSpecified("w.dat".into()),
        }];
        let net = Network::with_connections("rnn", layers, conns).expect("valid");
        assert!(net.is_recurrent());
        assert_eq!(net.recurrent_connections().count(), 1);
    }

    #[test]
    fn connection_to_unknown_layer_rejected() {
        let layers = vec![Layer::input("data", "data", 8, 1, 1)];
        let conns = vec![Connection {
            name: "c".into(),
            from: "data".into(),
            to: "ghost".into(),
            direction: ConnectDirection::Forward,
            kind: ConnectType::FullPerChannel,
        }];
        assert!(matches!(
            Network::with_connections("bad", layers, conns),
            Err(NetworkError::UnknownLayer { .. })
        ));
    }

    #[test]
    fn shape_error_propagates() {
        let layers = vec![
            Layer::input("data", "data", 1, 4, 4),
            Layer::new(
                "conv",
                LayerKind::Convolution(ConvParam::new(8, 9, 1)),
                "data",
                "out",
            ),
        ];
        assert!(matches!(
            Network::from_layers("bad", layers),
            Err(NetworkError::Shape(_))
        ));
    }

    #[test]
    fn display_renders_all_layers() {
        let net = Network::from_layers("lenet", lenet_ish()).expect("valid");
        let s = net.to_string();
        assert!(s.contains("conv1"));
        assert!(s.contains("20x24x24"));
    }
}
