//! Parser for the Caffe-compatible descriptive script (paper Fig. 4).
//!
//! The dialect is the prototxt layer syntax with DeepBurning extensions:
//! "The type of layers is redefinable to support more classes of layer or
//! operation than that in original Caffe" — we add `RECURRENT`,
//! `ASSOCIATIVE`, `MEMORY`, `CLASSIFIER` and `INCEPTION` types plus the
//! `connect { ... }` block that routes recurrent edges.

use crate::graph::{Network, NetworkError};
use crate::layer::{
    Activation, ConnectDirection, ConnectType, Connection, ConvParam, FullParam, InceptionParam,
    Layer, LayerKind, LrnParam, PoolMethod, PoolParam,
};
use std::fmt;

/// Error raised while parsing a descriptive script.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// 1-based line of the offending token.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Error returned by [`parse_network`]: either a syntax error or a
/// semantically invalid network.
#[derive(Debug)]
pub enum ScriptError {
    /// The script did not parse.
    Parse(ParseError),
    /// The parsed network failed validation.
    Network(NetworkError),
}

impl fmt::Display for ScriptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScriptError::Parse(e) => write!(f, "parse error: {e}"),
            ScriptError::Network(e) => write!(f, "invalid network: {e}"),
        }
    }
}

impl std::error::Error for ScriptError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ScriptError::Parse(e) => Some(e),
            ScriptError::Network(e) => Some(e),
        }
    }
}

impl From<ParseError> for ScriptError {
    fn from(e: ParseError) -> Self {
        ScriptError::Parse(e)
    }
}

impl From<NetworkError> for ScriptError {
    fn from(e: NetworkError) -> Self {
        ScriptError::Network(e)
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Ident(String),
    Str(String),
    Number(f64),
    LBrace,
    RBrace,
    Colon,
}

#[derive(Debug, Clone)]
struct Spanned {
    token: Token,
    line: usize,
}

fn tokenize(src: &str) -> Result<Vec<Spanned>, ParseError> {
    let mut out = Vec::new();
    let mut chars = src.chars().peekable();
    let mut line = 1usize;
    while let Some(&c) = chars.peek() {
        match c {
            '\n' => {
                line += 1;
                chars.next();
            }
            c if c.is_whitespace() => {
                chars.next();
            }
            '#' => {
                for c in chars.by_ref() {
                    if c == '\n' {
                        line += 1;
                        break;
                    }
                }
            }
            '{' => {
                out.push(Spanned {
                    token: Token::LBrace,
                    line,
                });
                chars.next();
            }
            '}' => {
                out.push(Spanned {
                    token: Token::RBrace,
                    line,
                });
                chars.next();
            }
            ':' => {
                out.push(Spanned {
                    token: Token::Colon,
                    line,
                });
                chars.next();
            }
            '"' => {
                chars.next();
                let mut s = String::new();
                loop {
                    match chars.next() {
                        Some('"') => break,
                        Some('\n') | None => {
                            return Err(ParseError {
                                line,
                                message: "unterminated string literal".into(),
                            })
                        }
                        Some(c) => s.push(c),
                    }
                }
                out.push(Spanned {
                    token: Token::Str(s),
                    line,
                });
            }
            c if c.is_ascii_digit() || c == '-' || c == '+' || c == '.' => {
                let mut s = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_ascii_digit() || "+-.eE".contains(c) {
                        s.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                let n: f64 = s.parse().map_err(|_| ParseError {
                    line,
                    message: format!("malformed number `{s}`"),
                })?;
                out.push(Spanned {
                    token: Token::Number(n),
                    line,
                });
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut s = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_alphanumeric() || c == '_' {
                        s.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                out.push(Spanned {
                    token: Token::Ident(s),
                    line,
                });
            }
            other => {
                return Err(ParseError {
                    line,
                    message: format!("unexpected character `{other}`"),
                })
            }
        }
    }
    Ok(out)
}

/// A parsed `key: value` or `key { ... }` field tree.
#[derive(Debug, Clone, PartialEq)]
enum Value {
    Str(String),
    Ident(String),
    Number(f64),
    Block(Vec<(String, Value)>),
}

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Spanned> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Spanned> {
        let t = self.tokens.get(self.pos).cloned();
        self.pos += 1;
        t
    }

    fn line(&self) -> usize {
        self.tokens
            .get(self.pos.min(self.tokens.len().saturating_sub(1)))
            .map(|t| t.line)
            .unwrap_or(0)
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            line: self.line(),
            message: message.into(),
        }
    }

    /// Parses fields until EOF or a closing brace (not consumed by caller).
    fn parse_fields(&mut self) -> Result<Vec<(String, Value)>, ParseError> {
        let mut fields = Vec::new();
        loop {
            match self.peek().map(|t| t.token.clone()) {
                None | Some(Token::RBrace) => return Ok(fields),
                Some(Token::Ident(key)) => {
                    self.next();
                    match self.peek().map(|t| t.token.clone()) {
                        Some(Token::Colon) => {
                            self.next();
                            let v = match self.next().map(|t| t.token) {
                                Some(Token::Str(s)) => Value::Str(s),
                                Some(Token::Ident(s)) => Value::Ident(s),
                                Some(Token::Number(n)) => Value::Number(n),
                                _ => return Err(self.err(format!("expected value after `{key}:`"))),
                            };
                            fields.push((key, v));
                        }
                        Some(Token::LBrace) => {
                            self.next();
                            let inner = self.parse_fields()?;
                            match self.next().map(|t| t.token) {
                                Some(Token::RBrace) => {}
                                _ => return Err(self.err(format!("unclosed block `{key}`"))),
                            }
                            fields.push((key, Value::Block(inner)));
                        }
                        _ => {
                            return Err(self.err(format!("expected `:` or `{{` after `{key}`")));
                        }
                    }
                }
                Some(t) => return Err(self.err(format!("unexpected token {t:?}"))),
            }
        }
    }
}

fn get_str<'a>(fields: &'a [(String, Value)], key: &str) -> Option<&'a str> {
    fields
        .iter()
        .find(|(k, _)| k == key)
        .and_then(|(_, v)| match v {
            Value::Str(s) | Value::Ident(s) => Some(s.as_str()),
            _ => None,
        })
}

fn get_num(fields: &[(String, Value)], key: &str) -> Option<f64> {
    fields
        .iter()
        .find(|(k, _)| k == key)
        .and_then(|(_, v)| match v {
            Value::Number(n) => Some(*n),
            _ => None,
        })
}

fn get_usize(fields: &[(String, Value)], key: &str) -> Option<usize> {
    get_num(fields, key).map(|n| n as usize)
}

fn get_all<'a>(fields: &'a [(String, Value)], key: &str) -> Vec<&'a Value> {
    fields
        .iter()
        .filter(|(k, _)| k == key)
        .map(|(_, v)| v)
        .collect()
}

fn first_block<'a>(fields: &'a [(String, Value)], keys: &[&str]) -> Option<&'a [(String, Value)]> {
    for key in keys {
        if let Some(Value::Block(b)) = fields.iter().find(|(k, _)| k == key).map(|(_, v)| v) {
            return Some(b);
        }
    }
    None
}

fn layer_kind(
    type_name: &str,
    fields: &[(String, Value)],
    line: usize,
) -> Result<LayerKind, ParseError> {
    let missing = |what: &str| ParseError {
        line,
        message: format!("{type_name} layer missing `{what}`"),
    };
    let param = first_block(fields, &["param", "convolution_param"]);
    match type_name {
        "INPUT" | "DATA" => {
            let p = first_block(fields, &["input_param", "param"])
                .ok_or_else(|| missing("input_param"))?;
            Ok(LayerKind::Input {
                channels: get_usize(p, "channels").ok_or_else(|| missing("channels"))?,
                height: get_usize(p, "height").ok_or_else(|| missing("height"))?,
                width: get_usize(p, "width").ok_or_else(|| missing("width"))?,
            })
        }
        "CONVOLUTION" => {
            let p = param.ok_or_else(|| missing("param"))?;
            Ok(LayerKind::Convolution(ConvParam {
                num_output: get_usize(p, "num_output").ok_or_else(|| missing("num_output"))?,
                kernel_size: get_usize(p, "kernel_size").ok_or_else(|| missing("kernel_size"))?,
                stride: get_usize(p, "stride").unwrap_or(1),
                pad: get_usize(p, "pad").unwrap_or(0),
                group: get_usize(p, "group").unwrap_or(1),
            }))
        }
        "POOLING" => {
            let p = first_block(fields, &["pooling_param", "param"])
                .ok_or_else(|| missing("pooling_param"))?;
            let method = match get_str(p, "pool").unwrap_or("MAX") {
                "MAX" => PoolMethod::Max,
                "AVE" | "AVERAGE" => PoolMethod::Average,
                other => {
                    return Err(ParseError {
                        line,
                        message: format!("unknown pool method `{other}`"),
                    })
                }
            };
            Ok(LayerKind::Pooling(PoolParam {
                method,
                kernel_size: get_usize(p, "kernel_size").ok_or_else(|| missing("kernel_size"))?,
                stride: get_usize(p, "stride").unwrap_or(1),
            }))
        }
        "INNER_PRODUCT" | "FULL_CONNECTION" | "FC" => {
            let p = first_block(fields, &["inner_product_param", "param"])
                .ok_or_else(|| missing("param"))?;
            Ok(LayerKind::FullConnection(FullParam {
                num_output: get_usize(p, "num_output").ok_or_else(|| missing("num_output"))?,
                connectivity_permille: get_usize(p, "connectivity_permille").unwrap_or(1000) as u32,
            }))
        }
        "RELU" => Ok(LayerKind::Activation(Activation::Relu)),
        "SIGMOID" => Ok(LayerKind::Activation(Activation::Sigmoid)),
        "TANH" => Ok(LayerKind::Activation(Activation::Tanh)),
        "LINEAR" => Ok(LayerKind::Activation(Activation::Identity)),
        "LRN" => {
            let p = first_block(fields, &["lrn_param", "param"]);
            let mut lrn = LrnParam::default();
            if let Some(p) = p {
                if let Some(n) = get_usize(p, "local_size") {
                    lrn.local_size = n;
                }
                if let Some(a) = get_num(p, "alpha") {
                    lrn.alpha = a;
                }
                if let Some(b) = get_num(p, "beta") {
                    lrn.beta = b;
                }
            }
            Ok(LayerKind::Lrn(lrn))
        }
        "DROPOUT" => {
            let ratio = first_block(fields, &["dropout_param", "param"])
                .and_then(|p| get_num(p, "dropout_ratio"))
                .unwrap_or(0.5);
            Ok(LayerKind::Dropout { ratio })
        }
        "RECURRENT" => {
            let p = first_block(fields, &["recurrent_param", "param"])
                .ok_or_else(|| missing("param"))?;
            Ok(LayerKind::Recurrent {
                num_output: get_usize(p, "num_output").ok_or_else(|| missing("num_output"))?,
                steps: get_usize(p, "steps").unwrap_or(1),
            })
        }
        "ASSOCIATIVE" => {
            let p = first_block(fields, &["associative_param", "param"])
                .ok_or_else(|| missing("param"))?;
            Ok(LayerKind::Associative {
                table_size: get_usize(p, "table_size").ok_or_else(|| missing("table_size"))?,
                active_cells: get_usize(p, "active_cells")
                    .ok_or_else(|| missing("active_cells"))?,
            })
        }
        "MEMORY" => {
            let p =
                first_block(fields, &["memory_param", "param"]).ok_or_else(|| missing("param"))?;
            Ok(LayerKind::Memory {
                words: get_usize(p, "words").ok_or_else(|| missing("words"))?,
            })
        }
        "CLASSIFIER" | "SOFTMAX" | "ARGMAX" => {
            let top_k = first_block(fields, &["classifier_param", "param"])
                .and_then(|p| get_usize(p, "top_k"))
                .unwrap_or(1);
            Ok(LayerKind::Classifier { top_k })
        }
        "INCEPTION" => {
            let p = first_block(fields, &["inception_param", "param"])
                .ok_or_else(|| missing("param"))?;
            Ok(LayerKind::Inception(InceptionParam {
                c1x1: get_usize(p, "c1x1").unwrap_or(0),
                c3x3: get_usize(p, "c3x3").unwrap_or(0),
                c5x5: get_usize(p, "c5x5").unwrap_or(0),
                cpool: get_usize(p, "cpool").unwrap_or(0),
            }))
        }
        "CONCAT" => Ok(LayerKind::Concat),
        "ELTWISE" => Ok(LayerKind::Eltwise),
        other => Err(ParseError {
            line,
            message: format!("unknown layer type `{other}`"),
        }),
    }
}

fn parse_connect(
    owner: &str,
    fields: &[(String, Value)],
    line: usize,
) -> Result<Connection, ParseError> {
    let name = get_str(fields, "name")
        .ok_or_else(|| ParseError {
            line,
            message: "connect block missing `name`".into(),
        })?
        .to_string();
    let direction = match get_str(fields, "direction").unwrap_or("forward") {
        "forward" => ConnectDirection::Forward,
        "recurrent" => ConnectDirection::Recurrent,
        other => {
            return Err(ParseError {
                line,
                message: format!("unknown connect direction `{other}`"),
            })
        }
    };
    let kind = match get_str(fields, "type").unwrap_or("full_per_channel") {
        "full_per_channel" | "full" => ConnectType::FullPerChannel,
        "file_specified" => {
            ConnectType::FileSpecified(get_str(fields, "file").unwrap_or("").to_string())
        }
        other => {
            return Err(ParseError {
                line,
                message: format!("unknown connect type `{other}`"),
            })
        }
    };
    let from = get_str(fields, "from").unwrap_or(owner).to_string();
    let to = get_str(fields, "to").unwrap_or(owner).to_string();
    Ok(Connection {
        name,
        from,
        to,
        direction,
        kind,
    })
}

/// Parses a descriptive script into a validated [`Network`].
///
/// # Errors
///
/// Returns [`ScriptError::Parse`] on syntax errors (with line numbers) and
/// [`ScriptError::Network`] if the parsed network fails validation.
///
/// # Examples
///
/// ```
/// let src = r#"
/// name: "tiny"
/// layers {
///   name: "data" type: INPUT top: "data"
///   input_param { channels: 1 height: 8 width: 8 }
/// }
/// layers {
///   name: "ip1" type: INNER_PRODUCT bottom: "data" top: "ip1"
///   param { num_output: 4 }
/// }
/// "#;
/// let net = deepburning_model::parse_network(src)?;
/// assert_eq!(net.name(), "tiny");
/// assert_eq!(net.layers().len(), 2);
/// # Ok::<(), deepburning_model::ScriptError>(())
/// ```
pub fn parse_network(src: &str) -> Result<Network, ScriptError> {
    let tokens = tokenize(src)?;
    let mut parser = Parser { tokens, pos: 0 };
    let fields = parser.parse_fields()?;
    if parser.peek().is_some() {
        return Err(ParseError {
            line: parser.line(),
            message: "unexpected `}` at top level".into(),
        }
        .into());
    }
    let net_name = get_str(&fields, "name").unwrap_or("network").to_string();
    let mut layers = Vec::new();
    let mut connections = Vec::new();
    for (key, value) in &fields {
        if key != "layers" && key != "layer" {
            continue;
        }
        let Value::Block(lf) = value else {
            return Err(ParseError {
                line: 0,
                message: "`layers` must be a block".into(),
            }
            .into());
        };
        let lname = get_str(lf, "name")
            .ok_or_else(|| ParseError {
                line: 0,
                message: "layer missing `name`".into(),
            })?
            .to_string();
        let ltype = get_str(lf, "type").ok_or_else(|| ParseError {
            line: 0,
            message: format!("layer `{lname}` missing `type`"),
        })?;
        let kind = layer_kind(ltype, lf, 0)?;
        let bottoms: Vec<String> = get_all(lf, "bottom")
            .into_iter()
            .filter_map(|v| match v {
                Value::Str(s) | Value::Ident(s) => Some(s.clone()),
                _ => None,
            })
            .collect();
        let mut tops: Vec<String> = get_all(lf, "top")
            .into_iter()
            .filter_map(|v| match v {
                Value::Str(s) | Value::Ident(s) => Some(s.clone()),
                _ => None,
            })
            .collect();
        if tops.is_empty() {
            tops.push(lname.clone());
        }
        for c in get_all(lf, "connect") {
            if let Value::Block(cf) = c {
                connections.push(parse_connect(&lname, cf, 0)?);
            }
        }
        layers.push(Layer {
            name: lname,
            kind,
            bottoms,
            tops,
        });
    }
    Ok(Network::with_connections(net_name, layers, connections)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shape::Shape;

    const PAPER_EXAMPLE: &str = r#"
    name: "fig4"
    layers {
      name: "data" type: INPUT top: "data"
      input_param { channels: 1 height: 28 width: 28 }
    }
    layers {
      name: "conv1"
      type: CONVOLUTION
      bottom: "data"
      top: "conv1"
      param {
        num_output: 20
        kernel_size: 5
        stride: 1 }
      connect {
        name: "c2p1"
        direction: forward
        type: full_per_channel }
    }
    layers {
      name: "pool1"
      type: POOLING
      bottom: "conv1"
      top: "pool1"
      pooling_param {
        pool: MAX
        kernel_size: 2
        stride: 2
      }
    }
    layers {
      name: "ip1" type: INNER_PRODUCT bottom: "pool1" top: "ip1"
      param { num_output: 64 }
    }
    layers {
      name: "relu1"
      type: RELU
      bottom: "ip1"
      top: "ip1"
      connect {
        name: "p2f2"
        direction: recurrent
        type: file_specified }
    }
    "#;

    #[test]
    fn parses_paper_fig4_script() {
        let net = parse_network(PAPER_EXAMPLE).expect("parses");
        assert_eq!(net.name(), "fig4");
        assert_eq!(net.layers().len(), 5);
        let shapes = net.infer_shapes().expect("shapes");
        assert_eq!(shapes["conv1"], Shape::new(20, 24, 24));
        assert_eq!(shapes["pool1"], Shape::new(20, 12, 12));
        assert_eq!(net.connections().len(), 2);
        assert!(net.is_recurrent());
    }

    #[test]
    fn connect_defaults_to_owner() {
        let net = parse_network(PAPER_EXAMPLE).expect("parses");
        let rec = net.recurrent_connections().next().expect("recurrent edge");
        assert_eq!(rec.name, "p2f2");
        assert_eq!(rec.from, "relu1");
        assert_eq!(rec.to, "relu1");
    }

    #[test]
    fn comments_and_whitespace_tolerated() {
        let src = r#"
        # a comment
        name: "c"  # trailing comment
        layers { name: "data" type: INPUT top: "data"
                 input_param { channels: 2 height: 4 width: 4 } }
        "#;
        let net = parse_network(src).expect("parses");
        assert_eq!(net.input_shape(), Shape::new(2, 4, 4));
    }

    #[test]
    fn missing_type_is_an_error() {
        let src = r#"layers { name: "x" top: "x" }"#;
        let e = parse_network(src).unwrap_err();
        assert!(e.to_string().contains("missing `type`"), "{e}");
    }

    #[test]
    fn unknown_type_is_an_error() {
        let src = r#"
        layers { name: "data" type: INPUT top: "data"
                 input_param { channels: 1 height: 4 width: 4 } }
        layers { name: "x" type: WARP bottom: "data" top: "x" }
        "#;
        let e = parse_network(src).unwrap_err();
        assert!(e.to_string().contains("unknown layer type"), "{e}");
    }

    #[test]
    fn unterminated_string_reports_line() {
        let src = "name: \"oops\nlayers { }";
        match parse_network(src) {
            Err(ScriptError::Parse(p)) => assert_eq!(p.line, 1),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn unclosed_block_is_an_error() {
        let src = r#"layers { name: "data" type: INPUT top: "data" "#;
        assert!(matches!(parse_network(src), Err(ScriptError::Parse(_))));
    }

    #[test]
    fn default_top_is_layer_name() {
        let src = r#"
        layers { name: "data" type: INPUT
                 input_param { channels: 1 height: 4 width: 4 } }
        layers { name: "fc" type: FC bottom: "data"
                 param { num_output: 3 } }
        "#;
        let net = parse_network(src).expect("parses");
        assert_eq!(net.output_blobs(), vec!["fc".to_string()]);
    }

    #[test]
    fn average_pooling_and_lrn_parse() {
        let src = r#"
        layers { name: "data" type: INPUT top: "data"
                 input_param { channels: 4 height: 8 width: 8 } }
        layers { name: "lrn" type: LRN bottom: "data" top: "lrn"
                 lrn_param { local_size: 3 alpha: 0.0001 beta: 0.75 } }
        layers { name: "pool" type: POOLING bottom: "lrn" top: "pool"
                 pooling_param { pool: AVE kernel_size: 2 stride: 2 } }
        "#;
        let net = parse_network(src).expect("parses");
        assert_eq!(net.output_shape().expect("shape"), Shape::new(4, 4, 4));
        match &net.layer("lrn").expect("layer").kind {
            LayerKind::Lrn(p) => {
                assert_eq!(p.local_size, 3);
                assert!((p.beta - 0.75).abs() < 1e-12);
            }
            other => panic!("expected LRN, got {other:?}"),
        }
    }

    #[test]
    fn semantic_error_surfaces_as_network_error() {
        // References a blob that is never produced.
        let src = r#"
        layers { name: "data" type: INPUT top: "data"
                 input_param { channels: 1 height: 4 width: 4 } }
        layers { name: "fc" type: FC bottom: "ghost" top: "out"
                 param { num_output: 3 } }
        "#;
        assert!(matches!(parse_network(src), Err(ScriptError::Network(_))));
    }

    #[test]
    fn recurrent_and_associative_types() {
        let src = r#"
        name: "cmac"
        layers { name: "data" type: INPUT top: "data"
                 input_param { channels: 6 height: 1 width: 1 } }
        layers { name: "assoc" type: ASSOCIATIVE bottom: "data" top: "assoc"
                 associative_param { table_size: 1024 active_cells: 16 } }
        layers { name: "rec" type: RECURRENT bottom: "assoc" top: "rec"
                 recurrent_param { num_output: 8 steps: 4 }
                 connect { name: "fb" direction: recurrent type: full } }
        "#;
        let net = parse_network(src).expect("parses");
        assert!(net.is_recurrent());
        assert_eq!(net.output_shape().expect("shape"), Shape::vector(8));
    }

    #[test]
    fn number_forms() {
        let src = r#"
        layers { name: "data" type: INPUT top: "data"
                 input_param { channels: 1 height: 8 width: 8 } }
        layers { name: "drop" type: DROPOUT bottom: "data" top: "drop"
                 dropout_param { dropout_ratio: 0.4 } }
        "#;
        let net = parse_network(src).expect("parses");
        match net.layer("drop").expect("layer").kind {
            LayerKind::Dropout { ratio } => assert!((ratio - 0.4).abs() < 1e-12),
            ref other => panic!("expected dropout, got {other:?}"),
        }
    }
}
