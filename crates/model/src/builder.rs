//! A fluent builder for constructing networks programmatically — the
//! ergonomic alternative to the descriptive script for Rust users.

use crate::graph::{Network, NetworkError};
use crate::layer::{
    Activation, ConnectDirection, ConnectType, Connection, ConvParam, FullParam, Layer, LayerKind,
    LrnParam, PoolMethod, PoolParam,
};

/// A fluent, chainable network builder.
///
/// Each layer method appends a layer consuming the previous layer's output
/// blob, so a sequential network reads top to bottom. Use
/// [`NetworkBuilder::layer`] for non-sequential wiring.
///
/// # Examples
///
/// ```
/// use deepburning_model::{Activation, NetworkBuilder, PoolMethod};
///
/// let net = NetworkBuilder::new("lenet", 1, 28, 28)
///     .conv("conv1", 20, 5, 1)
///     .pool("pool1", PoolMethod::Max, 2, 2)
///     .full("ip1", 100)
///     .activation("sig1", Activation::Sigmoid)
///     .full("ip2", 10)
///     .build()?;
/// assert_eq!(net.layers().len(), 6);
/// assert_eq!(net.output_shape()?.channels, 10);
/// # Ok::<(), deepburning_model::NetworkError>(())
/// ```
#[derive(Debug, Clone)]
pub struct NetworkBuilder {
    name: String,
    layers: Vec<Layer>,
    connections: Vec<Connection>,
    last_blob: String,
}

impl NetworkBuilder {
    /// Starts a network with an input volume `channels × height × width`.
    pub fn new(name: impl Into<String>, channels: usize, height: usize, width: usize) -> Self {
        NetworkBuilder {
            name: name.into(),
            layers: vec![Layer::input("data", "data", channels, height, width)],
            connections: Vec::new(),
            last_blob: "data".to_string(),
        }
    }

    /// The blob the next sequential layer will consume.
    pub fn last_blob(&self) -> &str {
        &self.last_blob
    }

    fn push(mut self, name: &str, kind: LayerKind) -> Self {
        self.layers
            .push(Layer::new(name, kind, self.last_blob.clone(), name));
        self.last_blob = name.to_string();
        self
    }

    /// Appends an unpadded convolution.
    pub fn conv(self, name: &str, num_output: usize, kernel: usize, stride: usize) -> Self {
        self.push(
            name,
            LayerKind::Convolution(ConvParam::new(num_output, kernel, stride)),
        )
    }

    /// Appends a convolution with explicit parameters.
    pub fn conv_with(self, name: &str, param: ConvParam) -> Self {
        self.push(name, LayerKind::Convolution(param))
    }

    /// Appends a pooling layer.
    pub fn pool(self, name: &str, method: PoolMethod, kernel: usize, stride: usize) -> Self {
        self.push(
            name,
            LayerKind::Pooling(PoolParam {
                method,
                kernel_size: kernel,
                stride,
            }),
        )
    }

    /// Appends a dense full-connection layer.
    pub fn full(self, name: &str, num_output: usize) -> Self {
        self.push(
            name,
            LayerKind::FullConnection(FullParam::dense(num_output)),
        )
    }

    /// Appends an in-place activation on the previous blob.
    pub fn activation(mut self, name: &str, act: Activation) -> Self {
        let blob = self.last_blob.clone();
        self.layers.push(Layer::new(
            name,
            LayerKind::Activation(act),
            blob.clone(),
            blob,
        ));
        self
    }

    /// Appends a local-response-normalisation layer.
    pub fn lrn(self, name: &str, param: LrnParam) -> Self {
        self.push(name, LayerKind::Lrn(param))
    }

    /// Appends a drop-out inserter (in place).
    pub fn dropout(mut self, name: &str, ratio: f64) -> Self {
        let blob = self.last_blob.clone();
        self.layers.push(Layer::new(
            name,
            LayerKind::Dropout { ratio },
            blob.clone(),
            blob,
        ));
        self
    }

    /// Appends a recurrent layer (with its feedback connection declared).
    pub fn recurrent(self, name: &str, num_output: usize, steps: usize) -> Self {
        let mut b = self.push(name, LayerKind::Recurrent { num_output, steps });
        b.connections.push(Connection {
            name: format!("{name}_fb"),
            from: name.to_string(),
            to: name.to_string(),
            direction: ConnectDirection::Recurrent,
            kind: ConnectType::FullPerChannel,
        });
        b
    }

    /// Appends a classifier (K-sorter) layer.
    pub fn classifier(self, name: &str, top_k: usize) -> Self {
        self.push(name, LayerKind::Classifier { top_k })
    }

    /// Appends an arbitrary layer (caller controls bottoms/tops).
    pub fn layer(mut self, layer: Layer) -> Self {
        if let Some(top) = layer.tops.first() {
            self.last_blob = top.clone();
        }
        self.layers.push(layer);
        self
    }

    /// Adds an explicit connection.
    pub fn connect(mut self, connection: Connection) -> Self {
        self.connections.push(connection);
        self
    }

    /// Validates and returns the network.
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError`] for duplicate names, dangling blobs or
    /// shape-inference failures.
    pub fn build(self) -> Result<Network, NetworkError> {
        Network::with_connections(self.name, self.layers, self.connections)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shape::Shape;

    #[test]
    fn sequential_chain_builds() {
        let net = NetworkBuilder::new("t", 3, 32, 32)
            .conv("c1", 16, 3, 1)
            .activation("r1", Activation::Relu)
            .pool("p1", PoolMethod::Max, 2, 2)
            .full("fc", 10)
            .build()
            .expect("builds");
        let shapes = net.infer_shapes().expect("shapes");
        assert_eq!(shapes["c1"], Shape::new(16, 30, 30));
        assert_eq!(shapes["p1"], Shape::new(16, 15, 15));
        assert_eq!(net.output_shape().expect("shape"), Shape::vector(10));
    }

    #[test]
    fn activation_is_in_place() {
        let net = NetworkBuilder::new("t", 4, 1, 1)
            .full("fc", 8)
            .activation("act", Activation::Tanh)
            .full("out", 2)
            .build()
            .expect("builds");
        let act = net.layer("act").expect("layer");
        assert_eq!(act.bottoms, act.tops);
        assert_eq!(act.bottoms[0], "fc");
    }

    #[test]
    fn recurrent_declares_feedback() {
        let net = NetworkBuilder::new("t", 8, 1, 1)
            .recurrent("state", 8, 4)
            .build()
            .expect("builds");
        assert!(net.is_recurrent());
        let fb = net.recurrent_connections().next().expect("edge");
        assert_eq!(fb.name, "state_fb");
    }

    #[test]
    fn duplicate_name_fails_at_build() {
        let result = NetworkBuilder::new("t", 4, 1, 1)
            .full("x", 4)
            .full("x", 4)
            .build();
        assert!(result.is_err());
    }

    #[test]
    fn builder_matches_manual_construction() {
        let built = NetworkBuilder::new("m", 1, 8, 8)
            .conv("c", 4, 3, 1)
            .build()
            .expect("builds");
        let manual = Network::from_layers(
            "m",
            vec![
                Layer::input("data", "data", 1, 8, 8),
                Layer::new(
                    "c",
                    LayerKind::Convolution(ConvParam::new(4, 3, 1)),
                    "data",
                    "c",
                ),
            ],
        )
        .expect("valid");
        assert_eq!(built, manual);
    }
}
