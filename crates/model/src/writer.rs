//! Descriptive-script emission: the inverse of the parser, so networks
//! built programmatically (e.g. with [`crate::NetworkBuilder`]) can be
//! saved in the Caffe-compatible dialect and re-loaded.

use crate::graph::Network;
use crate::layer::{Activation, ConnectDirection, ConnectType, LayerKind};
use std::fmt::Write as _;

/// Serialises a network to the descriptive-script dialect of paper Fig. 4.
///
/// The output round-trips: `parse_network(&emit_prototxt(&net))` rebuilds
/// an equivalent network (checked by property tests).
pub fn emit_prototxt(net: &Network) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "name: \"{}\"", net.name());
    for layer in net.layers() {
        let _ = writeln!(out, "layers {{");
        let _ = writeln!(out, "  name: \"{}\"", layer.name);
        let _ = writeln!(out, "  type: {}", type_tag(&layer.kind));
        for b in &layer.bottoms {
            let _ = writeln!(out, "  bottom: \"{b}\"");
        }
        for t in &layer.tops {
            let _ = writeln!(out, "  top: \"{t}\"");
        }
        emit_params(&mut out, &layer.kind);
        for conn in net.connections().iter().filter(|c| c.from == layer.name) {
            let _ = writeln!(out, "  connect {{");
            let _ = writeln!(out, "    name: \"{}\"", conn.name);
            let dir = match conn.direction {
                ConnectDirection::Forward => "forward",
                ConnectDirection::Recurrent => "recurrent",
            };
            let _ = writeln!(out, "    direction: {dir}");
            match &conn.kind {
                ConnectType::FullPerChannel => {
                    let _ = writeln!(out, "    type: full_per_channel");
                }
                ConnectType::FileSpecified(file) => {
                    let _ = writeln!(out, "    type: file_specified");
                    if !file.is_empty() {
                        let _ = writeln!(out, "    file: \"{file}\"");
                    }
                }
            }
            let _ = writeln!(out, "    to: \"{}\"", conn.to);
            let _ = writeln!(out, "  }}");
        }
        let _ = writeln!(out, "}}");
    }
    out
}

fn type_tag(kind: &LayerKind) -> &'static str {
    match kind {
        LayerKind::Input { .. } => "INPUT",
        LayerKind::Convolution(_) => "CONVOLUTION",
        LayerKind::Pooling(_) => "POOLING",
        LayerKind::FullConnection(_) => "INNER_PRODUCT",
        LayerKind::Activation(Activation::Relu) => "RELU",
        LayerKind::Activation(Activation::Sigmoid) => "SIGMOID",
        LayerKind::Activation(Activation::Tanh) => "TANH",
        LayerKind::Activation(Activation::Identity) => "LINEAR",
        LayerKind::Lrn(_) => "LRN",
        LayerKind::Dropout { .. } => "DROPOUT",
        LayerKind::Recurrent { .. } => "RECURRENT",
        LayerKind::Associative { .. } => "ASSOCIATIVE",
        LayerKind::Memory { .. } => "MEMORY",
        LayerKind::Classifier { .. } => "CLASSIFIER",
        LayerKind::Inception(_) => "INCEPTION",
        LayerKind::Concat => "CONCAT",
        LayerKind::Eltwise => "ELTWISE",
    }
}

fn emit_params(out: &mut String, kind: &LayerKind) {
    match kind {
        LayerKind::Input {
            channels,
            height,
            width,
        } => {
            let _ = writeln!(
                out,
                "  input_param {{ channels: {channels} height: {height} width: {width} }}"
            );
        }
        LayerKind::Convolution(p) => {
            let _ = writeln!(
                out,
                "  param {{ num_output: {} kernel_size: {} stride: {} pad: {} group: {} }}",
                p.num_output, p.kernel_size, p.stride, p.pad, p.group
            );
        }
        LayerKind::Pooling(p) => {
            let _ = writeln!(
                out,
                "  pooling_param {{ pool: {} kernel_size: {} stride: {} }}",
                p.method, p.kernel_size, p.stride
            );
        }
        LayerKind::FullConnection(p) => {
            let _ = writeln!(
                out,
                "  param {{ num_output: {} connectivity_permille: {} }}",
                p.num_output, p.connectivity_permille
            );
        }
        LayerKind::Lrn(p) => {
            let _ = writeln!(
                out,
                "  lrn_param {{ local_size: {} alpha: {} beta: {} }}",
                p.local_size, p.alpha, p.beta
            );
        }
        LayerKind::Dropout { ratio } => {
            let _ = writeln!(out, "  dropout_param {{ dropout_ratio: {ratio} }}");
        }
        LayerKind::Recurrent { num_output, steps } => {
            let _ = writeln!(
                out,
                "  recurrent_param {{ num_output: {num_output} steps: {steps} }}"
            );
        }
        LayerKind::Associative {
            table_size,
            active_cells,
        } => {
            let _ = writeln!(
                out,
                "  associative_param {{ table_size: {table_size} active_cells: {active_cells} }}"
            );
        }
        LayerKind::Memory { words } => {
            let _ = writeln!(out, "  memory_param {{ words: {words} }}");
        }
        LayerKind::Classifier { top_k } => {
            let _ = writeln!(out, "  classifier_param {{ top_k: {top_k} }}");
        }
        LayerKind::Inception(p) => {
            let _ = writeln!(
                out,
                "  inception_param {{ c1x1: {} c3x3: {} c5x5: {} cpool: {} }}",
                p.c1x1, p.c3x3, p.c5x5, p.cpool
            );
        }
        LayerKind::Activation(_) | LayerKind::Concat | LayerKind::Eltwise => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetworkBuilder;
    use crate::layer::PoolMethod;
    use crate::prototxt::parse_network;

    #[test]
    fn roundtrip_sequential() {
        let net = NetworkBuilder::new("rt", 3, 16, 16)
            .conv("c1", 8, 3, 1)
            .activation("r1", Activation::Relu)
            .pool("p1", PoolMethod::Average, 2, 2)
            .full("fc", 10)
            .classifier("cls", 1)
            .build()
            .expect("builds");
        let text = emit_prototxt(&net);
        let back = parse_network(&text).expect("re-parses");
        assert_eq!(back, net);
    }

    #[test]
    fn roundtrip_recurrent_with_connection() {
        let net = NetworkBuilder::new("rnn", 8, 1, 1)
            .recurrent("state", 8, 4)
            .full("out", 2)
            .build()
            .expect("builds");
        let text = emit_prototxt(&net);
        let back = parse_network(&text).expect("re-parses");
        assert_eq!(back, net);
        assert!(back.is_recurrent());
    }

    #[test]
    fn emitted_text_is_readable() {
        let net = NetworkBuilder::new("t", 1, 8, 8)
            .conv("c", 4, 3, 1)
            .build()
            .expect("builds");
        let text = emit_prototxt(&net);
        assert!(text.contains("name: \"t\""));
        assert!(text.contains("type: CONVOLUTION"));
        assert!(text.contains("num_output: 4"));
    }
}
