//! Blob shapes and per-layer shape inference.

use crate::layer::{Layer, LayerKind};
use std::fmt;

/// The shape of a feature blob: `channels × height × width` (no batch
/// dimension — the accelerator streams one input set at a time).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Shape {
    /// Feature maps (`D_in` / `D_out` in paper Fig. 1).
    pub channels: usize,
    /// Map height `Y`.
    pub height: usize,
    /// Map width `X`.
    pub width: usize,
}

impl Shape {
    /// A volume shape.
    pub fn new(channels: usize, height: usize, width: usize) -> Self {
        Shape {
            channels,
            height,
            width,
        }
    }

    /// A flat vector of `n` values (FC layer I/O).
    pub fn vector(n: usize) -> Self {
        Shape {
            channels: n,
            height: 1,
            width: 1,
        }
    }

    /// Total element count.
    pub fn elements(self) -> usize {
        self.channels * self.height * self.width
    }

    /// Whether this is a flat vector (1×1 spatial extent).
    pub fn is_vector(self) -> bool {
        self.height == 1 && self.width == 1
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}x{}", self.channels, self.height, self.width)
    }
}

/// Error produced when a layer cannot infer its output shape.
#[derive(Debug, Clone, PartialEq)]
pub enum ShapeError {
    /// Kernel (plus padding) larger than the input map.
    KernelExceedsInput {
        /// Offending layer.
        layer: String,
        /// Kernel size.
        kernel: usize,
        /// Input extent (min of padded height/width).
        input: usize,
    },
    /// A stride of zero was specified.
    ZeroStride {
        /// Offending layer.
        layer: String,
    },
    /// Grouped convolution whose channel counts don't divide by the group.
    BadGrouping {
        /// Offending layer.
        layer: String,
        /// Input channels.
        channels: usize,
        /// Group count.
        group: usize,
    },
    /// The layer kind requires a vector input but got a volume (or needs at
    /// least one bottom and got none).
    BadInput {
        /// Offending layer.
        layer: String,
        /// Explanation.
        detail: String,
    },
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShapeError::KernelExceedsInput {
                layer,
                kernel,
                input,
            } => write!(
                f,
                "layer `{layer}`: kernel {kernel} exceeds padded input extent {input}"
            ),
            ShapeError::ZeroStride { layer } => {
                write!(f, "layer `{layer}`: stride must be non-zero")
            }
            ShapeError::BadGrouping {
                layer,
                channels,
                group,
            } => write!(
                f,
                "layer `{layer}`: {channels} channels not divisible into {group} groups"
            ),
            ShapeError::BadInput { layer, detail } => {
                write!(f, "layer `{layer}`: {detail}")
            }
        }
    }
}

impl std::error::Error for ShapeError {}

/// Output spatial extent of a sliding window: `(in + 2*pad - k) / s + 1`.
fn window_out(input: usize, kernel: usize, stride: usize, pad: usize) -> usize {
    (input + 2 * pad - kernel) / stride + 1
}

/// Infers the output shape of `layer` given its (single merged) input shape.
///
/// Multi-input layers (`Concat`, `Eltwise`) receive all bottoms.
///
/// # Errors
///
/// Returns a [`ShapeError`] describing the first violated constraint.
pub fn infer_output(layer: &Layer, inputs: &[Shape]) -> Result<Shape, ShapeError> {
    let name = || layer.name.clone();
    let single = || -> Result<Shape, ShapeError> {
        inputs.first().copied().ok_or_else(|| ShapeError::BadInput {
            layer: name(),
            detail: "layer has no input blob".into(),
        })
    };
    match &layer.kind {
        LayerKind::Input {
            channels,
            height,
            width,
        } => Ok(Shape::new(*channels, *height, *width)),
        LayerKind::Convolution(p) => {
            let input = single()?;
            if p.stride == 0 {
                return Err(ShapeError::ZeroStride { layer: name() });
            }
            let padded = input.height.min(input.width) + 2 * p.pad;
            if p.kernel_size > padded {
                return Err(ShapeError::KernelExceedsInput {
                    layer: name(),
                    kernel: p.kernel_size,
                    input: padded,
                });
            }
            if input.channels % p.group != 0 || p.num_output % p.group != 0 {
                return Err(ShapeError::BadGrouping {
                    layer: name(),
                    channels: input.channels,
                    group: p.group,
                });
            }
            Ok(Shape::new(
                p.num_output,
                window_out(input.height, p.kernel_size, p.stride, p.pad),
                window_out(input.width, p.kernel_size, p.stride, p.pad),
            ))
        }
        LayerKind::Pooling(p) => {
            let input = single()?;
            if p.stride == 0 {
                return Err(ShapeError::ZeroStride { layer: name() });
            }
            if p.kernel_size > input.height.min(input.width) {
                return Err(ShapeError::KernelExceedsInput {
                    layer: name(),
                    kernel: p.kernel_size,
                    input: input.height.min(input.width),
                });
            }
            Ok(Shape::new(
                input.channels,
                window_out(input.height, p.kernel_size, p.stride, 0),
                window_out(input.width, p.kernel_size, p.stride, 0),
            ))
        }
        LayerKind::FullConnection(p) => {
            single()?;
            Ok(Shape::vector(p.num_output))
        }
        LayerKind::Recurrent { num_output, .. } => {
            single()?;
            Ok(Shape::vector(*num_output))
        }
        LayerKind::Associative { active_cells, .. } => {
            single()?;
            Ok(Shape::vector(*active_cells))
        }
        LayerKind::Memory { words } => {
            single()?;
            Ok(Shape::vector(*words))
        }
        LayerKind::Activation(_) | LayerKind::Dropout { .. } => single(),
        LayerKind::Lrn(_) => single(),
        LayerKind::Classifier { top_k } => {
            single()?;
            Ok(Shape::vector(*top_k))
        }
        LayerKind::Inception(p) => {
            let input = single()?;
            Ok(Shape::new(p.total_output(), input.height, input.width))
        }
        LayerKind::Concat => {
            if inputs.is_empty() {
                return Err(ShapeError::BadInput {
                    layer: name(),
                    detail: "concat needs at least one input".into(),
                });
            }
            let (h, w) = (inputs[0].height, inputs[0].width);
            if inputs.iter().any(|s| s.height != h || s.width != w) {
                return Err(ShapeError::BadInput {
                    layer: name(),
                    detail: "concat inputs disagree in spatial extent".into(),
                });
            }
            Ok(Shape::new(inputs.iter().map(|s| s.channels).sum(), h, w))
        }
        LayerKind::Eltwise => {
            let first = single()?;
            if inputs.iter().any(|s| *s != first) {
                return Err(ShapeError::BadInput {
                    layer: name(),
                    detail: "eltwise inputs disagree in shape".into(),
                });
            }
            Ok(first)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{Activation, ConvParam, FullParam, PoolMethod, PoolParam};

    fn conv_layer(p: ConvParam) -> Layer {
        Layer::new("c", LayerKind::Convolution(p), "in", "out")
    }

    #[test]
    fn conv_shape_alexnet_conv1() {
        // AlexNet conv1: 227x227x3, 96 kernels 11x11 stride 4 -> 96x55x55
        let l = conv_layer(ConvParam::new(96, 11, 4));
        let out = infer_output(&l, &[Shape::new(3, 227, 227)]).expect("valid");
        assert_eq!(out, Shape::new(96, 55, 55));
    }

    #[test]
    fn conv_shape_with_padding() {
        // 5x5 pad 2 stride 1 preserves extent.
        let l = conv_layer(ConvParam::new(256, 5, 1).with_pad(2));
        let out = infer_output(&l, &[Shape::new(96, 27, 27)]).expect("valid");
        assert_eq!(out, Shape::new(256, 27, 27));
    }

    #[test]
    fn pool_shape() {
        let l = Layer::new(
            "p",
            LayerKind::Pooling(PoolParam {
                method: PoolMethod::Max,
                kernel_size: 2,
                stride: 2,
            }),
            "in",
            "out",
        );
        let out = infer_output(&l, &[Shape::new(20, 24, 24)]).expect("valid");
        assert_eq!(out, Shape::new(20, 12, 12));
    }

    #[test]
    fn pool_overlapping() {
        // AlexNet pool: 3x3 stride 2 on 55x55 -> 27x27
        let l = Layer::new(
            "p",
            LayerKind::Pooling(PoolParam {
                method: PoolMethod::Max,
                kernel_size: 3,
                stride: 2,
            }),
            "in",
            "out",
        );
        let out = infer_output(&l, &[Shape::new(96, 55, 55)]).expect("valid");
        assert_eq!(out, Shape::new(96, 27, 27));
    }

    #[test]
    fn fc_flattens() {
        let l = Layer::new(
            "fc",
            LayerKind::FullConnection(FullParam::dense(10)),
            "in",
            "out",
        );
        let out = infer_output(&l, &[Shape::new(50, 4, 4)]).expect("valid");
        assert_eq!(out, Shape::vector(10));
    }

    #[test]
    fn activation_preserves_shape() {
        let l = Layer::new("r", LayerKind::Activation(Activation::Relu), "in", "out");
        let s = Shape::new(96, 27, 27);
        assert_eq!(infer_output(&l, &[s]).expect("valid"), s);
    }

    #[test]
    fn kernel_too_big_rejected() {
        let l = conv_layer(ConvParam::new(8, 9, 1));
        assert!(matches!(
            infer_output(&l, &[Shape::new(1, 5, 5)]),
            Err(ShapeError::KernelExceedsInput { .. })
        ));
    }

    #[test]
    fn zero_stride_rejected() {
        let l = conv_layer(ConvParam::new(8, 3, 0));
        assert!(matches!(
            infer_output(&l, &[Shape::new(1, 5, 5)]),
            Err(ShapeError::ZeroStride { .. })
        ));
    }

    #[test]
    fn bad_grouping_rejected() {
        let l = conv_layer(ConvParam::new(8, 3, 1).with_group(3));
        assert!(matches!(
            infer_output(&l, &[Shape::new(4, 5, 5)]),
            Err(ShapeError::BadGrouping { .. })
        ));
    }

    #[test]
    fn concat_sums_channels() {
        let l = Layer {
            name: "cat".into(),
            kind: LayerKind::Concat,
            bottoms: vec!["a".into(), "b".into()],
            tops: vec!["out".into()],
        };
        let out =
            infer_output(&l, &[Shape::new(64, 28, 28), Shape::new(32, 28, 28)]).expect("valid");
        assert_eq!(out, Shape::new(96, 28, 28));
    }

    #[test]
    fn concat_spatial_mismatch_rejected() {
        let l = Layer {
            name: "cat".into(),
            kind: LayerKind::Concat,
            bottoms: vec!["a".into(), "b".into()],
            tops: vec!["out".into()],
        };
        assert!(infer_output(&l, &[Shape::new(64, 28, 28), Shape::new(32, 14, 14)]).is_err());
    }

    #[test]
    fn no_input_rejected() {
        let l = Layer {
            name: "fc".into(),
            kind: LayerKind::FullConnection(FullParam::dense(4)),
            bottoms: vec![],
            tops: vec!["out".into()],
        };
        assert!(matches!(
            infer_output(&l, &[]),
            Err(ShapeError::BadInput { .. })
        ));
    }

    #[test]
    fn shape_display_and_elements() {
        let s = Shape::new(3, 227, 227);
        assert_eq!(s.to_string(), "3x227x227");
        assert_eq!(s.elements(), 3 * 227 * 227);
        assert!(Shape::vector(10).is_vector());
        assert!(!s.is_vector());
    }
}
