//! Neural-network IR for DeepBurning: layer definitions, the network graph,
//! shape inference, static analysis and the Caffe-compatible descriptive
//! script parser (paper Fig. 4).
//!
//! A [`Network`] is the input to the NN-Gen generator: a list of layers in
//! execution order wired through named blobs, optionally carrying explicit
//! `connect` blocks for recurrent edges.
//!
//! # Examples
//!
//! Parse the descriptive script and inspect shapes:
//!
//! ```
//! let src = r#"
//! name: "tiny"
//! layers { name: "data" type: INPUT top: "data"
//!          input_param { channels: 1 height: 12 width: 12 } }
//! layers { name: "conv1" type: CONVOLUTION bottom: "data" top: "conv1"
//!          param { num_output: 4 kernel_size: 3 stride: 1 } }
//! layers { name: "pool1" type: POOLING bottom: "conv1" top: "pool1"
//!          pooling_param { pool: MAX kernel_size: 2 stride: 2 } }
//! "#;
//! let net = deepburning_model::parse_network(src)?;
//! let shapes = net.infer_shapes()?;
//! assert_eq!(shapes["pool1"].to_string(), "4x5x5");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod analysis;
mod builder;
mod graph;
mod layer;
mod prototxt;
mod shape;
mod writer;

pub use analysis::{
    decompose, layer_stats, network_stats, training_stats, weight_bytes, Decomposition, LayerStats,
    NetworkStats, TrainingStats,
};
pub use builder::NetworkBuilder;
pub use graph::{Network, NetworkError};
pub use layer::{
    Activation, ConnectDirection, ConnectType, Connection, ConvParam, FullParam, InceptionParam,
    Layer, LayerKind, LrnParam, PoolMethod, PoolParam,
};
pub use prototxt::{parse_network, ParseError, ScriptError};
pub use shape::{infer_output, Shape, ShapeError};
pub use writer::emit_prototxt;

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_conv() -> impl Strategy<Value = (usize, usize, usize, usize, usize)> {
        // (in_ch, extent, num_output, kernel, stride)
        (1usize..8, 4usize..40, 1usize..32, 1usize..6, 1usize..4)
            .prop_filter("kernel fits", |(_, e, _, k, _)| k <= e)
    }

    proptest! {
        #[test]
        fn conv_output_extent_consistent((ci, e, co, k, s) in arb_conv()) {
            let l = Layer::new("c", LayerKind::Convolution(ConvParam::new(co, k, s)), "in", "out");
            let out = infer_output(&l, &[Shape::new(ci, e, e)]).expect("fits");
            // Re-deriving the input extent from the output must cover the kernel.
            prop_assert!( (out.height - 1) * s + k <= e );
            prop_assert!( e < (out.height) * s + k );
            prop_assert_eq!(out.channels, co);
        }

        #[test]
        fn conv_macs_equal_weights_times_spatial((ci, e, co, k, s) in arb_conv()) {
            let l = Layer::new("c", LayerKind::Convolution(ConvParam::new(co, k, s)), "in", "out");
            let input = Shape::new(ci, e, e);
            let out = infer_output(&l, &[input]).expect("fits");
            let stats = layer_stats(&l, &[input], out);
            // MACs = (weights - biases) * output spatial positions.
            let kernel_weights = (co * ci * k * k) as u64;
            prop_assert_eq!(stats.macs, kernel_weights * (out.height * out.width) as u64);
        }

        #[test]
        fn pool_never_increases_extent(e in 2usize..64, k in 1usize..5, s in 1usize..4) {
            prop_assume!(k <= e);
            let l = Layer::new("p", LayerKind::Pooling(PoolParam {
                method: PoolMethod::Max, kernel_size: k, stride: s,
            }), "in", "out");
            let out = infer_output(&l, &[Shape::new(3, e, e)]).expect("fits");
            prop_assert!(out.height <= e && out.width <= e);
            prop_assert_eq!(out.channels, 3);
        }

        #[test]
        fn prototxt_roundtrip_random_chains(
            specs in proptest::collection::vec((1usize..32, 0usize..3), 1..6)
        ) {
            // Random sequential FC/activation chains must round-trip
            // through emit_prototxt -> parse_network unchanged.
            let mut b = NetworkBuilder::new("rt", 4, 1, 1);
            for (i, (n, act)) in specs.iter().enumerate() {
                b = b.full(&format!("fc{i}"), *n);
                b = match act {
                    0 => b,
                    1 => b.activation(&format!("a{i}"), Activation::Sigmoid),
                    _ => b.activation(&format!("a{i}"), Activation::Relu),
                };
            }
            let net = b.build().expect("builds");
            let back = parse_network(&emit_prototxt(&net)).expect("re-parses");
            prop_assert_eq!(back, net);
        }

        #[test]
        fn stats_totals_monotone_in_layer_count(n in 1usize..6) {
            let mut layers = vec![Layer::input("data", "data", 2, 1, 1)];
            let mut prev = "data".to_string();
            for i in 0..n {
                let name = format!("fc{i}");
                layers.push(Layer::new(&name, LayerKind::FullConnection(FullParam::dense(4)), &prev, &name));
                prev = name;
            }
            let net = Network::from_layers("chain", layers).expect("valid");
            let stats = network_stats(&net).expect("stats");
            prop_assert_eq!(stats.per_layer.len(), n + 1);
            // First FC: 2*4 MACs, the rest 4*4 each.
            prop_assert_eq!(stats.total.macs, 8 + 16 * (n as u64 - 1));
        }
    }
}
