//! Static network analysis: operation counts, weight footprints and the
//! layer-category decomposition of paper Table 1.
//!
//! These numbers drive the folding planner (how much work each layer
//! carries), the CPU cost model, and the Table 1 harness.

use crate::graph::{Network, NetworkError};
use crate::layer::{Layer, LayerKind};
use crate::shape::Shape;
use std::collections::BTreeMap;

/// Operation and storage counts for one layer instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LayerStats {
    /// Multiply-accumulate operations (the DSP-slice workload).
    pub macs: u64,
    /// Auxiliary ALU operations: compares, adds, scales (pooling, LRN
    /// window sums, dropout scaling, eltwise).
    pub aux_ops: u64,
    /// Non-linear evaluations served by an Approx LUT.
    pub lut_ops: u64,
    /// Weight parameters held in memory (including biases).
    pub weights: u64,
    /// Elements read from the input blob(s).
    pub input_elems: u64,
    /// Elements written to the output blob.
    pub output_elems: u64,
}

impl LayerStats {
    /// Element-wise sum of two stat records.
    pub fn merge(self, other: LayerStats) -> LayerStats {
        LayerStats {
            macs: self.macs + other.macs,
            aux_ops: self.aux_ops + other.aux_ops,
            lut_ops: self.lut_ops + other.lut_ops,
            weights: self.weights + other.weights,
            input_elems: self.input_elems + other.input_elems,
            output_elems: self.output_elems + other.output_elems,
        }
    }

    /// All arithmetic work (MACs + aux + LUT), the CPU model's op count.
    pub fn total_ops(self) -> u64 {
        self.macs + self.aux_ops + self.lut_ops
    }
}

/// Computes [`LayerStats`] for one layer given resolved input/output shapes.
pub fn layer_stats(layer: &Layer, inputs: &[Shape], output: Shape) -> LayerStats {
    let in_elems: u64 = inputs.iter().map(|s| s.elements() as u64).sum();
    let out_elems = output.elements() as u64;
    let mut stats = LayerStats {
        input_elems: in_elems,
        output_elems: out_elems,
        ..LayerStats::default()
    };
    match &layer.kind {
        LayerKind::Input { .. } => {}
        LayerKind::Convolution(p) => {
            let ci = inputs.first().map(|s| s.channels).unwrap_or(0) as u64;
            let k2 = (p.kernel_size * p.kernel_size) as u64;
            let per_output = ci / p.group as u64 * k2;
            stats.macs = out_elems * per_output;
            stats.weights = p.num_output as u64 * per_output + p.num_output as u64;
        }
        LayerKind::Pooling(p) => {
            stats.aux_ops = out_elems * (p.kernel_size * p.kernel_size) as u64;
        }
        LayerKind::FullConnection(p) => {
            let dense = in_elems * p.num_output as u64;
            stats.macs = dense * p.connectivity_permille as u64 / 1000;
            stats.weights = stats.macs + p.num_output as u64;
        }
        LayerKind::Activation(a) => {
            if a.needs_lut() {
                stats.lut_ops = out_elems;
            } else {
                stats.aux_ops = out_elems;
            }
        }
        LayerKind::Lrn(p) => {
            // Window sum per element plus one LUT power evaluation.
            stats.aux_ops = out_elems * p.local_size as u64;
            stats.lut_ops = out_elems;
        }
        LayerKind::Dropout { .. } => {
            stats.aux_ops = out_elems;
        }
        LayerKind::Recurrent { num_output, steps } => {
            let n = *num_output as u64;
            let unrolled = (in_elems + n) * n;
            stats.macs = unrolled * *steps as u64;
            stats.weights = (in_elems + n) * n + n;
        }
        LayerKind::Associative {
            table_size,
            active_cells,
        } => {
            stats.aux_ops = *active_cells as u64;
            stats.weights = *table_size as u64;
        }
        LayerKind::Memory { words } => {
            stats.aux_ops = *words as u64;
        }
        LayerKind::Classifier { top_k } => {
            // K-sorter cost: n compares per selection pass.
            stats.aux_ops = in_elems * (*top_k as u64);
        }
        LayerKind::Inception(p) => {
            let input = inputs.first().copied().unwrap_or(Shape::vector(0));
            let (ci, hw) = (input.channels as u64, (output.height * output.width) as u64);
            let macs_1x1 = p.c1x1 as u64 * hw * ci;
            let macs_3x3 = p.c3x3 as u64 * hw * ci * 9;
            let macs_5x5 = p.c5x5 as u64 * hw * ci * 25;
            let macs_pool = p.cpool as u64 * hw * ci;
            stats.macs = macs_1x1 + macs_3x3 + macs_5x5 + macs_pool;
            stats.aux_ops = hw * ci * 9; // the 3x3 pooling branch
            stats.weights = p.c1x1 as u64 * ci
                + p.c3x3 as u64 * ci * 9
                + p.c5x5 as u64 * ci * 25
                + p.cpool as u64 * ci
                + p.total_output() as u64;
        }
        LayerKind::Concat => {}
        LayerKind::Eltwise => {
            stats.aux_ops = out_elems * inputs.len().saturating_sub(1) as u64;
        }
    }
    stats
}

/// Per-network operation summary.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct NetworkStats {
    /// `(layer name, stats)` in execution order.
    pub per_layer: Vec<(String, LayerStats)>,
    /// Sum over all layers.
    pub total: LayerStats,
}

impl NetworkStats {
    /// Stats of a single layer by name.
    pub fn layer(&self, name: &str) -> Option<LayerStats> {
        self.per_layer
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, s)| *s)
    }
}

/// Computes operation counts for every layer of `net`.
///
/// # Errors
///
/// Propagates shape-inference failures (cannot happen on a validated
/// [`Network`], but the signature keeps the API honest).
pub fn network_stats(net: &Network) -> Result<NetworkStats, NetworkError> {
    let shapes = net.infer_shapes()?;
    let mut per_layer = Vec::with_capacity(net.layers().len());
    let mut total = LayerStats::default();
    for layer in net.layers() {
        let inputs: Vec<Shape> = layer.bottoms.iter().map(|b| shapes[b]).collect();
        let output = shapes[&layer.tops[0]];
        let stats = layer_stats(layer, &inputs, output);
        total = total.merge(stats);
        per_layer.push((layer.name.clone(), stats));
    }
    Ok(NetworkStats { per_layer, total })
}

/// Operation counts for one training iteration (forward + backward +
/// weight update) — the workload behind the paper's "accelerate the
/// time-consuming NN training" motivation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TrainingStats {
    /// Forward-propagation stats.
    pub forward: LayerStats,
    /// Backward-propagation MACs (input gradients + weight gradients —
    /// roughly 2x the forward MACs for the weighted layers).
    pub backward_macs: u64,
    /// Backward auxiliary ops (pooling gradient routing, activation
    /// derivatives).
    pub backward_aux: u64,
    /// Weight-update operations (one multiply-add per parameter).
    pub update_ops: u64,
}

impl TrainingStats {
    /// Total arithmetic of one training iteration.
    pub fn total_ops(&self) -> u64 {
        self.forward.total_ops() + self.backward_macs + self.backward_aux + self.update_ops
    }
}

/// Computes per-iteration training work for the whole network.
///
/// # Errors
///
/// Propagates shape-inference failures.
pub fn training_stats(net: &Network) -> Result<TrainingStats, NetworkError> {
    let stats = network_stats(net)?;
    let shapes = net.infer_shapes()?;
    let mut backward_macs = 0u64;
    let mut backward_aux = 0u64;
    let mut update_ops = 0u64;
    for layer in net.layers() {
        let inputs: Vec<Shape> = layer.bottoms.iter().map(|b| shapes[b]).collect();
        let output = shapes[&layer.tops[0]];
        let ls = layer_stats(layer, &inputs, output);
        match &layer.kind {
            LayerKind::Convolution(_)
            | LayerKind::FullConnection(_)
            | LayerKind::Recurrent { .. }
            | LayerKind::Inception(_) => {
                // dX = W^T dY and dW = dY x X — each mirrors the forward
                // MAC count.
                backward_macs += 2 * ls.macs;
                update_ops += ls.weights;
            }
            LayerKind::Pooling(_) => backward_aux += ls.aux_ops,
            LayerKind::Activation(_) => {
                backward_aux += ls.output_elems; // derivative multiply
            }
            LayerKind::Lrn(_) | LayerKind::Dropout { .. } | LayerKind::Eltwise => {
                backward_aux += ls.output_elems;
            }
            _ => {}
        }
    }
    Ok(TrainingStats {
        forward: stats.total,
        backward_macs,
        backward_aux,
        update_ops,
    })
}

/// Layer-category usage flags — one row of paper Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Decomposition {
    /// Uses convolution layers.
    pub conv: bool,
    /// Uses full-connection layers.
    pub fc: bool,
    /// Uses activation functions.
    pub act_func: bool,
    /// Uses drop-out.
    pub dropout: bool,
    /// Uses LRN/LCN.
    pub lrn: bool,
    /// Uses pooling.
    pub pooling: bool,
    /// Uses associative (CMAC) layers.
    pub associative: bool,
    /// Contains a recurrent path.
    pub recurrent: bool,
}

impl Decomposition {
    /// Column order used by the Table 1 harness.
    pub const CATEGORIES: [&'static str; 7] = [
        "Conv. Layer",
        "FC Layer",
        "Act-Func",
        "Drop-Out",
        "LRN",
        "Pooling",
        "Associative",
    ];

    /// Flags as booleans in [`Self::CATEGORIES`] order.
    pub fn as_flags(&self) -> [bool; 7] {
        [
            self.conv,
            self.fc,
            self.act_func,
            self.dropout,
            self.lrn,
            self.pooling,
            self.associative,
        ]
    }
}

/// Decomposes `net` into the layer categories of paper Table 1.
pub fn decompose(net: &Network) -> Decomposition {
    let mut d = Decomposition {
        recurrent: net.is_recurrent(),
        ..Decomposition::default()
    };
    for layer in net.layers() {
        match &layer.kind {
            LayerKind::Convolution(_) | LayerKind::Inception(_) => d.conv = true,
            LayerKind::FullConnection(_) => d.fc = true,
            LayerKind::Activation(_) => d.act_func = true,
            LayerKind::Dropout { .. } => d.dropout = true,
            LayerKind::Lrn(_) => d.lrn = true,
            LayerKind::Pooling(_) => d.pooling = true,
            LayerKind::Associative { .. } => d.associative = true,
            LayerKind::Recurrent { .. } => {
                d.recurrent = true;
                d.fc = true;
            }
            _ => {}
        }
    }
    d
}

/// Weight bytes needed at a given word width, per layer.
pub fn weight_bytes(
    net: &Network,
    bits_per_word: u32,
) -> Result<BTreeMap<String, u64>, NetworkError> {
    let stats = network_stats(net)?;
    Ok(stats
        .per_layer
        .into_iter()
        .map(|(name, s)| (name, s.weights * bits_per_word as u64 / 8))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{Activation, ConvParam, FullParam, PoolMethod, PoolParam};

    fn mnist_like() -> Network {
        Network::from_layers(
            "mnist",
            vec![
                Layer::input("data", "data", 1, 28, 28),
                Layer::new(
                    "conv1",
                    LayerKind::Convolution(ConvParam::new(20, 5, 1)),
                    "data",
                    "conv1",
                ),
                Layer::new(
                    "pool1",
                    LayerKind::Pooling(PoolParam {
                        method: PoolMethod::Max,
                        kernel_size: 2,
                        stride: 2,
                    }),
                    "conv1",
                    "pool1",
                ),
                Layer::new(
                    "ip1",
                    LayerKind::FullConnection(FullParam::dense(100)),
                    "pool1",
                    "ip1",
                ),
                Layer::new(
                    "sig",
                    LayerKind::Activation(Activation::Sigmoid),
                    "ip1",
                    "ip1",
                ),
                Layer::new(
                    "ip2",
                    LayerKind::FullConnection(FullParam::dense(10)),
                    "ip1",
                    "ip2",
                ),
            ],
        )
        .expect("valid")
    }

    #[test]
    fn conv_macs_exact() {
        let net = mnist_like();
        let stats = network_stats(&net).expect("stats");
        // conv1: 20 maps of 24x24, each output = 1*5*5 MACs
        assert_eq!(stats.layer("conv1").expect("layer").macs, 20 * 24 * 24 * 25);
        assert_eq!(stats.layer("conv1").expect("layer").weights, 20 * 25 + 20);
    }

    #[test]
    fn fc_macs_exact() {
        let net = mnist_like();
        let stats = network_stats(&net).expect("stats");
        // ip1: input 20*12*12 = 2880 elements, 100 outputs
        assert_eq!(stats.layer("ip1").expect("layer").macs, 2880 * 100);
        assert_eq!(stats.layer("ip1").expect("layer").weights, 2880 * 100 + 100);
    }

    #[test]
    fn pooling_has_no_macs() {
        let net = mnist_like();
        let stats = network_stats(&net).expect("stats");
        let p = stats.layer("pool1").expect("layer");
        assert_eq!(p.macs, 0);
        assert_eq!(p.aux_ops, 20 * 12 * 12 * 4);
    }

    #[test]
    fn sigmoid_counts_lut_ops() {
        let net = mnist_like();
        let stats = network_stats(&net).expect("stats");
        assert_eq!(stats.layer("sig").expect("layer").lut_ops, 100);
        assert_eq!(stats.layer("sig").expect("layer").macs, 0);
    }

    #[test]
    fn totals_are_sums() {
        let net = mnist_like();
        let stats = network_stats(&net).expect("stats");
        let sum: u64 = stats.per_layer.iter().map(|(_, s)| s.macs).sum();
        assert_eq!(stats.total.macs, sum);
        assert!(stats.total.total_ops() > stats.total.macs);
    }

    #[test]
    fn partial_connectivity_scales_macs() {
        let dense = Layer::new(
            "fc",
            LayerKind::FullConnection(FullParam::dense(10)),
            "in",
            "out",
        );
        let sparse = Layer::new(
            "fc",
            LayerKind::FullConnection(FullParam {
                num_output: 10,
                connectivity_permille: 500,
            }),
            "in",
            "out",
        );
        let s_dense = layer_stats(&dense, &[Shape::vector(100)], Shape::vector(10));
        let s_sparse = layer_stats(&sparse, &[Shape::vector(100)], Shape::vector(10));
        assert_eq!(s_sparse.macs * 2, s_dense.macs);
    }

    #[test]
    fn decomposition_flags() {
        let net = mnist_like();
        let d = decompose(&net);
        assert!(d.conv && d.fc && d.act_func && d.pooling);
        assert!(!d.dropout && !d.lrn && !d.associative && !d.recurrent);
        assert_eq!(d.as_flags(), [true, true, true, false, false, true, false]);
    }

    #[test]
    fn weight_bytes_at_16_bits() {
        let net = mnist_like();
        let wb = weight_bytes(&net, 16).expect("bytes");
        assert_eq!(wb["conv1"], (20 * 25 + 20) * 2);
        assert_eq!(wb["pool1"], 0);
    }

    #[test]
    fn grouped_conv_halves_macs() {
        let ungrouped = Layer::new(
            "c",
            LayerKind::Convolution(ConvParam::new(8, 3, 1)),
            "in",
            "out",
        );
        let grouped = Layer::new(
            "c",
            LayerKind::Convolution(ConvParam::new(8, 3, 1).with_group(2)),
            "in",
            "out",
        );
        let input = Shape::new(4, 8, 8);
        let out = Shape::new(8, 6, 6);
        let su = layer_stats(&ungrouped, &[input], out);
        let sg = layer_stats(&grouped, &[input], out);
        assert_eq!(sg.macs * 2, su.macs);
    }
}
