//! Layer definitions of the DeepBurning network IR.
//!
//! The set mirrors the paper's §3.2 inventory: "Currently DeepBurning
//! supports typical convolutional layer, pooling layer, full-connection
//! layer, recurrent layer, associative layer and other common CNN or ANN
//! operations" plus LRN, drop-out, activation, classification and inception
//! layers listed in the block-mapping table.

use std::fmt;

/// Activation function applied by an activation layer (or fused into a
/// neuron's output stage).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Activation {
    /// Rectified linear unit — implemented in logic (a mux), no LUT needed.
    Relu,
    /// Logistic sigmoid — served from an Approx LUT.
    Sigmoid,
    /// Hyperbolic tangent — served from an Approx LUT.
    Tanh,
    /// Pass-through (linear output layer).
    Identity,
}

impl Activation {
    /// Whether this function needs an Approx LUT (versus pure logic).
    pub fn needs_lut(self) -> bool {
        matches!(self, Activation::Sigmoid | Activation::Tanh)
    }

    /// Reference f64 evaluation, used by the trainer and the LUT filler.
    pub fn eval(self, x: f64) -> f64 {
        match self {
            Activation::Relu => x.max(0.0),
            Activation::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            Activation::Tanh => x.tanh(),
            Activation::Identity => x,
        }
    }

    /// Derivative w.r.t. the pre-activation input, for backprop.
    pub fn derivative(self, x: f64) -> f64 {
        match self {
            Activation::Relu => {
                if x > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Sigmoid => {
                let s = self.eval(x);
                s * (1.0 - s)
            }
            Activation::Tanh => 1.0 - x.tanh().powi(2),
            Activation::Identity => 1.0,
        }
    }
}

impl fmt::Display for Activation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Activation::Relu => "RELU",
            Activation::Sigmoid => "SIGMOID",
            Activation::Tanh => "TANH",
            Activation::Identity => "IDENTITY",
        };
        f.write_str(s)
    }
}

/// Pooling reduction method.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PoolMethod {
    /// Maximum over the window (comparator tree).
    Max,
    /// Average over the window (accumulator + shifting latch, the paper's
    /// "approximate division" via the connection box).
    Average,
}

impl fmt::Display for PoolMethod {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            PoolMethod::Max => "MAX",
            PoolMethod::Average => "AVE",
        })
    }
}

/// Parameters of a convolution layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConvParam {
    /// Number of output feature maps (`num_output` in the script).
    pub num_output: usize,
    /// Square kernel size `k`.
    pub kernel_size: usize,
    /// Stride of the sliding window.
    pub stride: usize,
    /// Zero padding on each border.
    pub pad: usize,
    /// Number of groups (AlexNet-style grouped convolution).
    pub group: usize,
}

impl ConvParam {
    /// Convenience constructor for an ungrouped, unpadded convolution.
    pub fn new(num_output: usize, kernel_size: usize, stride: usize) -> Self {
        ConvParam {
            num_output,
            kernel_size,
            stride,
            pad: 0,
            group: 1,
        }
    }

    /// Returns a copy with padding set.
    pub fn with_pad(mut self, pad: usize) -> Self {
        self.pad = pad;
        self
    }

    /// Returns a copy with the group count set.
    pub fn with_group(mut self, group: usize) -> Self {
        self.group = group;
        self
    }
}

/// Parameters of a pooling layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PoolParam {
    /// Reduction method.
    pub method: PoolMethod,
    /// Square window size `p`.
    pub kernel_size: usize,
    /// Window stride.
    pub stride: usize,
}

/// Parameters of a fully-connected (inner-product) layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FullParam {
    /// Number of output neurons.
    pub num_output: usize,
    /// Fraction (per mille) of synapses realised; `1000` is a dense layer.
    /// The paper notes FC layers "can be partially connected".
    pub connectivity_permille: u32,
}

impl FullParam {
    /// Dense FC layer with `num_output` neurons.
    pub fn dense(num_output: usize) -> Self {
        FullParam {
            num_output,
            connectivity_permille: 1000,
        }
    }
}

/// Parameters of a local-response-normalisation layer (AlexNet-style LRN,
/// also covers LCN in the block mapping).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LrnParam {
    /// Number of adjacent channels normalised over.
    pub local_size: usize,
    /// Scaling coefficient.
    pub alpha: f64,
    /// Exponent.
    pub beta: f64,
}

impl Default for LrnParam {
    fn default() -> Self {
        LrnParam {
            local_size: 5,
            alpha: 1e-4,
            beta: 0.75,
        }
    }
}

/// Parameters of an inception (GoogLeNet-style) composite layer: parallel
/// 1×1 / 3×3 / 5×5 convolutions plus a pooled 1×1 projection, concatenated
/// over channels. Mapped to "pooling-unit + synergy neuron + accumulators".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct InceptionParam {
    /// Output channels of the 1×1 branch.
    pub c1x1: usize,
    /// Output channels of the 3×3 branch.
    pub c3x3: usize,
    /// Output channels of the 5×5 branch.
    pub c5x5: usize,
    /// Output channels of the pool-projection branch.
    pub cpool: usize,
}

impl InceptionParam {
    /// Total concatenated output channels.
    pub fn total_output(self) -> usize {
        self.c1x1 + self.c3x3 + self.c5x5 + self.cpool
    }
}

/// The operator a layer performs.
#[derive(Debug, Clone, PartialEq)]
pub enum LayerKind {
    /// Network input (`data` blob) with an explicit shape.
    Input {
        /// Channels of the input volume.
        channels: usize,
        /// Height in pixels.
        height: usize,
        /// Width in pixels.
        width: usize,
    },
    /// 2-D convolution.
    Convolution(ConvParam),
    /// Spatial pooling.
    Pooling(PoolParam),
    /// Fully-connected layer.
    FullConnection(FullParam),
    /// Element-wise activation.
    Activation(Activation),
    /// Local response normalisation.
    Lrn(LrnParam),
    /// Drop-out inserter (inference mode: scales by `1 - ratio`).
    Dropout {
        /// Fraction of units dropped during training.
        ratio: f64,
    },
    /// Recurrent layer: an FC layer whose output feeds back through the
    /// connection box on the next time step.
    Recurrent {
        /// Number of state neurons.
        num_output: usize,
        /// Steps the network is unrolled for during propagation.
        steps: usize,
    },
    /// Associative (CMAC-style) layer: a sparse table lookup of
    /// `active_cells` weights per input point.
    Associative {
        /// Total number of memory cells.
        table_size: usize,
        /// Cells activated (and summed) per query.
        active_cells: usize,
    },
    /// Memory layer — pure connection-box storage of intermediate values.
    Memory {
        /// Words retained.
        words: usize,
    },
    /// Classification layer (arg-max / top-k via the K-sorter block).
    Classifier {
        /// How many top entries the K-sorter must report.
        top_k: usize,
    },
    /// GoogLeNet-style inception block.
    Inception(InceptionParam),
    /// Element-wise concatenation of the bottoms along channels.
    Concat,
    /// Element-wise sum of the bottoms.
    Eltwise,
}

impl LayerKind {
    /// Short type tag as it appears in the descriptive script.
    pub fn type_name(&self) -> &'static str {
        match self {
            LayerKind::Input { .. } => "INPUT",
            LayerKind::Convolution(_) => "CONVOLUTION",
            LayerKind::Pooling(_) => "POOLING",
            LayerKind::FullConnection(_) => "INNER_PRODUCT",
            LayerKind::Activation(Activation::Relu) => "RELU",
            LayerKind::Activation(Activation::Sigmoid) => "SIGMOID",
            LayerKind::Activation(Activation::Tanh) => "TANH",
            LayerKind::Activation(Activation::Identity) => "LINEAR",
            LayerKind::Lrn(_) => "LRN",
            LayerKind::Dropout { .. } => "DROPOUT",
            LayerKind::Recurrent { .. } => "RECURRENT",
            LayerKind::Associative { .. } => "ASSOCIATIVE",
            LayerKind::Memory { .. } => "MEMORY",
            LayerKind::Classifier { .. } => "CLASSIFIER",
            LayerKind::Inception(_) => "INCEPTION",
            LayerKind::Concat => "CONCAT",
            LayerKind::Eltwise => "ELTWISE",
        }
    }

    /// Whether the layer owns trained weights.
    pub fn has_weights(&self) -> bool {
        matches!(
            self,
            LayerKind::Convolution(_)
                | LayerKind::FullConnection(_)
                | LayerKind::Recurrent { .. }
                | LayerKind::Associative { .. }
                | LayerKind::Inception(_)
        )
    }
}

/// How a `connect` block routes data between layers (paper Fig. 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ConnectDirection {
    /// Normal forward-propagation edge.
    #[default]
    Forward,
    /// Feedback edge closing a recurrent loop; excluded from the
    /// topological order and replayed across time steps.
    Recurrent,
}

/// Connectivity pattern of a `connect` block.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub enum ConnectType {
    /// Every producer channel feeds the consumer ("full per channel").
    #[default]
    FullPerChannel,
    /// Sparse pattern loaded from a side file ("file_specified"); we keep
    /// the file name as an opaque tag.
    FileSpecified(String),
}

/// An explicit inter-layer connection from the descriptive script.
#[derive(Debug, Clone, PartialEq)]
pub struct Connection {
    /// Connection name, e.g. `c2p1`.
    pub name: String,
    /// Producer layer name.
    pub from: String,
    /// Consumer layer name.
    pub to: String,
    /// Forward or recurrent.
    pub direction: ConnectDirection,
    /// Connectivity pattern.
    pub kind: ConnectType,
}

/// A named layer instance: operator + blob wiring.
#[derive(Debug, Clone, PartialEq)]
pub struct Layer {
    /// Unique layer name.
    pub name: String,
    /// The operator.
    pub kind: LayerKind,
    /// Input blob names (`bottom` in the script).
    pub bottoms: Vec<String>,
    /// Output blob names (`top`).
    pub tops: Vec<String>,
}

impl Layer {
    /// Creates a single-input single-output layer.
    pub fn new(
        name: impl Into<String>,
        kind: LayerKind,
        bottom: impl Into<String>,
        top: impl Into<String>,
    ) -> Self {
        Layer {
            name: name.into(),
            kind,
            bottoms: vec![bottom.into()],
            tops: vec![top.into()],
        }
    }

    /// Creates an input layer producing blob `top`.
    pub fn input(
        name: impl Into<String>,
        top: impl Into<String>,
        c: usize,
        h: usize,
        w: usize,
    ) -> Self {
        Layer {
            name: name.into(),
            kind: LayerKind::Input {
                channels: c,
                height: h,
                width: w,
            },
            bottoms: Vec::new(),
            tops: vec![top.into()],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn activation_eval_and_derivative() {
        assert_eq!(Activation::Relu.eval(-1.0), 0.0);
        assert_eq!(Activation::Relu.eval(2.0), 2.0);
        assert_eq!(Activation::Relu.derivative(-1.0), 0.0);
        assert_eq!(Activation::Relu.derivative(1.0), 1.0);
        assert!((Activation::Sigmoid.eval(0.0) - 0.5).abs() < 1e-12);
        assert!((Activation::Sigmoid.derivative(0.0) - 0.25).abs() < 1e-12);
        assert!((Activation::Tanh.eval(0.0)).abs() < 1e-12);
        assert_eq!(Activation::Identity.eval(3.5), 3.5);
        assert_eq!(Activation::Identity.derivative(3.5), 1.0);
    }

    #[test]
    fn lut_need() {
        assert!(!Activation::Relu.needs_lut());
        assert!(Activation::Sigmoid.needs_lut());
        assert!(Activation::Tanh.needs_lut());
    }

    #[test]
    fn conv_param_builder() {
        let p = ConvParam::new(96, 11, 4).with_pad(2).with_group(2);
        assert_eq!(p.num_output, 96);
        assert_eq!(p.pad, 2);
        assert_eq!(p.group, 2);
    }

    #[test]
    fn inception_total() {
        let p = InceptionParam {
            c1x1: 64,
            c3x3: 128,
            c5x5: 32,
            cpool: 32,
        };
        assert_eq!(p.total_output(), 256);
    }

    #[test]
    fn type_names_stable() {
        assert_eq!(
            LayerKind::Convolution(ConvParam::new(1, 3, 1)).type_name(),
            "CONVOLUTION"
        );
        assert_eq!(LayerKind::Activation(Activation::Relu).type_name(), "RELU");
        assert_eq!(LayerKind::Classifier { top_k: 1 }.type_name(), "CLASSIFIER");
    }

    #[test]
    fn has_weights_classification() {
        assert!(LayerKind::FullConnection(FullParam::dense(10)).has_weights());
        assert!(!LayerKind::Pooling(PoolParam {
            method: PoolMethod::Max,
            kernel_size: 2,
            stride: 2
        })
        .has_weights());
    }
}
