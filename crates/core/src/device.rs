//! Target device models and resource budgets.
//!
//! The paper evaluates on Xilinx Zynq devices: the Z-7045 (DB / DB-L) and
//! the Z-7020 (DB-S), all at 100 MHz. A budget is the slice of a device NN-
//! Gen is allowed to fill ("the overhead constraint specified by the
//! developer").

use deepburning_compiler::CompilerConfig;
use deepburning_components::{dsps_per_multiplier, ResourceCost};
use deepburning_fixed::QFormat;

/// A target FPGA device.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Device {
    /// Marketing name.
    pub name: &'static str,
    /// Total programmable resources.
    pub capacity: ResourceCost,
    /// Operating frequency in Hz (the paper fixes 100 MHz).
    pub clock_hz: u64,
}

/// Xilinx Zynq-7045 (the paper's main board).
pub const Z7045: Device = Device {
    name: "Zynq-7045",
    capacity: ResourceCost {
        dsp: 900,
        lut: 218_600,
        ff: 437_200,
        bram_bits: 19_620_000, // 545 x 36 Kb
    },
    clock_hz: 100_000_000,
};

/// Xilinx Zynq-7020 (the paper's small board).
pub const Z7020: Device = Device {
    name: "Zynq-7020",
    capacity: ResourceCost {
        dsp: 220,
        lut: 53_200,
        ff: 106_400,
        bram_bits: 5_040_000, // 140 x 36 Kb
    },
    clock_hz: 100_000_000,
};

/// A resource budget handed to NN-Gen.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Budget {
    /// "DB-S": the full (small) Z-7020.
    Small,
    /// "DB": a medium slice of the Z-7045.
    Medium,
    /// "DB-L": a high budget on the Z-7045.
    Large,
    /// An explicit resource envelope.
    Custom(ResourceCost),
}

impl Budget {
    /// The device a tier targets.
    pub fn device(&self) -> Device {
        match self {
            Budget::Small => Z7020,
            _ => Z7045,
        }
    }

    /// The resource envelope NN-Gen may fill.
    pub fn envelope(&self) -> ResourceCost {
        match self {
            Budget::Small => scale(Z7020.capacity, 0.30),
            // The paper's "mediate resource budget".
            Budget::Medium => scale(Z7045.capacity, 0.10),
            // "high resource budget for Z-7045".
            Budget::Large => scale(Z7045.capacity, 0.85),
            Budget::Custom(c) => *c,
        }
    }

    /// Short tag used in reports (`DB-S` / `DB` / `DB-L`).
    pub fn tag(&self) -> &'static str {
        match self {
            Budget::Small => "DB-S",
            Budget::Medium => "DB",
            Budget::Large => "DB-L",
            Budget::Custom(_) => "DB-C",
        }
    }
}

fn scale(c: ResourceCost, f: f64) -> ResourceCost {
    ResourceCost {
        dsp: (c.dsp as f64 * f) as u32,
        lut: (c.lut as f64 * f) as u32,
        ff: (c.ff as f64 * f) as u32,
        bram_bits: (c.bram_bits as f64 * f) as u64,
    }
}

/// Maximum useful datapath parallelism a network exposes (lanes beyond
/// this idle in every phase). NN-Gen uses it to emit a "properly-scaled
/// hardware structure" — the paper's tiny ANN designs occupy 2 DSPs, not
/// the whole device.
pub fn max_parallel_units(net: &deepburning_model::Network) -> u32 {
    net.layers()
        .iter()
        .filter_map(|l| match &l.kind {
            deepburning_model::LayerKind::Convolution(p) => {
                Some((p.num_output * p.kernel_size * p.kernel_size) as u32)
            }
            deepburning_model::LayerKind::FullConnection(p) => Some(p.num_output as u32),
            deepburning_model::LayerKind::Recurrent { num_output, .. } => Some(*num_output as u32),
            deepburning_model::LayerKind::Inception(p) => Some((p.total_output() * 9) as u32),
            deepburning_model::LayerKind::Associative { active_cells, .. } => {
                Some(*active_cells as u32)
            }
            _ => None,
        })
        .max()
        .unwrap_or(1)
}

/// Derives the compiler configuration from a budget: the lane count that
/// fills the DSP envelope, buffer sizes from the BRAM envelope.
///
/// The datapath keeps a DSP reserve for the Approx LUT interpolator and
/// the LRN unit, and splits BRAM between feature buffer, weight buffer and
/// LUT tables.
pub fn derive_config(budget: &Budget, word_bits: u32) -> CompilerConfig {
    let env = budget.envelope();
    let per_mul = dsps_per_multiplier(word_bits);
    let reserved_dsp = 4 * per_mul; // LUT interpolator + LRN + margin
    let lanes = ((env.dsp.saturating_sub(reserved_dsp)) / per_mul).max(1);
    // Two-thirds of BRAM to the feature buffer, one-third to weights; a
    // small slice is left for LUT tables and FIFOs.
    let usable_bits = env.bram_bits * 9 / 10;
    let feature_buffer_bytes = usable_bits / 8 * 2 / 3;
    let weight_buffer_bytes = usable_bits / 8 / 3;
    CompilerConfig {
        lanes,
        word_bits,
        feature_buffer_bytes,
        weight_buffer_bytes,
        port_width_words: 16,
        lut_entries: 64,
        format: QFormat::Q8_8,
        weights_resident: false,
    }
}

/// Derives the compiler configuration from a budget with an explicit
/// fixed-point format (e.g. Q4.12 for activation-heavy nets, Q12.4 for
/// wide-range accumulations). The word width follows the format; lane
/// count and buffer sizes are budgeted exactly as in [`derive_config`].
pub fn derive_config_for_format(budget: &Budget, format: QFormat) -> CompilerConfig {
    let mut cfg = derive_config(budget, format.total_bits());
    cfg.format = format;
    cfg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiers_target_correct_devices() {
        assert_eq!(Budget::Small.device().name, "Zynq-7020");
        assert_eq!(Budget::Medium.device().name, "Zynq-7045");
        assert_eq!(Budget::Large.device().name, "Zynq-7045");
    }

    #[test]
    fn envelopes_ordered() {
        let s = Budget::Small.envelope();
        let m = Budget::Medium.envelope();
        let l = Budget::Large.envelope();
        assert!(s.dsp < m.dsp && m.dsp < l.dsp);
        assert!(s.bram_bits < m.bram_bits && m.bram_bits < l.bram_bits);
    }

    #[test]
    fn derived_lanes_ordered_and_positive() {
        let s = derive_config(&Budget::Small, 16).lanes;
        let m = derive_config(&Budget::Medium, 16).lanes;
        let l = derive_config(&Budget::Large, 16).lanes;
        assert!(s >= 1);
        assert!(s < m && m < l, "lanes s={s} m={m} l={l}");
        // DB-L offers a high budget: several times the DB lanes (the paper
        // sees DB-L ~3.5x faster than DB on average on the CNNs).
        let ratio = l as f64 / m as f64;
        assert!((3.0..=12.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn wide_words_cost_more_dsps() {
        let narrow = derive_config(&Budget::Medium, 16).lanes;
        let wide = derive_config(&Budget::Medium, 24).lanes;
        assert!(wide < narrow);
    }

    #[test]
    fn custom_budget_respected() {
        let cfg = derive_config(
            &Budget::Custom(ResourceCost {
                dsp: 36,
                lut: 10_000,
                ff: 20_000,
                bram_bits: 1 << 20,
            }),
            16,
        );
        assert_eq!(cfg.lanes, 32);
    }

    #[test]
    fn clock_is_100mhz() {
        assert_eq!(Z7045.clock_hz, 100_000_000);
        assert_eq!(Z7020.clock_hz, 100_000_000);
    }

    #[test]
    fn format_override_sets_word_bits() {
        let q412 = QFormat::new(16, 12).expect("valid");
        let cfg = derive_config_for_format(&Budget::Medium, q412);
        assert_eq!(cfg.format, q412);
        assert_eq!(cfg.word_bits, 16);
        let q124 = QFormat::new(16, 4).expect("valid");
        let cfg = derive_config_for_format(&Budget::Medium, q124);
        assert_eq!(cfg.format, q124);
        // Same word width, same lane budget as the default Q8.8.
        assert_eq!(cfg.lanes, derive_config(&Budget::Medium, 16).lanes);
    }

    #[test]
    fn tags_stable() {
        assert_eq!(Budget::Small.tag(), "DB-S");
        assert_eq!(Budget::Medium.tag(), "DB");
        assert_eq!(Budget::Large.tag(), "DB-L");
    }
}
