//! Top-level RTL assembly: NN-Gen connects "the reconfigurable RTL modules
//! from the library into a top-view of hardware NN structure".
//!
//! The emitted design instantiates the coordinator, the three AGU classes,
//! the buffers and the datapath blocks, and wires the context ROMs whose
//! contents (trigger words, crossbar selects) the compiler fills.

use crate::resources::{collect_patterns, main_write_mask};
use deepburning_compiler::CompiledNetwork;
use deepburning_components::{
    AccumulatorBlock, ActivationUnit, AguBlock, AguClass, ApproxLutBlock, Block, BufferBlock,
    ConnectionBox, Coordinator, KSorter, PerfCounters, PoolingUnit, SynergyNeuron,
};
use deepburning_model::{LayerKind, Network, PoolMethod};
use deepburning_verilog::{BinaryOp, Design, Expr, Item, NetDecl, Port, UnaryOp, VModule};

fn instance(top: &mut VModule, module: &str, name: &str, connections: Vec<(&str, Expr)>) {
    top.item(Item::Instance {
        module: module.to_string(),
        name: name.to_string(),
        params: vec![],
        connections: connections
            .into_iter()
            .map(|(p, e)| (p.to_string(), e))
            .collect(),
    });
}

fn zero_extend(expr: Expr, from: u32, to: u32) -> Expr {
    if to > from {
        Expr::Concat(vec![Expr::lit(to - from, 0), expr])
    } else {
        expr
    }
}

/// Wires the control fabric shared by [`assemble_top`] and
/// [`assemble_control_top`]: coordinator, context ROMs, the three AGUs,
/// phase sequencing, the DRAM command side and the performance counters.
/// `cbox_sel_width` adds the crossbar's `ctx_sel`/`ctx_shift` ROMs when
/// the caller instantiates a connection box; `occ_src_bits` is the
/// feature-buffer address width used for the occupancy proxy.
#[allow(clippy::too_many_arguments)]
fn wire_control_fabric(
    top: &mut VModule,
    compiled: &CompiledNetwork,
    coord: &Coordinator,
    agu_main: &AguBlock,
    agu_data: &AguBlock,
    agu_weight: &AguBlock,
    perf: &PerfCounters,
    cbox_sel_width: Option<u32>,
    occ_src_bits: u32,
) {
    let phases = coord.phases;
    let pw = coord.phase_width();
    for n in ["phase_w", "busy_w", "fire_w", "phase_done"] {
        top.item(Item::Net(NetDecl::wire(
            n,
            if n == "phase_w" { pw } else { 1 },
        )));
    }
    instance(
        top,
        &coord.module_name(),
        "u_coordinator",
        vec![
            ("clk", Expr::id("clk")),
            ("rst", Expr::id("rst")),
            ("start", Expr::id("start")),
            ("phase_done", Expr::id("phase_done")),
            ("phase", Expr::id("phase_w")),
            ("busy", Expr::id("busy_w")),
            ("fire", Expr::id("fire_w")),
        ],
    );
    top.item(Item::Comment(
        "context ROMs below are initialised from the compiler's schedule".into(),
    ));
    let pn_main = agu_main.patterns.len() as u32;
    let pn_data = agu_data.patterns.len() as u32;
    let pn_weight = agu_weight.patterns.len() as u32;
    let pw_main = agu_main.pattern_index_width();
    let mut roms = vec![
        ("ctx_trig_main", pn_main),
        ("ctx_trig_data", pn_data),
        ("ctx_trig_weight", pn_weight),
        ("ctx_lanes", perf.inc_width),
    ];
    if let Some(sel_w) = cbox_sel_width {
        roms.push(("ctx_sel", sel_w * 2));
        roms.push(("ctx_shift", 8u32));
    }
    for (rom, width) in roms {
        top.item(Item::Net(NetDecl::memory(rom, width, phases as usize)));
    }
    // Main-AGU runtime offsets, one word per {phase, hardware pattern}:
    // this ROM is what turns the compiler's per-fold weight slices and
    // spill-slot displacements into real addresses — the canonicalised
    // pattern set alone always replayed offset 0.
    top.item(Item::Net(NetDecl::memory(
        "ctx_off_main",
        32,
        (phases as usize) << pw_main,
    )));
    for (wire, rom, width) in [
        ("trig_main", "ctx_trig_main", pn_main),
        ("trig_data", "ctx_trig_data", pn_data),
        ("trig_weight", "ctx_trig_weight", pn_weight),
    ] {
        top.item(Item::Net(NetDecl::wire(wire, width)));
        top.item(Item::Assign {
            lhs: Expr::id(wire),
            rhs: Expr::Ternary(
                Box::new(Expr::id("fire_w")),
                Box::new(Expr::Index(
                    Box::new(Expr::id(rom)),
                    Box::new(Expr::id("phase_w")),
                )),
                Box::new(Expr::lit(width, 0)),
            ),
        });
    }

    // ---- AGUs ------------------------------------------------------------
    for class in ["main", "data", "weight"] {
        top.item(Item::Net(NetDecl::wire(format!("agu_{class}_addr"), 32)));
        top.item(Item::Net(NetDecl::wire(format!("agu_{class}_valid"), 1)));
        top.item(Item::Net(NetDecl::wire(format!("agu_{class}_done"), 1)));
    }
    top.item(Item::Net(NetDecl::wire("agu_main_pat_next", pw_main)));
    top.item(Item::Net(NetDecl::wire("agu_main_pat_cur", pw_main)));
    top.item(Item::Net(NetDecl::wire("agu_main_off", 32)));
    // The offset the main AGU latches at each launch: indexed by the
    // pattern it is about to run (`pat_next`), within the current phase.
    top.item(Item::Assign {
        lhs: Expr::id("agu_main_off"),
        rhs: Expr::Index(
            Box::new(Expr::id("ctx_off_main")),
            Box::new(Expr::Concat(vec![
                Expr::id("phase_w"),
                Expr::id("agu_main_pat_next"),
            ])),
        ),
    });
    for (agu, tag) in [
        (agu_main, "main"),
        (agu_data, "data"),
        (agu_weight, "weight"),
    ] {
        let mut conns = vec![
            ("clk", Expr::id("clk")),
            ("rst", Expr::id("rst")),
            ("trigger", Expr::id(format!("trig_{tag}"))),
        ];
        if agu.is_chained() {
            conns.push(("offset", Expr::id("agu_main_off")));
            conns.push(("pat_next", Expr::id("agu_main_pat_next")));
            conns.push(("pat_cur", Expr::id("agu_main_pat_cur")));
        }
        conns.push(("addr", Expr::id(format!("agu_{tag}_addr"))));
        conns.push(("valid", Expr::id(format!("agu_{tag}_valid"))));
        conns.push(("done", Expr::id(format!("agu_{tag}_done"))));
        instance(top, &agu.module_name(), &format!("u_agu_{tag}"), conns);
    }
    // A phase completes when its data sweep (and any DRAM traffic)
    // drains. Gated off during the fire cycle: the AGUs' `done`
    // registers still hold 1 from the previous phase on the cycle the
    // coordinator pulses `fire`, and sampling them then made the
    // coordinator advance two phases per boundary, skipping every other
    // phase's transfers.
    top.item(Item::Assign {
        lhs: Expr::id("phase_done"),
        rhs: Expr::bin(
            BinaryOp::LogAnd,
            Expr::Unary(UnaryOp::Not, Box::new(Expr::id("fire_w"))),
            Expr::bin(
                BinaryOp::LogAnd,
                Expr::id("agu_data_done"),
                Expr::bin(
                    BinaryOp::LogOr,
                    Expr::id("agu_main_done"),
                    Expr::Unary(UnaryOp::Not, Box::new(Expr::id("agu_main_valid"))),
                ),
            ),
        ),
    });

    // ---- DRAM command side ------------------------------------------------
    top.item(Item::Assign {
        lhs: Expr::id("dram_addr"),
        rhs: Expr::id("agu_main_addr"),
    });
    top.item(Item::Assign {
        lhs: Expr::id("dram_req"),
        rhs: Expr::id("agu_main_valid"),
    });
    // Write strobe only for write-back patterns: the per-pattern
    // direction mask, indexed by the running pattern. `valid && busy`
    // alone strobed writes for every fetch too, shredding the DRAM image
    // the fetches were reading.
    top.item(Item::Net(NetDecl::wire("main_wmask", pn_main)));
    top.item(Item::Assign {
        lhs: Expr::id("main_wmask"),
        rhs: Expr::lit(pn_main, main_write_mask(compiled)),
    });
    top.item(Item::Assign {
        lhs: Expr::id("dram_we"),
        rhs: Expr::bin(
            BinaryOp::LogAnd,
            Expr::bin(
                BinaryOp::LogAnd,
                Expr::id("agu_main_valid"),
                Expr::id("busy_w"),
            ),
            Expr::Index(
                Box::new(Expr::id("main_wmask")),
                Box::new(Expr::id("agu_main_pat_cur")),
            ),
        ),
    });
    top.item(Item::Assign {
        lhs: Expr::id("done"),
        rhs: Expr::Unary(UnaryOp::Not, Box::new(Expr::id("busy_w"))),
    });

    // ---- performance counters ---------------------------------------------
    // DRAM traffic in flight while the datapath sweep is idle = a transfer
    // stall; MACs retire at the phase's lane count (ctx_lanes ROM) on every
    // data-valid cycle; the feature-buffer write pointer is the occupancy
    // high-water proxy.
    let iw = perf.inc_width;
    let one_bit = |name: &str| zero_extend(Expr::id(name), 1, iw);
    top.item(Item::Net(NetDecl::wire("perf_stall", 1)));
    top.item(Item::Assign {
        lhs: Expr::id("perf_stall"),
        rhs: Expr::bin(
            BinaryOp::LogAnd,
            Expr::id("agu_main_valid"),
            Expr::Unary(UnaryOp::Not, Box::new(Expr::id("agu_data_valid"))),
        ),
    });
    top.item(Item::Net(NetDecl::wire("perf_mac_inc", iw)));
    top.item(Item::Assign {
        lhs: Expr::id("perf_mac_inc"),
        rhs: Expr::Ternary(
            Box::new(Expr::id("agu_data_valid")),
            Box::new(Expr::Index(
                Box::new(Expr::id("ctx_lanes")),
                Box::new(Expr::id("phase_w")),
            )),
            Box::new(Expr::lit(iw, 0)),
        ),
    });
    top.item(Item::Net(NetDecl::wire("perf_rd_inc", iw)));
    top.item(Item::Assign {
        lhs: Expr::id("perf_rd_inc"),
        rhs: Expr::bin(
            BinaryOp::Add,
            one_bit("agu_data_valid"),
            one_bit("agu_weight_valid"),
        ),
    });
    let occ_bits = occ_src_bits.min(iw);
    top.item(Item::Net(NetDecl::wire("perf_rdata_w", perf.width)));
    instance(
        top,
        &perf.module_name(),
        "u_perf_counters",
        vec![
            ("clk", Expr::id("clk")),
            ("rst", Expr::id("rst")),
            ("en", Expr::id("busy_w")),
            ("active", Expr::id("agu_data_valid")),
            ("stall", Expr::id("perf_stall")),
            ("mac_inc", Expr::id("perf_mac_inc")),
            ("rd_inc", Expr::id("perf_rd_inc")),
            ("wr_inc", one_bit("agu_main_valid")),
            ("burst_inc", one_bit("agu_main_valid")),
            (
                "occupancy",
                zero_extend(
                    Expr::Slice(Box::new(Expr::id("agu_main_addr")), occ_bits - 1, 0),
                    occ_bits,
                    iw,
                ),
            ),
            ("sel", Expr::id("perf_sel")),
            ("rdata", Expr::id("perf_rdata_w")),
        ],
    );
    top.item(Item::Assign {
        lhs: Expr::id("perf_rdata"),
        rhs: Expr::id("perf_rdata_w"),
    });
}

/// Assembles the accelerator top-level for a compiled network.
///
/// Returns a [`Design`] containing the top module plus every instantiated
/// building-block module; the result passes [`deepburning_verilog::lint_design`]
/// for all supported networks (checked by the generator's tests).
pub fn assemble_top(net: &Network, compiled: &CompiledNetwork) -> Design {
    let cfg = &compiled.config;
    let w = cfg.word_bits;
    let lanes = cfg.lanes;
    let bus = w * lanes;
    let phases = compiled.folding.phases.len().max(1) as u32;

    // Library block instances this network needs.
    let neuron = SynergyNeuron::new(w, lanes);
    let acc = AccumulatorBlock { width: w };
    let relu = ActivationUnit { width: w };
    let coord = Coordinator { phases };
    let cbox = ConnectionBox {
        width: w,
        inputs: 4,
        outputs: 2,
    };
    let feature_depth = (cfg.feature_buffer_bytes * 8 / u64::from(bus)).max(2) as usize;
    let weight_depth = (cfg.weight_buffer_bytes * 8 / u64::from(bus)).max(2) as usize;
    let fbuf = BufferBlock {
        width: bus,
        depth: feature_depth,
    };
    let wbuf = BufferBlock {
        width: bus,
        depth: weight_depth,
    };
    let agu_main = AguBlock::new(
        AguClass::Main,
        32,
        collect_patterns(compiled, AguClass::Main),
    );
    let agu_data = AguBlock::new(
        AguClass::Data,
        32,
        collect_patterns(compiled, AguClass::Data),
    );
    let agu_weight = AguBlock::new(
        AguClass::Weight,
        32,
        collect_patterns(compiled, AguClass::Weight),
    );
    let lut_block = compiled
        .luts
        .values()
        .next()
        .map(|image| ApproxLutBlock::new(w, image.clone()));
    let needs_pool = net
        .layers()
        .iter()
        .any(|l| matches!(l.kind, LayerKind::Pooling(_) | LayerKind::Inception(_)));
    let pool = PoolingUnit {
        width: w,
        method: PoolMethod::Max,
    };
    let shapes = net.infer_shapes().expect("validated network");
    let ksorter = net.layers().iter().find_map(|l| match l.kind {
        LayerKind::Classifier { .. } => {
            let inputs = l
                .bottoms
                .first()
                .map(|b| shapes[b].elements() as u32)
                .unwrap_or(2);
            Some(KSorter {
                width: w,
                inputs: inputs.clamp(2, lanes.max(2)),
            })
        }
        _ => None,
    });

    let mut top = VModule::new(format!("{}_accelerator", sanitize(net.name())));
    let perf = PerfCounters::default();
    top.port(Port::input("clk", 1))
        .port(Port::input("rst", 1))
        .port(Port::input("start", 1))
        .port(Port::output("done", 1))
        .port(Port::output("dram_addr", 32))
        .port(Port::input("dram_rdata", bus))
        .port(Port::output("dram_wdata", bus))
        .port(Port::output("dram_req", 1))
        .port(Port::output("dram_we", 1))
        .port(Port::input("perf_sel", perf.sel_width()))
        .port(Port::output("perf_rdata", perf.width));

    // ---- control fabric (coordinator, ROMs, AGUs, DRAM commands, perf) ---
    let f_aw = fbuf.addr_width();
    wire_control_fabric(
        &mut top,
        compiled,
        &coord,
        &agu_main,
        &agu_data,
        &agu_weight,
        &perf,
        Some(cbox.select_width()),
        f_aw,
    );

    // ---- buffers ----------------------------------------------------------
    top.item(Item::Net(NetDecl::wire("fbuf_rdata", bus)));
    top.item(Item::Net(NetDecl::wire("wbuf_rdata", bus)));
    top.item(Item::Net(NetDecl::wire("writeback", bus)));
    let w_aw = wbuf.addr_width();
    instance(
        &mut top,
        &fbuf.module_name(),
        "u_feature_buffer",
        vec![
            ("clk", Expr::id("clk")),
            ("we", Expr::id("agu_main_valid")),
            (
                "waddr",
                Expr::Slice(Box::new(Expr::id("agu_main_addr")), f_aw - 1, 0),
            ),
            ("wdata", Expr::id("dram_rdata")),
            (
                "raddr",
                Expr::Slice(Box::new(Expr::id("agu_data_addr")), f_aw - 1, 0),
            ),
            ("rdata", Expr::id("fbuf_rdata")),
        ],
    );
    instance(
        &mut top,
        &wbuf.module_name(),
        "u_weight_buffer",
        vec![
            ("clk", Expr::id("clk")),
            ("we", Expr::id("agu_main_valid")),
            (
                "waddr",
                Expr::Slice(Box::new(Expr::id("agu_main_addr")), w_aw - 1, 0),
            ),
            ("wdata", Expr::id("dram_rdata")),
            (
                "raddr",
                Expr::Slice(Box::new(Expr::id("agu_weight_addr")), w_aw - 1, 0),
            ),
            ("rdata", Expr::id("wbuf_rdata")),
        ],
    );

    // ---- datapath ----------------------------------------------------------
    top.item(Item::Net(NetDecl::wire("neuron_sum", w)));
    instance(
        &mut top,
        &neuron.module_name(),
        "u_synergy_neurons",
        vec![
            ("clk", Expr::id("clk")),
            ("rst", Expr::id("rst")),
            ("en", Expr::id("agu_data_valid")),
            ("clear", Expr::id("fire_w")),
            ("din", Expr::id("fbuf_rdata")),
            ("weight", Expr::id("wbuf_rdata")),
            ("sum_out", Expr::id("neuron_sum")),
        ],
    );
    top.item(Item::Net(NetDecl::wire("acc_out", w)));
    instance(
        &mut top,
        &acc.module_name(),
        "u_accumulators",
        vec![
            ("clk", Expr::id("clk")),
            ("rst", Expr::id("rst")),
            ("en", Expr::id("agu_data_valid")),
            ("din", Expr::id("neuron_sum")),
            ("acc_out", Expr::id("acc_out")),
        ],
    );
    top.item(Item::Net(NetDecl::wire("relu_out", w)));
    instance(
        &mut top,
        &relu.module_name(),
        "u_relu",
        vec![("din", Expr::id("acc_out")), ("dout", Expr::id("relu_out"))],
    );
    top.item(Item::Net(NetDecl::wire("lut_out", w)));
    if let Some(lut) = &lut_block {
        instance(
            &mut top,
            &lut.module_name(),
            "u_approx_lut",
            vec![
                ("clk", Expr::id("clk")),
                ("din", Expr::id("acc_out")),
                ("dout", Expr::id("lut_out")),
            ],
        );
    } else {
        top.item(Item::Assign {
            lhs: Expr::id("lut_out"),
            rhs: Expr::id("acc_out"),
        });
    }
    top.item(Item::Net(NetDecl::wire("pool_out", w)));
    if needs_pool {
        instance(
            &mut top,
            &pool.module_name(),
            "u_pooling_unit",
            vec![
                ("clk", Expr::id("clk")),
                ("rst", Expr::id("rst")),
                ("en", Expr::id("agu_data_valid")),
                ("clear", Expr::id("fire_w")),
                (
                    "din",
                    Expr::Slice(Box::new(Expr::id("fbuf_rdata")), w - 1, 0),
                ),
                ("dout", Expr::id("pool_out")),
            ],
        );
    } else {
        top.item(Item::Assign {
            lhs: Expr::id("pool_out"),
            rhs: Expr::id("acc_out"),
        });
    }

    // ---- connection box -----------------------------------------------------
    top.item(Item::Net(NetDecl::wire("cbox_out", w * 2)));
    instance(
        &mut top,
        &cbox.module_name(),
        "u_connection_box",
        vec![
            ("clk", Expr::id("clk")),
            (
                "din",
                Expr::Concat(vec![
                    Expr::id("pool_out"),
                    Expr::id("lut_out"),
                    Expr::id("relu_out"),
                    Expr::id("acc_out"),
                ]),
            ),
            (
                "sel",
                Expr::Index(Box::new(Expr::id("ctx_sel")), Box::new(Expr::id("phase_w"))),
            ),
            (
                "shift",
                Expr::Index(
                    Box::new(Expr::id("ctx_shift")),
                    Box::new(Expr::id("phase_w")),
                ),
            ),
            ("dout", Expr::id("cbox_out")),
        ],
    );
    top.item(Item::Assign {
        lhs: Expr::id("writeback"),
        rhs: zero_extend(
            Expr::Slice(Box::new(Expr::id("cbox_out")), w - 1, 0),
            w,
            bus,
        ),
    });

    // ---- classifier ----------------------------------------------------------
    if let Some(ks) = &ksorter {
        let iw = ks.index_width();
        top.item(Item::Net(NetDecl::wire("class_idx", iw)));
        top.item(Item::Net(NetDecl::wire("class_val", w)));
        instance(
            &mut top,
            &ks.module_name(),
            "u_ksorter",
            vec![
                (
                    "din",
                    Expr::Slice(Box::new(Expr::id("fbuf_rdata")), w * ks.inputs - 1, 0),
                ),
                ("idx_out", Expr::id("class_idx")),
                ("val_out", Expr::id("class_val")),
            ],
        );
    }

    // ---- DRAM write data (commands live in the control fabric) ---------------
    top.item(Item::Assign {
        lhs: Expr::id("dram_wdata"),
        rhs: Expr::id("writeback"),
    });

    // ---- collect the module set -------------------------------------------------
    let mut design = Design::new(top);
    let mut added: Vec<String> = Vec::new();
    let mut add = |design: &mut Design, block: &dyn Block| {
        let name = block.module_name();
        if !added.contains(&name) {
            design.add_module(block.generate());
            added.push(name);
        }
    };
    add(&mut design, &coord);
    add(&mut design, &perf);
    add(&mut design, &agu_main);
    add(&mut design, &agu_data);
    add(&mut design, &agu_weight);
    add(&mut design, &fbuf);
    add(&mut design, &wbuf);
    add(&mut design, &neuron);
    add(&mut design, &acc);
    add(&mut design, &relu);
    add(&mut design, &cbox);
    if let Some(lut) = &lut_block {
        add(&mut design, lut);
    }
    if needs_pool {
        add(&mut design, &pool);
    }
    if let Some(ks) = &ksorter {
        add(&mut design, ks);
    }
    design
}

/// Assembles the control-only top for a compiled network: coordinator,
/// the three AGUs, context ROMs and performance counters — no datapath,
/// no buffers. Every signal is 64 bits or narrower, so the interpreter
/// can execute the *entire network* in one continuous simulation (the
/// full datapath's `word_bits × lanes` bus exceeds the interpreter's
/// 64-bit signal cap). The full-network RTL run drives this top, follows
/// its DRAM command stream word-for-word, and the captured VCD exposes
/// the coordinator FSM (`phase_w`, `busy_w`, `fire_w`), the AGU valids
/// and the running main pattern (`agu_main_pat_cur`) for divergence
/// bundles.
pub fn assemble_control_top(net: &Network, compiled: &CompiledNetwork) -> Design {
    let cfg = &compiled.config;
    let bus = cfg.word_bits * cfg.lanes;
    let phases = compiled.folding.phases.len().max(1) as u32;
    let coord = Coordinator { phases };
    let perf = PerfCounters::default();
    let agu_main = AguBlock::new(
        AguClass::Main,
        32,
        collect_patterns(compiled, AguClass::Main),
    );
    let agu_data = AguBlock::new(
        AguClass::Data,
        32,
        collect_patterns(compiled, AguClass::Data),
    );
    let agu_weight = AguBlock::new(
        AguClass::Weight,
        32,
        collect_patterns(compiled, AguClass::Weight),
    );
    // Same occupancy proxy width as the full top's feature buffer.
    let f_aw = BufferBlock {
        width: bus,
        depth: (cfg.feature_buffer_bytes * 8 / u64::from(bus)).max(2) as usize,
    }
    .addr_width();

    let mut top = VModule::new(format!("{}_control", sanitize(net.name())));
    top.port(Port::input("clk", 1))
        .port(Port::input("rst", 1))
        .port(Port::input("start", 1))
        .port(Port::output("done", 1))
        .port(Port::output("dram_addr", 32))
        .port(Port::output("dram_req", 1))
        .port(Port::output("dram_we", 1))
        .port(Port::input("perf_sel", perf.sel_width()))
        .port(Port::output("perf_rdata", perf.width));
    wire_control_fabric(
        &mut top,
        compiled,
        &coord,
        &agu_main,
        &agu_data,
        &agu_weight,
        &perf,
        None,
        f_aw,
    );

    let mut design = Design::new(top);
    let mut added: Vec<String> = Vec::new();
    let mut add = |design: &mut Design, block: &dyn Block| {
        let name = block.module_name();
        if !added.contains(&name) {
            design.add_module(block.generate());
            added.push(name);
        }
    };
    add(&mut design, &coord);
    add(&mut design, &perf);
    add(&mut design, &agu_main);
    add(&mut design, &agu_data);
    add(&mut design, &agu_weight);
    design
}

fn sanitize(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| {
            if c.is_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                '_'
            }
        })
        .collect();
    if out.chars().next().is_none_or(|c| c.is_ascii_digit()) {
        out.insert(0, 'n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepburning_compiler::{compile, CompilerConfig};
    use deepburning_model::parse_network;
    use deepburning_verilog::{emit_design, lint_design};

    const SRC: &str = r#"
    name: "lenet-ish"
    layers { name: "data" type: INPUT top: "data"
             input_param { channels: 1 height: 16 width: 16 } }
    layers { name: "conv" type: CONVOLUTION bottom: "data" top: "conv"
             param { num_output: 8 kernel_size: 3 stride: 1 } }
    layers { name: "pool" type: POOLING bottom: "conv" top: "pool"
             pooling_param { pool: MAX kernel_size: 2 stride: 2 } }
    layers { name: "sig" type: SIGMOID bottom: "pool" top: "pool" }
    layers { name: "fc" type: FC bottom: "pool" top: "fc"
             param { num_output: 10 } }
    layers { name: "cls" type: CLASSIFIER bottom: "fc" top: "cls" }
    "#;

    fn design() -> Design {
        let net = parse_network(SRC).expect("parses");
        let compiled = compile(
            &net,
            &CompilerConfig {
                lanes: 8,
                ..CompilerConfig::default()
            },
        )
        .expect("compiles");
        assemble_top(&net, &compiled)
    }

    #[test]
    fn top_lints_clean() {
        let d = design();
        let report = lint_design(&d);
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn top_contains_expected_instances() {
        let d = design();
        let text = emit_design(&d);
        for inst in [
            "u_coordinator",
            "u_agu_main",
            "u_agu_data",
            "u_agu_weight",
            "u_feature_buffer",
            "u_weight_buffer",
            "u_synergy_neurons",
            "u_accumulators",
            "u_connection_box",
            "u_perf_counters",
            "u_approx_lut",
            "u_pooling_unit",
            "u_ksorter",
        ] {
            assert!(text.contains(inst), "missing {inst}");
        }
    }

    #[test]
    fn module_set_deduplicated() {
        let d = design();
        let mut names: Vec<&str> = d.modules.iter().map(|m| m.name.as_str()).collect();
        let before = names.len();
        names.dedup();
        assert_eq!(before, names.len());
    }

    #[test]
    fn sanitize_names() {
        assert_eq!(sanitize("LeNet-5"), "lenet_5");
        assert_eq!(sanitize("5net"), "n5net");
    }

    #[test]
    fn control_top_lints_clean_and_is_interpreter_sized() {
        let net = parse_network(SRC).expect("parses");
        let compiled = compile(
            &net,
            &CompilerConfig {
                lanes: 8,
                ..CompilerConfig::default()
            },
        )
        .expect("compiles");
        let d = assemble_control_top(&net, &compiled);
        let report = lint_design(&d);
        assert!(report.is_clean(), "{report}");
        // Every net fits the interpreter's 64-bit signal cap — this is
        // the property that lets the full network run in one simulation.
        for m in &d.modules {
            for item in &m.items {
                if let Item::Net(n) = item {
                    assert!(n.width <= 64, "{}.{} is {} bits", m.name, n.name, n.width);
                }
            }
        }
        let text = emit_design(&d);
        for inst in ["u_coordinator", "u_agu_main", "u_perf_counters"] {
            assert!(text.contains(inst), "missing {inst}");
        }
        assert!(
            !text.contains("u_synergy_neurons"),
            "control top has no datapath"
        );
    }

    #[test]
    fn full_top_wires_offset_rom_and_write_mask() {
        let d = design();
        let text = emit_design(&d);
        assert!(text.contains("ctx_off_main"));
        assert!(text.contains("main_wmask"));
        assert!(text.contains("agu_main_pat_cur"));
    }

    #[test]
    fn network_without_luts_or_pool_still_assembles() {
        let src = r#"
        layers { name: "data" type: INPUT top: "data"
                 input_param { channels: 4 height: 1 width: 1 } }
        layers { name: "fc" type: FC bottom: "data" top: "fc"
                 param { num_output: 4 } }
        layers { name: "r" type: RELU bottom: "fc" top: "fc" }
        "#;
        let net = parse_network(src).expect("parses");
        let compiled = compile(&net, &CompilerConfig::default()).expect("compiles");
        let d = assemble_top(&net, &compiled);
        let report = lint_design(&d);
        assert!(report.is_clean(), "{report}");
        let text = emit_design(&d);
        assert!(!text.contains("u_approx_lut"));
        assert!(!text.contains("u_pooling_unit"));
    }
}
