//! RTL functional verification — the reproduction of the paper's "RTL-level
//! simulation of forward-propagation … conducted with Vivado to verify the
//! timing and function of the generated accelerators".
//!
//! The generated control-path modules are *executed* on the behavioural
//! Verilog interpreter and cross-checked against the compiler's models:
//! the AGU RTL must emit exactly the address stream its [`AguPattern`]
//! describes, the coordinator must walk the phase schedule, and the
//! synergy-neuron bank must compute the same dot product as its
//! fixed-point model.

use deepburning_components::{AguBlock, AguPattern, Block, Coordinator, SynergyNeuron};
use deepburning_fixed::{Fx, QFormat};
use deepburning_verilog::{Design, Interpreter, SimulateError};
use std::fmt;

/// A divergence between the RTL and its behavioural model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// The interpreter failed to elaborate or step the design.
    Simulate(String),
    /// The RTL produced a different value than the model.
    Mismatch {
        /// What was being compared.
        what: String,
        /// Position in the compared stream.
        index: usize,
        /// Model value.
        expected: u64,
        /// RTL value.
        got: u64,
    },
    /// The RTL stream ended at the wrong length.
    LengthMismatch {
        /// What was being compared.
        what: String,
        /// Model stream length.
        expected: usize,
        /// RTL stream length.
        got: usize,
    },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::Simulate(m) => write!(f, "simulation failed: {m}"),
            VerifyError::Mismatch {
                what,
                index,
                expected,
                got,
            } => write!(f, "{what}[{index}]: model {expected}, RTL {got}"),
            VerifyError::LengthMismatch {
                what,
                expected,
                got,
            } => write!(f, "{what}: model emits {expected} items, RTL {got}"),
        }
    }
}

impl std::error::Error for VerifyError {}

impl From<SimulateError> for VerifyError {
    fn from(e: SimulateError) -> Self {
        VerifyError::Simulate(e.message)
    }
}

/// Runs the generated AGU RTL once per pattern and checks the streamed
/// addresses against [`AguPattern::addresses`].
///
/// # Errors
///
/// Returns [`VerifyError`] on the first divergence.
pub fn verify_agu_rtl(agu: &AguBlock) -> Result<(), VerifyError> {
    let design = Design::new(agu.generate());
    let mut sim = Interpreter::elaborate(&design, &agu.module_name())?;
    // Reset.
    sim.poke("rst", 1)?;
    sim.clock()?;
    sim.poke("rst", 0)?;
    let addr_mask = if agu.addr_width >= 64 {
        u64::MAX
    } else {
        (1u64 << agu.addr_width) - 1
    };
    for (i, pattern) in agu.patterns.iter().enumerate() {
        // One-cycle trigger pulse on bit i. The chained (main) AGU takes
        // its fold displacement from the runtime `offset` input; present
        // the pattern's own offset so the model stream matches.
        if agu.is_chained() {
            sim.poke("offset", pattern.offset & addr_mask)?;
        }
        sim.poke("trigger", 1 << i)?;
        sim.clock()?;
        sim.poke("trigger", 0)?;
        let expected: Vec<u64> = pattern.addresses().map(|a| a & addr_mask).collect();
        let mut got = Vec::with_capacity(expected.len());
        // Stream while `valid` is asserted (bounded to catch runaways).
        let bound = expected.len() * 2 + 8;
        for _ in 0..bound {
            if sim.read("valid")? == 0 {
                break;
            }
            got.push(sim.read("addr")?);
            sim.clock()?;
        }
        if got.len() != expected.len() {
            return Err(VerifyError::LengthMismatch {
                what: format!("pattern {i} addresses"),
                expected: expected.len(),
                got: got.len(),
            });
        }
        for (j, (e, g)) in expected.iter().zip(&got).enumerate() {
            if e != g {
                return Err(VerifyError::Mismatch {
                    what: format!("pattern {i} address"),
                    index: j,
                    expected: *e,
                    got: *g,
                });
            }
        }
        if sim.read("done")? != 1 {
            return Err(VerifyError::Mismatch {
                what: format!("pattern {i} done flag"),
                index: expected.len(),
                expected: 1,
                got: sim.read("done")?,
            });
        }
    }
    Ok(())
}

/// Fires every pattern of a chained (main-class) AGU in one trigger word
/// and checks that the RTL streams the whole set back-to-back, lowest
/// index first, applying each pattern's runtime offset at launch — the
/// end-to-end behaviour a phase's full DRAM program (input fetch + weight
/// fetch + write-back) relies on.
///
/// # Errors
///
/// Returns [`VerifyError`] on the first divergence.
pub fn verify_agu_chaining(agu: &AguBlock) -> Result<(), VerifyError> {
    assert!(agu.is_chained(), "chaining only exists on the main AGU");
    let design = Design::new(agu.generate());
    let mut sim = Interpreter::elaborate(&design, &agu.module_name())?;
    sim.poke("rst", 1)?;
    sim.clock()?;
    sim.poke("rst", 0)?;
    let addr_mask = if agu.addr_width >= 64 {
        u64::MAX
    } else {
        (1u64 << agu.addr_width) - 1
    };
    let n = agu.patterns.len().min(64);
    let word = if n >= 64 { u64::MAX } else { (1u64 << n) - 1 };
    // The environment presents the offset of the pattern about to launch,
    // exactly as the top level muxes the context offset ROM by `pat_next`.
    let offset_for = |sim: &mut Interpreter| -> Result<(), VerifyError> {
        let next = sim.read("pat_next")? as usize;
        let off = agu.patterns.get(next).map(|p| p.offset).unwrap_or(0);
        sim.poke("offset", off & addr_mask)?;
        Ok(())
    };
    sim.poke("trigger", word)?;
    offset_for(&mut sim)?;
    sim.clock()?;
    sim.poke("trigger", 0)?;
    let expected: Vec<u64> = agu.patterns[..n]
        .iter()
        .flat_map(|p| p.addresses().map(|a| a & addr_mask).collect::<Vec<_>>())
        .collect();
    let mut got = Vec::with_capacity(expected.len());
    let bound = expected.len() * 2 + 8 * n;
    for _ in 0..bound {
        if sim.read("valid")? == 0 {
            break;
        }
        got.push(sim.read("addr")?);
        offset_for(&mut sim)?;
        sim.clock()?;
    }
    if got != expected {
        if got.len() != expected.len() {
            return Err(VerifyError::LengthMismatch {
                what: "chained address stream".into(),
                expected: expected.len(),
                got: got.len(),
            });
        }
        let (j, (e, g)) = expected
            .iter()
            .zip(&got)
            .enumerate()
            .find(|(_, (e, g))| e != g)
            .expect("lengths equal, values differ");
        return Err(VerifyError::Mismatch {
            what: "chained address".into(),
            index: j,
            expected: *e,
            got: *g,
        });
    }
    if sim.read("done")? != 1 {
        return Err(VerifyError::Mismatch {
            what: "chained done flag".into(),
            index: expected.len(),
            expected: 1,
            got: sim.read("done")?,
        });
    }
    Ok(())
}

/// Walks the generated coordinator through `phases` completions and checks
/// the phase counter, busy flag and fire pulses.
///
/// # Errors
///
/// Returns [`VerifyError`] on the first divergence.
pub fn verify_coordinator_rtl(coord: &Coordinator) -> Result<(), VerifyError> {
    let design = Design::new(coord.generate());
    let mut sim = Interpreter::elaborate(&design, &coord.module_name())?;
    sim.poke("rst", 1)?;
    sim.clock()?;
    sim.poke("rst", 0)?;
    if sim.read("busy")? != 0 {
        return Err(VerifyError::Mismatch {
            what: "busy after reset".into(),
            index: 0,
            expected: 0,
            got: 1,
        });
    }
    // Start pulse.
    sim.poke("start", 1)?;
    sim.clock()?;
    sim.poke("start", 0)?;
    if sim.read("busy")? != 1 || sim.read("fire")? != 1 || sim.read("phase")? != 0 {
        return Err(VerifyError::Mismatch {
            what: "phase 0 entry".into(),
            index: 0,
            expected: 1,
            got: sim.read("busy")?,
        });
    }
    // Drive phase_done pulses and watch the walk.
    for expected_phase in 1..coord.phases as u64 {
        sim.poke("phase_done", 1)?;
        sim.clock()?;
        sim.poke("phase_done", 0)?;
        let phase = sim.read("phase")?;
        if phase != expected_phase {
            return Err(VerifyError::Mismatch {
                what: "phase counter".into(),
                index: expected_phase as usize,
                expected: expected_phase,
                got: phase,
            });
        }
        if sim.read("fire")? != 1 {
            return Err(VerifyError::Mismatch {
                what: "fire pulse".into(),
                index: expected_phase as usize,
                expected: 1,
                got: 0,
            });
        }
        // Fire must be a single-cycle pulse.
        sim.clock()?;
        if sim.read("fire")? != 0 {
            return Err(VerifyError::Mismatch {
                what: "fire deassert".into(),
                index: expected_phase as usize,
                expected: 0,
                got: 1,
            });
        }
    }
    // Final completion drops busy.
    sim.poke("phase_done", 1)?;
    sim.clock()?;
    sim.poke("phase_done", 0)?;
    if sim.read("busy")? != 0 {
        return Err(VerifyError::Mismatch {
            what: "busy after final phase".into(),
            index: coord.phases as usize,
            expected: 0,
            got: 1,
        });
    }
    Ok(())
}

/// Streams `beats` of lane data through the generated synergy-neuron bank
/// and checks the accumulated sum against the fixed-point model.
///
/// The RTL accumulates raw products in a wide register and saturates at
/// readout, so the comparison is bit-exact even when the dot product
/// clips — saturating inputs are fair game here.
///
/// # Errors
///
/// Returns [`VerifyError`] on divergence.
pub fn verify_neuron_rtl(
    neuron: &SynergyNeuron,
    features: &[Vec<f64>],
    weights: &[Vec<f64>],
    fmt: QFormat,
) -> Result<(), VerifyError> {
    assert_eq!(features.len(), weights.len(), "beat count mismatch");
    let design = Design::new(neuron.generate());
    let mut sim = Interpreter::elaborate(&design, &neuron.module_name())?;
    sim.poke("rst", 1)?;
    sim.clock()?;
    sim.poke("rst", 0)?;
    sim.poke("en", 1)?;
    let w = neuron.width as u64;
    let word_mask = (1u64 << w) - 1;
    let mut flat_f = Vec::new();
    let mut flat_w = Vec::new();
    for (fbeat, wbeat) in features.iter().zip(weights) {
        assert_eq!(fbeat.len(), neuron.lanes as usize, "lane count mismatch");
        // Pack lanes into the wide bus, lane 0 in the low bits.
        let mut fbus = 0u64;
        let mut wbus = 0u64;
        for (lane, (fv, wv)) in fbeat.iter().zip(wbeat).enumerate().rev() {
            let fx = Fx::from_f64(*fv, fmt).raw() as u64 & word_mask;
            let wx = Fx::from_f64(*wv, fmt).raw() as u64 & word_mask;
            fbus |= fx << (lane as u64 * w);
            wbus |= wx << (lane as u64 * w);
            flat_f.push(Fx::from_f64(*fv, fmt));
            flat_w.push(Fx::from_f64(*wv, fmt));
        }
        sim.poke("din", fbus)?;
        sim.poke("weight", wbus)?;
        sim.clock()?;
    }
    let got = sim.read("sum_out")? & word_mask;
    let expected = neuron.simulate(&flat_f, &flat_w, fmt).raw() as u64 & word_mask;
    if got != expected {
        return Err(VerifyError::Mismatch {
            what: "neuron dot product".into(),
            index: features.len(),
            expected,
            got,
        });
    }
    Ok(())
}

/// Verifies the control path of a generated design: every AGU class and
/// the coordinator, rebuilt from the compiled artifacts exactly as the
/// RTL assembler builds them.
///
/// # Errors
///
/// Returns the first [`VerifyError`].
pub fn verify_design_control_path(design: &crate::AcceleratorDesign) -> Result<(), VerifyError> {
    use crate::resources::collect_patterns;
    use deepburning_components::AguClass;
    for class in [AguClass::Main, AguClass::Data, AguClass::Weight] {
        let patterns = collect_patterns(&design.compiled, class);
        // Bound the check: huge linear sweeps verify the same increment
        // logic as short ones.
        let bounded: Vec<AguPattern> = patterns
            .into_iter()
            .map(|p| AguPattern {
                x_len: p.x_len.min(64),
                y_len: p.y_len.min(8),
                ..p
            })
            .collect();
        let agu = AguBlock::new(class, 32, bounded);
        verify_agu_rtl(&agu)?;
        if agu.is_chained() && agu.patterns.len() > 1 {
            verify_agu_chaining(&agu)?;
        }
    }
    verify_coordinator_rtl(&Coordinator {
        phases: (design.compiled.folding.phases.len().max(1) as u32).min(64),
    })?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepburning_components::AguClass;

    #[test]
    fn agu_rtl_matches_model_linear() {
        let agu = AguBlock::new(AguClass::Main, 32, vec![AguPattern::linear(100, 16)]);
        verify_agu_rtl(&agu).expect("linear pattern verifies");
    }

    #[test]
    fn agu_rtl_matches_model_2d_window() {
        let agu = AguBlock::new(
            AguClass::Data,
            32,
            vec![AguPattern {
                start: 4096,
                offset: 12,
                x_len: 5,
                y_len: 5,
                x_stride: 1,
                y_stride: 57,
            }],
        );
        verify_agu_rtl(&agu).expect("window pattern verifies");
    }

    #[test]
    fn agu_rtl_matches_model_multi_pattern() {
        let agu = AguBlock::new(
            AguClass::Weight,
            24,
            vec![
                AguPattern::linear(0, 7),
                AguPattern {
                    start: 64,
                    offset: 0,
                    x_len: 3,
                    y_len: 4,
                    x_stride: 2,
                    y_stride: 32,
                },
                AguPattern {
                    start: 1000,
                    offset: 24,
                    x_len: 8,
                    y_len: 2,
                    x_stride: 4,
                    y_stride: 1, // negative wrap step
                },
            ],
        );
        verify_agu_rtl(&agu).expect("multi-pattern AGU verifies");
    }

    #[test]
    fn chained_main_agu_streams_whole_trigger_word() {
        let agu = AguBlock::new(
            AguClass::Main,
            32,
            vec![
                AguPattern::linear(0, 9),
                AguPattern {
                    start: 640,
                    offset: 128,
                    x_len: 4,
                    y_len: 2,
                    x_stride: 1,
                    y_stride: 16,
                },
                AguPattern {
                    start: 2048,
                    offset: 32,
                    x_len: 5,
                    y_len: 1,
                    x_stride: 1,
                    y_stride: 0,
                },
            ],
        );
        verify_agu_chaining(&agu).expect("chained stream verifies");
    }

    #[test]
    fn coordinator_rtl_walks_schedule() {
        for phases in [1u32, 2, 5, 17] {
            verify_coordinator_rtl(&Coordinator { phases })
                .unwrap_or_else(|e| panic!("{phases} phases: {e}"));
        }
    }

    #[test]
    fn neuron_rtl_matches_fixed_point_model() {
        let neuron = SynergyNeuron::new(16, 4);
        let features = vec![
            vec![0.5, -0.25, 1.0, 0.125],
            vec![1.5, 0.75, -0.5, 0.25],
            vec![-1.0, 2.0, 0.0, 0.5],
        ];
        let weights = vec![
            vec![1.0, 1.0, -1.0, 2.0],
            vec![0.5, -0.5, 0.25, 1.0],
            vec![2.0, 0.125, 1.0, -1.0],
        ];
        verify_neuron_rtl(&neuron, &features, &weights, QFormat::Q8_8)
            .expect("neuron RTL verifies");
    }

    #[test]
    fn neuron_rtl_single_lane() {
        let neuron = SynergyNeuron::new(16, 1);
        let features = vec![vec![3.0], vec![-2.0]];
        let weights = vec![vec![0.5], vec![1.5]];
        verify_neuron_rtl(&neuron, &features, &weights, QFormat::Q8_8)
            .expect("single-lane neuron verifies");
    }

    #[test]
    fn neuron_rtl_saturates_like_the_model() {
        // Large same-sign products push the dot product far past the Q8.8
        // ceiling; the RTL must clamp exactly where the model does instead
        // of wrapping.
        let neuron = SynergyNeuron::new(16, 2);
        let features = vec![vec![120.0, 115.0]; 4];
        let weights = vec![vec![90.0, 85.0]; 4];
        verify_neuron_rtl(&neuron, &features, &weights, QFormat::Q8_8)
            .expect("saturating dot product verifies");
        // And the negative rail.
        let weights_neg = vec![vec![-90.0, -85.0]; 4];
        verify_neuron_rtl(&neuron, &features, &weights_neg, QFormat::Q8_8)
            .expect("negative saturation verifies");
    }

    #[test]
    fn generated_design_control_path_verifies() {
        let src = r#"
        layers { name: "data" type: INPUT top: "data"
                 input_param { channels: 1 height: 12 width: 12 } }
        layers { name: "conv" type: CONVOLUTION bottom: "data" top: "conv"
                 param { num_output: 8 kernel_size: 3 stride: 1 } }
        layers { name: "fc" type: FC bottom: "conv" top: "fc"
                 param { num_output: 4 } }
        "#;
        let net = deepburning_model::parse_network(src).expect("parses");
        let design = crate::generate(&net, &crate::Budget::Medium).expect("generates");
        verify_design_control_path(&design).expect("control path verifies");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use deepburning_components::AguClass;
    use proptest::prelude::*;

    fn arb_pattern() -> impl Strategy<Value = AguPattern> {
        (
            0u64..100_000,
            0u64..256,
            1u32..24,
            1u32..12,
            1u64..8,
            0u64..512,
        )
            .prop_map(
                |(start, offset, x_len, y_len, x_stride, y_stride)| AguPattern {
                    start,
                    offset,
                    x_len,
                    y_len,
                    x_stride,
                    y_stride,
                },
            )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// The generated AGU RTL, executed in the interpreter, must emit
        /// exactly the model's address stream for random pattern sets.
        #[test]
        fn random_agu_patterns_verify(patterns in proptest::collection::vec(arb_pattern(), 1..4)) {
            let agu = AguBlock::new(AguClass::Data, 32, patterns);
            verify_agu_rtl(&agu).expect("RTL matches the behavioural model");
        }

        /// Coordinators of arbitrary phase counts walk their schedule.
        #[test]
        fn random_coordinators_verify(phases in 1u32..40) {
            verify_coordinator_rtl(&Coordinator { phases }).expect("coordinator verifies");
        }
    }
}
