//! NN-Gen: the DeepBurning accelerator generator.
//!
//! This crate ties the pipeline together: a Caffe-compatible [`Network`]
//! plus a resource [`Budget`] go in; an [`AcceleratorDesign`] comes out,
//! carrying the generated Verilog, the compiled control flow / data layout
//! and a per-block resource report.
//!
//! ```text
//! script (.prototxt)  ──►  model  ──►  compiler (folding, tiling, AGUs,
//!      constraint file ──►  NN-Gen ──►  LUTs)  ──►  RTL assembly  ──►  .v
//! ```
//!
//! # Examples
//!
//! ```
//! use deepburning_core::{generate, Budget};
//!
//! let src = r#"
//! name: "tiny"
//! layers { name: "data" type: INPUT top: "data"
//!          input_param { channels: 1 height: 12 width: 12 } }
//! layers { name: "conv" type: CONVOLUTION bottom: "data" top: "conv"
//!          param { num_output: 8 kernel_size: 3 stride: 1 } }
//! layers { name: "sig" type: SIGMOID bottom: "conv" top: "conv" }
//! "#;
//! let net = deepburning_model::parse_network(src)?;
//! let design = generate(&net, &Budget::Medium)?;
//! assert!(design.lint.is_clean());
//! assert!(design.verilog.contains("module tiny_accelerator"));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod device;
mod resources;
mod rtl;
mod verify;

pub use device::{
    derive_config, derive_config_for_format, max_parallel_units, Budget, Device, Z7020, Z7045,
};
pub use resources::{
    check_fit, collect_main_patterns, collect_patterns, context_offsets, context_words,
    estimate_resources, main_write_mask, uses_lanes, ResourceReport,
};
pub use rtl::{assemble_control_top, assemble_top};
pub use verify::{
    verify_agu_chaining, verify_agu_rtl, verify_coordinator_rtl, verify_design_control_path,
    verify_neuron_rtl, VerifyError,
};

use deepburning_compiler::{compile, CompileError, CompiledNetwork, CompilerConfig};
use deepburning_model::Network;
use deepburning_trace as trace;
use deepburning_verilog::{emit_design, lint_design, Design, LintReport};
use std::fmt;

/// The complete output of one NN-Gen run.
#[derive(Debug, Clone)]
pub struct AcceleratorDesign {
    /// Network name the design was generated for.
    pub network: String,
    /// The budget tier used.
    pub budget: Budget,
    /// The derived compiler configuration.
    pub config: CompilerConfig,
    /// Compiled control flow, layout, AGU programs and LUT images.
    pub compiled: CompiledNetwork,
    /// The structural netlist.
    pub design: Design,
    /// The emitted Verilog text.
    pub verilog: String,
    /// Structural lint outcome (always clean for supported networks).
    pub lint: LintReport,
    /// Per-block resource estimate.
    pub resources: ResourceReport,
    /// Whether the estimate fits the budget envelope, and the utilisation
    /// on the tightest axis.
    pub fits: (bool, f64),
}

impl AcceleratorDesign {
    /// Clock frequency of the target device.
    pub fn clock_hz(&self) -> u64 {
        self.budget.device().clock_hz
    }
}

/// Error raised by [`generate`].
#[derive(Debug)]
pub enum GenerateError {
    /// A compiler pass failed.
    Compile(CompileError),
    /// The generated RTL failed the structural lint — a generator bug
    /// surfaced to the caller rather than silently shipped.
    Lint(LintReport),
}

impl fmt::Display for GenerateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GenerateError::Compile(e) => write!(f, "compilation failed: {e}"),
            GenerateError::Lint(r) => write!(f, "generated RTL failed lint:\n{r}"),
        }
    }
}

impl std::error::Error for GenerateError {}

impl From<CompileError> for GenerateError {
    fn from(e: CompileError) -> Self {
        GenerateError::Compile(e)
    }
}

/// Runs the full NN-Gen flow with a budget tier.
///
/// # Errors
///
/// Returns [`GenerateError`] if compilation fails or (defensively) if the
/// assembled RTL does not lint clean.
pub fn generate(net: &Network, budget: &Budget) -> Result<AcceleratorDesign, GenerateError> {
    let _gen = trace::span("core", "core.generate");
    let mut config = derive_config(budget, 16);
    // "Properly-scaled hardware structure": never instantiate more lanes
    // than the network can keep busy, and keep buffer headroom bounded by
    // the network's working set (a generous 4x/2x margin — hand designs
    // trim tighter, see the Custom baseline).
    config.lanes = config.lanes.min(max_parallel_units(net)).max(1);
    if let Ok(shapes) = net.infer_shapes() {
        let wb = config.word_bytes();
        let largest_blob = shapes
            .values()
            .map(|s| s.elements() as u64)
            .max()
            .unwrap_or(1)
            * wb;
        config.feature_buffer_bytes = config
            .feature_buffer_bytes
            .min((largest_blob * 4).max(4096));
    }
    if let Ok(stats) = deepburning_model::network_stats(net) {
        let wb = config.word_bytes();
        let largest_weights = stats
            .per_layer
            .iter()
            .map(|(_, s)| s.weights)
            .max()
            .unwrap_or(1)
            * wb;
        config.weight_buffer_bytes = config
            .weight_buffer_bytes
            .min((largest_weights * 2).max(4096));
    }
    // Constraint-driven scaling: if the estimate exceeds the envelope,
    // fold harder (fewer lanes, smaller buffers) until it fits.
    loop {
        trace::counter("core", "core.constraint_iterations", 1.0);
        let design = generate_with_config(net, budget, &config)?;
        let at_floor = config.lanes == 1
            && config.feature_buffer_bytes <= 1024
            && config.weight_buffer_bytes <= 1024;
        if design.fits.0 || at_floor {
            trace::gauge("core", "core.lanes", f64::from(config.lanes));
            trace::gauge("core", "core.utilisation", design.fits.1);
            return Ok(design);
        }
        config.lanes = (config.lanes * 4 / 5).max(1);
        config.feature_buffer_bytes = (config.feature_buffer_bytes * 4 / 5).max(1024);
        config.weight_buffer_bytes = (config.weight_buffer_bytes * 4 / 5).max(1024);
    }
}

/// Runs the NN-Gen flow with an explicit compiler configuration (used by
/// the hand-tuned "Custom" baselines and the ablation benches).
///
/// # Errors
///
/// See [`generate`].
pub fn generate_with_config(
    net: &Network,
    budget: &Budget,
    config: &CompilerConfig,
) -> Result<AcceleratorDesign, GenerateError> {
    let compiled = compile(net, config)?;
    let design = {
        let _s = trace::span("core", "core.assemble_rtl");
        assemble_top(net, &compiled)
    };
    let lint = {
        let _s = trace::span("core", "core.lint");
        lint_design(&design)
    };
    if !lint.is_clean() {
        return Err(GenerateError::Lint(lint));
    }
    let verilog = {
        let _s = trace::span("core", "core.emit_verilog");
        emit_design(&design)
    };
    let resources = {
        let _s = trace::span("core", "core.estimate_resources");
        estimate_resources(net, &compiled)
    };
    let fits = check_fit(&resources, &budget.envelope());
    if trace::active() {
        trace::counter("core", "core.verilog_bytes", verilog.len() as f64);
        trace::counter("core", "core.rtl_modules", design.modules.len() as f64);
    }
    Ok(AcceleratorDesign {
        network: net.name().to_string(),
        budget: *budget,
        config: *config,
        compiled,
        design,
        verilog,
        lint,
        resources,
        fits,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepburning_model::parse_network;

    const SRC: &str = r#"
    name: "gen-test"
    layers { name: "data" type: INPUT top: "data"
             input_param { channels: 3 height: 16 width: 16 } }
    layers { name: "conv1" type: CONVOLUTION bottom: "data" top: "conv1"
             param { num_output: 16 kernel_size: 3 stride: 1 } }
    layers { name: "relu1" type: RELU bottom: "conv1" top: "conv1" }
    layers { name: "pool1" type: POOLING bottom: "conv1" top: "pool1"
             pooling_param { pool: MAX kernel_size: 2 stride: 2 } }
    layers { name: "fc" type: FC bottom: "pool1" top: "fc"
             param { num_output: 10 } }
    "#;

    #[test]
    fn generate_all_tiers() {
        let net = parse_network(SRC).expect("parses");
        for budget in [Budget::Small, Budget::Medium, Budget::Large] {
            let d = generate(&net, &budget).expect("generates");
            assert!(d.lint.is_clean());
            assert!(d.fits.0, "{}: utilisation {}", budget.tag(), d.fits.1);
            assert!(d.verilog.contains("module gen_test_accelerator"));
            assert_eq!(d.clock_hz(), 100_000_000);
        }
    }

    #[test]
    fn larger_budget_more_lanes_fewer_phases() {
        let net = parse_network(SRC).expect("parses");
        let small = generate(&net, &Budget::Small).expect("generates");
        let large = generate(&net, &Budget::Large).expect("generates");
        assert!(large.config.lanes > small.config.lanes);
        assert!(large.compiled.folding.phases.len() <= small.compiled.folding.phases.len());
    }

    #[test]
    fn resource_report_nonempty() {
        let net = parse_network(SRC).expect("parses");
        let d = generate(&net, &Budget::Medium).expect("generates");
        assert!(d.resources.items.len() >= 8);
        assert!(d.resources.total.dsp >= d.config.lanes);
    }

    #[test]
    fn custom_config_respected() {
        let net = parse_network(SRC).expect("parses");
        let cfg = CompilerConfig {
            lanes: 4,
            ..CompilerConfig::default()
        };
        let d = generate_with_config(&net, &Budget::Medium, &cfg).expect("generates");
        assert_eq!(d.config.lanes, 4);
        // conv1: 16 maps x 3x3 kernel = 144 parallel units on 4 lanes
        // -> 36 folds.
        assert_eq!(d.compiled.folding.layer_phases("conv1").count(), 36);
    }
}
