//! Whole-accelerator resource estimation.
//!
//! NN-Gen instantiates a concrete set of building blocks for a compiled
//! network; this module enumerates that set and totals its cost, producing
//! the numbers reported in paper Table 3.

use deepburning_compiler::{CompiledNetwork, PhaseKind};
use deepburning_components::{
    AccumulatorBlock, ActivationUnit, AguBlock, AguClass, AguPattern, ApproxLutBlock, Block,
    BufferBlock, ConnectionBox, Coordinator, DropOutUnit, KSorter, LrnUnit, PerfCounters,
    PoolingUnit, ResourceCost, SynergyNeuron,
};
use deepburning_model::{LayerKind, Network, PoolMethod};

/// Per-block resource breakdown.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ResourceReport {
    /// `(block description, cost)` pairs.
    pub items: Vec<(String, ResourceCost)>,
    /// Sum of all items.
    pub total: ResourceCost,
}

impl ResourceReport {
    fn push(&mut self, block: &dyn Block) {
        let cost = block.cost();
        self.items.push((block.describe(), cost));
        self.total += cost;
    }
}

/// Collects the deduplicated AGU patterns of one class across all phases.
///
/// Patterns differing only in `offset` are one hardware pattern: the
/// offset is a runtime field of the template AGU (Fig. 6), loaded from the
/// context buffer at each `layer{i}-fold{j}` event, so per-fold
/// displacements do not multiply the pattern ROM.
pub fn collect_patterns(compiled: &CompiledNetwork, class: AguClass) -> Vec<AguPattern> {
    if class == AguClass::Main {
        return collect_main_patterns(compiled)
            .into_iter()
            .map(|(p, _)| p)
            .collect();
    }
    let mut patterns: Vec<AguPattern> = Vec::new();
    for prog in &compiled.agu_programs {
        let source = match class {
            AguClass::Main => unreachable!("handled above"),
            AguClass::Data => &prog.data,
            AguClass::Weight => &prog.weight,
        };
        for p in source {
            let canon = AguPattern { offset: 0, ..*p };
            if !patterns.contains(&canon) {
                patterns.push(canon);
            }
        }
    }
    if patterns.is_empty() {
        patterns.push(AguPattern::linear(0, 1));
    }
    patterns
}

/// Collects the main AGU's hardware pattern set with transfer directions.
///
/// The dedup key is `(canonical pattern, is_write)`: a fetch and a
/// write-back with the same shape must stay distinct hardware patterns
/// because the top level derives `dram_we` from the running pattern index
/// — merging them used to strobe the DRAM write enable on read traffic.
/// When one phase needs the *same* (pattern, direction) twice (two
/// equally-shaped bottoms fetched from different spill slots), the set
/// keeps one copy per concurrent use so each gets its own trigger bit and
/// runtime offset.
pub fn collect_main_patterns(compiled: &CompiledNetwork) -> Vec<(AguPattern, bool)> {
    let mut set: Vec<(AguPattern, bool)> = Vec::new();
    for prog in &compiled.agu_programs {
        let mut occ: Vec<((AguPattern, bool), usize)> = Vec::new();
        for (i, p) in prog.main.iter().enumerate() {
            let write = prog.main_write.get(i).copied().unwrap_or(false);
            let key = (AguPattern { offset: 0, ..*p }, write);
            let n = bump_occurrence(&mut occ, key);
            let have = set.iter().filter(|e| **e == key).count();
            if have < n + 1 {
                set.push(key);
            }
        }
    }
    if set.is_empty() {
        set.push((AguPattern::linear(0, 1), false));
    }
    set
}

/// Counts the occurrences of `key` so far (returning the previous count
/// and incrementing) — used to map a phase's i-th use of a hardware
/// pattern to the i-th copy in the deduplicated set.
fn bump_occurrence(occ: &mut Vec<((AguPattern, bool), usize)>, key: (AguPattern, bool)) -> usize {
    if let Some(e) = occ.iter_mut().find(|e| e.0 == key) {
        e.1 += 1;
        e.1 - 1
    } else {
        occ.push((key, 1));
        0
    }
}

/// Index of the `occurrence`-th copy of `key` in the deduplicated set.
fn main_slot(
    set: &[(AguPattern, bool)],
    key: (AguPattern, bool),
    occurrence: usize,
) -> Option<usize> {
    set.iter()
        .enumerate()
        .filter(|(_, e)| **e == key)
        .map(|(i, _)| i)
        .nth(occurrence)
}

/// The context-buffer images for the generated top: for every phase, the
/// trigger word of each AGU class — one bit per pattern the phase runs,
/// at that pattern's index in the deduplicated set of
/// [`collect_patterns`].
///
/// A phase's main word may have several bits set (input fetch, weight
/// fetch, write-back); the chained main AGU drains them lowest-first.
/// Encoding only the first pattern per class — as this table used to —
/// silently dropped the weight fetch and the write-back of every phase.
///
/// These are the words the `ctx_trig_*` ROMs hold; `verify_design_control_path`
/// and the RTL execution tests load them through the interpreter backdoor,
/// and `export_rtl` writes them next to the netlist.
pub fn context_words(compiled: &CompiledNetwork) -> Vec<[u64; 3]> {
    let main_set = collect_main_patterns(compiled);
    let sets = [
        collect_patterns(compiled, AguClass::Data),
        collect_patterns(compiled, AguClass::Weight),
    ];
    compiled
        .agu_programs
        .iter()
        .map(|prog| {
            let mut words = [0u64; 3];
            let mut occ: Vec<((AguPattern, bool), usize)> = Vec::new();
            for (i, p) in prog.main.iter().enumerate() {
                let write = prog.main_write.get(i).copied().unwrap_or(false);
                let key = (AguPattern { offset: 0, ..*p }, write);
                let n = bump_occurrence(&mut occ, key);
                if let Some(slot) = main_slot(&main_set, key, n) {
                    words[0] |= 1u64 << slot.min(63);
                }
            }
            for (slot, source) in [&prog.data, &prog.weight].iter().enumerate() {
                for p in source.iter() {
                    let canon = AguPattern { offset: 0, ..*p };
                    if let Some(idx) = sets[slot].iter().position(|q| *q == canon) {
                        words[slot + 1] |= 1u64 << idx.min(63);
                    }
                }
            }
            words
        })
        .collect()
}

/// Per-phase runtime offsets for the main AGU's hardware patterns: entry
/// `[phase][slot]` is the offset the AGU must add when it launches
/// hardware pattern `slot` during `phase` (0 when the phase does not
/// trigger that pattern). These are the words of the `ctx_off_main` ROM,
/// indexed by `{phase, pat_next}` — they are what makes weight-fold
/// slices and spill-slot displacements real in hardware instead of
/// compile-time fictions canonicalised away by the pattern dedup.
pub fn context_offsets(compiled: &CompiledNetwork) -> Vec<Vec<u64>> {
    let set = collect_main_patterns(compiled);
    compiled
        .agu_programs
        .iter()
        .map(|prog| {
            let mut offs = vec![0u64; set.len()];
            let mut occ: Vec<((AguPattern, bool), usize)> = Vec::new();
            for (i, p) in prog.main.iter().enumerate() {
                let write = prog.main_write.get(i).copied().unwrap_or(false);
                let key = (AguPattern { offset: 0, ..*p }, write);
                let n = bump_occurrence(&mut occ, key);
                if let Some(slot) = main_slot(&set, key, n) {
                    offs[slot] = p.offset;
                }
            }
            offs
        })
        .collect()
}

/// One bit per main hardware pattern, set when that pattern writes DRAM.
/// The top level indexes this constant with the running pattern
/// (`pat_cur`) to drive `dram_we` only during write-back traffic.
pub fn main_write_mask(compiled: &CompiledNetwork) -> u64 {
    collect_main_patterns(compiled)
        .iter()
        .enumerate()
        .fold(
            0u64,
            |m, (i, &(_, w))| if w { m | (1u64 << i.min(63)) } else { m },
        )
}

/// Enumerates the block instances a compiled network needs and totals
/// their resource cost.
pub fn estimate_resources(net: &Network, compiled: &CompiledNetwork) -> ResourceReport {
    let cfg = &compiled.config;
    let w = cfg.word_bits;
    let mut report = ResourceReport::default();

    // Datapath.
    report.push(&SynergyNeuron::new(w, cfg.lanes));
    report.push(&AccumulatorBlock { width: w });
    report.push(&ActivationUnit { width: w });

    // Layer-driven blocks (one instance per distinct requirement —
    // temporal folding shares them across layers).
    let mut need_max_pool = false;
    let mut need_avg_pool = false;
    let mut need_dropout = false;
    let mut ksorter_inputs = 0u32;
    let mut lrn: Option<(usize, f64, f64)> = None;
    for layer in net.layers() {
        match &layer.kind {
            LayerKind::Pooling(p) => match p.method {
                PoolMethod::Max => need_max_pool = true,
                PoolMethod::Average => need_avg_pool = true,
            },
            LayerKind::Inception(_) => need_max_pool = true,
            LayerKind::Dropout { .. } => need_dropout = true,
            LayerKind::Classifier { .. } => {
                let inputs = net
                    .infer_shapes()
                    .ok()
                    .and_then(|s| layer.bottoms.first().map(|b| s[b].elements() as u32))
                    .unwrap_or(2);
                ksorter_inputs = ksorter_inputs.max(inputs.max(2));
            }
            LayerKind::Lrn(p) => lrn = Some((p.local_size, p.alpha, p.beta)),
            _ => {}
        }
    }
    if need_max_pool {
        report.push(&PoolingUnit {
            width: w,
            method: PoolMethod::Max,
        });
    }
    if need_avg_pool {
        report.push(&PoolingUnit {
            width: w,
            method: PoolMethod::Average,
        });
    }
    if need_dropout {
        report.push(&DropOutUnit { width: w });
    }
    if ksorter_inputs > 0 {
        report.push(&KSorter {
            width: w,
            inputs: ksorter_inputs,
        });
    }
    if let Some((n, alpha, beta)) = lrn {
        report.push(&LrnUnit::new(w, n, alpha, beta, cfg.format));
    }

    // Approx LUTs from the compiled images.
    for (tag, image) in &compiled.luts {
        let block = ApproxLutBlock::new(w, image.clone());
        let cost = block.cost();
        report.items.push((format!("approx LUT `{tag}`"), cost));
        report.total += cost;
    }

    // Connection box sized by the distinct crossbar configurations.
    let cb_ports = 4u32.max(compiled.schedule.distinct_configurations() as u32);
    report.push(&ConnectionBox {
        width: w,
        inputs: cb_ports,
        outputs: 2,
    });

    // Buffers: feature rows feed all lanes, weights likewise.
    let feature_words = (cfg.feature_buffer_bytes * 8 / u64::from(w * cfg.lanes)).max(2) as usize;
    report.push(&BufferBlock {
        width: w * cfg.lanes,
        depth: feature_words,
    });
    let weight_words = (cfg.weight_buffer_bytes * 8 / u64::from(w * cfg.lanes)).max(2) as usize;
    report.push(&BufferBlock {
        width: w * cfg.lanes,
        depth: weight_words,
    });

    // AGUs reduced to the patterns the compiler emitted.
    for class in [AguClass::Main, AguClass::Data, AguClass::Weight] {
        let patterns = collect_patterns(compiled, class);
        report.push(&AguBlock::new(class, 32, patterns));
    }

    // Coordinator.
    report.push(&Coordinator {
        phases: compiled.folding.phases.len().max(1) as u32,
    });

    // Performance counters (always instantiated by `assemble_top`).
    report.push(&PerfCounters::default());

    report
}

/// Whether the estimated design fits the given envelope; returns the
/// utilisation on the tightest axis.
pub fn check_fit(report: &ResourceReport, envelope: &ResourceCost) -> (bool, f64) {
    (
        report.total.fits_in(envelope),
        report.total.utilization(envelope),
    )
}

/// True when a compute phase exists — i.e. the network actually exercises
/// the synergy lanes (used by sanity checks).
pub fn uses_lanes(compiled: &CompiledNetwork) -> bool {
    compiled
        .folding
        .phases
        .iter()
        .any(|p| p.kind == PhaseKind::Compute)
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepburning_compiler::{compile, CompilerConfig};
    use deepburning_model::parse_network;

    const SRC: &str = r#"
    name: "t"
    layers { name: "data" type: INPUT top: "data"
             input_param { channels: 1 height: 16 width: 16 } }
    layers { name: "conv" type: CONVOLUTION bottom: "data" top: "conv"
             param { num_output: 8 kernel_size: 3 stride: 1 } }
    layers { name: "pool" type: POOLING bottom: "conv" top: "pool"
             pooling_param { pool: MAX kernel_size: 2 stride: 2 } }
    layers { name: "sig" type: SIGMOID bottom: "pool" top: "pool" }
    layers { name: "fc" type: FC bottom: "pool" top: "fc"
             param { num_output: 10 } }
    layers { name: "cls" type: CLASSIFIER bottom: "fc" top: "cls" }
    "#;

    fn compiled(lanes: u32) -> (deepburning_model::Network, CompiledNetwork) {
        let net = parse_network(SRC).expect("parses");
        let cfg = CompilerConfig {
            lanes,
            ..CompilerConfig::default()
        };
        let c = compile(&net, &cfg).expect("compiles");
        (net, c)
    }

    #[test]
    fn report_contains_expected_blocks() {
        let (net, c) = compiled(16);
        let report = estimate_resources(&net, &c);
        let names: Vec<&str> = report.items.iter().map(|(n, _)| n.as_str()).collect();
        assert!(
            names.iter().any(|n| n.contains("synergy neuron")),
            "{names:?}"
        );
        assert!(names.iter().any(|n| n.contains("pooling unit (MAX)")));
        assert!(names.iter().any(|n| n.contains("approx LUT `sigmoid`")));
        assert!(names.iter().any(|n| n.contains("K-sorter")));
        assert!(names.iter().any(|n| n.contains("main AGU")));
        assert!(names.iter().any(|n| n.contains("coordinator")));
    }

    #[test]
    fn total_is_sum_of_items() {
        let (net, c) = compiled(16);
        let report = estimate_resources(&net, &c);
        let sum: ResourceCost = report.items.iter().map(|(_, c)| *c).sum();
        assert_eq!(sum, report.total);
    }

    #[test]
    fn dsp_scales_with_lanes() {
        let (net_a, c_a) = compiled(8);
        let (net_b, c_b) = compiled(64);
        let a = estimate_resources(&net_a, &c_a).total;
        let b = estimate_resources(&net_b, &c_b).total;
        assert!(b.dsp > a.dsp);
        assert!(b.dsp - a.dsp >= 56, "lane DSPs dominate the delta");
    }

    #[test]
    fn pattern_collection_dedupes() {
        let (_, c) = compiled(16);
        let data = collect_patterns(&c, AguClass::Data);
        let total_raw: usize = c.agu_programs.iter().map(|p| p.data.len()).sum();
        assert!(data.len() <= total_raw);
        assert!(!data.is_empty());
    }

    #[test]
    fn fit_check_works() {
        let (net, c) = compiled(16);
        let report = estimate_resources(&net, &c);
        let generous = ResourceCost {
            dsp: 10_000,
            lut: 10_000_000,
            ff: 10_000_000,
            bram_bits: 1 << 40,
        };
        let (fits, util) = check_fit(&report, &generous);
        assert!(fits);
        assert!(util < 1.0);
        let tight = ResourceCost::logic(1, 10, 10);
        assert!(!check_fit(&report, &tight).0);
    }

    #[test]
    fn network_uses_lanes() {
        let (_, c) = compiled(16);
        assert!(uses_lanes(&c));
    }

    #[test]
    fn context_words_trigger_every_main_pattern() {
        let (_, c) = compiled(16);
        let words = context_words(&c);
        for (prog, w) in c.agu_programs.iter().zip(&words) {
            assert_eq!(
                w[0].count_ones() as usize,
                prog.main.len(),
                "phase {} main trigger word must cover all {} patterns",
                prog.phase,
                prog.main.len()
            );
        }
    }

    #[test]
    fn context_offsets_match_programs() {
        let (_, c) = compiled(16);
        let set = collect_main_patterns(&c);
        let offs = context_offsets(&c);
        assert_eq!(offs.len(), c.agu_programs.len());
        for (prog, po) in c.agu_programs.iter().zip(&offs) {
            assert_eq!(po.len(), set.len());
            // Every non-zero program offset must appear in the ROM row.
            for p in &prog.main {
                if p.offset != 0 {
                    assert!(
                        po.contains(&p.offset),
                        "phase {}: offset {} missing from ctx row {po:?}",
                        prog.phase,
                        p.offset
                    );
                }
            }
        }
    }

    #[test]
    fn write_mask_separates_fetches_from_write_backs() {
        let (_, c) = compiled(16);
        let set = collect_main_patterns(&c);
        let mask = main_write_mask(&c);
        assert!(mask != 0, "network spills, so some pattern writes DRAM");
        assert!(
            set.iter().any(|&(_, w)| !w),
            "fetch patterns must exist too"
        );
        for (i, &(_, w)) in set.iter().enumerate() {
            assert_eq!((mask >> i) & 1 == 1, w);
        }
    }
}
