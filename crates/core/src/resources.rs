//! Whole-accelerator resource estimation.
//!
//! NN-Gen instantiates a concrete set of building blocks for a compiled
//! network; this module enumerates that set and totals its cost, producing
//! the numbers reported in paper Table 3.

use deepburning_compiler::{CompiledNetwork, PhaseKind};
use deepburning_components::{
    AccumulatorBlock, ActivationUnit, AguBlock, AguClass, AguPattern, ApproxLutBlock, Block,
    BufferBlock, ConnectionBox, Coordinator, DropOutUnit, KSorter, LrnUnit, PerfCounters,
    PoolingUnit, ResourceCost, SynergyNeuron,
};
use deepburning_model::{LayerKind, Network, PoolMethod};

/// Per-block resource breakdown.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ResourceReport {
    /// `(block description, cost)` pairs.
    pub items: Vec<(String, ResourceCost)>,
    /// Sum of all items.
    pub total: ResourceCost,
}

impl ResourceReport {
    fn push(&mut self, block: &dyn Block) {
        let cost = block.cost();
        self.items.push((block.describe(), cost));
        self.total += cost;
    }
}

/// Collects the deduplicated AGU patterns of one class across all phases.
///
/// Patterns differing only in `offset` are one hardware pattern: the
/// offset is a runtime field of the template AGU (Fig. 6), loaded from the
/// context buffer at each `layer{i}-fold{j}` event, so per-fold
/// displacements do not multiply the pattern ROM.
pub fn collect_patterns(compiled: &CompiledNetwork, class: AguClass) -> Vec<AguPattern> {
    let mut patterns: Vec<AguPattern> = Vec::new();
    for prog in &compiled.agu_programs {
        let source = match class {
            AguClass::Main => &prog.main,
            AguClass::Data => &prog.data,
            AguClass::Weight => &prog.weight,
        };
        for p in source {
            let canon = AguPattern { offset: 0, ..*p };
            if !patterns.contains(&canon) {
                patterns.push(canon);
            }
        }
    }
    if patterns.is_empty() {
        patterns.push(AguPattern::linear(0, 1));
    }
    patterns
}

/// The context-buffer images for the generated top: for every phase, the
/// one-hot trigger word of each AGU class (bit = index of the phase's
/// pattern in the deduplicated pattern set of [`collect_patterns`]).
///
/// These are the words the `ctx_trig_*` ROMs hold; `verify_design_control_path`
/// and the RTL execution tests load them through the interpreter backdoor,
/// and `export_rtl` writes them next to the netlist.
pub fn context_words(compiled: &CompiledNetwork) -> Vec<[u64; 3]> {
    let sets = [
        collect_patterns(compiled, AguClass::Main),
        collect_patterns(compiled, AguClass::Data),
        collect_patterns(compiled, AguClass::Weight),
    ];
    compiled
        .agu_programs
        .iter()
        .map(|prog| {
            let mut words = [0u64; 3];
            for (slot, source) in [&prog.main, &prog.data, &prog.weight].iter().enumerate() {
                if let Some(first) = source.first() {
                    let canon = AguPattern {
                        offset: 0,
                        ..*first
                    };
                    if let Some(idx) = sets[slot].iter().position(|p| *p == canon) {
                        words[slot] = 1u64 << idx.min(63);
                    }
                }
            }
            words
        })
        .collect()
}

/// Enumerates the block instances a compiled network needs and totals
/// their resource cost.
pub fn estimate_resources(net: &Network, compiled: &CompiledNetwork) -> ResourceReport {
    let cfg = &compiled.config;
    let w = cfg.word_bits;
    let mut report = ResourceReport::default();

    // Datapath.
    report.push(&SynergyNeuron::new(w, cfg.lanes));
    report.push(&AccumulatorBlock { width: w });
    report.push(&ActivationUnit { width: w });

    // Layer-driven blocks (one instance per distinct requirement —
    // temporal folding shares them across layers).
    let mut need_max_pool = false;
    let mut need_avg_pool = false;
    let mut need_dropout = false;
    let mut ksorter_inputs = 0u32;
    let mut lrn: Option<(usize, f64, f64)> = None;
    for layer in net.layers() {
        match &layer.kind {
            LayerKind::Pooling(p) => match p.method {
                PoolMethod::Max => need_max_pool = true,
                PoolMethod::Average => need_avg_pool = true,
            },
            LayerKind::Inception(_) => need_max_pool = true,
            LayerKind::Dropout { .. } => need_dropout = true,
            LayerKind::Classifier { .. } => {
                let inputs = net
                    .infer_shapes()
                    .ok()
                    .and_then(|s| layer.bottoms.first().map(|b| s[b].elements() as u32))
                    .unwrap_or(2);
                ksorter_inputs = ksorter_inputs.max(inputs.max(2));
            }
            LayerKind::Lrn(p) => lrn = Some((p.local_size, p.alpha, p.beta)),
            _ => {}
        }
    }
    if need_max_pool {
        report.push(&PoolingUnit {
            width: w,
            method: PoolMethod::Max,
        });
    }
    if need_avg_pool {
        report.push(&PoolingUnit {
            width: w,
            method: PoolMethod::Average,
        });
    }
    if need_dropout {
        report.push(&DropOutUnit { width: w });
    }
    if ksorter_inputs > 0 {
        report.push(&KSorter {
            width: w,
            inputs: ksorter_inputs,
        });
    }
    if let Some((n, alpha, beta)) = lrn {
        report.push(&LrnUnit::new(w, n, alpha, beta, cfg.format));
    }

    // Approx LUTs from the compiled images.
    for (tag, image) in &compiled.luts {
        let block = ApproxLutBlock::new(w, image.clone());
        let cost = block.cost();
        report.items.push((format!("approx LUT `{tag}`"), cost));
        report.total += cost;
    }

    // Connection box sized by the distinct crossbar configurations.
    let cb_ports = 4u32.max(compiled.schedule.distinct_configurations() as u32);
    report.push(&ConnectionBox {
        width: w,
        inputs: cb_ports,
        outputs: 2,
    });

    // Buffers: feature rows feed all lanes, weights likewise.
    let feature_words = (cfg.feature_buffer_bytes * 8 / u64::from(w * cfg.lanes)).max(2) as usize;
    report.push(&BufferBlock {
        width: w * cfg.lanes,
        depth: feature_words,
    });
    let weight_words = (cfg.weight_buffer_bytes * 8 / u64::from(w * cfg.lanes)).max(2) as usize;
    report.push(&BufferBlock {
        width: w * cfg.lanes,
        depth: weight_words,
    });

    // AGUs reduced to the patterns the compiler emitted.
    for class in [AguClass::Main, AguClass::Data, AguClass::Weight] {
        let patterns = collect_patterns(compiled, class);
        report.push(&AguBlock::new(class, 32, patterns));
    }

    // Coordinator.
    report.push(&Coordinator {
        phases: compiled.folding.phases.len().max(1) as u32,
    });

    // Performance counters (always instantiated by `assemble_top`).
    report.push(&PerfCounters::default());

    report
}

/// Whether the estimated design fits the given envelope; returns the
/// utilisation on the tightest axis.
pub fn check_fit(report: &ResourceReport, envelope: &ResourceCost) -> (bool, f64) {
    (
        report.total.fits_in(envelope),
        report.total.utilization(envelope),
    )
}

/// True when a compute phase exists — i.e. the network actually exercises
/// the synergy lanes (used by sanity checks).
pub fn uses_lanes(compiled: &CompiledNetwork) -> bool {
    compiled
        .folding
        .phases
        .iter()
        .any(|p| p.kind == PhaseKind::Compute)
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepburning_compiler::{compile, CompilerConfig};
    use deepburning_model::parse_network;

    const SRC: &str = r#"
    name: "t"
    layers { name: "data" type: INPUT top: "data"
             input_param { channels: 1 height: 16 width: 16 } }
    layers { name: "conv" type: CONVOLUTION bottom: "data" top: "conv"
             param { num_output: 8 kernel_size: 3 stride: 1 } }
    layers { name: "pool" type: POOLING bottom: "conv" top: "pool"
             pooling_param { pool: MAX kernel_size: 2 stride: 2 } }
    layers { name: "sig" type: SIGMOID bottom: "pool" top: "pool" }
    layers { name: "fc" type: FC bottom: "pool" top: "fc"
             param { num_output: 10 } }
    layers { name: "cls" type: CLASSIFIER bottom: "fc" top: "cls" }
    "#;

    fn compiled(lanes: u32) -> (deepburning_model::Network, CompiledNetwork) {
        let net = parse_network(SRC).expect("parses");
        let cfg = CompilerConfig {
            lanes,
            ..CompilerConfig::default()
        };
        let c = compile(&net, &cfg).expect("compiles");
        (net, c)
    }

    #[test]
    fn report_contains_expected_blocks() {
        let (net, c) = compiled(16);
        let report = estimate_resources(&net, &c);
        let names: Vec<&str> = report.items.iter().map(|(n, _)| n.as_str()).collect();
        assert!(
            names.iter().any(|n| n.contains("synergy neuron")),
            "{names:?}"
        );
        assert!(names.iter().any(|n| n.contains("pooling unit (MAX)")));
        assert!(names.iter().any(|n| n.contains("approx LUT `sigmoid`")));
        assert!(names.iter().any(|n| n.contains("K-sorter")));
        assert!(names.iter().any(|n| n.contains("main AGU")));
        assert!(names.iter().any(|n| n.contains("coordinator")));
    }

    #[test]
    fn total_is_sum_of_items() {
        let (net, c) = compiled(16);
        let report = estimate_resources(&net, &c);
        let sum: ResourceCost = report.items.iter().map(|(_, c)| *c).sum();
        assert_eq!(sum, report.total);
    }

    #[test]
    fn dsp_scales_with_lanes() {
        let (net_a, c_a) = compiled(8);
        let (net_b, c_b) = compiled(64);
        let a = estimate_resources(&net_a, &c_a).total;
        let b = estimate_resources(&net_b, &c_b).total;
        assert!(b.dsp > a.dsp);
        assert!(b.dsp - a.dsp >= 56, "lane DSPs dominate the delta");
    }

    #[test]
    fn pattern_collection_dedupes() {
        let (_, c) = compiled(16);
        let data = collect_patterns(&c, AguClass::Data);
        let total_raw: usize = c.agu_programs.iter().map(|p| p.data.len()).sum();
        assert!(data.len() <= total_raw);
        assert!(!data.is_empty());
    }

    #[test]
    fn fit_check_works() {
        let (net, c) = compiled(16);
        let report = estimate_resources(&net, &c);
        let generous = ResourceCost {
            dsp: 10_000,
            lut: 10_000_000,
            ff: 10_000_000,
            bram_bits: 1 << 40,
        };
        let (fits, util) = check_fit(&report, &generous);
        assert!(fits);
        assert!(util < 1.0);
        let tight = ResourceCost::logic(1, 10, 10);
        assert!(!check_fit(&report, &tight).0);
    }

    #[test]
    fn network_uses_lanes() {
        let (_, c) = compiled(16);
        assert!(uses_lanes(&c));
    }
}
