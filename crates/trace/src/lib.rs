//! Zero-dependency instrumentation core for the DeepBurning pipeline.
//!
//! The generator and its simulators are instrumented against this crate:
//! compiler passes open hierarchical *spans*, the simulators bump
//! *counters* and *gauges*, and the timing simulator lays its phases out on
//! a *virtual timeline*. A [`Tracer`] collects everything thread-safely and
//! exports it through three sinks:
//!
//! * [`Tracer::summary`] — a human-readable aggregate table;
//! * [`Tracer::chrome_trace`] — Chrome trace-event JSON, loadable in
//!   Perfetto / `chrome://tracing`;
//! * [`Tracer::metrics`] — a machine-readable metrics document.
//!
//! Instrumented code never takes a `Tracer` parameter: a tracer is
//! *installed* on the current thread ([`install`]) and the free functions
//! ([`span`], [`counter`], [`gauge`], …) record into whichever tracer is
//! installed, or do nothing. The same `Tracer` (it is `Clone` + `Send` +
//! `Sync`) can be installed on several threads; every event carries the
//! recording thread's id.
//!
//! # Examples
//!
//! ```
//! use deepburning_trace as trace;
//!
//! let tracer = trace::Tracer::new();
//! {
//!     let _session = trace::install(&tracer);
//!     {
//!         let _span = trace::span("compiler", "compiler.folding");
//!         trace::counter("compiler", "compiler.phases", 3.0);
//!     }
//! }
//! let metrics = tracer.metrics();
//! assert_eq!(
//!     metrics.get("counters").and_then(|c| c.get("compiler.phases")).and_then(|v| v.as_f64()),
//!     Some(3.0)
//! );
//! assert!(tracer.chrome_trace().contains("compiler.folding"));
//! ```

pub mod hist;
pub mod json;
pub mod par;
pub mod prof;

pub use hist::Histogram;
pub use prof::EngineProfile;

use json::Json;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// What an [`Event`] records.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// A span opened (`ph: "B"`).
    SpanBegin,
    /// A span closed (`ph: "E"`).
    SpanEnd,
    /// A monotonically accumulated quantity; the chrome sink renders the
    /// running total as a counter track (`ph: "C"`).
    Counter {
        /// Increment contributed by this event.
        delta: f64,
    },
    /// A sampled value; the last write wins in the metrics sink.
    Gauge {
        /// The sampled value.
        value: f64,
    },
    /// A point-in-time marker (`ph: "i"`).
    Instant,
    /// An event on a *virtual* timeline (simulated cycles rather than wall
    /// time), rendered as a complete event (`ph: "X"`) in its own process
    /// group so Perfetto shows it on a separate track.
    Virtual {
        /// Track (thread row) name within the virtual process group.
        track: String,
        /// Start timestamp in virtual microseconds.
        ts_us: f64,
        /// Duration in virtual microseconds.
        dur_us: f64,
    },
}

/// One recorded event.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Event name (span name, counter name, …).
    pub name: String,
    /// Category tag (`compiler`, `core`, `sim`, `rtl`, …).
    pub category: &'static str,
    /// Wall-clock microseconds since the tracer was created (virtual
    /// events carry their own timestamps in [`EventKind::Virtual`]).
    pub ts_us: f64,
    /// Recording thread id (stable small integer per thread).
    pub tid: u64,
    /// Payload.
    pub kind: EventKind,
    /// Extra key/value arguments.
    pub args: Vec<(String, Json)>,
}

/// Bounded event storage: a ring of the newest `cap` events plus a count
/// of how many older events were evicted. Tracing a ~1.4e8-cycle full
/// RTL run can therefore never OOM the host — the newest window survives
/// and [`Tracer::events_dropped`] reports the loss honestly.
struct Ring {
    events: VecDeque<Event>,
    cap: usize,
    dropped: u64,
}

impl Ring {
    fn push(&mut self, event: Event) {
        if self.events.len() == self.cap {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event);
    }
}

struct Inner {
    enabled: AtomicBool,
    start: Instant,
    events: Mutex<Ring>,
}

/// Default event-ring capacity (see [`Tracer::with_capacity`]): roughly
/// 40 MB of events, far above any per-layer run, small enough that an
/// unattended full-network trace stays bounded.
pub const DEFAULT_EVENT_CAPACITY: usize = 262_144;

/// A thread-safe event collector. Cloning is cheap and shares the buffer.
#[derive(Clone)]
pub struct Tracer {
    inner: Arc<Inner>,
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::new()
    }
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field(
                "events",
                &self
                    .inner
                    .events
                    .lock()
                    .map(|r| r.events.len())
                    .unwrap_or(0),
            )
            .field("dropped", &self.events_dropped())
            .finish()
    }
}

static NEXT_TID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static THREAD_ID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
    static CURRENT: RefCell<Vec<Tracer>> = const { RefCell::new(Vec::new()) };
}

fn thread_id() -> u64 {
    THREAD_ID.with(|t| *t)
}

impl Tracer {
    /// Creates an enabled tracer with an empty buffer bounded at
    /// [`DEFAULT_EVENT_CAPACITY`] events.
    pub fn new() -> Tracer {
        Tracer::with_capacity(DEFAULT_EVENT_CAPACITY)
    }

    /// Creates an enabled tracer whose event ring keeps at most `cap`
    /// events; older events are evicted (and counted in
    /// [`Tracer::events_dropped`]) once the ring is full.
    pub fn with_capacity(cap: usize) -> Tracer {
        Tracer {
            inner: Arc::new(Inner {
                enabled: AtomicBool::new(true),
                start: Instant::now(),
                events: Mutex::new(Ring {
                    events: VecDeque::new(),
                    cap: cap.max(1),
                    dropped: 0,
                }),
            }),
        }
    }

    /// Pauses / resumes recording (events are dropped while disabled).
    pub fn set_enabled(&self, enabled: bool) {
        self.inner.enabled.store(enabled, Ordering::Relaxed);
    }

    fn now_us(&self) -> f64 {
        self.inner.start.elapsed().as_secs_f64() * 1e6
    }

    fn record(&self, event: Event) {
        if !self.inner.enabled.load(Ordering::Relaxed) {
            return;
        }
        if let Ok(mut ring) = self.inner.events.lock() {
            ring.push(event);
        }
    }

    fn record_now(&self, category: &'static str, name: String, kind: EventKind) {
        let ts_us = self.now_us();
        self.record(Event {
            name,
            category,
            ts_us,
            tid: thread_id(),
            kind,
            args: Vec::new(),
        });
    }

    /// Snapshot of every event still in the ring.
    pub fn events(&self) -> Vec<Event> {
        self.inner
            .events
            .lock()
            .map(|r| r.events.iter().cloned().collect())
            .unwrap_or_default()
    }

    /// Number of events currently in the ring.
    pub fn len(&self) -> usize {
        self.inner
            .events
            .lock()
            .map(|r| r.events.len())
            .unwrap_or(0)
    }

    /// Events evicted from the ring because it was full. Non-zero means
    /// the exports below describe only the newest window of the run.
    pub fn events_dropped(&self) -> u64 {
        self.inner.events.lock().map(|r| r.dropped).unwrap_or(0)
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    // -- sinks --------------------------------------------------------------

    /// Chrome trace-event JSON (the `{"traceEvents": [...]}` object form),
    /// loadable in Perfetto and `chrome://tracing`.
    ///
    /// Wall-clock spans/counters/instants live in process 1; virtual
    /// timelines (simulated cycles) live in process 2 with one named
    /// thread row per track.
    pub fn chrome_trace(&self) -> String {
        let events = self.events();
        let mut out: Vec<Json> = Vec::with_capacity(events.len() + 8);
        let entry = |name: &str,
                     cat: &str,
                     ph: &str,
                     ts: f64,
                     pid: u64,
                     tid: u64,
                     extra: Vec<(String, Json)>| {
            let mut pairs = vec![
                ("name".to_string(), Json::str(name)),
                ("cat".to_string(), Json::str(cat)),
                ("ph".to_string(), Json::str(ph)),
                ("ts".to_string(), Json::num(ts)),
                ("pid".to_string(), Json::num(pid as f64)),
                ("tid".to_string(), Json::num(tid as f64)),
            ];
            pairs.extend(extra);
            Json::Obj(pairs)
        };
        // Name the two process groups so Perfetto labels the tracks.
        for (pid, label) in [(1u64, "deepburning"), (2, "simulated-time")] {
            out.push(Json::obj([
                ("name", Json::str("process_name")),
                ("ph", Json::str("M")),
                ("pid", Json::num(pid as f64)),
                ("tid", Json::num(0.0)),
                ("args", Json::obj([("name", Json::str(label))])),
            ]));
        }
        // Virtual tracks get stable small tids within pid 2.
        let mut track_tids: Vec<String> = Vec::new();
        let mut counters: std::collections::BTreeMap<String, f64> = Default::default();
        // Per-tid open-span depth: when the ring evicted a SpanBegin, its
        // orphaned SpanEnd must be skipped or the trace would be
        // unbalanced (spans nest per thread, so eviction only ever
        // removes a prefix — an end with no open span has lost its begin).
        let mut open_depth: std::collections::BTreeMap<u64, u64> = Default::default();
        for e in &events {
            let args_json = |extra: Vec<(String, Json)>| {
                let mut pairs = e.args.clone();
                pairs.extend(extra);
                if pairs.is_empty() {
                    Vec::new()
                } else {
                    vec![("args".to_string(), Json::Obj(pairs))]
                }
            };
            match &e.kind {
                EventKind::SpanBegin => {
                    *open_depth.entry(e.tid).or_insert(0) += 1;
                    out.push(entry(
                        &e.name,
                        e.category,
                        "B",
                        e.ts_us,
                        1,
                        e.tid,
                        args_json(vec![]),
                    ));
                }
                EventKind::SpanEnd => {
                    let depth = open_depth.entry(e.tid).or_insert(0);
                    if *depth == 0 {
                        continue; // begin was evicted from the ring
                    }
                    *depth -= 1;
                    out.push(entry(
                        &e.name,
                        e.category,
                        "E",
                        e.ts_us,
                        1,
                        e.tid,
                        args_json(vec![]),
                    ));
                }
                EventKind::Counter { delta } => {
                    let total = counters.entry(e.name.clone()).or_insert(0.0);
                    *total += delta;
                    let args = vec![(
                        "args".to_string(),
                        Json::obj([("value", Json::num(*total))]),
                    )];
                    out.push(entry(&e.name, e.category, "C", e.ts_us, 1, e.tid, args));
                }
                EventKind::Gauge { value } => {
                    let args = vec![(
                        "args".to_string(),
                        Json::obj([("value", Json::num(*value))]),
                    )];
                    out.push(entry(&e.name, e.category, "C", e.ts_us, 1, e.tid, args));
                }
                EventKind::Instant => {
                    let mut extra = args_json(vec![]);
                    extra.push(("s".to_string(), Json::str("t")));
                    out.push(entry(&e.name, e.category, "i", e.ts_us, 1, e.tid, extra));
                }
                EventKind::Virtual {
                    track,
                    ts_us,
                    dur_us,
                } => {
                    let tid = match track_tids.iter().position(|t| t == track) {
                        Some(i) => i as u64 + 1,
                        None => {
                            track_tids.push(track.clone());
                            let tid = track_tids.len() as u64;
                            out.push(Json::obj([
                                ("name", Json::str("thread_name")),
                                ("ph", Json::str("M")),
                                ("pid", Json::num(2.0)),
                                ("tid", Json::num(tid as f64)),
                                ("args", Json::obj([("name", Json::str(track.clone()))])),
                            ]));
                            tid
                        }
                    };
                    let mut extra = args_json(vec![]);
                    extra.push(("dur".to_string(), Json::num(*dur_us)));
                    out.push(entry(&e.name, e.category, "X", *ts_us, 2, tid, extra));
                }
            }
        }
        Json::obj([("traceEvents", Json::Arr(out))]).render()
    }

    /// Machine-readable metrics document: aggregated span durations,
    /// counter totals and last-written gauge values.
    pub fn metrics(&self) -> Json {
        let events = self.events();
        // Span aggregation: match B/E per (tid, name) as a stack.
        #[derive(Default)]
        struct SpanAgg {
            count: u64,
            total_us: f64,
        }
        let mut open: std::collections::BTreeMap<(u64, String), Vec<f64>> = Default::default();
        let mut spans: Vec<(String, SpanAgg)> = Vec::new();
        let mut counters: Vec<(String, f64)> = Vec::new();
        let mut gauges: Vec<(String, f64)> = Vec::new();
        for e in &events {
            match &e.kind {
                EventKind::SpanBegin => {
                    open.entry((e.tid, e.name.clone()))
                        .or_default()
                        .push(e.ts_us);
                }
                EventKind::SpanEnd => {
                    if let Some(begin) = open
                        .get_mut(&(e.tid, e.name.clone()))
                        .and_then(std::vec::Vec::pop)
                    {
                        let agg = match spans.iter_mut().find(|(n, _)| *n == e.name) {
                            Some((_, a)) => a,
                            None => {
                                spans.push((e.name.clone(), SpanAgg::default()));
                                &mut spans.last_mut().expect("just pushed").1
                            }
                        };
                        agg.count += 1;
                        agg.total_us += e.ts_us - begin;
                    }
                }
                EventKind::Counter { delta } => {
                    match counters.iter_mut().find(|(n, _)| *n == e.name) {
                        Some((_, total)) => *total += delta,
                        None => counters.push((e.name.clone(), *delta)),
                    }
                }
                EventKind::Gauge { value } => match gauges.iter_mut().find(|(n, _)| *n == e.name) {
                    Some((_, v)) => *v = *value,
                    None => gauges.push((e.name.clone(), *value)),
                },
                EventKind::Instant | EventKind::Virtual { .. } => {}
            }
        }
        Json::obj([
            (
                "spans",
                Json::Arr(
                    spans
                        .into_iter()
                        .map(|(name, a)| {
                            Json::obj([
                                ("name", Json::str(name)),
                                ("count", Json::num(a.count as f64)),
                                ("total_us", Json::num(a.total_us)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "counters",
                Json::Obj(
                    counters
                        .into_iter()
                        .map(|(n, v)| (n, Json::num(v)))
                        .collect(),
                ),
            ),
            (
                "gauges",
                Json::Obj(gauges.into_iter().map(|(n, v)| (n, Json::num(v))).collect()),
            ),
            ("events_dropped", Json::num(self.events_dropped() as f64)),
        ])
    }

    /// Human-readable aggregate summary: spans by total time, then counter
    /// totals and gauge values.
    pub fn summary(&self) -> String {
        let metrics = self.metrics();
        let mut out = String::new();
        out.push_str("spans (aggregated):\n");
        let mut rows: Vec<(&str, f64, f64)> = metrics
            .get("spans")
            .and_then(Json::as_arr)
            .map(|spans| {
                spans
                    .iter()
                    .filter_map(|s| {
                        Some((
                            s.get("name")?.as_str()?,
                            s.get("count")?.as_f64()?,
                            s.get("total_us")?.as_f64()?,
                        ))
                    })
                    .collect()
            })
            .unwrap_or_default();
        rows.sort_by(|a, b| b.2.partial_cmp(&a.2).unwrap_or(std::cmp::Ordering::Equal));
        for (name, count, total_us) in rows {
            out.push_str(&format!("  {name:<32} {count:>6}x {:>12.1} us\n", total_us));
        }
        for (section, key) in [("counters", "counters"), ("gauges", "gauges")] {
            if let Some(pairs) = metrics.get(key).and_then(Json::as_obj) {
                if !pairs.is_empty() {
                    out.push_str(&format!("{section}:\n"));
                    for (name, value) in pairs {
                        out.push_str(&format!("  {name:<32} {:>20}\n", value.render()));
                    }
                }
            }
        }
        let dropped = self.events_dropped();
        if dropped > 0 {
            out.push_str(&format!(
                "events dropped: {dropped} (ring full — oldest events evicted)\n"
            ));
        }
        out
    }
}

/// Restores the previously installed tracer (if any) on drop.
pub struct InstallGuard {
    _private: (),
}

impl Drop for InstallGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| {
            c.borrow_mut().pop();
        });
    }
}

/// Installs `tracer` as the current thread's recording target until the
/// returned guard drops. Installations nest; the innermost wins.
pub fn install(tracer: &Tracer) -> InstallGuard {
    CURRENT.with(|c| c.borrow_mut().push(tracer.clone()));
    InstallGuard { _private: () }
}

fn current() -> Option<Tracer> {
    CURRENT.with(|c| c.borrow().last().cloned())
}

/// RAII span: records `SpanBegin` on creation (when a tracer is installed)
/// and `SpanEnd` on drop. Arguments added with [`SpanGuard::arg`] are
/// attached to the end event.
pub struct SpanGuard {
    live: Option<(Tracer, &'static str, String)>,
    args: Vec<(String, Json)>,
}

impl SpanGuard {
    /// Attaches a key/value argument reported on the span's end event.
    pub fn arg(&mut self, key: impl Into<String>, value: Json) {
        if self.live.is_some() {
            self.args.push((key.into(), value));
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((tracer, category, name)) = self.live.take() {
            let ts_us = tracer.now_us();
            tracer.record(Event {
                name,
                category,
                ts_us,
                tid: thread_id(),
                kind: EventKind::SpanEnd,
                args: std::mem::take(&mut self.args),
            });
        }
    }
}

/// Opens a span on the current thread's tracer; a no-op guard when no
/// tracer is installed.
pub fn span(category: &'static str, name: impl Into<String>) -> SpanGuard {
    match current() {
        Some(tracer) => {
            let name = name.into();
            tracer.record_now(category, name.clone(), EventKind::SpanBegin);
            SpanGuard {
                live: Some((tracer, category, name)),
                args: Vec::new(),
            }
        }
        None => SpanGuard {
            live: None,
            args: Vec::new(),
        },
    }
}

/// Accumulates `delta` into the named counter.
pub fn counter(category: &'static str, name: impl Into<String>, delta: f64) {
    if let Some(tracer) = current() {
        tracer.record_now(category, name.into(), EventKind::Counter { delta });
    }
}

/// Samples the named gauge (last write wins in the metrics sink).
pub fn gauge(category: &'static str, name: impl Into<String>, value: f64) {
    if let Some(tracer) = current() {
        tracer.record_now(category, name.into(), EventKind::Gauge { value });
    }
}

/// Records a point-in-time marker.
pub fn instant(category: &'static str, name: impl Into<String>) {
    if let Some(tracer) = current() {
        tracer.record_now(category, name.into(), EventKind::Instant);
    }
}

/// Records an event on a virtual timeline (e.g. simulated cycles; by
/// convention one virtual microsecond per cycle).
pub fn virtual_event(
    category: &'static str,
    track: impl Into<String>,
    name: impl Into<String>,
    ts_us: f64,
    dur_us: f64,
    args: Vec<(String, Json)>,
) {
    if let Some(tracer) = current() {
        tracer.record(Event {
            name: name.into(),
            category,
            ts_us: 0.0,
            tid: thread_id(),
            kind: EventKind::Virtual {
                track: track.into(),
                ts_us,
                dur_us,
            },
            args,
        });
    }
}

/// True when a tracer is installed on the current thread (lets hot code
/// skip preparing event arguments entirely).
pub fn active() -> bool {
    CURRENT.with(|c| !c.borrow().is_empty())
}

/// Validates a chrome-trace document: parses, checks `traceEvents` is a
/// non-empty array, and that every `ph:"B"` has a matching `ph:"E"` per
/// (pid, tid), properly nested. Returns the number of events.
///
/// # Errors
///
/// Returns a description of the first structural problem found.
pub fn validate_chrome_trace(text: &str) -> Result<usize, String> {
    let doc = Json::parse(text).map_err(|e| e.to_string())?;
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or("missing traceEvents array")?;
    if events.is_empty() {
        return Err("traceEvents is empty".into());
    }
    let mut stacks: std::collections::BTreeMap<(u64, u64), Vec<String>> = Default::default();
    for e in events {
        let ph = e
            .get("ph")
            .and_then(Json::as_str)
            .ok_or("event without ph")?;
        let name = e.get("name").and_then(Json::as_str).unwrap_or("");
        let pid = e.get("pid").and_then(Json::as_f64).unwrap_or(0.0) as u64;
        let tid = e.get("tid").and_then(Json::as_f64).unwrap_or(0.0) as u64;
        match ph {
            "B" => stacks.entry((pid, tid)).or_default().push(name.to_string()),
            "E" => {
                let top = stacks.entry((pid, tid)).or_default().pop();
                if top.as_deref() != Some(name) {
                    return Err(format!(
                        "unbalanced span: E `{name}` closes `{}`",
                        top.unwrap_or_default()
                    ));
                }
            }
            "X" => {
                if e.get("dur").and_then(Json::as_f64).is_none() {
                    return Err(format!("complete event `{name}` without dur"));
                }
            }
            "C" | "i" | "M" => {}
            other => return Err(format!("unknown phase `{other}`")),
        }
    }
    for ((pid, tid), stack) in stacks {
        if !stack.is_empty() {
            return Err(format!(
                "unclosed span `{}` on pid {pid} tid {tid}",
                stack.last().expect("non-empty")
            ));
        }
    }
    Ok(events.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_aggregate() {
        let tracer = Tracer::new();
        let _session = install(&tracer);
        {
            let _outer = span("t", "outer");
            {
                let _inner = span("t", "inner");
            }
            {
                let _inner = span("t", "inner");
            }
        }
        let metrics = tracer.metrics();
        let spans = metrics.get("spans").and_then(Json::as_arr).expect("spans");
        let find = |n: &str| {
            spans
                .iter()
                .find(|s| s.get("name").and_then(Json::as_str) == Some(n))
                .expect("span present")
        };
        assert_eq!(find("inner").get("count").and_then(Json::as_f64), Some(2.0));
        assert_eq!(find("outer").get("count").and_then(Json::as_f64), Some(1.0));
        let outer_us = find("outer")
            .get("total_us")
            .and_then(Json::as_f64)
            .expect("us");
        assert!(outer_us >= 0.0);
    }

    #[test]
    fn no_tracer_installed_is_a_noop() {
        // Must not panic or record anywhere.
        let _span = span("t", "ghost");
        counter("t", "ghost.counter", 1.0);
        assert!(!active());
    }

    #[test]
    fn counters_accumulate_gauges_overwrite() {
        let tracer = Tracer::new();
        let _session = install(&tracer);
        counter("t", "c", 2.0);
        counter("t", "c", 3.0);
        gauge("t", "g", 7.0);
        gauge("t", "g", 9.0);
        let m = tracer.metrics();
        assert_eq!(
            m.get("counters")
                .and_then(|c| c.get("c"))
                .and_then(Json::as_f64),
            Some(5.0)
        );
        assert_eq!(
            m.get("gauges")
                .and_then(|g| g.get("g"))
                .and_then(Json::as_f64),
            Some(9.0)
        );
    }

    #[test]
    fn chrome_trace_validates() {
        let tracer = Tracer::new();
        {
            let _session = install(&tracer);
            let _a = span("t", "a");
            let _b = span("t", "b");
            counter("t", "c", 1.0);
            instant("t", "marker");
            virtual_event("t", "timing", "phase0", 0.0, 100.0, vec![]);
        }
        let text = tracer.chrome_trace();
        let n = validate_chrome_trace(&text).expect("valid");
        assert!(n >= 5, "expected >= 5 events, got {n}");
    }

    #[test]
    fn validator_rejects_unbalanced() {
        let text = r#"{"traceEvents":[
            {"name":"a","ph":"B","ts":0,"pid":1,"tid":1}
        ]}"#;
        assert!(validate_chrome_trace(text).is_err());
        let text = r#"{"traceEvents":[
            {"name":"a","ph":"B","ts":0,"pid":1,"tid":1},
            {"name":"b","ph":"E","ts":1,"pid":1,"tid":1}
        ]}"#;
        assert!(validate_chrome_trace(text).is_err());
        assert!(validate_chrome_trace("{}").is_err());
        assert!(validate_chrome_trace("{\"traceEvents\":[]}").is_err());
    }

    #[test]
    fn shared_across_threads() {
        let tracer = Tracer::new();
        let mut handles = Vec::new();
        for i in 0..4 {
            let t = tracer.clone();
            handles.push(std::thread::spawn(move || {
                let _session = install(&t);
                let _s = span("t", format!("worker{i}"));
                counter("t", "work", 1.0);
            }));
        }
        for h in handles {
            h.join().expect("joins");
        }
        let m = tracer.metrics();
        assert_eq!(
            m.get("counters")
                .and_then(|c| c.get("work"))
                .and_then(Json::as_f64),
            Some(4.0)
        );
        validate_chrome_trace(&tracer.chrome_trace()).expect("valid with many tids");
    }

    #[test]
    fn disabled_tracer_drops_events() {
        let tracer = Tracer::new();
        tracer.set_enabled(false);
        let _session = install(&tracer);
        counter("t", "c", 1.0);
        assert!(tracer.is_empty());
        tracer.set_enabled(true);
        counter("t", "c", 1.0);
        assert_eq!(tracer.len(), 1);
    }

    #[test]
    fn install_nests_and_restores() {
        let outer = Tracer::new();
        let inner = Tracer::new();
        let _o = install(&outer);
        {
            let _i = install(&inner);
            counter("t", "x", 1.0);
        }
        counter("t", "y", 1.0);
        assert_eq!(inner.len(), 1);
        assert_eq!(outer.len(), 1);
        assert_eq!(outer.events()[0].name, "y");
    }

    #[test]
    fn span_args_attach_to_end_event() {
        let tracer = Tracer::new();
        let _session = install(&tracer);
        {
            let mut s = span("t", "work");
            s.arg("items", Json::num(12.0));
        }
        let events = tracer.events();
        let end = events
            .iter()
            .find(|e| e.kind == EventKind::SpanEnd)
            .expect("end event");
        assert_eq!(end.args[0].0, "items");
        let text = tracer.chrome_trace();
        assert!(text.contains("\"items\":12"), "{text}");
    }

    #[test]
    fn ring_bounds_storage_and_counts_drops() {
        let tracer = Tracer::with_capacity(8);
        let _session = install(&tracer);
        for i in 0..20 {
            counter("t", format!("c{i}"), 1.0);
        }
        assert_eq!(tracer.len(), 8, "ring keeps only the newest cap events");
        assert_eq!(tracer.events_dropped(), 12);
        assert_eq!(tracer.events()[0].name, "c12", "oldest evicted first");
        let m = tracer.metrics();
        assert_eq!(
            m.get("events_dropped").and_then(Json::as_f64),
            Some(12.0),
            "metrics reports the loss"
        );
        assert!(tracer.summary().contains("events dropped: 12"));
    }

    #[test]
    fn orphaned_span_ends_are_skipped_after_eviction() {
        // Capacity 3: the SpanBegin of `outer` is evicted by the churn,
        // leaving its SpanEnd orphaned in the ring. chrome_trace must
        // still validate and metrics must not invent a duration.
        let tracer = Tracer::with_capacity(3);
        let _session = install(&tracer);
        {
            let _outer = span("t", "outer");
            {
                let _inner = span("t", "inner");
            }
        }
        assert!(tracer.events_dropped() > 0);
        let text = tracer.chrome_trace();
        validate_chrome_trace(&text).expect("orphan ends skipped");
        let m = tracer.metrics();
        let spans = m.get("spans").and_then(Json::as_arr).expect("spans");
        assert!(
            !spans
                .iter()
                .any(|s| s.get("name").and_then(Json::as_str) == Some("outer")),
            "outer lost its begin, so it must not aggregate"
        );
    }

    #[test]
    fn summary_lists_spans_and_counters() {
        let tracer = Tracer::new();
        {
            let _session = install(&tracer);
            let _s = span("t", "slow.pass");
            counter("t", "ops", 42.0);
        }
        let s = tracer.summary();
        assert!(s.contains("slow.pass"), "{s}");
        assert!(s.contains("ops"), "{s}");
        assert!(s.contains("42"), "{s}");
    }
}
