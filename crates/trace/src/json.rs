//! A minimal JSON value, writer and parser.
//!
//! The instrumentation sinks need to *emit* JSON (Chrome trace events,
//! metrics files, layer-audit artifacts) and the export tests need to
//! *parse* it back to prove the files are well-formed. The build
//! environment is offline, so both directions are implemented here against
//! the subset of JSON the sinks produce: objects, arrays, strings, finite
//! numbers, booleans and null.
//!
//! # Examples
//!
//! ```
//! use deepburning_trace::json::Json;
//!
//! let v = Json::obj([
//!     ("name", Json::str("folding")),
//!     ("cycles", Json::num(128.0)),
//! ]);
//! let text = v.render();
//! let back = Json::parse(&text)?;
//! assert_eq!(back.get("name").and_then(Json::as_str), Some("folding"));
//! assert_eq!(back.get("cycles").and_then(Json::as_f64), Some(128.0));
//! # Ok::<(), deepburning_trace::json::JsonError>(())
//! ```

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (integral values render without a decimal point).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; key order is preserved.
    Obj(Vec<(String, Json)>),
}

/// Error raised by [`Json::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// Explanation.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// A number value.
    pub fn num(v: f64) -> Json {
        Json::Num(v)
    }

    /// An object from `(key, value)` pairs.
    pub fn obj<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// An array from values.
    pub fn arr(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Arr(items.into_iter().collect())
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value's object pairs, if it is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Serialises the value as compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => write_num(*v, out),
            Json::Str(s) => write_str(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a JSON document (one value, optionally surrounded by
    /// whitespace).
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] on malformed input or trailing garbage.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(err(pos, "trailing characters after value"));
        }
        Ok(value)
    }
}

fn write_num(v: f64, out: &mut String) {
    if !v.is_finite() {
        // JSON has no NaN/Inf; clamp to null-ish zero rather than emit an
        // invalid document.
        out.push('0');
    } else if v.fract() == 0.0 && v.abs() < 9.0e15 {
        out.push_str(&format!("{}", v as i64));
    } else {
        out.push_str(&format!("{v}"));
    }
}

fn write_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn err(offset: usize, message: impl Into<String>) -> JsonError {
    JsonError {
        offset,
        message: message.into(),
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), JsonError> {
    if bytes.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        Err(err(*pos, format!("expected `{}`", c as char)))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_obj(bytes, pos),
        Some(b'[') => parse_arr(bytes, pos),
        Some(b'"') => parse_str(bytes, pos).map(Json::Str),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_num(bytes, pos),
        Some(c) => Err(err(*pos, format!("unexpected byte `{}`", *c as char))),
        None => Err(err(*pos, "unexpected end of input")),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, JsonError> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(err(*pos, format!("expected `{lit}`")))
    }
}

fn parse_num(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && (bytes[*pos].is_ascii_digit() || matches!(bytes[*pos], b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or_else(|| err(start, "malformed number"))
}

fn parse_str(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(err(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| err(*pos, "malformed \\u escape"))?;
                        // Surrogate pairs are not produced by the writer;
                        // map lone surrogates to the replacement character.
                        out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(err(*pos, "unknown escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar.
                let rest =
                    std::str::from_utf8(&bytes[*pos..]).map_err(|_| err(*pos, "invalid UTF-8"))?;
                let c = rest.chars().next().ok_or_else(|| err(*pos, "empty"))?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_arr(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(err(*pos, "expected `,` or `]`")),
        }
    }
}

fn parse_obj(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    expect(bytes, pos, b'{')?;
    let mut pairs = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(pairs));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_str(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        pairs.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            _ => return Err(err(*pos, "expected `,` or `}`")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_nested() {
        let v = Json::obj([
            ("a", Json::arr([Json::num(1.0), Json::num(2.5), Json::Null])),
            ("b", Json::obj([("c", Json::Bool(true))])),
            ("s", Json::str("line\n\"quoted\"\tand \\ slash")),
        ]);
        let text = v.render();
        assert_eq!(Json::parse(&text).expect("parses"), v);
    }

    #[test]
    fn integers_render_without_decimal() {
        assert_eq!(Json::num(128.0).render(), "128");
        assert_eq!(Json::num(-3.0).render(), "-3");
        assert_eq!(Json::num(0.5).render(), "0.5");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("123 456").is_err());
        assert!(Json::parse("\"open").is_err());
    }

    #[test]
    fn whitespace_tolerated() {
        let v = Json::parse(" { \"k\" : [ 1 , 2 ] } ").expect("parses");
        assert_eq!(
            v.get("k").and_then(Json::as_arr).map(<[Json]>::len),
            Some(2)
        );
    }

    #[test]
    fn control_chars_escaped() {
        let text = Json::str("a\u{1}b").render();
        assert_eq!(text, "\"a\\u0001b\"");
        assert_eq!(
            Json::parse(&text).expect("parses").as_str(),
            Some("a\u{1}b")
        );
    }
}
