//! Counter-based hot-spot profiles for the simulation engines
//! (DESIGN.md §15).
//!
//! The compiled engine (`deepburning-verilog::compile`, behind its
//! `prof` cargo feature) fills an [`EngineProfile`] with per-instruction
//! attribution folded down to *(module, level)* tape segments, executed
//! bytecode opcode counts, settle-sweep dirty-set statistics and
//! cross-level traffic per register-boundary cut. The tree interpreter
//! contributes a coarse per-module profile so the two engines stay
//! comparable. No sampling thread, no timestamps — everything is a
//! counter bumped on the execution path, aggregated here on the cold
//! path.
//!
//! Three exports:
//!
//! * [`EngineProfile::folded_stacks`] — folded-stack text, one
//!   `engine;module;L<level> <ops>` line per segment, directly
//!   consumable by `flamegraph.pl` / speedscope;
//! * [`EngineProfile::emit_counters`] — Perfetto counter tracks merged
//!   into whichever [`Tracer`](crate::Tracer) is installed;
//! * [`EngineProfile::report_json`] — the `ProfileReport` document with
//!   the ranked JIT-candidate table (levels by attributed executed ops,
//!   the engine's unit of time) and the partition-suggestion table
//!   (cut points ranked by cross-level combinational traffic).

use crate::hist::Histogram;
use crate::json::Json;

/// Fraction of attributed engine time the ranked JIT-candidate table
/// must cover (DESIGN.md §15): candidates are taken in descending heat
/// order until their cumulative share reaches this bound.
pub const JIT_COVERAGE_TARGET: f64 = 0.80;

/// Heat attributed to one *(module, level)* tape segment: the
/// instructions of one flattened instance that landed on one
/// topological level.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentProf {
    /// Flattened instance path (`""` is the top module).
    pub module: String,
    /// Topological level (longest producer chain from a tape source).
    pub level: u32,
    /// Tape instructions in the segment.
    pub instrs: u64,
    /// Instruction evaluations (dirty wakeups that ran).
    pub evals: u64,
    /// Bytecode ops executed by those evaluations — the profiler's
    /// proxy for time (every op is a constant-ish amount of work).
    pub ops: u64,
}

/// Executed-op count for one bytecode opcode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpcodeProf {
    /// Opcode name (`Sig`, `Bin`, `WordIdx`, …).
    pub opcode: &'static str,
    /// Times an op of this kind was executed.
    pub count: u64,
}

/// Settle-sweep statistics: how full the dirty set runs and how much
/// of the woken work was wasted.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SweepProf {
    /// Settle sweeps (scheduler drains) observed.
    pub sweeps: u64,
    /// Instructions woken (evaluated) across all sweeps.
    pub evals: u64,
    /// Woken evaluations whose write changed nothing — pure scheduling
    /// overhead a smarter wakeup filter could skip.
    pub wasted_wakeups: u64,
    /// Distribution of dirty-set occupancy (instructions evaluated per
    /// sweep), log₂-bucketed with exact min/max.
    pub dirty_occupancy: Histogram,
}

/// Cross-level combinational traffic for the register-boundary cut
/// *before* `level`: evaluations of producers whose fanout crosses the
/// cut, i.e. the values a partitioned simulation would have to ship.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CutProf {
    /// Cut position: the boundary between `level - 1` and `level`.
    pub level: u32,
    /// Producer evaluations crossing the cut.
    pub cross_evals: u64,
}

/// One aggregated tape level (all modules folded together).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LevelProf {
    /// Topological level.
    pub level: u32,
    /// Tape instructions on the level.
    pub instrs: u64,
    /// Instruction evaluations.
    pub evals: u64,
    /// Executed bytecode ops.
    pub ops: u64,
}

/// One row of the ranked JIT-candidate table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JitCandidate {
    /// Topological level.
    pub level: u32,
    /// Tape instructions on the level.
    pub instrs: u64,
    /// Instruction evaluations.
    pub evals: u64,
    /// Executed bytecode ops (the ranking key: cumulative time ×
    /// eval count collapses to this, since time-per-eval is ops).
    pub ops: u64,
    /// Fraction of all attributed ops.
    pub share: f64,
    /// Running share including this row.
    pub cum_share: f64,
}

/// A complete profile of one engine run. Filled by the engines, read by
/// the exports below; all fields are plain counters so the collection
/// path stays allocation- and syscall-free.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EngineProfile {
    /// Engine tag (`compiled` | `tree`).
    pub engine: String,
    /// Total instruction evaluations attributed.
    pub total_evals: u64,
    /// Total executed bytecode ops attributed (the tree engine has no
    /// bytecode; it reports one op per evaluation).
    pub total_ops: u64,
    /// Per-(module, level) tape-segment heat.
    pub segments: Vec<SegmentProf>,
    /// Per-opcode executed counts (empty for the tree engine).
    pub opcodes: Vec<OpcodeProf>,
    /// Settle-sweep statistics.
    pub sweeps: SweepProf,
    /// Cross-level traffic per register-boundary cut (empty for the
    /// tree engine, which has no levelized tape).
    pub cuts: Vec<CutProf>,
}

impl EngineProfile {
    /// Tape levels aggregated across modules, ascending by level.
    pub fn levels(&self) -> Vec<LevelProf> {
        let mut out: Vec<LevelProf> = Vec::new();
        for seg in &self.segments {
            match out.iter_mut().find(|l| l.level == seg.level) {
                Some(l) => {
                    l.instrs += seg.instrs;
                    l.evals += seg.evals;
                    l.ops += seg.ops;
                }
                None => out.push(LevelProf {
                    level: seg.level,
                    instrs: seg.instrs,
                    evals: seg.evals,
                    ops: seg.ops,
                }),
            }
        }
        out.sort_by_key(|l| l.level);
        out
    }

    /// Per-module heat aggregated across levels, descending by ops.
    pub fn modules(&self) -> Vec<(String, u64, u64)> {
        let mut out: Vec<(String, u64, u64)> = Vec::new();
        for seg in &self.segments {
            match out.iter_mut().find(|(m, _, _)| *m == seg.module) {
                Some((_, evals, ops)) => {
                    *evals += seg.evals;
                    *ops += seg.ops;
                }
                None => out.push((seg.module.clone(), seg.evals, seg.ops)),
            }
        }
        out.sort_by(|a, b| b.2.cmp(&a.2).then_with(|| a.0.cmp(&b.0)));
        out
    }

    /// Every level ranked by attributed ops (descending) with running
    /// cumulative share — the full JIT-candidate ranking.
    pub fn jit_candidates(&self) -> Vec<JitCandidate> {
        let mut levels = self.levels();
        levels.sort_by(|a, b| b.ops.cmp(&a.ops).then_with(|| a.level.cmp(&b.level)));
        let total = self.total_ops.max(1) as f64;
        let mut cum = 0.0;
        levels
            .into_iter()
            .map(|l| {
                let share = l.ops as f64 / total;
                cum += share;
                JitCandidate {
                    level: l.level,
                    instrs: l.instrs,
                    evals: l.evals,
                    ops: l.ops,
                    share,
                    cum_share: cum,
                }
            })
            .collect()
    }

    /// The ranked JIT-candidate prefix covering at least `coverage` of
    /// the attributed ops (always at least one row when any level has
    /// heat).
    pub fn jit_table(&self, coverage: f64) -> Vec<JitCandidate> {
        let ranked = self.jit_candidates();
        let mut out = Vec::new();
        for row in ranked {
            if row.ops == 0 && !out.is_empty() {
                break;
            }
            let done = row.cum_share >= coverage;
            out.push(row);
            if done {
                break;
            }
        }
        out
    }

    /// Register-boundary cut suggestions, best first: ascending
    /// cross-level traffic (a partitioned simulation would ship the
    /// fewest values), ties broken toward the middle-most cut.
    pub fn partition_cuts(&self) -> Vec<CutProf> {
        let mut cuts = self.cuts.clone();
        let mid = cuts.len() as i64 / 2;
        cuts.sort_by_key(|c| (c.cross_evals, (i64::from(c.level) - mid).abs()));
        cuts
    }

    /// Folded-stack text: one `engine;module;L<level> <ops>` line per
    /// tape segment, deterministic order. Feed to `flamegraph.pl` or
    /// paste into speedscope.
    pub fn folded_stacks(&self) -> String {
        let mut rows: Vec<(String, u64)> = self
            .segments
            .iter()
            .filter(|s| s.ops > 0)
            .map(|s| {
                let module = if s.module.is_empty() {
                    "(top)"
                } else {
                    &s.module
                };
                (format!("{};{};L{}", self.engine, module, s.level), s.ops)
            })
            .collect();
        rows.sort();
        let mut out = String::new();
        for (stack, ops) in rows {
            out.push_str(&stack);
            out.push(' ');
            out.push_str(&ops.to_string());
            out.push('\n');
        }
        out
    }

    /// Merges the profile into whichever tracer is installed as
    /// `prof.*` counter tracks (rendered by the chrome sink alongside
    /// the existing trace): per-opcode executed ops, sweep statistics,
    /// and the hottest levels/modules (top 16 each, keeping the track
    /// count bounded on deep tapes).
    pub fn emit_counters(&self) {
        if !crate::active() {
            return;
        }
        let cat = "prof";
        crate::counter(cat, "prof.total_evals", self.total_evals as f64);
        crate::counter(cat, "prof.total_ops", self.total_ops as f64);
        crate::counter(cat, "prof.sweeps", self.sweeps.sweeps as f64);
        crate::counter(cat, "prof.sweep.evals", self.sweeps.evals as f64);
        crate::counter(
            cat,
            "prof.sweep.wasted_wakeups",
            self.sweeps.wasted_wakeups as f64,
        );
        for op in &self.opcodes {
            if op.count > 0 {
                crate::counter(cat, format!("prof.op.{}", op.opcode), op.count as f64);
            }
        }
        let mut levels = self.levels();
        levels.sort_by_key(|l| std::cmp::Reverse(l.ops));
        for l in levels.iter().take(16) {
            crate::counter(cat, format!("prof.level.L{}.ops", l.level), l.ops as f64);
        }
        for (module, _, ops) in self.modules().iter().take(16) {
            let module = if module.is_empty() { "(top)" } else { module };
            crate::counter(cat, format!("prof.module.{module}.ops"), *ops as f64);
        }
    }

    /// The `ProfileReport` JSON document: headline totals, sweep
    /// statistics, the ranked JIT-candidate table (prefix covering
    /// [`JIT_COVERAGE_TARGET`]), the partition-suggestion table (top 8
    /// cuts), and the full level/module/opcode breakdowns.
    pub fn report_json(&self) -> Json {
        let jit = self.jit_table(JIT_COVERAGE_TARGET);
        let jit_coverage = jit.last().map_or(0.0, |r| r.cum_share);
        let jit_rows: Vec<Json> = jit
            .iter()
            .map(|r| {
                Json::obj([
                    ("level", Json::num(f64::from(r.level))),
                    ("instrs", Json::num(r.instrs as f64)),
                    ("evals", Json::num(r.evals as f64)),
                    ("ops", Json::num(r.ops as f64)),
                    ("share", Json::num(r.share)),
                    ("cum_share", Json::num(r.cum_share)),
                ])
            })
            .collect();
        let cut_rows: Vec<Json> = self
            .partition_cuts()
            .iter()
            .take(8)
            .map(|c| {
                Json::obj([
                    ("cut_level", Json::num(f64::from(c.level))),
                    ("cross_evals", Json::num(c.cross_evals as f64)),
                ])
            })
            .collect();
        let level_rows: Vec<Json> = self
            .levels()
            .iter()
            .map(|l| {
                Json::obj([
                    ("level", Json::num(f64::from(l.level))),
                    ("instrs", Json::num(l.instrs as f64)),
                    ("evals", Json::num(l.evals as f64)),
                    ("ops", Json::num(l.ops as f64)),
                ])
            })
            .collect();
        let module_rows: Vec<Json> = self
            .modules()
            .iter()
            .map(|(m, evals, ops)| {
                Json::obj([
                    ("module", Json::str(m.clone())),
                    ("evals", Json::num(*evals as f64)),
                    ("ops", Json::num(*ops as f64)),
                ])
            })
            .collect();
        let opcode_rows: Vec<Json> = self
            .opcodes
            .iter()
            .filter(|o| o.count > 0)
            .map(|o| {
                Json::obj([
                    ("opcode", Json::str(o.opcode)),
                    ("count", Json::num(o.count as f64)),
                ])
            })
            .collect();
        Json::obj([
            ("engine", Json::str(self.engine.clone())),
            ("total_evals", Json::num(self.total_evals as f64)),
            ("total_ops", Json::num(self.total_ops as f64)),
            (
                "sweeps",
                Json::obj([
                    ("sweeps", Json::num(self.sweeps.sweeps as f64)),
                    ("evals", Json::num(self.sweeps.evals as f64)),
                    (
                        "wasted_wakeups",
                        Json::num(self.sweeps.wasted_wakeups as f64),
                    ),
                    ("dirty_occupancy", self.sweeps.dirty_occupancy.to_json()),
                ]),
            ),
            ("jit_coverage", Json::num(jit_coverage)),
            ("jit_candidates", Json::Arr(jit_rows)),
            ("partition_cuts", Json::Arr(cut_rows)),
            ("levels", Json::Arr(level_rows)),
            ("modules", Json::Arr(module_rows)),
            ("opcodes", Json::Arr(opcode_rows)),
        ])
    }

    /// Human-readable summary: headline totals, the JIT-candidate table
    /// and the best partition cuts.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "profile [{}]: {} evals, {} ops, {} sweeps ({} wasted wakeups)\n",
            self.engine,
            self.total_evals,
            self.total_ops,
            self.sweeps.sweeps,
            self.sweeps.wasted_wakeups
        ));
        let jit = self.jit_table(JIT_COVERAGE_TARGET);
        if !jit.is_empty() {
            out.push_str("  JIT candidates (levels by executed ops):\n");
            out.push_str("    level    instrs       evals         ops  share   cum\n");
            for r in &jit {
                out.push_str(&format!(
                    "    L{:<6} {:>7} {:>11} {:>11}  {:>5.1}% {:>5.1}%\n",
                    r.level,
                    r.instrs,
                    r.evals,
                    r.ops,
                    r.share * 100.0,
                    r.cum_share * 100.0
                ));
            }
        }
        let cuts = self.partition_cuts();
        if !cuts.is_empty() {
            out.push_str("  partition cuts (least cross-level traffic first):\n");
            for c in cuts.iter().take(4) {
                out.push_str(&format!(
                    "    before L{:<5} {:>11} crossing evals\n",
                    c.level, c.cross_evals
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{install, Tracer};

    fn sample() -> EngineProfile {
        let mut hist = Histogram::new();
        for n in [1u64, 4, 4, 90] {
            hist.record(n);
        }
        EngineProfile {
            engine: "compiled".into(),
            total_evals: 140,
            total_ops: 1000,
            segments: vec![
                SegmentProf {
                    module: "mac.u0".into(),
                    level: 2,
                    instrs: 4,
                    evals: 100,
                    ops: 700,
                },
                SegmentProf {
                    module: String::new(),
                    level: 0,
                    instrs: 2,
                    evals: 20,
                    ops: 200,
                },
                SegmentProf {
                    module: "mac.u0".into(),
                    level: 1,
                    instrs: 1,
                    evals: 20,
                    ops: 100,
                },
            ],
            opcodes: vec![
                OpcodeProf {
                    opcode: "Bin",
                    count: 600,
                },
                OpcodeProf {
                    opcode: "Sig",
                    count: 400,
                },
                OpcodeProf {
                    opcode: "Cat",
                    count: 0,
                },
            ],
            sweeps: SweepProf {
                sweeps: 4,
                evals: 140,
                wasted_wakeups: 9,
                dirty_occupancy: hist,
            },
            cuts: vec![
                CutProf {
                    level: 1,
                    cross_evals: 50,
                },
                CutProf {
                    level: 2,
                    cross_evals: 10,
                },
            ],
        }
    }

    #[test]
    fn levels_and_modules_aggregate_segments() {
        let p = sample();
        let levels = p.levels();
        assert_eq!(levels.len(), 3);
        assert_eq!(levels[0].level, 0);
        assert_eq!(levels[2].ops, 700);
        let sum: u64 = levels.iter().map(|l| l.ops).sum();
        assert_eq!(sum, p.total_ops);
        let modules = p.modules();
        assert_eq!(modules[0].0, "mac.u0", "hottest module first");
        assert_eq!(modules[0].2, 800);
    }

    #[test]
    fn jit_table_covers_target() {
        let p = sample();
        let table = p.jit_table(JIT_COVERAGE_TARGET);
        // L2 alone is 70%; L0 brings it to 90% >= 80%.
        assert_eq!(table.len(), 2);
        assert_eq!(table[0].level, 2);
        assert!(table.last().map_or(0.0, |r| r.cum_share) >= JIT_COVERAGE_TARGET);
        let all = p.jit_candidates();
        assert_eq!(all.len(), 3);
        assert!((all.last().map_or(0.0, |r| r.cum_share) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn partition_cuts_rank_by_least_traffic() {
        let p = sample();
        let cuts = p.partition_cuts();
        assert_eq!(cuts[0].level, 2, "cheapest cut first");
        assert_eq!(cuts[0].cross_evals, 10);
    }

    #[test]
    fn folded_stacks_format() {
        let p = sample();
        let folded = p.folded_stacks();
        assert!(folded.contains("compiled;mac.u0;L2 700"), "{folded}");
        assert!(folded.contains("compiled;(top);L0 200"), "{folded}");
        for line in folded.lines() {
            let (stack, n) = line.rsplit_once(' ').expect("stack <count>");
            assert_eq!(stack.split(';').count(), 3, "{line}");
            n.parse::<u64>().expect("count parses");
        }
    }

    #[test]
    fn report_json_schema() {
        let doc = sample().report_json();
        for key in [
            "engine",
            "total_evals",
            "total_ops",
            "sweeps",
            "jit_coverage",
            "jit_candidates",
            "partition_cuts",
            "levels",
            "modules",
            "opcodes",
        ] {
            assert!(doc.get(key).is_some(), "missing `{key}`");
        }
        assert!(
            doc.get("jit_coverage")
                .and_then(Json::as_f64)
                .is_some_and(|c| c >= JIT_COVERAGE_TARGET),
            "ranked candidates must cover the target"
        );
        let reparsed = Json::parse(&doc.render()).expect("renders to valid json");
        assert_eq!(
            reparsed.get("engine").and_then(Json::as_str),
            Some("compiled")
        );
        // Zero-count opcodes are pruned from the report.
        let ops = reparsed
            .get("opcodes")
            .and_then(Json::as_arr)
            .expect("opcodes");
        assert_eq!(ops.len(), 2);
    }

    #[test]
    fn emit_counters_lands_in_installed_tracer() {
        let p = sample();
        let tracer = Tracer::new();
        {
            let _session = install(&tracer);
            p.emit_counters();
        }
        let m = tracer.metrics();
        let counters = m.get("counters").and_then(Json::as_obj).expect("counters");
        let get = |k: &str| {
            counters
                .iter()
                .find(|(n, _)| n == k)
                .and_then(|(_, v)| v.as_f64())
        };
        assert_eq!(get("prof.total_ops"), Some(1000.0));
        assert_eq!(get("prof.op.Bin"), Some(600.0));
        assert_eq!(get("prof.sweep.wasted_wakeups"), Some(9.0));
        assert_eq!(get("prof.level.L2.ops"), Some(700.0));
        assert_eq!(get("prof.module.mac.u0.ops"), Some(800.0));
        assert!(get("prof.op.Cat").is_none(), "zero counts are skipped");
    }

    #[test]
    fn emit_counters_without_tracer_is_noop() {
        sample().emit_counters();
    }

    #[test]
    fn render_table_lists_candidates() {
        let text = sample().render_table();
        assert!(text.contains("JIT candidates"), "{text}");
        assert!(text.contains("L2"), "{text}");
        assert!(text.contains("partition cuts"), "{text}");
    }
}
