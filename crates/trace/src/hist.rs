//! Log-scale histograms for cycle-domain distributions.
//!
//! Full-network RTL runs produce distributions — DRAM burst lengths,
//! coordinator phase durations, stall cycles — whose tails matter more
//! than their means: one 10⁶-cycle phase among thousands of 10²-cycle
//! phases is exactly what a roofline analysis needs to see. A
//! [`Histogram`] buckets `u64` samples by power of two (bucket *i* holds
//! values with bit length *i*, so bucket bounds are `[2^(i-1), 2^i)`),
//! which keeps storage constant (65 counters) while spanning the full
//! `u64` range, and reports p50/p95 as bucket upper bounds alongside
//! exact count/sum/min/max.
//!
//! Percentiles are therefore *conservative*: a reported p95 is an upper
//! bound at most 2× the true value — the right bias for spotting
//! bandwidth and stall regressions.

use crate::json::Json;

const BUCKETS: usize = 65;

/// A log₂-bucketed histogram of `u64` samples. Constant storage,
/// deterministic (no interpolation), exact count/sum/min/max.
#[derive(Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count)
            .field("min", &self.min)
            .field("max", &self.max)
            .field("p50", &self.p50())
            .field("p95", &self.p95())
            .finish()
    }
}

/// Bucket index for a value: its bit length (0 for 0), so bucket `i > 0`
/// covers `[2^(i-1), 2^i)`.
fn bucket_of(value: u64) -> usize {
    (64 - value.leading_zeros()) as usize
}

/// Inclusive upper bound of bucket `i`.
fn bucket_hi(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// Inclusive lower bound of bucket `i`.
fn bucket_lo(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << (i - 1)
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            counts: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.counts[bucket_of(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample, or 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample, or 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample value, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The value at quantile `q` (0.0..=1.0) as a conservative upper
    /// bound: the inclusive upper edge of the first bucket whose
    /// cumulative count reaches `q * count`, clamped to the exact
    /// observed maximum. Returns 0 when empty.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_hi(i).min(self.max);
            }
        }
        self.max
    }

    /// Median upper bound (see [`Histogram::percentile`]).
    pub fn p50(&self) -> u64 {
        self.percentile(0.50)
    }

    /// 95th-percentile upper bound (see [`Histogram::percentile`]).
    pub fn p95(&self) -> u64 {
        self.percentile(0.95)
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// JSON image: summary stats plus the non-empty buckets with their
    /// inclusive `[lo, hi]` value ranges.
    pub fn to_json(&self) -> Json {
        let buckets: Vec<Json> = self
            .counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| {
                Json::obj([
                    ("lo", Json::num(bucket_lo(i) as f64)),
                    ("hi", Json::num(bucket_hi(i) as f64)),
                    ("count", Json::num(c as f64)),
                ])
            })
            .collect();
        Json::obj([
            ("count", Json::num(self.count as f64)),
            ("sum", Json::num(self.sum as f64)),
            ("min", Json::num(self.min() as f64)),
            ("max", Json::num(self.max as f64)),
            ("p50", Json::num(self.p50() as f64)),
            ("p95", Json::num(self.p95() as f64)),
            ("buckets", Json::Arr(buckets)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p95(), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn bucket_bounds_are_powers_of_two() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        for i in 1..64 {
            assert_eq!(bucket_of(bucket_lo(i)), i);
            assert_eq!(bucket_of(bucket_hi(i)), i);
        }
    }

    #[test]
    fn percentiles_are_conservative_upper_bounds() {
        let mut h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 100);
        assert_eq!(h.sum(), 5050);
        let p50 = h.p50();
        let p95 = h.p95();
        // True p50 = 50, true p95 = 95; bounds within one bucket (2×).
        assert!((50..=100).contains(&p50), "p50 = {p50}");
        assert!((95..=127).contains(&p95), "p95 = {p95}");
        assert!(p50 <= p95);
        // The max clamp keeps bounds inside the observed range.
        assert!(h.percentile(1.0) <= h.max());
    }

    #[test]
    fn single_sample_percentiles_are_exact_bucket_edges() {
        let mut h = Histogram::new();
        h.record(7);
        assert_eq!(h.p50(), 7, "clamped to the observed max");
        assert_eq!(h.p95(), 7);
        h.record(0);
        assert_eq!(h.percentile(0.0), 0);
    }

    #[test]
    fn merge_adds_distributions() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in [1u64, 2, 3] {
            a.record(v);
        }
        for v in [100u64, 200] {
            b.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), 5);
        assert_eq!(a.min(), 1);
        assert_eq!(a.max(), 200);
        assert_eq!(a.sum(), 306);
    }

    #[test]
    fn json_image_has_stats_and_nonempty_buckets() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 5, 5, 9] {
            h.record(v);
        }
        let j = h.to_json();
        assert_eq!(j.get("count").and_then(Json::as_f64), Some(5.0));
        assert_eq!(j.get("min").and_then(Json::as_f64), Some(0.0));
        assert_eq!(j.get("max").and_then(Json::as_f64), Some(9.0));
        let buckets = j.get("buckets").and_then(Json::as_arr).expect("buckets");
        assert!(!buckets.is_empty());
        let total: f64 = buckets
            .iter()
            .filter_map(|b| b.get("count").and_then(Json::as_f64))
            .sum();
        assert_eq!(total, 5.0, "bucket counts cover every sample");
    }
}
