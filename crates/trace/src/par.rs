//! Parallel-settle occupancy and imbalance counters (DESIGN.md §16).
//!
//! The partitioned parallel engine (`deepburning-verilog::compile`,
//! `SimEngine::Parallel`) attributes every settled instruction to a
//! batch kind (pool batch vs inline drain) and to a register-bounded
//! level region of its partition plan. The harness folds those counters
//! into a [`ParProfile`] so the full-network trace sessions get
//! per-partition Perfetto tracks next to the existing `prof.*` ones,
//! and `dbtrace --check` can assert attribution balance. Like the rest
//! of this crate: plain counters, no timestamps, no sampling.

use crate::json::Json;

/// Occupancy of one partition region: a contiguous band of tape levels
/// bounded by register cuts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ParRegionProf {
    /// First tape level of the region (inclusive).
    pub level_lo: u32,
    /// Last tape level of the region (inclusive).
    pub level_hi: u32,
    /// Tape instructions inside the region.
    pub instrs: u64,
    /// Instruction evaluations attributed to the region.
    pub evals: u64,
}

/// Counters for one parallel-engine run: lane configuration, batch-kind
/// split, and per-region occupancy. `parallel_evals + serial_evals`
/// equals the engine's settled-instruction count for the run, and the
/// per-region `evals` sum to the same total — the balance `dbtrace
/// --check` enforces.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ParProfile {
    /// Resolved lane count (workers + the settling thread).
    pub threads: u64,
    /// Settle sweeps drained by the parallel scheduler.
    pub settles: u64,
    /// Level batches wide enough to cross the worker pool.
    pub parallel_batches: u64,
    /// Level batches settled inline on the calling thread.
    pub serial_batches: u64,
    /// Instructions evaluated across the pool.
    pub parallel_evals: u64,
    /// Instructions evaluated inline.
    pub serial_evals: u64,
    /// Widest single level batch observed.
    pub max_batch: u64,
    /// Dirty marks that crossed a partition-region boundary — the
    /// edge-set exchange traffic between regions.
    pub edge_crossings: u64,
    /// Per-region occupancy, ascending by level.
    pub regions: Vec<ParRegionProf>,
}

impl ParProfile {
    /// Total instructions the parallel scheduler settled.
    pub fn total_evals(&self) -> u64 {
        self.parallel_evals + self.serial_evals
    }

    /// Fraction of settled instructions that ran across the pool
    /// (0 when nothing settled).
    pub fn parallel_share(&self) -> f64 {
        let total = self.total_evals();
        if total == 0 {
            0.0
        } else {
            self.parallel_evals as f64 / total as f64
        }
    }

    /// Eval imbalance across regions: hottest region's share of total
    /// evals relative to a perfectly even split (1.0 = balanced,
    /// `regions.len()` = everything on one region). 0 when empty.
    pub fn imbalance(&self) -> f64 {
        let total = self.total_evals();
        let hottest = self.regions.iter().map(|r| r.evals).max().unwrap_or(0);
        if total == 0 || self.regions.is_empty() {
            return 0.0;
        }
        hottest as f64 * self.regions.len() as f64 / total as f64
    }

    /// Merges the profile into whichever tracer is installed as `par.*`
    /// counter tracks: lane configuration, the batch-kind split, edge
    /// traffic and per-region occupancy (top 16 regions by evals,
    /// keeping the track count bounded).
    pub fn emit_counters(&self) {
        if !crate::active() {
            return;
        }
        let cat = "par";
        crate::counter(cat, "par.threads", self.threads as f64);
        crate::counter(cat, "par.settles", self.settles as f64);
        crate::counter(cat, "par.batches.parallel", self.parallel_batches as f64);
        crate::counter(cat, "par.batches.serial", self.serial_batches as f64);
        crate::counter(cat, "par.evals.parallel", self.parallel_evals as f64);
        crate::counter(cat, "par.evals.serial", self.serial_evals as f64);
        crate::counter(cat, "par.max_batch", self.max_batch as f64);
        crate::counter(cat, "par.edge_crossings", self.edge_crossings as f64);
        crate::counter(cat, "par.parallel_share", self.parallel_share());
        crate::counter(cat, "par.imbalance", self.imbalance());
        let mut by_heat: Vec<(usize, &ParRegionProf)> = self.regions.iter().enumerate().collect();
        by_heat.sort_by_key(|(_, r)| std::cmp::Reverse(r.evals));
        for (i, r) in by_heat.iter().take(16) {
            crate::counter(cat, format!("par.region.R{i}.evals"), r.evals as f64);
        }
    }

    /// JSON snapshot for report documents and divergence bundles.
    pub fn to_json(&self) -> Json {
        let regions: Vec<Json> = self
            .regions
            .iter()
            .map(|r| {
                Json::obj([
                    ("level_lo", Json::num(f64::from(r.level_lo))),
                    ("level_hi", Json::num(f64::from(r.level_hi))),
                    ("instrs", Json::num(r.instrs as f64)),
                    ("evals", Json::num(r.evals as f64)),
                ])
            })
            .collect();
        Json::obj([
            ("threads", Json::num(self.threads as f64)),
            ("settles", Json::num(self.settles as f64)),
            ("parallel_batches", Json::num(self.parallel_batches as f64)),
            ("serial_batches", Json::num(self.serial_batches as f64)),
            ("parallel_evals", Json::num(self.parallel_evals as f64)),
            ("serial_evals", Json::num(self.serial_evals as f64)),
            ("max_batch", Json::num(self.max_batch as f64)),
            ("edge_crossings", Json::num(self.edge_crossings as f64)),
            ("parallel_share", Json::num(self.parallel_share())),
            ("imbalance", Json::num(self.imbalance())),
            ("regions", Json::Arr(regions)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ParProfile {
        ParProfile {
            threads: 4,
            settles: 10,
            parallel_batches: 6,
            serial_batches: 14,
            parallel_evals: 600,
            serial_evals: 200,
            max_batch: 256,
            edge_crossings: 32,
            regions: vec![
                ParRegionProf {
                    level_lo: 0,
                    level_hi: 3,
                    instrs: 100,
                    evals: 500,
                },
                ParRegionProf {
                    level_lo: 4,
                    level_hi: 7,
                    instrs: 80,
                    evals: 300,
                },
            ],
        }
    }

    #[test]
    fn shares_and_imbalance() {
        let p = sample();
        assert_eq!(p.total_evals(), 800);
        assert!((p.parallel_share() - 0.75).abs() < 1e-12);
        // Hottest region holds 500/800 over 2 regions: 1.25.
        assert!((p.imbalance() - 1.25).abs() < 1e-12);
        let empty = ParProfile::default();
        assert_eq!(empty.parallel_share(), 0.0);
        assert_eq!(empty.imbalance(), 0.0);
    }

    #[test]
    fn json_snapshot_carries_regions() {
        let text = sample().to_json().render();
        assert!(text.contains("\"threads\":4"), "{text}");
        assert!(text.contains("\"regions\":["), "{text}");
        assert!(text.contains("\"edge_crossings\":32"), "{text}");
    }

    #[test]
    fn emit_counters_without_tracer_is_noop() {
        sample().emit_counters();
    }
}
