//! Temporal and spatial folding (paper §3.3).
//!
//! *Temporal folding* maps every layer onto the one physical block set, so
//! layers execute as sequential **phases**. *Spatial folding* splits a layer
//! whose neuron-level parallelism exceeds the lane count into several
//! phases ("folds") that time-share the lanes. The coordinator replays the
//! phases in order; each phase is triggered by an event named
//! `layer{i}-fold{j}` exactly as in the paper.

use crate::config::CompilerConfig;
use deepburning_model::{layer_stats, LayerKind, Network, NetworkError, Shape};

/// Data volumes and op counts of one phase — the quantities the timing
/// simulator turns into cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PhaseWork {
    /// Multiply-accumulates executed on the synergy lanes.
    pub macs: u64,
    /// Aux-unit operations (pooling compares, LRN sums, eltwise adds).
    pub aux_ops: u64,
    /// Approx-LUT evaluations.
    pub lut_ops: u64,
    /// Bytes fetched from DRAM (features + weights).
    pub dram_read_bytes: u64,
    /// Bytes written back to DRAM.
    pub dram_write_bytes: u64,
    /// Words read from on-chip buffers into the datapath.
    pub buffer_read_words: u64,
    /// Words written into on-chip buffers.
    pub buffer_write_words: u64,
}

impl PhaseWork {
    /// Component-wise sum.
    pub fn merge(self, o: PhaseWork) -> PhaseWork {
        PhaseWork {
            macs: self.macs + o.macs,
            aux_ops: self.aux_ops + o.aux_ops,
            lut_ops: self.lut_ops + o.lut_ops,
            dram_read_bytes: self.dram_read_bytes + o.dram_read_bytes,
            dram_write_bytes: self.dram_write_bytes + o.dram_write_bytes,
            buffer_read_words: self.buffer_read_words + o.buffer_read_words,
            buffer_write_words: self.buffer_write_words + o.buffer_write_words,
        }
    }
}

/// What kind of hardware the phase occupies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PhaseKind {
    /// Synergy lanes + accumulators (conv, FC, recurrent, associative,
    /// inception).
    Compute,
    /// Aux units only (pooling, LRN, dropout, eltwise, memory).
    Aux,
    /// Approx-LUT stream (standalone activation layers).
    Lut,
    /// K-sorter pass (classifier).
    Sort,
}

/// One coordinator phase: a `(layer, fold)` slice of the network.
#[derive(Debug, Clone, PartialEq)]
pub struct Phase {
    /// Phase index in schedule order.
    pub id: usize,
    /// The layer this phase advances.
    pub layer: String,
    /// Fold index within the layer.
    pub fold: usize,
    /// Total folds of this layer.
    pub folds: usize,
    /// Hardware class.
    pub kind: PhaseKind,
    /// Work volumes.
    pub work: PhaseWork,
    /// Trigger event name (`layer{i}-fold{j}`).
    pub event: String,
    /// Lanes this phase can actually keep busy (`<= plan.lanes`): the
    /// generic datapath wastes the remainder when the layer's parallelism
    /// does not divide the lane count.
    pub active_lanes: u32,
    /// Whether the phase's input features were already resident on chip.
    pub input_resident: bool,
    /// Whether the phase writes its output slice back to DRAM.
    pub output_to_dram: bool,
}

/// The full folding plan for a network on a given configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct FoldingPlan {
    /// Lanes the plan assumed.
    pub lanes: u32,
    /// Phases in execution order.
    pub phases: Vec<Phase>,
}

impl FoldingPlan {
    /// Total work across all phases.
    pub fn total_work(&self) -> PhaseWork {
        self.phases
            .iter()
            .fold(PhaseWork::default(), |acc, p| acc.merge(p.work))
    }

    /// Phases belonging to one layer.
    pub fn layer_phases<'a>(&'a self, layer: &'a str) -> impl Iterator<Item = &'a Phase> + 'a {
        self.phases.iter().filter(move |p| p.layer == layer)
    }

    /// Number of distinct layers that were folded spatially (folds > 1).
    pub fn spatially_folded_layers(&self) -> usize {
        let mut names: Vec<&str> = self
            .phases
            .iter()
            .filter(|p| p.folds > 1)
            .map(|p| p.layer.as_str())
            .collect();
        names.dedup();
        names.len()
    }
}

/// Neuron-level parallelism a layer asks for (the number of lane-columns a
/// fully spatial implementation would instantiate).
fn parallel_units(kind: &LayerKind) -> u64 {
    match kind {
        // A convolution exposes output-map x kernel-position parallelism
        // (the DianNao-style Tn x TixK mapping the lanes implement).
        LayerKind::Convolution(p) => (p.num_output * p.kernel_size * p.kernel_size) as u64,
        LayerKind::FullConnection(p) => p.num_output as u64,
        LayerKind::Recurrent { num_output, .. } => *num_output as u64,
        LayerKind::Inception(p) => (p.total_output() * 9) as u64,
        LayerKind::Associative { active_cells, .. } => *active_cells as u64,
        _ => 1,
    }
}

fn phase_kind(kind: &LayerKind) -> PhaseKind {
    match kind {
        LayerKind::Convolution(_)
        | LayerKind::FullConnection(_)
        | LayerKind::Recurrent { .. }
        | LayerKind::Inception(_)
        | LayerKind::Associative { .. } => PhaseKind::Compute,
        LayerKind::Activation(a) if a.needs_lut() => PhaseKind::Lut,
        LayerKind::Classifier { .. } => PhaseKind::Sort,
        _ => PhaseKind::Aux,
    }
}

/// Splits `total` into `parts` near-equal shares (remainder spread over the
/// first shares).
fn split(total: u64, parts: usize, idx: usize) -> u64 {
    let parts = parts as u64;
    let base = total / parts;
    let rem = total % parts;
    base + u64::from((idx as u64) < rem)
}

/// Computes the folding plan.
///
/// # Errors
///
/// Propagates shape-inference failures (impossible on a validated
/// [`Network`]).
pub fn plan_folding(net: &Network, cfg: &CompilerConfig) -> Result<FoldingPlan, NetworkError> {
    let shapes = net.infer_shapes()?;
    let wb = cfg.word_bytes();
    // Steady-state residency: when the whole weight set fits on chip and
    // the caller declared repeated inference, weights are fetched once per
    // session, not per forward pass.
    let total_weight_bytes: u64 = deepburning_model::network_stats(net)?.total.weights * wb;
    let weights_stay = cfg.weights_resident && total_weight_bytes <= cfg.weight_buffer_bytes;
    let mut phases = Vec::new();
    let mut id = 0usize;
    // Tracks whether the producing layer left its output resident on chip.
    let mut resident_output = false;
    for (li, layer) in net.layers().iter().enumerate() {
        if matches!(layer.kind, LayerKind::Input { .. }) {
            resident_output = false; // network input starts in DRAM
            continue;
        }
        let inputs: Vec<Shape> = layer.bottoms.iter().map(|b| shapes[b]).collect();
        let output = shapes[&layer.tops[0]];
        let stats = layer_stats(layer, &inputs, output);
        let units = parallel_units(&layer.kind);
        let folds = if phase_kind(&layer.kind) == PhaseKind::Compute {
            units.div_ceil(cfg.lanes as u64).max(1) as usize
        } else {
            1
        };
        let active_lanes = units.div_ceil(folds as u64).min(cfg.lanes as u64).max(1) as u32;
        let in_bytes = stats.input_elems * wb;
        let out_bytes = stats.output_elems * wb;
        let weight_bytes = stats.weights * wb;
        let input_fits = in_bytes <= cfg.feature_buffer_bytes;
        let input_resident = resident_output && input_fits;
        // The output stays on chip when it fits in (half of) the feature
        // buffer — double buffering shares the space with the next input.
        let output_stays = out_bytes <= cfg.feature_buffer_bytes / 2;
        let is_last = li + 1 == net.layers().len();
        let output_to_dram = is_last || !output_stays;
        for fold in 0..folds {
            // Input features: fetched from DRAM once if they fit on chip
            // (charged to fold 0), refetched per fold otherwise.
            let input_fetch = if input_resident {
                0
            } else if input_fits {
                if fold == 0 {
                    in_bytes
                } else {
                    0
                }
            } else {
                in_bytes
            };
            let work = PhaseWork {
                macs: split(stats.macs, folds, fold),
                aux_ops: split(stats.aux_ops, folds, fold),
                lut_ops: split(stats.lut_ops, folds, fold),
                dram_read_bytes: input_fetch
                    + if weights_stay {
                        0
                    } else {
                        split(weight_bytes, folds, fold)
                    },
                dram_write_bytes: if output_to_dram {
                    split(out_bytes, folds, fold)
                } else {
                    0
                },
                // The datapath re-reads each input element once per MAC it
                // participates in, amortised by the port width; weights
                // stream exactly once.
                buffer_read_words: split(
                    stats.macs.max(stats.input_elems) / cfg.port_width_words.max(1) as u64,
                    folds,
                    fold,
                ) + split(stats.weights, folds, fold),
                buffer_write_words: split(stats.output_elems, folds, fold),
            };
            phases.push(Phase {
                id,
                layer: layer.name.clone(),
                fold,
                folds,
                kind: phase_kind(&layer.kind),
                work,
                event: format!("layer{li}-fold{fold}"),
                active_lanes,
                input_resident: input_resident || (input_fits && fold > 0),
                output_to_dram,
            });
            id += 1;
        }
        resident_output = !output_to_dram || output_stays;
    }
    Ok(FoldingPlan {
        lanes: cfg.lanes,
        phases,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepburning_model::{
        network_stats, Activation, ConvParam, FullParam, Layer, PoolMethod, PoolParam,
    };

    fn small_cnn() -> Network {
        Network::from_layers(
            "cnn",
            vec![
                Layer::input("data", "data", 1, 28, 28),
                Layer::new(
                    "conv1",
                    LayerKind::Convolution(ConvParam::new(96, 5, 1)),
                    "data",
                    "conv1",
                ),
                Layer::new(
                    "pool1",
                    LayerKind::Pooling(PoolParam {
                        method: PoolMethod::Max,
                        kernel_size: 2,
                        stride: 2,
                    }),
                    "conv1",
                    "pool1",
                ),
                Layer::new(
                    "sig",
                    LayerKind::Activation(Activation::Sigmoid),
                    "pool1",
                    "pool1",
                ),
                Layer::new(
                    "fc",
                    LayerKind::FullConnection(FullParam::dense(10)),
                    "pool1",
                    "fc",
                ),
            ],
        )
        .expect("valid")
    }

    #[test]
    fn folds_match_lane_budget() {
        let net = small_cnn();
        let cfg = CompilerConfig {
            lanes: 32,
            ..CompilerConfig::default()
        };
        let plan = plan_folding(&net, &cfg).expect("plan");
        // conv1 exposes 96 maps x 5x5 kernel = 2400 parallel units; on 32
        // lanes that is ceil(2400/32) = 75 folds.
        assert_eq!(plan.layer_phases("conv1").count(), 75);
        // fc needs 10 on 32 -> 1 fold, with only 10 lanes active.
        let fc_phase = plan.layer_phases("fc").next().expect("fc phase");
        assert_eq!(plan.layer_phases("fc").count(), 1);
        assert_eq!(fc_phase.active_lanes, 10);
        assert_eq!(plan.spatially_folded_layers(), 1);
    }

    #[test]
    fn more_lanes_fewer_phases() {
        let net = small_cnn();
        let small = plan_folding(
            &net,
            &CompilerConfig {
                lanes: 16,
                ..CompilerConfig::default()
            },
        )
        .expect("plan");
        let large = plan_folding(
            &net,
            &CompilerConfig {
                lanes: 128,
                ..CompilerConfig::default()
            },
        )
        .expect("plan");
        assert!(large.phases.len() < small.phases.len());
    }

    #[test]
    fn work_is_conserved_across_folds() {
        let net = small_cnn();
        let cfg = CompilerConfig {
            lanes: 7, // awkward lane count to exercise the remainders
            ..CompilerConfig::default()
        };
        let plan = plan_folding(&net, &cfg).expect("plan");
        let stats = network_stats(&net).expect("stats");
        let total = plan.total_work();
        assert_eq!(total.macs, stats.total.macs);
        assert_eq!(total.aux_ops, stats.total.aux_ops);
        assert_eq!(total.lut_ops, stats.total.lut_ops);
    }

    #[test]
    fn events_follow_paper_naming() {
        let net = small_cnn();
        let plan = plan_folding(&net, &CompilerConfig::default()).expect("plan");
        // conv1 is layer index 1.
        let first = &plan.phases[0];
        assert_eq!(first.event, "layer1-fold0");
        assert_eq!(first.layer, "conv1");
    }

    #[test]
    fn phase_kinds_assigned() {
        let net = small_cnn();
        let plan = plan_folding(&net, &CompilerConfig::default()).expect("plan");
        let kinds: Vec<PhaseKind> = plan.phases.iter().map(|p| p.kind).collect();
        assert!(kinds.contains(&PhaseKind::Compute));
        assert!(kinds.contains(&PhaseKind::Aux));
        assert!(kinds.contains(&PhaseKind::Lut));
    }

    #[test]
    fn resident_input_skips_refetch() {
        let net = small_cnn();
        // A buffer large enough to keep conv1's 96x24x24 output on chip.
        let cfg = CompilerConfig {
            feature_buffer_bytes: 512 * 1024,
            ..CompilerConfig::default()
        };
        let plan = plan_folding(&net, &cfg).expect("plan");
        // pool1 consumes conv1's output which stayed on chip.
        let pool = plan.layer_phases("pool1").next().expect("pool phase");
        assert!(pool.input_resident);
        // Its DRAM reads are therefore zero (pooling has no weights).
        assert_eq!(pool.work.dram_read_bytes, 0);
    }

    #[test]
    fn tiny_buffer_forces_refetch() {
        let net = small_cnn();
        let cfg = CompilerConfig {
            lanes: 32,
            feature_buffer_bytes: 64, // pathological
            ..CompilerConfig::default()
        };
        let plan = plan_folding(&net, &cfg).expect("plan");
        let conv_phases: Vec<&Phase> = plan.layer_phases("conv1").collect();
        // Every fold refetches the input.
        assert!(conv_phases.iter().all(|p| p.work.dram_read_bytes > 0));
        let default_plan = plan_folding(&net, &CompilerConfig::default()).expect("plan");
        assert!(
            plan.total_work().dram_read_bytes > default_plan.total_work().dram_read_bytes,
            "starved buffer must increase DRAM traffic"
        );
    }

    #[test]
    fn last_layer_writes_to_dram() {
        let net = small_cnn();
        let plan = plan_folding(&net, &CompilerConfig::default()).expect("plan");
        let last = plan.phases.last().expect("phases");
        assert!(last.output_to_dram);
        assert!(last.work.dram_write_bytes > 0);
    }
}
