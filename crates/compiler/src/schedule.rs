//! Dynamic control flow: the coordinator's reconnection schedule.
//!
//! "The synergy neuron set used by one layer of weight-data-product
//! operation, need to be reconnected to accumulators afterwards to walk
//! through the next average pooling layer. The configuration signals are
//! generated in time by the FSM-based coordinator." — this module computes
//! those per-phase producer→consumer reconnections.

use crate::folding::{FoldingPlan, PhaseKind};

/// Canonical block-instance names used in the reconnection table and the
/// generated top-level netlist.
pub mod blocks {
    /// The feature buffer bank.
    pub const FEATURE_BUF: &str = "feature_buffer";
    /// The weight buffer bank.
    pub const WEIGHT_BUF: &str = "weight_buffer";
    /// The synergy neuron bank.
    pub const NEURONS: &str = "synergy_neurons";
    /// The accumulator bank.
    pub const ACCUMULATORS: &str = "accumulators";
    /// The connection box crossbar.
    pub const CONNECTION_BOX: &str = "connection_box";
    /// The pooling unit.
    pub const POOLING: &str = "pooling_unit";
    /// The Approx LUT.
    pub const APPROX_LUT: &str = "approx_lut";
    /// The LRN unit.
    pub const LRN: &str = "lrn_unit";
    /// The K-sorter classifier.
    pub const KSORTER: &str = "ksorter";
}

/// One crossbar edge configured for a phase.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reconnection {
    /// Producing block instance.
    pub from: &'static str,
    /// Consuming block instance.
    pub to: &'static str,
}

/// The coordinator's per-phase control words.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ControlStep {
    /// Phase id.
    pub phase: usize,
    /// Trigger event fired on entry (`layer{i}-fold{j}`).
    pub event: String,
    /// Crossbar configuration for the phase.
    pub reconnections: Vec<Reconnection>,
    /// Synergy lanes the phase keeps busy — the per-phase MAC increment
    /// the generated `perf_counters` block charges on every data-valid
    /// cycle (zero for non-compute phases). Stored in the `ctx_lanes`
    /// context ROM.
    pub counter_lanes: u32,
}

/// The full control schedule.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ControlSchedule {
    /// Steps in phase order.
    pub steps: Vec<ControlStep>,
}

impl ControlSchedule {
    /// Number of distinct crossbar configurations used — a proxy for the
    /// connection-box select-ROM size.
    pub fn distinct_configurations(&self) -> usize {
        let mut configs: Vec<&Vec<Reconnection>> =
            self.steps.iter().map(|s| &s.reconnections).collect();
        configs.sort();
        configs.dedup();
        configs.len()
    }

    /// The `ctx_lanes` ROM image: one word per phase holding the phase's
    /// MAC-per-cycle increment for the performance counters.
    pub fn counter_lane_words(&self) -> Vec<u64> {
        self.steps
            .iter()
            .map(|s| u64::from(s.counter_lanes))
            .collect()
    }
}

fn edge(from: &'static str, to: &'static str) -> Reconnection {
    Reconnection { from, to }
}

/// Builds the control schedule from a folding plan.
pub fn build_schedule(plan: &FoldingPlan) -> ControlSchedule {
    let steps = plan
        .phases
        .iter()
        .map(|phase| {
            let reconnections = match phase.kind {
                PhaseKind::Compute => vec![
                    edge(blocks::FEATURE_BUF, blocks::NEURONS),
                    edge(blocks::WEIGHT_BUF, blocks::NEURONS),
                    edge(blocks::NEURONS, blocks::ACCUMULATORS),
                    edge(blocks::ACCUMULATORS, blocks::CONNECTION_BOX),
                    edge(blocks::CONNECTION_BOX, blocks::FEATURE_BUF),
                ],
                PhaseKind::Aux => vec![
                    edge(blocks::FEATURE_BUF, blocks::CONNECTION_BOX),
                    edge(blocks::CONNECTION_BOX, blocks::POOLING),
                    edge(blocks::POOLING, blocks::FEATURE_BUF),
                ],
                PhaseKind::Lut => vec![
                    edge(blocks::FEATURE_BUF, blocks::CONNECTION_BOX),
                    edge(blocks::CONNECTION_BOX, blocks::APPROX_LUT),
                    edge(blocks::APPROX_LUT, blocks::FEATURE_BUF),
                ],
                PhaseKind::Sort => vec![
                    edge(blocks::FEATURE_BUF, blocks::CONNECTION_BOX),
                    edge(blocks::CONNECTION_BOX, blocks::KSORTER),
                ],
            };
            ControlStep {
                phase: phase.id,
                event: phase.event.clone(),
                reconnections,
                counter_lanes: if phase.kind == PhaseKind::Compute {
                    phase.active_lanes.max(1)
                } else {
                    0
                },
            }
        })
        .collect();
    ControlSchedule { steps }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CompilerConfig;
    use crate::folding::plan_folding;
    use deepburning_model::{
        Activation, ConvParam, FullParam, Layer, LayerKind, Network, PoolMethod, PoolParam,
    };

    fn plan() -> FoldingPlan {
        let net = Network::from_layers(
            "t",
            vec![
                Layer::input("data", "data", 1, 12, 12),
                Layer::new(
                    "conv",
                    LayerKind::Convolution(ConvParam::new(40, 3, 1)),
                    "data",
                    "conv",
                ),
                Layer::new(
                    "pool",
                    LayerKind::Pooling(PoolParam {
                        method: PoolMethod::Average,
                        kernel_size: 2,
                        stride: 2,
                    }),
                    "conv",
                    "pool",
                ),
                Layer::new(
                    "sig",
                    LayerKind::Activation(Activation::Sigmoid),
                    "pool",
                    "pool",
                ),
                Layer::new(
                    "fc",
                    LayerKind::FullConnection(FullParam::dense(10)),
                    "pool",
                    "fc",
                ),
                Layer::new("cls", LayerKind::Classifier { top_k: 1 }, "fc", "cls"),
            ],
        )
        .expect("valid");
        plan_folding(
            &net,
            &CompilerConfig {
                lanes: 32,
                ..CompilerConfig::default()
            },
        )
        .expect("plan")
    }

    #[test]
    fn one_step_per_phase() {
        let p = plan();
        let s = build_schedule(&p);
        assert_eq!(s.steps.len(), p.phases.len());
        for (step, phase) in s.steps.iter().zip(&p.phases) {
            assert_eq!(step.phase, phase.id);
            assert_eq!(step.event, phase.event);
        }
    }

    #[test]
    fn compute_phase_wires_neurons_to_accumulators() {
        let s = build_schedule(&plan());
        let first = &s.steps[0];
        assert!(first.reconnections.contains(&Reconnection {
            from: blocks::NEURONS,
            to: blocks::ACCUMULATORS
        }));
        assert!(first.reconnections.contains(&Reconnection {
            from: blocks::WEIGHT_BUF,
            to: blocks::NEURONS
        }));
    }

    #[test]
    fn pooling_phase_routes_through_connection_box() {
        let p = plan();
        let s = build_schedule(&p);
        let pool_step = p
            .phases
            .iter()
            .position(|ph| ph.layer == "pool")
            .expect("pool phase");
        assert!(s.steps[pool_step].reconnections.contains(&Reconnection {
            from: blocks::CONNECTION_BOX,
            to: blocks::POOLING
        }));
    }

    #[test]
    fn classifier_phase_uses_ksorter() {
        let p = plan();
        let s = build_schedule(&p);
        let last = s.steps.last().expect("steps");
        assert!(last.reconnections.iter().any(|r| r.to == blocks::KSORTER));
    }

    #[test]
    fn counter_lanes_follow_phase_kind() {
        let p = plan();
        let s = build_schedule(&p);
        let words = s.counter_lane_words();
        assert_eq!(words.len(), p.phases.len());
        for (phase, word) in p.phases.iter().zip(&words) {
            if phase.kind == PhaseKind::Compute {
                assert_eq!(*word, u64::from(phase.active_lanes.max(1)));
                assert!(*word > 0);
            } else {
                assert_eq!(*word, 0, "non-compute phase {} charges MACs", phase.id);
            }
        }
    }

    #[test]
    fn distinct_configurations_bounded_by_kinds() {
        let s = build_schedule(&plan());
        // Four phase kinds -> at most four distinct crossbar configs.
        assert!(s.distinct_configurations() <= 4);
        assert!(s.distinct_configurations() >= 3);
    }
}
