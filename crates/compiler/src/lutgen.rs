//! Approx-LUT content generation.
//!
//! "The size (depending on accuracy requirement) and content of Approx
//! LUT, including the keys and values, are generated a priori by NN-Gen
//! compiler" — this pass parses the functions a network needs, chooses
//! sampling points and fills the tables.

use crate::config::CompilerConfig;
use deepburning_fixed::{ApproxLut, BuildLutError, Sampling};
use deepburning_model::{Activation, LayerKind, Network};
use std::collections::BTreeMap;

/// The set of LUT images a network needs, keyed by function tag
/// (`sigmoid`, `tanh`, `lrn:<layer>`).
pub type LutImages = BTreeMap<String, ApproxLut>;

/// Input range sampled for the sigmoid/tanh tables; beyond ±8 both
/// functions are flat to within one Q8.8 LSB.
pub const ACTIVATION_RANGE: (f64, f64) = (-8.0, 8.0);

/// Generates every LUT image the network's layers require.
///
/// Activation tables are shared across layers using the same function;
/// each LRN layer gets its own factor table (α/β differ per layer).
///
/// # Errors
///
/// Returns [`BuildLutError`] if a table cannot be sampled (e.g. fewer than
/// two entries configured).
pub fn generate_luts(net: &Network, cfg: &CompilerConfig) -> Result<LutImages, BuildLutError> {
    let mut images = LutImages::new();
    let fmt = cfg.format;
    let entries = cfg.lut_entries;
    let need_activation = |act: Activation, images: &mut LutImages| -> Result<(), BuildLutError> {
        if !act.needs_lut() {
            return Ok(());
        }
        let key = match act {
            Activation::Sigmoid => "sigmoid",
            Activation::Tanh => "tanh",
            _ => unreachable!("needs_lut covers sigmoid/tanh only"),
        };
        if !images.contains_key(key) {
            let lut = ApproxLut::sample(
                move |x| act.eval(x),
                ACTIVATION_RANGE.0,
                ACTIVATION_RANGE.1,
                entries,
                fmt,
                Sampling::ErrorEqualizing,
            )?;
            images.insert(key.to_string(), lut);
        }
        Ok(())
    };
    for layer in net.layers() {
        match &layer.kind {
            LayerKind::Activation(a) => need_activation(*a, &mut images)?,
            // Recurrent layers apply tanh internally.
            LayerKind::Recurrent { .. } => need_activation(Activation::Tanh, &mut images)?,
            LayerKind::Lrn(p) => {
                let (alpha, beta, n) = (p.alpha, p.beta, p.local_size as f64);
                let lut = ApproxLut::sample(
                    move |s| (1.0 + alpha / n * s).powf(-beta),
                    0.0,
                    fmt.max_value(),
                    entries,
                    fmt,
                    Sampling::Uniform,
                )?;
                images.insert(format!("lrn:{}", layer.name), lut);
            }
            _ => {}
        }
    }
    Ok(images)
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepburning_model::{FullParam, Layer, LrnParam, Network};

    fn net_with(layers: Vec<Layer>) -> Network {
        let mut all = vec![Layer::input("data", "data", 4, 1, 1)];
        all.extend(layers);
        Network::from_layers("t", all).expect("valid")
    }

    #[test]
    fn sigmoid_table_generated_once() {
        let net = net_with(vec![
            Layer::new(
                "fc1",
                LayerKind::FullConnection(FullParam::dense(4)),
                "data",
                "fc1",
            ),
            Layer::new(
                "s1",
                LayerKind::Activation(Activation::Sigmoid),
                "fc1",
                "fc1",
            ),
            Layer::new(
                "fc2",
                LayerKind::FullConnection(FullParam::dense(4)),
                "fc1",
                "fc2",
            ),
            Layer::new(
                "s2",
                LayerKind::Activation(Activation::Sigmoid),
                "fc2",
                "fc2",
            ),
        ]);
        let luts = generate_luts(&net, &CompilerConfig::default()).expect("luts");
        assert_eq!(luts.len(), 1);
        assert!(luts.contains_key("sigmoid"));
    }

    #[test]
    fn relu_needs_no_table() {
        let net = net_with(vec![
            Layer::new(
                "fc",
                LayerKind::FullConnection(FullParam::dense(4)),
                "data",
                "fc",
            ),
            Layer::new("r", LayerKind::Activation(Activation::Relu), "fc", "fc"),
        ]);
        let luts = generate_luts(&net, &CompilerConfig::default()).expect("luts");
        assert!(luts.is_empty());
    }

    #[test]
    fn recurrent_pulls_in_tanh() {
        let net = net_with(vec![Layer::new(
            "rec",
            LayerKind::Recurrent {
                num_output: 4,
                steps: 2,
            },
            "data",
            "rec",
        )]);
        let luts = generate_luts(&net, &CompilerConfig::default()).expect("luts");
        assert!(luts.contains_key("tanh"));
    }

    #[test]
    fn lrn_gets_per_layer_table() {
        let net = Network::from_layers(
            "t",
            vec![
                Layer::input("data", "data", 4, 8, 8),
                Layer::new("lrn_a", LayerKind::Lrn(LrnParam::default()), "data", "a"),
                Layer::new(
                    "lrn_b",
                    LayerKind::Lrn(LrnParam {
                        local_size: 3,
                        alpha: 1.0,
                        beta: 0.5,
                    }),
                    "a",
                    "b",
                ),
            ],
        )
        .expect("valid");
        let luts = generate_luts(&net, &CompilerConfig::default()).expect("luts");
        assert!(luts.contains_key("lrn:lrn_a"));
        assert!(luts.contains_key("lrn:lrn_b"));
        assert_ne!(luts["lrn:lrn_a"], luts["lrn:lrn_b"]);
    }

    #[test]
    fn table_accuracy_improves_with_entries() {
        let net = net_with(vec![
            Layer::new(
                "fc",
                LayerKind::FullConnection(FullParam::dense(4)),
                "data",
                "fc",
            ),
            Layer::new("s", LayerKind::Activation(Activation::Sigmoid), "fc", "fc"),
        ]);
        let coarse_cfg = CompilerConfig {
            lut_entries: 8,
            format: deepburning_fixed::QFormat::Q16_16,
            ..CompilerConfig::default()
        };
        let fine_cfg = CompilerConfig {
            lut_entries: 256,
            format: deepburning_fixed::QFormat::Q16_16,
            ..CompilerConfig::default()
        };
        let sigmoid = |x: f64| 1.0 / (1.0 + (-x).exp());
        let coarse =
            generate_luts(&net, &coarse_cfg).expect("luts")["sigmoid"].max_error(sigmoid, 1000);
        let fine =
            generate_luts(&net, &fine_cfg).expect("luts")["sigmoid"].max_error(sigmoid, 1000);
        assert!(fine < coarse, "fine {fine} vs coarse {coarse}");
    }

    #[test]
    fn too_few_entries_is_an_error() {
        let net = net_with(vec![
            Layer::new(
                "fc",
                LayerKind::FullConnection(FullParam::dense(4)),
                "data",
                "fc",
            ),
            Layer::new("s", LayerKind::Activation(Activation::Sigmoid), "fc", "fc"),
        ]);
        let cfg = CompilerConfig {
            lut_entries: 1,
            ..CompilerConfig::default()
        };
        assert!(generate_luts(&net, &cfg).is_err());
    }
}
