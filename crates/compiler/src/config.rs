//! Generation-time configuration shared by the compiler passes.

use deepburning_fixed::QFormat;

/// Parameters the NN-Gen front end derives from the user's resource
/// constraint before invoking the compiler.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompilerConfig {
    /// Parallel synergy-neuron lanes the datapath provides.
    pub lanes: u32,
    /// Datapath word width in bits.
    pub word_bits: u32,
    /// On-chip feature buffer capacity in bytes.
    pub feature_buffer_bytes: u64,
    /// On-chip weight buffer capacity in bytes.
    pub weight_buffer_bytes: u64,
    /// On-chip buffer row width in words (Method-1's `d`).
    pub port_width_words: usize,
    /// Approx LUT entries per function table.
    pub lut_entries: usize,
    /// Fixed-point format of the datapath.
    pub format: QFormat,
    /// Steady-state mode: weights already live in the on-chip weight
    /// buffer (repeated inference over one model, as in training or a
    /// serving loop), so per-inference DRAM traffic excludes them when
    /// they fit. Default off = cold-start latency, the paper's Fig. 8
    /// measurement.
    pub weights_resident: bool,
}

impl CompilerConfig {
    /// Bytes per datapath word.
    pub fn word_bytes(&self) -> u64 {
        u64::from(self.word_bits.div_ceil(8))
    }
}

impl Default for CompilerConfig {
    /// A medium configuration comparable to the paper's "DB" budget on the
    /// Z-7045: 32 lanes, 16-bit words, 128 KiB feature + 128 KiB weight
    /// buffer, 16-word ports, 64-entry LUTs.
    fn default() -> Self {
        CompilerConfig {
            lanes: 32,
            word_bits: 16,
            feature_buffer_bytes: 128 * 1024,
            weight_buffer_bytes: 128 * 1024,
            port_width_words: 16,
            lut_entries: 64,
            format: QFormat::Q8_8,
            weights_resident: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_bytes_rounds_up() {
        let mut c = CompilerConfig::default();
        assert_eq!(c.word_bytes(), 2);
        c.word_bits = 12;
        assert_eq!(c.word_bytes(), 2);
        c.word_bits = 8;
        assert_eq!(c.word_bytes(), 1);
    }

    #[test]
    fn default_is_sane() {
        let c = CompilerConfig::default();
        assert!(c.lanes > 0);
        assert!(c.lut_entries >= 2);
        assert_eq!(c.format, QFormat::Q8_8);
    }
}
