//! Hardware-aware data layouting: tiling and partitioning (paper §3.4,
//! "Method-1").
//!
//! As printed, Method-1's first two guards are degenerate (both read
//! `k² = d²`); we implement the evident intent and document the repair:
//!
//! 1. if `k == d` → `k×k` tiles, tiles of one map aligned continuously,
//!    then the next map;
//! 2. if `k == d` **and** `s` divides both `k` and `d` → partition further
//!    into `s×s` tiles within one map (better reuse when the window slides
//!    by `s`);
//! 3. otherwise → `f×f` tiles for `f = gcd(k, d, s)`, interleaving the
//!    tiles of `t` maps one by one in memory.
//!
//! When no useful common divisor exists the hardware generator *reshapes
//! the memory port* ("the width of memory port and data-path will be
//! reshaped to make it easy to achieve data alignment").

use deepburning_model::Shape;
use std::fmt;

/// Which Method-1 branch produced the plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TilingCase {
    /// Case 1: kernel-sized tiles, maps consecutive.
    KernelTiles,
    /// Case 2: stride-sized tiles within a map.
    StrideTiles,
    /// Case 3: gcd-sized tiles, maps interleaved.
    GcdTiles,
    /// Fallback: the port was reshaped to restore alignment.
    ReshapedPort,
}

impl fmt::Display for TilingCase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            TilingCase::KernelTiles => "kernel-tiles",
            TilingCase::StrideTiles => "stride-tiles",
            TilingCase::GcdTiles => "gcd-tiles",
            TilingCase::ReshapedPort => "reshaped-port",
        })
    }
}

/// The data layout chosen for one feature blob.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TilePlan {
    /// Side of the square tile, in pixels.
    pub tile: usize,
    /// Memory port width in pixels per row (possibly reshaped).
    pub port_width: usize,
    /// Number of maps interleaved tile-by-tile (1 = maps consecutive).
    pub interleaved_maps: usize,
    /// Which branch fired.
    pub case: TilingCase,
}

fn gcd(a: usize, b: usize) -> usize {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// Runs Method-1.
///
/// * `kernel` — convolution window side `k`
/// * `stride` — window stride `s`
/// * `port_width` — memory row width `d` in pixels
/// * `maps` — input feature map count `t`
///
/// # Panics
///
/// Panics if any argument is zero.
pub fn plan_tiling(kernel: usize, stride: usize, port_width: usize, maps: usize) -> TilePlan {
    assert!(
        kernel > 0 && stride > 0 && port_width > 0 && maps > 0,
        "tiling parameters must be non-zero"
    );
    if kernel == port_width {
        if stride > 1 && kernel.is_multiple_of(stride) && port_width.is_multiple_of(stride) {
            // Case 2: finer s×s partition for window reuse.
            return TilePlan {
                tile: stride,
                port_width,
                interleaved_maps: 1,
                case: TilingCase::StrideTiles,
            };
        }
        // Case 1.
        return TilePlan {
            tile: kernel,
            port_width,
            interleaved_maps: 1,
            case: TilingCase::KernelTiles,
        };
    }
    let f = gcd(gcd(kernel, port_width), stride);
    if f >= 2 {
        // Case 3.
        return TilePlan {
            tile: f,
            port_width,
            interleaved_maps: maps,
            case: TilingCase::GcdTiles,
        };
    }
    // Fallback: reshape the port to a multiple of the stride that covers
    // the kernel, restoring alignment (the generator adjusts the buffer
    // read width accordingly).
    let tile = stride.max(1);
    let reshaped = tile * kernel.div_ceil(tile);
    TilePlan {
        tile,
        port_width: reshaped,
        interleaved_maps: maps,
        case: TilingCase::ReshapedPort,
    }
}

/// The memory order a tiled map layout produces: element `i` of the result
/// is the flat `(map, y, x)` index (`map*H*W + y*W + x`) stored at memory
/// slot `i`.
///
/// Edge tiles are partial when the extent is not a tile multiple; their
/// in-range pixels are packed in the same row-major-within-tile order, so
/// the result is always a permutation of `0..maps*H*W`.
pub fn layout_order(shape: Shape, plan: &TilePlan) -> Vec<usize> {
    let (h, w) = (shape.height, shape.width);
    let maps = shape.channels;
    let t = plan.tile.max(1);
    let tiles_y = h.div_ceil(t);
    let tiles_x = w.div_ceil(t);
    let mut order = Vec::with_capacity(maps * h * w);
    let group = plan.interleaved_maps.clamp(1, maps);
    // Maps are processed in interleave groups: within a group, each tile is
    // emitted for every map before moving to the next tile.
    let mut base_map = 0;
    while base_map < maps {
        let span = group.min(maps - base_map);
        for ty in 0..tiles_y {
            for tx in 0..tiles_x {
                for m in base_map..base_map + span {
                    for dy in 0..t {
                        for dx in 0..t {
                            let (y, x) = (ty * t + dy, tx * t + dx);
                            if y < h && x < w {
                                order.push((m * h + y) * w + x);
                            }
                        }
                    }
                }
            }
        }
        base_map += span;
    }
    order
}

/// Number of `d`-pixel memory rows touched when fetching one `k×k` window
/// from a *row-major* layout of width `image_width` — the paper's "poor
/// bandwidth utilization" case ("only the first 12 pixels are used if the
/// whole first row is fetched"). Each of the `k` window rows lives in a
/// different image row; with average misalignment of half a port the span
/// of `k` pixels touches `ceil((k + d/2) / d)` port rows.
pub fn rows_touched_linear(k: usize, image_width: usize, d: usize) -> usize {
    let per_row = (k + d / 2).div_ceil(d).min(image_width.div_ceil(d).max(1));
    k * per_row.max(1)
}

/// Number of `d`-pixel memory rows touched when fetching one `k×k` window
/// from a layout tiled with `plan`: the window overlaps `ceil(k/f)` tiles
/// per side; the tiles of one tile-row are contiguous in memory (that is
/// the point of the layout), so a tile-row streams as
/// `ceil(n_tiles · f² / d)` port rows.
pub fn rows_touched_tiled(k: usize, plan: &TilePlan) -> usize {
    let f = plan.tile.max(1);
    let d = plan.port_width.max(1);
    let n = k.div_ceil(f);
    n * (n * f * f).div_ceil(d).max(1)
}

/// Fraction of fetched pixels actually used by one `k×k` window under the
/// given plan, in `(0, 1]` — the bandwidth-utility objective of Fig. 7.
pub fn bandwidth_utilization(k: usize, plan: &TilePlan) -> f64 {
    let useful = (k * k) as f64;
    let fetched = (rows_touched_tiled(k, plan) * plan.port_width) as f64;
    (useful / fetched).min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn case1_kernel_equals_port() {
        let p = plan_tiling(12, 1, 12, 3);
        assert_eq!(p.case, TilingCase::KernelTiles);
        assert_eq!(p.tile, 12);
        assert_eq!(p.interleaved_maps, 1);
    }

    #[test]
    fn case2_stride_divides() {
        // The paper's Fig. 7 example: 12x12 kernel, stride 4, port 12 ->
        // 4x4 sub-blocks.
        let p = plan_tiling(12, 4, 12, 3);
        assert_eq!(p.case, TilingCase::StrideTiles);
        assert_eq!(p.tile, 4);
    }

    #[test]
    fn case3_gcd() {
        // k=6, d=4, s=2 -> f = gcd(6,4,2) = 2, maps interleaved.
        let p = plan_tiling(6, 2, 4, 5);
        assert_eq!(p.case, TilingCase::GcdTiles);
        assert_eq!(p.tile, 2);
        assert_eq!(p.interleaved_maps, 5);
    }

    #[test]
    fn fallback_reshapes_port() {
        // k=11, d=16, s=4 (AlexNet conv1): gcd = 1 -> reshape.
        let p = plan_tiling(11, 4, 16, 3);
        assert_eq!(p.case, TilingCase::ReshapedPort);
        assert_eq!(p.tile, 4);
        assert_eq!(p.port_width, 12); // 4 * ceil(11/4)
    }

    #[test]
    fn zero_params_panic() {
        let result = std::panic::catch_unwind(|| plan_tiling(0, 1, 1, 1));
        assert!(result.is_err());
    }

    fn assert_permutation(order: &[usize], n: usize) {
        assert_eq!(order.len(), n, "length");
        let set: BTreeSet<usize> = order.iter().copied().collect();
        assert_eq!(set.len(), n, "uniqueness");
        assert_eq!(*set.iter().next_back().expect("non-empty"), n - 1);
    }

    #[test]
    fn layout_is_permutation_exact_tiles() {
        let plan = plan_tiling(4, 4, 4, 1);
        let shape = Shape::new(2, 8, 8);
        let order = layout_order(shape, &plan);
        assert_permutation(&order, 128);
    }

    #[test]
    fn layout_is_permutation_partial_tiles() {
        let plan = plan_tiling(4, 4, 4, 1);
        let shape = Shape::new(3, 10, 7); // not tile multiples
        let order = layout_order(shape, &plan);
        assert_permutation(&order, 210);
    }

    #[test]
    fn layout_tile_contiguity() {
        // With 2x2 tiles on a 4x4 map, the first four memory slots are the
        // first tile in row-major order.
        let plan = TilePlan {
            tile: 2,
            port_width: 4,
            interleaved_maps: 1,
            case: TilingCase::GcdTiles,
        };
        let order = layout_order(Shape::new(1, 4, 4), &plan);
        assert_eq!(&order[..4], &[0, 1, 4, 5]);
        assert_eq!(&order[4..8], &[2, 3, 6, 7]);
    }

    #[test]
    fn layout_interleaves_maps() {
        let plan = TilePlan {
            tile: 2,
            port_width: 4,
            interleaved_maps: 2,
            case: TilingCase::GcdTiles,
        };
        let order = layout_order(Shape::new(2, 2, 2), &plan);
        // Tile 0 of map 0 (whole map: 4 px), then tile 0 of map 1.
        assert_eq!(order, vec![0, 1, 2, 3, 4, 5, 6, 7]);
        // Non-interleaved would be identical here; use a 2-tile map to see
        // the difference.
        let order2 = layout_order(Shape::new(2, 2, 4), &plan);
        // map0-tile0, map1-tile0, map0-tile1, map1-tile1
        assert_eq!(&order2[..4], &[0, 1, 4, 5]);
        assert_eq!(&order2[4..8], &[8, 9, 12, 13]);
    }

    #[test]
    fn tiled_beats_linear_for_paper_example() {
        // Fig. 7: 57x57 image, 12x12 kernel, stride 4, 12-pixel port.
        let plan = plan_tiling(12, 4, 12, 1);
        let linear = rows_touched_linear(12, 57, 12);
        let tiled = rows_touched_tiled(12, &plan);
        assert!(
            tiled < linear,
            "tiled {tiled} rows should beat linear {linear} rows"
        );
        assert!(bandwidth_utilization(12, &plan) > 0.5);
    }

    #[test]
    fn utilization_bounded() {
        for (k, s, d) in [(3, 1, 16), (5, 2, 8), (11, 4, 16), (12, 4, 12)] {
            let plan = plan_tiling(k, s, d, 4);
            let u = bandwidth_utilization(k, &plan);
            assert!(u > 0.0 && u <= 1.0, "k={k} s={s} d={d}: {u}");
        }
    }
}
