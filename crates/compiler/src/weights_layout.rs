//! Weight layout generation.
//!
//! "Meanwhile, the layout of network weight is partitioned accordingly to
//! accompany the layout of feature data for computation" (§3.4). The
//! weight AGU streams linearly, so the compiler must order each layer's
//! kernel weights exactly as the folded datapath consumes them:
//! fold-major, then lane-interleaved within a beat, matching the synergy
//! bank's wide bus.

use crate::config::CompilerConfig;
use deepburning_model::{LayerKind, Network, NetworkError, Shape};
use std::collections::BTreeMap;

/// The streaming order of one layer's weights: entry `i` of the result is
/// the index (into the layer's canonical `w` buffer) of the weight stored
/// at stream position `i`. Always a permutation of `0..len`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WeightOrder {
    /// Stream position → canonical index.
    pub order: Vec<usize>,
    /// Lanes the order was computed for (the interleave factor).
    pub lanes: usize,
    /// Output units per fold (the fold-major grouping).
    pub units_per_fold: usize,
}

impl WeightOrder {
    /// Applies the order to a canonical weight buffer, producing the DRAM
    /// stream (the image the ARM core writes before starting the
    /// accelerator).
    ///
    /// # Panics
    ///
    /// Panics if `weights.len()` differs from the order length.
    pub fn apply<T: Copy>(&self, weights: &[T]) -> Vec<T> {
        assert_eq!(
            weights.len(),
            self.order.len(),
            "weight buffer length mismatch"
        );
        self.order.iter().map(|&i| weights[i]).collect()
    }

    /// True when the order is a permutation (checked in debug builds and
    /// by the property tests).
    pub fn is_permutation(&self) -> bool {
        let mut seen = vec![false; self.order.len()];
        for &i in &self.order {
            if i >= seen.len() || seen[i] {
                return false;
            }
            seen[i] = true;
        }
        true
    }
}

/// Computes the weight stream order for one weighted layer.
///
/// Canonical layouts (see `deepburning_tensor::LayerWeights`):
/// * FC — `w[out][in]`: outputs are grouped into folds of `lanes` units;
///   within a fold, the stream interleaves one input-column across the
///   fold's outputs per beat (so each beat fills every lane).
/// * convolution — `w[co][cig][ky][kx]`: output maps grouped into folds;
///   within a fold, kernels stream map-interleaved the same way.
///
/// Returns `None` for weight-less layers.
pub fn layer_weight_order(
    kind: &LayerKind,
    input: Shape,
    cfg: &CompilerConfig,
) -> Option<WeightOrder> {
    let lanes = cfg.lanes.max(1) as usize;
    match kind {
        LayerKind::FullConnection(p) => {
            let n_in = input.elements();
            let n_out = p.num_output;
            Some(interleaved_order(n_out, n_in, lanes))
        }
        LayerKind::Convolution(p) => {
            let per_map = (input.channels / p.group) * p.kernel_size * p.kernel_size;
            Some(interleaved_order(p.num_output, per_map, lanes))
        }
        LayerKind::Recurrent { num_output, .. } => {
            let row = input.elements() + num_output;
            Some(interleaved_order(*num_output, row, lanes))
        }
        LayerKind::Associative { table_size, .. } => {
            // The CMAC table is randomly addressed: identity layout.
            Some(WeightOrder {
                order: (0..*table_size).collect(),
                lanes,
                units_per_fold: 1,
            })
        }
        _ => None,
    }
}

/// Fold-major, lane-interleaved order over a `units × row` weight matrix.
fn interleaved_order(units: usize, row: usize, lanes: usize) -> WeightOrder {
    let per_fold = lanes.min(units.max(1));
    let mut order = Vec::with_capacity(units * row);
    let mut base_unit = 0;
    while base_unit < units {
        let span = per_fold.min(units - base_unit);
        for col in 0..row {
            for u in 0..span {
                order.push((base_unit + u) * row + col);
            }
        }
        base_unit += span;
    }
    WeightOrder {
        order,
        lanes,
        units_per_fold: per_fold,
    }
}

/// Computes the weight stream order of every weighted layer.
///
/// # Errors
///
/// Propagates shape-inference failures.
pub fn plan_weight_layout(
    net: &Network,
    cfg: &CompilerConfig,
) -> Result<BTreeMap<String, WeightOrder>, NetworkError> {
    let shapes = net.infer_shapes()?;
    let mut out = BTreeMap::new();
    for layer in net.layers() {
        let input = layer
            .bottoms
            .first()
            .map(|b| shapes[b])
            .unwrap_or(Shape::vector(0));
        if let Some(order) = layer_weight_order(&layer.kind, input, cfg) {
            out.insert(layer.name.clone(), order);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepburning_model::{ConvParam, FullParam};

    fn cfg(lanes: u32) -> CompilerConfig {
        CompilerConfig {
            lanes,
            ..CompilerConfig::default()
        }
    }

    #[test]
    fn fc_order_is_lane_interleaved() {
        // 4 outputs, 3 inputs, 2 lanes: fold {o0,o1} then {o2,o3}.
        let order = layer_weight_order(
            &LayerKind::FullConnection(FullParam::dense(4)),
            Shape::vector(3),
            &cfg(2),
        )
        .expect("weighted layer");
        // Beat structure: col0 of o0,o1; col1 of o0,o1; col2 of o0,o1; then fold 2.
        assert_eq!(order.order, vec![0, 3, 1, 4, 2, 5, 6, 9, 7, 10, 8, 11]);
        assert!(order.is_permutation());
        assert_eq!(order.units_per_fold, 2);
    }

    #[test]
    fn conv_order_is_permutation() {
        let order = layer_weight_order(
            &LayerKind::Convolution(ConvParam::new(6, 3, 1)),
            Shape::new(2, 8, 8),
            &cfg(4),
        )
        .expect("weighted layer");
        assert_eq!(order.order.len(), 6 * 2 * 9);
        assert!(order.is_permutation());
    }

    #[test]
    fn single_lane_is_identity() {
        let order = layer_weight_order(
            &LayerKind::FullConnection(FullParam::dense(3)),
            Shape::vector(2),
            &cfg(1),
        )
        .expect("weighted layer");
        assert_eq!(order.order, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn apply_roundtrips_through_inverse() {
        let order = interleaved_order(5, 4, 3);
        let canonical: Vec<usize> = (0..20).collect();
        let stream = order.apply(&canonical);
        // Re-applying the indices recovers the canonical buffer.
        let mut back = vec![usize::MAX; 20];
        for (pos, &idx) in order.order.iter().enumerate() {
            back[idx] = stream[pos];
        }
        assert_eq!(back, canonical);
    }

    #[test]
    fn pooling_has_no_weight_order() {
        assert!(layer_weight_order(
            &LayerKind::Pooling(deepburning_model::PoolParam {
                method: deepburning_model::PoolMethod::Max,
                kernel_size: 2,
                stride: 2,
            }),
            Shape::new(4, 8, 8),
            &cfg(4),
        )
        .is_none());
    }

    #[test]
    fn whole_network_layout() {
        let net = deepburning_model::NetworkBuilder::new("t", 1, 8, 8)
            .conv("c", 4, 3, 1)
            .full("fc", 10)
            .build()
            .expect("builds");
        let layout = plan_weight_layout(&net, &cfg(8)).expect("plans");
        assert!(layout.contains_key("c"));
        assert!(layout.contains_key("fc"));
        assert!(layout.values().all(WeightOrder::is_permutation));
    }
}
