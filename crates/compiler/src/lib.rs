//! The DeepBurning compiler: software/hardware co-design passes.
//!
//! Given a validated network and a [`CompilerConfig`] derived from the
//! user's resource constraint, the compiler produces everything the
//! hardware generator and the run time need:
//!
//! * a [`FoldingPlan`] — temporal + spatial folding into coordinator phases
//! * a [`MemoryMap`] and per-layer [`TilePlan`]s — the optimised data layout
//! * per-phase [`AguProgram`]s — deterministic address patterns (Fig. 6)
//! * a [`ControlSchedule`] — the dynamic producer→consumer reconnections
//! * [`LutImages`] — Approx LUT contents for every non-linear function
//!
//! # Examples
//!
//! ```
//! use deepburning_compiler::{compile, CompilerConfig};
//!
//! let src = r#"
//! layers { name: "data" type: INPUT top: "data"
//!          input_param { channels: 1 height: 12 width: 12 } }
//! layers { name: "conv" type: CONVOLUTION bottom: "data" top: "conv"
//!          param { num_output: 48 kernel_size: 3 stride: 1 } }
//! layers { name: "sig" type: SIGMOID bottom: "conv" top: "conv" }
//! "#;
//! let net = deepburning_model::parse_network(src)?;
//! let compiled = compile(&net, &CompilerConfig::default())?;
//! assert!(compiled.folding.phases.len() >= 2);
//! assert!(compiled.luts.contains_key("sigmoid"));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod agu;
mod config;
mod folding;
mod lutgen;
mod schedule;
mod tiling;
mod training;
mod weights_layout;

pub use agu::{
    build_memory_map, plan_layer_tiling, plan_spill_slots, synthesize_agus, AguProgram, BlobPlace,
    MemoryMap, Segment, SegmentKind, SpillPlan,
};
pub use config::CompilerConfig;
pub use folding::{plan_folding, FoldingPlan, Phase, PhaseKind, PhaseWork};
pub use lutgen::{generate_luts, LutImages, ACTIVATION_RANGE};
pub use schedule::{blocks, build_schedule, ControlSchedule, ControlStep, Reconnection};
pub use tiling::{
    bandwidth_utilization, layout_order, plan_tiling, rows_touched_linear, rows_touched_tiled,
    TilePlan, TilingCase,
};
pub use training::plan_training;
pub use weights_layout::{layer_weight_order, plan_weight_layout, WeightOrder};

use deepburning_fixed::BuildLutError;
use deepburning_model::{Network, NetworkError};
use std::collections::BTreeMap;
use std::fmt;

/// Everything the compiler produces for one network + configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledNetwork {
    /// The configuration compiled against.
    pub config: CompilerConfig,
    /// Folding into phases.
    pub folding: FoldingPlan,
    /// Off-chip memory layout.
    pub memory_map: MemoryMap,
    /// Per-layer tiling decisions (spatial layers only).
    pub tile_plans: BTreeMap<String, TilePlan>,
    /// Per-phase AGU programs (parallel to `folding.phases`).
    pub agu_programs: Vec<AguProgram>,
    /// Coordinator reconnection schedule.
    pub schedule: ControlSchedule,
    /// Approx LUT images by function tag.
    pub luts: LutImages,
    /// Weight stream order per weighted layer (the DRAM image the host
    /// prepares).
    pub weight_layout: std::collections::BTreeMap<String, WeightOrder>,
}

/// Error raised by [`compile`].
#[derive(Debug)]
pub enum CompileError {
    /// The network failed validation/shape inference.
    Network(NetworkError),
    /// A LUT could not be sampled.
    Lut(BuildLutError),
    /// An address stream exceeds the AGU's 32-bit length counter — the
    /// network is too large for the generated address generators, and
    /// silently truncating the program would corrupt the transfer.
    AguOverflow {
        /// Phase whose program overflowed.
        phase: usize,
        /// Which stream (input fetch, weight fetch, …) overflowed.
        stream: &'static str,
        /// The requested stream length in words.
        words: u64,
    },
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Network(e) => write!(f, "network error: {e}"),
            CompileError::Lut(e) => write!(f, "LUT generation failed: {e}"),
            CompileError::AguOverflow {
                phase,
                stream,
                words,
            } => write!(
                f,
                "phase {phase}: {stream} of {words} words exceeds the AGU's \
                 32-bit length counter"
            ),
        }
    }
}

impl std::error::Error for CompileError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CompileError::Network(e) => Some(e),
            CompileError::Lut(e) => Some(e),
            CompileError::AguOverflow { .. } => None,
        }
    }
}

impl From<NetworkError> for CompileError {
    fn from(e: NetworkError) -> Self {
        CompileError::Network(e)
    }
}

impl From<BuildLutError> for CompileError {
    fn from(e: BuildLutError) -> Self {
        CompileError::Lut(e)
    }
}

/// Runs all compiler passes.
///
/// # Errors
///
/// Returns [`CompileError`] if shape inference fails or a LUT cannot be
/// sampled with the configured entry count.
pub fn compile(net: &Network, config: &CompilerConfig) -> Result<CompiledNetwork, CompileError> {
    use deepburning_trace as trace;
    let mut compile_span = trace::span("compiler", "compiler.compile");
    let folding = {
        let _s = trace::span("compiler", "compiler.folding");
        plan_folding(net, config)?
    };
    let memory_map = {
        let _s = trace::span("compiler", "compiler.memory_map");
        build_memory_map(net, config)?
    };
    let tile_plans = {
        let _s = trace::span("compiler", "compiler.tiling");
        plan_layer_tiling(net, config)?
    };
    let agu_programs = {
        let _s = trace::span("compiler", "compiler.agu_synthesis");
        synthesize_agus(net, &folding, &memory_map, &tile_plans, config)?
    };
    let schedule = {
        let _s = trace::span("compiler", "compiler.schedule");
        build_schedule(&folding)
    };
    let luts = {
        let _s = trace::span("compiler", "compiler.lutgen");
        generate_luts(net, config)?
    };
    let weight_layout = {
        let _s = trace::span("compiler", "compiler.weight_layout");
        plan_weight_layout(net, config)?
    };
    if trace::active() {
        trace::counter("compiler", "compiler.phases", folding.phases.len() as f64);
        trace::counter(
            "compiler",
            "compiler.agu_programs",
            agu_programs.len() as f64,
        );
        trace::counter("compiler", "compiler.lut_images", luts.len() as f64);
        trace::counter(
            "compiler",
            "compiler.control_steps",
            schedule.steps.len() as f64,
        );
        trace::gauge("compiler", "compiler.lanes", f64::from(config.lanes));
        compile_span.arg(
            "phases",
            trace::json::Json::num(folding.phases.len() as f64),
        );
    }
    Ok(CompiledNetwork {
        config: *config,
        folding,
        memory_map,
        tile_plans,
        agu_programs,
        schedule,
        luts,
        weight_layout,
    })
}

#[cfg(test)]
mod proptests {
    use super::*;
    use deepburning_model::{ConvParam, FullParam, Layer, LayerKind, Network, Shape};
    use proptest::prelude::*;

    fn arb_net() -> impl Strategy<Value = Network> {
        (1usize..4, 8usize..24, 1usize..64, 2usize..6).prop_map(|(ci, ext, co, k)| {
            let k = k.min(ext);
            Network::from_layers(
                "gen",
                vec![
                    Layer::input("data", "data", ci, ext, ext),
                    Layer::new(
                        "conv",
                        LayerKind::Convolution(ConvParam::new(co, k, 1)),
                        "data",
                        "conv",
                    ),
                    Layer::new(
                        "fc",
                        LayerKind::FullConnection(FullParam::dense(10)),
                        "conv",
                        "fc",
                    ),
                ],
            )
            .expect("generated net is valid")
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn compile_succeeds_and_is_consistent(net in arb_net(), lanes in 1u32..128) {
            let cfg = CompilerConfig { lanes, ..CompilerConfig::default() };
            let compiled = compile(&net, &cfg).expect("compiles");
            // One AGU program and one control step per phase.
            prop_assert_eq!(compiled.agu_programs.len(), compiled.folding.phases.len());
            prop_assert_eq!(compiled.schedule.steps.len(), compiled.folding.phases.len());
            // Memory map invariant.
            prop_assert!(compiled.memory_map.is_consistent());
            // Work conservation.
            let stats = deepburning_model::network_stats(&net).expect("stats");
            prop_assert_eq!(compiled.folding.total_work().macs, stats.total.macs);
        }

        #[test]
        fn layout_order_is_permutation(c in 1usize..4, h in 2usize..20, w in 2usize..20,
                                       k in 2usize..6, s in 1usize..4, d in 4usize..20) {
            let plan = plan_tiling(k, s, d, c);
            let shape = Shape::new(c, h, w);
            let order = layout_order(shape, &plan);
            let n = shape.elements();
            prop_assert_eq!(order.len(), n);
            let mut seen = vec![false; n];
            for &i in &order {
                prop_assert!(i < n);
                prop_assert!(!seen[i], "duplicate index {}", i);
                seen[i] = true;
            }
        }

        #[test]
        fn folds_shrink_with_lanes(net in arb_net()) {
            let p8 = compile(&net, &CompilerConfig { lanes: 8, ..CompilerConfig::default() })
                .expect("compiles").folding.phases.len();
            let p64 = compile(&net, &CompilerConfig { lanes: 64, ..CompilerConfig::default() })
                .expect("compiles").folding.phases.len();
            prop_assert!(p64 <= p8);
        }
    }
}
