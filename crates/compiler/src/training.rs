//! Training-iteration scheduling.
//!
//! The paper motivates DeepBurning with the training loop ("a critical
//! metric to evaluate the model training speed with the accelerator due to
//! the repetitive network inference in training"): this pass extends the
//! forward folding plan with backward-propagation and weight-update phases
//! so a full SGD iteration can be timed on the same datapath.

use crate::config::CompilerConfig;
use crate::folding::{plan_folding, FoldingPlan, Phase, PhaseKind, PhaseWork};
use deepburning_model::{layer_stats, LayerKind, Network, NetworkError, Shape};

/// Plans one SGD training iteration: the forward phases, then backward
/// phases in reverse layer order (gradient w.r.t. inputs and weights),
/// then one weight-update phase per parametric layer.
///
/// Backward compute reuses the synergy lanes (transposed weight access
/// served by the same AGU template with a swapped x/y pattern); updates
/// stream every weight through the accumulators once.
///
/// # Errors
///
/// Propagates shape-inference failures.
pub fn plan_training(net: &Network, cfg: &CompilerConfig) -> Result<FoldingPlan, NetworkError> {
    let mut plan = plan_folding(net, cfg)?;
    let shapes = net.infer_shapes()?;
    let wb = cfg.word_bytes();
    let mut id = plan.phases.len();
    // Backward pass, reverse layer order.
    for (li, layer) in net.layers().iter().enumerate().rev() {
        let weighted = layer.kind.has_weights();
        let backward_relevant = weighted
            || matches!(
                layer.kind,
                LayerKind::Pooling(_) | LayerKind::Activation(_) | LayerKind::Lrn(_)
            );
        if !backward_relevant {
            continue;
        }
        let inputs: Vec<Shape> = layer.bottoms.iter().map(|b| shapes[b]).collect();
        let output = shapes[&layer.tops[0]];
        let ls = layer_stats(layer, &inputs, output);
        // Mirror the forward folding of this layer.
        let fwd_folds = plan
            .layer_phases(&layer.name)
            .map(|p| p.folds)
            .next()
            .unwrap_or(1);
        let fwd_active = plan
            .layer_phases(&layer.name)
            .map(|p| p.active_lanes)
            .next()
            .unwrap_or(cfg.lanes);
        let (macs, aux) = if weighted {
            (2 * ls.macs, 0)
        } else {
            (0, ls.output_elems)
        };
        let act_bytes = (ls.input_elems + ls.output_elems) * wb;
        for fold in 0..fwd_folds {
            let split =
                |v: u64| v / fwd_folds as u64 + u64::from(fold == 0) * (v % fwd_folds as u64);
            plan.phases.push(Phase {
                id,
                layer: layer.name.clone(),
                fold,
                folds: fwd_folds,
                kind: if weighted {
                    PhaseKind::Compute
                } else {
                    PhaseKind::Aux
                },
                work: PhaseWork {
                    macs: split(macs),
                    aux_ops: split(aux),
                    lut_ops: 0,
                    // Cached forward activations + weights in, gradients out.
                    dram_read_bytes: split(act_bytes + ls.weights * wb),
                    dram_write_bytes: split(ls.input_elems * wb),
                    buffer_read_words: split(
                        macs.max(ls.input_elems) / cfg.port_width_words.max(1) as u64,
                    ),
                    buffer_write_words: split(ls.input_elems),
                },
                event: format!("layer{li}-back{fold}"),
                active_lanes: fwd_active,
                input_resident: false,
                output_to_dram: true,
            });
            id += 1;
        }
        // Weight update: stream every parameter through the accumulators.
        if weighted {
            plan.phases.push(Phase {
                id,
                layer: layer.name.clone(),
                fold: 0,
                folds: 1,
                kind: PhaseKind::Compute,
                work: PhaseWork {
                    macs: ls.weights, // w -= lr * dw is one MAC per weight
                    aux_ops: 0,
                    lut_ops: 0,
                    dram_read_bytes: 2 * ls.weights * wb, // w and dw in
                    dram_write_bytes: ls.weights * wb,    // w out
                    buffer_read_words: 2 * ls.weights,
                    buffer_write_words: ls.weights,
                },
                event: format!("layer{li}-update"),
                active_lanes: cfg.lanes,
                input_resident: false,
                output_to_dram: true,
            });
            id += 1;
        }
    }
    Ok(plan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepburning_model::{parse_network, training_stats};

    const SRC: &str = r#"
    layers { name: "data" type: INPUT top: "data"
             input_param { channels: 1 height: 12 width: 12 } }
    layers { name: "conv" type: CONVOLUTION bottom: "data" top: "conv"
             param { num_output: 8 kernel_size: 3 stride: 1 } }
    layers { name: "relu" type: RELU bottom: "conv" top: "conv" }
    layers { name: "fc" type: FC bottom: "conv" top: "fc"
             param { num_output: 4 } }
    "#;

    #[test]
    fn training_plan_extends_forward_plan() {
        let net = parse_network(SRC).expect("parses");
        let cfg = CompilerConfig::default();
        let fwd = plan_folding(&net, &cfg).expect("fwd");
        let train = plan_training(&net, &cfg).expect("train");
        assert!(train.phases.len() > fwd.phases.len());
        // Forward phases are a prefix.
        for (a, b) in fwd.phases.iter().zip(&train.phases) {
            assert_eq!(a, b);
        }
        // Ids stay dense.
        for (i, p) in train.phases.iter().enumerate() {
            assert_eq!(p.id, i);
        }
    }

    #[test]
    fn backward_phases_in_reverse_order() {
        let net = parse_network(SRC).expect("parses");
        let cfg = CompilerConfig::default();
        let fwd_len = plan_folding(&net, &cfg).expect("fwd").phases.len();
        let train = plan_training(&net, &cfg).expect("train");
        let back: Vec<&str> = train.phases[fwd_len..]
            .iter()
            .map(|p| p.layer.as_str())
            .collect();
        // fc backward (+update) first, then relu, then conv (+update).
        assert_eq!(back.first(), Some(&"fc"));
        assert_eq!(back.last(), Some(&"conv"));
        assert!(back.contains(&"relu"));
    }

    #[test]
    fn training_macs_roughly_triple_forward() {
        let net = parse_network(SRC).expect("parses");
        let cfg = CompilerConfig::default();
        let fwd = plan_folding(&net, &cfg).expect("fwd").total_work();
        let train = plan_training(&net, &cfg).expect("train").total_work();
        let ts = training_stats(&net).expect("stats");
        assert_eq!(
            train.macs,
            fwd.macs + ts.backward_macs + ts.update_ops,
            "plan must carry exactly the analysed backward work"
        );
        assert!(train.macs > fwd.macs * 2);
        assert!(train.macs < fwd.macs * 4);
    }

    #[test]
    fn update_events_present_per_weighted_layer() {
        let net = parse_network(SRC).expect("parses");
        let train = plan_training(&net, &CompilerConfig::default()).expect("train");
        let updates: Vec<&str> = train
            .phases
            .iter()
            .filter(|p| p.event.ends_with("-update"))
            .map(|p| p.layer.as_str())
            .collect();
        assert_eq!(updates, vec!["fc", "conv"]);
    }
}
